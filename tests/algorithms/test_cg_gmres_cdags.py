"""Tests for the CG and GMRES CDAG constructions and Theorem 8/9 analyses."""

import numpy as np
import pytest

from repro.algorithms import (
    analyze_cg,
    analyze_gmres,
    cg_iteration_cdag,
    gmres_iteration_cdag,
    traced_cg_cdag,
    traced_gmres_cdag,
)
from repro.bounds import automated_wavefront_bound
from repro.core.properties import min_wavefront
from repro.solvers import Grid, StencilOperator, conjugate_gradient


class TestCGStructuralCDAG:
    def test_basic_structure(self):
        c = cg_iteration_cdag((3, 3), 1)
        assert len(c.inputs) == 3 * 9  # x0, r0, p0
        assert len(c.outputs) == 3 * 9  # final x, r, p
        c.validate()

    def test_multiple_iterations_grow_linearly(self):
        one = cg_iteration_cdag((2, 2), 1).num_vertices()
        two = cg_iteration_cdag((2, 2), 2).num_vertices()
        three = cg_iteration_cdag((2, 2), 3).num_vertices()
        assert (three - two) == (two - one)

    def test_wavefront_at_step_scalar_matches_theorem8(self):
        # Theorem 8: |W^min(a)| >= 2 n^d  (elements of p and v)
        for shape in [(2, 2), (3, 2)]:
            nd = int(np.prod(shape))
            c = cg_iteration_cdag(shape, 1)
            assert min_wavefront(c, ("a", 0)) >= 2 * nd

    def test_wavefront_at_beta_scalar_matches_theorem8(self):
        # |W^min(g)| >= n^d (elements of r_new)
        for shape in [(2, 2), (4,)]:
            nd = int(np.prod(shape))
            c = cg_iteration_cdag(shape, 1)
            assert min_wavefront(c, ("g", 0)) >= nd

    def test_automated_heuristic_finds_the_large_wavefront(self):
        shape = (2, 2)
        nd = 4
        c = cg_iteration_cdag(shape, 1)
        bound = automated_wavefront_bound(c, s=0)
        assert bound.wavefront >= 2 * nd

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            cg_iteration_cdag((2, 2), 0)


class TestCGTracedCDAG:
    def test_traced_cg_matches_vectorised_solver(self):
        grid = Grid(shape=(3, 3))
        iterations = 2
        x_traced, cdag = traced_cg_cdag(grid, iterations)
        # reference: the vectorised CG limited to the same iteration count,
        # starting from x = 0 with the same (ramp) right-hand side
        op = StencilOperator(grid)
        ramp = 1.0 + np.arange(grid.num_points, dtype=float) / grid.num_points
        b = grid.implicit_rhs(ramp)
        ref = conjugate_gradient(op, b, tol=0.0, max_iterations=iterations)
        assert np.allclose(x_traced, ref.x, atol=1e-10)
        cdag.validate()

    def test_traced_cdag_has_dot_product_wavefronts(self):
        grid = Grid(shape=(2, 2))
        _, cdag = traced_cg_cdag(grid, 1)
        bound = automated_wavefront_bound(cdag, s=0)
        assert bound.wavefront >= 2 * grid.num_points

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            traced_cg_cdag(Grid(shape=(2, 2)), 0)


class TestGMRESCDAGs:
    def test_structural_counts(self):
        shape, m = (2, 2), 2
        c = gmres_iteration_cdag(shape, m)
        assert len(c.inputs) == 4
        c.validate()
        # Hessenberg scalars: sum_{i<m} (i+1) + m norms
        num_h = sum(i + 1 for i in range(m)) + m
        h_outputs = [v for v in c.outputs if v[0] in ("h+", "h_last")]
        assert len(h_outputs) == num_h

    def test_wavefront_at_last_inner_product(self):
        shape = (2, 2)
        nd = 4
        c = gmres_iteration_cdag(shape, 1)
        bound = automated_wavefront_bound(c, s=0)
        assert bound.wavefront >= 2 * nd

    def test_traced_gmres_matches_numpy_arnoldi(self):
        grid = Grid(shape=(3, 2))
        m = 2
        traced_v, cdag = traced_gmres_cdag(grid, m)
        # reference Arnoldi with the same operator and (ramp) start vector
        op = StencilOperator(grid)
        ramp = 1.0 + np.arange(grid.num_points, dtype=float) / grid.num_points
        r0 = grid.implicit_rhs(ramp)
        v = [r0 / np.linalg.norm(r0)]
        for i in range(m):
            w = op.matvec(v[i])
            for j in range(i + 1):
                w = w - (w @ v[j]) * v[j]
            v.append(w / np.linalg.norm(w))
        assert np.allclose(traced_v, v[-1], atol=1e-10)
        cdag.validate()

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            gmres_iteration_cdag((2, 2), 0)
        with pytest.raises(ValueError):
            traced_gmres_cdag(Grid(shape=(2, 2)), 0)


class TestSection52Analysis:
    def test_cg_vertical_intensity_is_0_3(self, bgq, xt5):
        for machine in (bgq, xt5):
            a = analyze_cg(machine, n=1000, dimensions=3, iterations=1)
            assert a.vertical_intensity == pytest.approx(0.3)
            assert a.vertical_verdict.bound is True

    def test_cg_horizontal_matches_paper_formula(self, bgq):
        a = analyze_cg(bgq, n=1000, dimensions=3, iterations=1)
        paper = 6 * bgq.num_nodes ** (1 / 3) / (20 * 1000)
        assert a.horizontal_intensity == pytest.approx(paper, rel=0.2)
        assert a.horizontal_verdict.bound is False

    def test_cg_intensity_independent_of_iterations(self, bgq):
        a1 = analyze_cg(bgq, n=500, iterations=1)
        a5 = analyze_cg(bgq, n=500, iterations=5)
        assert a1.vertical_intensity == pytest.approx(a5.vertical_intensity)


class TestSection53Analysis:
    def test_gmres_vertical_intensity_formula(self, bgq):
        for m in (5, 10, 50):
            a = analyze_gmres(bgq, n=1000, dimensions=3, krylov_iterations=m)
            assert a.vertical_intensity == pytest.approx(6.0 / (m + 20))

    def test_gmres_crossover_with_large_m(self, bgq):
        small_m = analyze_gmres(bgq, krylov_iterations=10)
        large_m = analyze_gmres(bgq, krylov_iterations=200)
        assert small_m.vertical_verdict.bound is True
        assert large_m.vertical_verdict.bound is False

    def test_gmres_never_network_bound_here(self, bgq, xt5):
        for machine in (bgq, xt5):
            a = analyze_gmres(machine, n=1000, krylov_iterations=10)
            assert a.horizontal_verdict.bound is False

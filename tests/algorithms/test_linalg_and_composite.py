"""Unit tests for the matmul/outer-product CDAGs and the Section 3 composite example."""

import numpy as np
import pytest

from repro.algorithms import (
    composite_cdag,
    matmul_accumulation_chains,
    matmul_cdag,
    naive_step_sum,
    recompute_friendly_game,
    traced_composite,
    traced_matmul,
    traced_outer_product,
)
from repro.bounds import (
    composite_example_io_upper_bound,
    matmul_io_lower_bound,
    outer_product_io,
)
from repro.pebbling import spill_game_rbw


class TestMatmulCDAG:
    def test_vertex_counts(self):
        n = 3
        c = matmul_cdag(n)
        # inputs 2n^2, multiplies n^3, accumulates n^2 (n-1)
        assert len(c.inputs) == 2 * n * n
        assert c.num_vertices() == 2 * n * n + n ** 3 + n * n * (n - 1)
        assert len(c.outputs) == n * n

    def test_n_equal_one(self):
        c = matmul_cdag(1)
        assert len(c.outputs) == 1
        assert c.num_vertices() == 3

    def test_outputs_depend_on_whole_row_and_column(self):
        c = matmul_cdag(2)
        out = ("acc", 0, 0, 1)
        anc = c.ancestors(out)
        assert ("A", 0, 0) in anc and ("A", 0, 1) in anc
        assert ("B", 0, 0) in anc and ("B", 1, 0) in anc
        assert ("A", 1, 0) not in anc

    def test_accumulation_chains_shape(self):
        n = 3
        chains = matmul_accumulation_chains(n)
        assert len(chains.inputs) == n * n
        # each chain can be pebbled with 2 red pebbles
        rec = spill_game_rbw(chains, num_red=2)
        assert rec.compute_count == len(chains.operations)

    def test_without_io_vertices_becomes_chain_like(self):
        c = matmul_cdag(3)
        core = c.without_io_vertices()
        # after removing inputs/outputs, no vertex has in-degree > 2
        assert all(core.in_degree(v) <= 2 for v in core.vertices)

    def test_spill_game_exceeds_hong_kung_bound(self):
        n, s = 4, 8
        c = matmul_cdag(n)
        ub = spill_game_rbw(c, num_red=s).io_count
        assert ub >= matmul_io_lower_bound(n, s)


class TestTracedKernels:
    def test_traced_matmul_matches_numpy(self, rng):
        a, b = rng.random((4, 3)), rng.random((3, 5))
        c, cdag = traced_matmul(a, b)
        assert np.allclose(c, a @ b)
        assert len(cdag.outputs) == 20
        assert len(cdag.inputs) == 12 + 15

    def test_traced_matmul_shape_check(self, rng):
        with pytest.raises(ValueError):
            traced_matmul(rng.random((2, 3)), rng.random((2, 3)))

    def test_traced_outer_product(self, rng):
        p, q = rng.random(4), rng.random(3)
        a, cdag = traced_outer_product(p, q)
        assert np.allclose(a, np.outer(p, q))
        assert len(cdag.outputs) == 12
        assert cdag.num_vertices() == 7 + 12

    def test_traced_outer_requires_vectors(self, rng):
        with pytest.raises(ValueError):
            traced_outer_product(rng.random((2, 2)), rng.random(2))


class TestCompositeExample:
    def test_composite_cdag_counts(self):
        n = 3
        c = composite_cdag(n)
        assert len(c.inputs) == 4 * n
        assert len(c.outputs) == 1
        # A and B vertices: 2 n^2 ; C multiplies n^3 ; C accumulates n^2(n-1);
        # global sum accumulates n^2 - 1
        expected_ops = 2 * n * n + n ** 3 + n * n * (n - 1) + n * n - 1
        assert len(c.operations) == expected_ops

    def test_traced_composite_matches_numpy(self, rng):
        p, q, r, s = (rng.random(4) for _ in range(4))
        value, cdag = traced_composite(p, q, r, s)
        expected = float(np.sum(np.outer(p, q) @ np.outer(r, s)))
        assert value == pytest.approx(expected)
        assert len(cdag.outputs) == 1

    def test_traced_composite_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            traced_composite(rng.random(3), rng.random(4), rng.random(3), rng.random(3))

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_recompute_friendly_game_achieves_4n_plus_1(self, n):
        record = recompute_friendly_game(n)
        assert record.io_count == composite_example_io_upper_bound(n) == 4 * n + 1
        assert record.load_count == 4 * n
        assert record.store_count == 1

    def test_composite_io_below_naive_sum(self):
        n, s = 8, 64
        assert recompute_friendly_game(n).io_count < naive_step_sum(n, s)

    def test_composite_io_below_matmul_bound_for_big_n(self):
        # the heart of the Section 3 argument; at N=64, S=64:
        # 4N+1 = 257 < N^3/(2 sqrt(2S)) ~ 11585
        n, s = 64, 64
        assert composite_example_io_upper_bound(n) < matmul_io_lower_bound(n, s)

    def test_outer_product_io_formula_is_exact_for_game(self):
        from repro.core import outer_product_cdag

        n = 3
        rec = spill_game_rbw(outer_product_cdag(n), num_red=2 * n + 2)
        assert rec.io_count == outer_product_io(n)

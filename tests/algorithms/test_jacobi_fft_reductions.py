"""Tests for the Jacobi analysis (Theorem 10), FFT and reduction kernels."""

import numpy as np
import pytest

from repro.algorithms import (
    analyze_jacobi,
    bandwidth_bound_dimension_threshold,
    dot_product_cdag,
    dot_then_axpy_cdag,
    jacobi_cdag,
    radix2_fft,
    saxpy_cdag,
)
from repro.algorithms.fft import fft_flops
from repro.bounds import fft_io_lower_bound, jacobi_io_lower_bound
from repro.core import butterfly_cdag
from repro.core.properties import min_wavefront
from repro.pebbling import spill_game_rbw


class TestJacobiCDAG:
    def test_box_neighborhood_is_nine_point_in_2d(self):
        c = jacobi_cdag((3, 3), 1)
        centre = ("st", 1, 1, 1)
        assert c.in_degree(centre) == 9

    def test_vertex_count(self):
        c = jacobi_cdag((4, 4), 2)
        assert c.num_vertices() == 16 * 3

    def test_spill_game_dominates_theorem10(self):
        n, t, s, d = 6, 3, 12, 2
        c = jacobi_cdag((n, n), t, neighborhood="star")
        ub = spill_game_rbw(c, num_red=s).io_count
        lb = jacobi_io_lower_bound(n, t, s, d)
        assert lb <= ub


class TestJacobiAnalysis:
    def test_dimension_threshold_formula(self):
        # balance 0.052, cache 4 MWords: exact condition threshold ~ 10.15
        th = bandwidth_bound_dimension_threshold(0.052, 4 * 2 ** 20)
        assert th == pytest.approx(10.15, rel=0.01)

    def test_threshold_infinite_when_balance_large(self):
        assert bandwidth_bound_dimension_threshold(0.3, 1024) == float("inf")

    def test_threshold_guards(self):
        with pytest.raises(ValueError):
            bandwidth_bound_dimension_threshold(0.0, 1024)

    def test_low_dimensional_stencils_not_bound_on_bgq(self, bgq):
        for d in (1, 2, 3, 4):
            a = analyze_jacobi(bgq, n=100, dimensions=d, timesteps=10)
            assert a.per_op_vertical_requirement < bgq.effective_vertical_balance()

    def test_high_dimensional_stencils_bound_on_bgq(self, bgq):
        a = analyze_jacobi(bgq, n=10, dimensions=11, timesteps=2)
        assert a.per_op_vertical_requirement > bgq.effective_vertical_balance()

    def test_per_op_requirement_decreases_with_dimension_inverse(self, bgq):
        a2 = analyze_jacobi(bgq, n=50, dimensions=2, timesteps=5)
        a3 = analyze_jacobi(bgq, n=50, dimensions=3, timesteps=5)
        assert a3.per_op_vertical_requirement > a2.per_op_vertical_requirement

    def test_count_flops_lowers_intensity(self, bgq):
        per_update = analyze_jacobi(bgq, n=50, dimensions=2, timesteps=5)
        per_flop = analyze_jacobi(bgq, n=50, dimensions=2, timesteps=5,
                                  count_flops=True)
        assert per_flop.vertical_intensity < per_update.vertical_intensity

    def test_xt5_threshold_lower_than_bgq(self, bgq, xt5):
        # the XT5 has a smaller cache and smaller balance: its threshold is lower
        tb = analyze_jacobi(bgq, n=50, dimensions=2, timesteps=5).dimension_threshold
        tx = analyze_jacobi(xt5, n=50, dimensions=2, timesteps=5).dimension_threshold
        assert tx < tb


class TestFFT:
    def test_radix2_matches_numpy(self, rng):
        for log_n in (2, 3, 5):
            x = rng.random(1 << log_n)
            assert np.allclose(radix2_fft(x), np.fft.fft(x))

    def test_complex_input(self, rng):
        x = rng.random(8) + 1j * rng.random(8)
        assert np.allclose(radix2_fft(x), np.fft.fft(x))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            radix2_fft(np.zeros(6))

    def test_flops_formula(self):
        assert fft_flops(8) == 5 * 8 * 3

    def test_butterfly_spill_game_dominates_bound(self):
        log_n, s = 3, 4
        c = butterfly_cdag(log_n)
        ub = spill_game_rbw(c, num_red=s).io_count
        assert ub >= fft_io_lower_bound(1 << log_n, s)


class TestReductionKernels:
    def test_dot_product_counts(self):
        c = dot_product_cdag(5)
        assert len(c.inputs) == 10
        assert len(c.outputs) == 1
        assert len(c.operations) == 5 + 4

    def test_saxpy_counts(self):
        c = saxpy_cdag(4)
        assert len(c.inputs) == 9  # a + 2 * 4
        assert len(c.outputs) == 4
        assert all(c.in_degree(v) == 3 for v in c.outputs)

    def test_dot_product_alone_has_small_wavefront(self):
        c = dot_product_cdag(6)
        root = ("acc", 5)
        assert min_wavefront(c, root) == 1  # nothing is re-read afterwards

    def test_dot_then_axpy_wavefront_is_2n_plus_1(self):
        for n in (2, 4, 6):
            c = dot_then_axpy_cdag(n)
            assert min_wavefront(c, ("acc", n - 1)) == 2 * n + 1

    def test_guards(self):
        with pytest.raises(ValueError):
            dot_product_cdag(0)
        with pytest.raises(ValueError):
            saxpy_cdag(0)
        with pytest.raises(ValueError):
            dot_then_axpy_cdag(0)

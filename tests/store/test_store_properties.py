"""Hypothesis property suite for the store's content addressing
(:mod:`repro.store.keys`), mirroring the ``config_hash`` discipline
pinned in ``tests/evaluation/test_manifest_properties.py``:

* **Reorder invariance** — ``artifact_key`` is a pure function of the
  canonical spec: dict key order and tuple/list spelling never change
  the address.
* **Sensitivity** — the address *does* change whenever the kind, the
  spec contents, or the code-version stamp change (distinct artifacts
  can never alias).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.evaluation.manifest import canonical_config  # noqa: E402
from repro.store.keys import artifact_key  # noqa: E402

_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=8)
)
_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)
_specs = st.dictionaries(st.text(min_size=1, max_size=8), _values, max_size=6)


def _reversed_dict(d):
    if isinstance(d, dict):
        return {k: _reversed_dict(d[k]) for k in reversed(list(d))}
    if isinstance(d, list):
        return [_reversed_dict(x) for x in d]
    return d


def _lists_to_tuples(d):
    if isinstance(d, dict):
        return {k: _lists_to_tuples(v) for k, v in d.items()}
    if isinstance(d, list):
        return tuple(_lists_to_tuples(x) for x in d)
    return d


class TestKeyStability:
    @settings(max_examples=60)
    @given(_specs)
    def test_invariant_under_key_reorder(self, spec):
        assert artifact_key("bound", spec) == artifact_key(
            "bound", _reversed_dict(spec)
        )

    @settings(max_examples=60)
    @given(_specs)
    def test_invariant_under_tuple_list_spelling(self, spec):
        assert artifact_key("bound", spec) == artifact_key(
            "bound", _lists_to_tuples(spec)
        )

    @settings(max_examples=60)
    @given(_specs)
    def test_key_is_function_of_canonical_spec(self, spec):
        assert artifact_key("bound", spec) == artifact_key(
            "bound", canonical_config(spec)
        )


class TestKeySensitivity:
    @settings(max_examples=60)
    @given(_specs)
    def test_kind_always_changes_the_key(self, spec):
        assert artifact_key("bound", spec) != artifact_key("compiled", spec)

    @settings(max_examples=60)
    @given(_specs)
    def test_code_version_always_changes_the_key(self, spec):
        assert artifact_key("bound", spec, "src-aaaa") != artifact_key(
            "bound", spec, "src-bbbb"
        )

    @settings(max_examples=60)
    @given(_specs, st.text(min_size=1, max_size=8), _values)
    def test_spec_change_changes_the_key(self, spec, key, value):
        changed = dict(spec)
        changed[key] = value
        if canonical_config(changed) == canonical_config(spec):
            assert artifact_key("bound", spec) == artifact_key(
                "bound", changed
            )
        else:
            assert artifact_key("bound", spec) != artifact_key(
                "bound", changed
            )

    def test_builder_params_seed_distinguish(self):
        base = {"builder": "chain", "params": {"length": 8}, "seed": 0}
        for variant in (
            {**base, "builder": "chains"},
            {**base, "params": {"length": 9}},
            {**base, "seed": 1},
        ):
            assert artifact_key("compiled", base) != artifact_key(
                "compiled", variant
            )

"""Tests for the content-addressed artifact store engine
(:mod:`repro.store.db`) and the codec/key layers under it."""

import sqlite3
import threading

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    artifact_key,
    code_version,
    compiled_from_payload,
    pack_arrays,
    schedule_from_payload,
    serialize_compiled,
    serialize_schedule,
    unpack_arrays,
)
from repro.store.keys import CODE_VERSION_ENV


@pytest.fixture
def store(tmp_path):
    with ArtifactStore(tmp_path / "store.db") as s:
        yield s


KEY = "00" * 32
KEY2 = "11" * 32


class TestRoundtrip:
    def test_miss_then_hit(self, store):
        assert store.get(KEY) is None
        store.put(KEY, b"abc", kind="bound")
        assert store.get(KEY) == b"abc"
        assert store.counters["hits"] == 1
        assert store.counters["misses"] == 1
        assert store.counters["puts"] == 1

    def test_replace_wins(self, store):
        store.put(KEY, b"old", kind="bound")
        store.put(KEY, b"new", kind="bound")
        assert store.get(KEY) == b"new"

    def test_delete(self, store):
        store.put(KEY, b"abc", kind="bound")
        assert store.delete(KEY) is True
        assert store.delete(KEY) is False
        assert store.get(KEY) is None

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        with ArtifactStore(path) as s:
            s.put(KEY, b"durable", kind="compiled")
        with ArtifactStore(path) as s:
            assert s.get(KEY) == b"durable"

    def test_wal_mode(self, store):
        assert store.stats()["journal_mode"] == "wal"

    def test_get_or_compute(self, store):
        calls = []

        def compute():
            calls.append(1)
            return b"computed"

        payload, hit = store.get_or_compute(KEY, compute, kind="bound")
        assert (payload, hit) == (b"computed", False)
        payload, hit = store.get_or_compute(KEY, compute, kind="bound")
        assert (payload, hit) == (b"computed", True)
        assert len(calls) == 1


class TestIntegrity:
    """A corrupted or truncated row must read as a miss, never as bad
    bytes."""

    def _tamper(self, store, sql, args=()):
        conn = sqlite3.connect(str(store.path))
        conn.execute(sql, args)
        conn.commit()
        conn.close()

    def test_corrupted_payload_is_recomputed(self, store):
        store.put(KEY, b"good-bytes", kind="bound")
        self._tamper(
            store,
            "UPDATE artifacts SET payload = ? WHERE key = ?",
            (sqlite3.Binary(b"evil-bytes"), KEY),
        )
        assert store.get(KEY) is None
        assert store.counters["corrupt"] == 1
        payload, hit = store.get_or_compute(
            KEY, lambda: b"good-bytes", kind="bound"
        )
        assert (payload, hit) == (b"good-bytes", False)
        assert store.get(KEY) == b"good-bytes"

    def test_truncated_payload_is_a_miss(self, store):
        store.put(KEY, b"0123456789", kind="bound")
        self._tamper(
            store,
            "UPDATE artifacts SET payload = ? WHERE key = ?",
            (sqlite3.Binary(b"01234"), KEY),
        )
        assert store.get(KEY) is None
        assert store.counters["corrupt"] == 1
        # the corrupt row was deleted, not left to fail forever
        assert store.stats()["entries"] == 0


class TestStatsAndGc:
    def test_stats_shape(self, store):
        store.put(KEY, b"abc", kind="bound")
        store.put(KEY2, b"defg", kind="compiled")
        store.get(KEY)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["payload_bytes"] == 7
        assert stats["kinds"]["bound"]["entries"] == 1
        assert stats["kinds"]["compiled"]["nbytes"] == 4
        assert stats["db_bytes"] > 0
        assert 0 < stats["hit_rate"] <= 1

    def test_gc_max_age(self, store):
        store.put(KEY, b"old", kind="bound")
        report = store.gc(max_age_s=0.0, now=1e12)
        assert report == {"removed": 1, "removed_bytes": 3}
        assert store.stats()["entries"] == 0

    def test_gc_max_bytes_evicts_lru(self, store):
        store.put(KEY, b"a" * 100, kind="bound")
        store.put(KEY2, b"b" * 100, kind="bound")
        store.get(KEY)  # KEY freshly used; KEY2 is the LRU victim
        report = store.gc(max_bytes=150)
        assert report["removed"] == 1
        assert store.get(KEY) == b"a" * 100
        assert store.get(KEY2) is None

    def test_gc_drops_stale_code_versions(self, store):
        store.put(KEY, b"stale", kind="bound", code_ver="src-old")
        store.put(KEY2, b"live", kind="bound", code_ver="src-new")
        report = store.gc(
            drop_stale_code=True, current_code_version="src-new"
        )
        assert report["removed"] == 1
        assert store.get(KEY) is None
        assert store.get(KEY2) == b"live"

    def test_clear(self, store):
        store.put(KEY, b"abc", kind="bound")
        store.put(KEY2, b"def", kind="schedule")
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, store):
        gate = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            gate.wait(5.0)
            return b"slow-result"

        results = []

        def worker():
            results.append(
                store.get_or_compute(KEY, compute, kind="bound")[0]
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(10.0)
        assert results == [b"slow-result"] * 6
        assert len(calls) == 1
        assert store.counters["puts"] == 1
        # every non-leader read the published bytes — via the
        # single-flight wait or (if it arrived after publish) a plain
        # hit; either way nothing recomputed
        assert store.counters["hits"] == 5
        assert store.counters["flights"] <= 5


class TestKeys:
    def test_key_is_hex_and_deterministic(self):
        k1 = artifact_key("bound", {"a": 1, "b": [1, 2]})
        k2 = artifact_key("bound", {"b": (1, 2), "a": 1})
        assert k1 == k2
        assert len(k1) == 64 and set(k1) <= set("0123456789abcdef")

    def test_key_varies_with_kind_and_spec(self):
        spec = {"a": 1}
        assert artifact_key("bound", spec) != artifact_key("compiled", spec)
        assert artifact_key("bound", spec) != artifact_key("bound", {"a": 2})

    def test_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv(CODE_VERSION_ENV, "pinned-version")
        assert code_version() == "pinned-version"
        assert artifact_key("bound", {}, "v1") != artifact_key(
            "bound", {}, "v2"
        )

    def test_code_version_default_is_source_stamp(self, monkeypatch):
        monkeypatch.delenv(CODE_VERSION_ENV, raising=False)
        ver = code_version()
        assert ver.startswith("src-") and len(ver) == 20
        assert code_version() == ver  # cached + deterministic


class TestCodec:
    def test_pack_unpack_roundtrip(self):
        arrays = {
            "x": np.arange(5, dtype=np.int64),
            "mask": np.array([True, False, True]),
        }
        payload = pack_arrays(arrays, {"meta": 1})
        out, meta = unpack_arrays(payload)
        assert meta["meta"] == 1
        np.testing.assert_array_equal(out["x"], arrays["x"])
        np.testing.assert_array_equal(out["mask"], arrays["mask"])

    def test_bad_magic_and_truncation_raise(self):
        payload = pack_arrays({"x": np.arange(3)}, {})
        with pytest.raises(ValueError):
            unpack_arrays(b"NOTMAGIC" + payload[8:])
        with pytest.raises(ValueError):
            unpack_arrays(payload[:-2])

    def test_serialization_is_deterministic(self):
        from repro.core.builders import diamond_cdag

        p1 = serialize_compiled(diamond_cdag(4, 4).compiled())
        p2 = serialize_compiled(diamond_cdag(4, 4).compiled())
        assert p1 == p2

    def test_compiled_payload_roundtrip(self):
        from repro.core.builders import grid_stencil_cdag

        cdag = grid_stencil_cdag((4, 4), 2)
        c = cdag.compiled()
        back = compiled_from_payload(serialize_compiled(c))
        assert back.n == c.n and back.m == c.m
        assert back._verts == c._verts
        np.testing.assert_array_equal(back.succ_indptr, c.succ_indptr)
        np.testing.assert_array_equal(back.succ_indices, c.succ_indices)
        np.testing.assert_array_equal(back.is_input_mask, c.is_input_mask)

    def test_schedule_roundtrip(self):
        ids = np.arange(7, dtype=np.int32)[::-1].copy()
        back, meta = schedule_from_payload(serialize_schedule(ids, "dfs"))
        assert meta["kind"] == "dfs"
        np.testing.assert_array_equal(back, ids)

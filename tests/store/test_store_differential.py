"""Randomized differential suite: every cached artifact is byte-identical
to its freshly computed counterpart.

The store path is ``fresh_* -> codec -> SQLite``, so this pins the whole
invariant chain: a warm hit can never drift from a recomputation — not
across calls, not across store reopenings, not across seeds.  Also pins
the adoption-safety edge: a CDAG mutated after ``compiled()`` invalidates
its snapshot, and a stored snapshot that no longer matches the graph is
rejected and republished rather than silently adopted.
"""

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    activated,
    attach_compiled,
    cached_bound,
    cached_compiled_payload,
    cached_schedule,
    cached_spill,
    fresh_bound,
    fresh_compiled_payload,
    fresh_schedule,
    fresh_spill,
)

# (builder, params) points spanning every family; seeds only matter for
# the forest builder but are exercised everywhere.
CASES = [
    ("chain", {"length": 12}),
    ("chains", {"num_chains": 3, "length": 5}),
    ("tree", {"num_leaves": 8, "arity": 2}),
    ("bcast", {"num_leaves": 9, "arity": 3}),
    ("diamond", {"width": 4, "depth": 3}),
    ("grid", {"shape": [4, 4], "timesteps": 2}),
    ("butterfly", {"log_n": 3}),
    ("pyramid", {"base": 5}),
    ("outer", {"n": 3}),
    ("dense", {"num_inputs": 3, "num_outputs": 4}),
    ("star_spill", {"ops": 6, "degree": 3}),
    ("forest", {"components": 3, "component_size": 6}),
]


@pytest.fixture
def store(tmp_path):
    with ArtifactStore(tmp_path / "diff.db") as s:
        yield s


def _random_case(rng):
    builder, params = CASES[int(rng.integers(len(CASES)))]
    seed = int(rng.integers(4))
    return builder, params, seed


class TestCompiledByteIdentity:
    @pytest.mark.parametrize("builder,params", CASES)
    def test_cached_equals_fresh(self, store, builder, params):
        cold, hit_cold = cached_compiled_payload(store, builder, params)
        warm, hit_warm = cached_compiled_payload(store, builder, params)
        assert (hit_cold, hit_warm) == (False, True)
        assert cold == warm == fresh_compiled_payload(builder, params)

    def test_randomized_sweep_across_reopen(self, tmp_path):
        rng = np.random.default_rng(7)
        path = tmp_path / "sweep.db"
        expected = {}
        with ArtifactStore(path) as store:
            for _ in range(20):
                builder, params, seed = _random_case(rng)
                payload, _ = cached_compiled_payload(
                    store, builder, params, seed
                )
                assert payload == fresh_compiled_payload(
                    builder, params, seed
                )
                expected[(builder, seed)] = payload
        # a different process/epoch reopening the same file must see
        # bit-identical artifacts and hit on all of them
        with ArtifactStore(path) as store:
            for (builder, seed), payload in expected.items():
                again, hit = cached_compiled_payload(
                    store, builder, dict(CASES)[builder], seed
                )
                assert hit is True and again == payload

    def test_forest_seeds_are_distinct_artifacts(self, store):
        p0, _ = cached_compiled_payload(store, "forest", seed=0)
        p1, _ = cached_compiled_payload(store, "forest", seed=1)
        assert p0 != p1
        assert p0 == fresh_compiled_payload("forest", seed=0)
        assert p1 == fresh_compiled_payload("forest", seed=1)


class TestDerivedArtifacts:
    @pytest.mark.parametrize("kind", ["dfs", "minlive"])
    def test_schedule_matches_fresh(self, store, kind):
        rng = np.random.default_rng(11)
        for _ in range(8):
            builder, params, seed = _random_case(rng)
            ids, _ = cached_schedule(store, builder, params, seed, kind)
            np.testing.assert_array_equal(
                ids, fresh_schedule(builder, params, seed, kind)
            )
            ids2, hit = cached_schedule(store, builder, params, seed, kind)
            assert hit is True
            np.testing.assert_array_equal(ids2, ids)

    def test_bound_matches_fresh(self, store):
        rng = np.random.default_rng(13)
        seen = set()
        for _ in range(8):
            builder, params, seed = _random_case(rng)
            s = int(rng.integers(2, 6))
            cold, hit0 = cached_bound(store, builder, params, seed, s=s)
            warm, hit1 = cached_bound(store, builder, params, seed, s=s)
            assert hit0 is ((builder, seed, s) in seen)
            assert hit1 is True
            seen.add((builder, seed, s))
            assert cold == warm == fresh_bound(builder, params, seed, s=s)

    def test_analytical_and_hong_kung_bounds(self, store):
        a, _ = cached_bound(
            store, "butterfly", {"log_n": 3}, s=2, method="analytical"
        )
        assert a == fresh_bound(
            "butterfly", {"log_n": 3}, s=2, method="analytical"
        )
        hk, _ = cached_bound(
            store, "chain", {"length": 12}, s=2, method="hong_kung",
            u_upper=40.0,
        )
        assert hk == fresh_bound(
            "chain", {"length": 12}, s=2, method="hong_kung", u_upper=40.0
        )

    def test_spill_row_matches_fresh(self, store):
        params = {"workload": "forest", "components": 3,
                  "component_size": 8}
        cold, hit0 = cached_spill(store, params, seed=2)
        warm, hit1 = cached_spill(store, params, seed=2)
        assert (hit0, hit1) == (False, True)
        assert cold == warm == fresh_spill(params, seed=2)


class TestAdoptionSafety:
    def test_mutation_after_compiled_drops_snapshot(self):
        from repro.core.builders import chain_cdag

        cdag = chain_cdag(6)
        c = cdag.compiled()
        cdag.add_vertex("extra")
        cdag.add_edge(("chain", 6), "extra")
        assert cdag.compiled() is not c
        assert cdag.compiled().n == c.n + 1

    def test_mutated_cdag_does_not_reuse_stored_snapshot(self, store):
        """A CDAG that drifted from the stored artifact must reject the
        snapshot, recompile, and republish — never adopt stale arrays."""
        from repro.core.builders import chain_cdag

        with activated(store):
            base = chain_cdag(6)
            assert attach_compiled(base, "mut-chain", {"n": 6}) is False
            # same key, different graph: the stored snapshot must NOT be
            # adopted...
            grown = chain_cdag(6)
            grown.add_vertex("extra")
            grown.add_edge(("chain", 6), "extra")
            assert attach_compiled(grown, "mut-chain", {"n": 6}) is False
            assert grown.compiled().n == 8
            # ...and the store now holds the republished (grown) version,
            # so the original graph rejects it too and republishes back.
            base2 = chain_cdag(6)
            assert attach_compiled(base2, "mut-chain", {"n": 6}) is False
            assert base2.compiled().n == 7

    def test_attach_adopts_on_clean_hit(self, store):
        from repro.core.builders import diamond_cdag

        with activated(store):
            first = diamond_cdag(3, 3)
            assert attach_compiled(first, "dia", {"w": 3, "d": 3}) is False
            second = diamond_cdag(3, 3)
            assert attach_compiled(second, "dia", {"w": 3, "d": 3}) is True
            assert second.compiled().n == first.compiled().n
        # no active store -> no-op
        third = diamond_cdag(3, 3)
        assert attach_compiled(third, "dia", {"w": 3, "d": 3}) is False

    def test_adopted_snapshot_produces_identical_payload(self, store):
        """Serialization of an adopted snapshot is byte-identical to a
        recompiled one (the invariant run_grid(..., store_path=...)
        rides on)."""
        from repro.core.builders import grid_stencil_cdag
        from repro.store.codec import serialize_compiled

        with activated(store):
            a = grid_stencil_cdag((4, 4), 2)
            attach_compiled(a, "g", {"s": [4, 4], "t": 2})
            b = grid_stencil_cdag((4, 4), 2)
            assert attach_compiled(b, "g", {"s": [4, 4], "t": 2}) is True
            assert serialize_compiled(b.compiled()) == serialize_compiled(
                a.compiled()
            )

"""Cross-process single-flight for :meth:`ArtifactStore.get_or_compute`:
one process per key computes while the rest wait-and-poll, crashed
leaders' claims go stale and are taken over, and followers surface the
leader's published bytes."""

import multiprocessing
import os
import threading
import time

from repro.store.db import ArtifactStore

KEY = "f" * 64


# Must be importable by worker processes (fork or spawn).
def _racing_proc(db_path, log_path, queue):
    with ArtifactStore(db_path, claim_poll_s=0.01) as store:
        def compute():
            # O_APPEND makes concurrent one-line writes atomic enough
            with open(log_path, "a") as fh:
                fh.write(f"{os.getpid()}\n")
            time.sleep(0.3)  # long enough that the others must wait
            return b"computed-bytes"

        payload, _hit = store.get_or_compute(KEY, compute, kind="bound")
        queue.put(bytes(payload))


class TestCrossProcessSingleFlight:
    def test_racing_processes_compute_once(self, tmp_path):
        db = str(tmp_path / "store.db")
        log = str(tmp_path / "computes.log")
        ArtifactStore(db).close()  # create the schema up front
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_racing_proc, args=(db, log, queue))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(10.0)
        assert results == [b"computed-bytes"] * 4
        with open(log) as fh:
            computes = fh.read().splitlines()
        assert len(computes) == 1  # exactly one process computed

    def test_follower_adopts_foreign_leaders_publish(self, tmp_path):
        db = tmp_path / "store.db"
        leader = ArtifactStore(db)
        follower = ArtifactStore(db, claim_poll_s=0.01)
        assert leader._try_claim(KEY)  # a live foreign claim

        def publish():
            time.sleep(0.15)
            leader.put(KEY, b"from-leader", kind="bound")
            leader._release_claim(KEY)

        thread = threading.Thread(target=publish)
        thread.start()
        calls = []
        payload, hit = follower.get_or_compute(
            KEY, lambda: calls.append(1) or b"x", kind="bound"
        )
        thread.join(5.0)
        assert payload == b"from-leader" and hit is True
        assert calls == []  # the follower never computed
        assert follower.counters["cross_flights"] == 1
        leader.close()
        follower.close()

    def test_stale_claim_of_crashed_leader_is_taken_over(self, tmp_path):
        db = tmp_path / "store.db"
        crashed = ArtifactStore(db)
        assert crashed._try_claim(KEY)
        crashed.close()  # "dies" without releasing the claim
        survivor = ArtifactStore(db, claim_ttl_s=0.05, claim_poll_s=0.01)
        time.sleep(0.1)  # let the claim go stale
        payload, hit = survivor.get_or_compute(
            KEY, lambda: b"recovered", kind="bound"
        )
        assert payload == b"recovered" and hit is False
        assert survivor.counters["claim_takeovers"] == 1
        # the takeover also released the claim when done
        assert not survivor._claim_blocks(KEY)
        survivor.close()

    def test_claim_knob_validation(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="claim"):
            ArtifactStore(tmp_path / "s.db", claim_ttl_s=0.0)
        with pytest.raises(ValueError, match="claim"):
            ArtifactStore(tmp_path / "s.db", claim_poll_s=-1.0)


class TestClockSkewTolerance:
    """Claim timestamps are wall clock (they compare across hosts), so
    a backwards clock step can leave a claim future-dated.  A claim
    future-dated beyond the TTL must be treated as abandoned — never as
    immortal."""

    def _plant_claim(self, store, acquired_s):
        conn = store._conn()
        conn.execute(
            "INSERT INTO claims (key, owner, acquired_s) VALUES (?, ?, ?)",
            (KEY, "time-traveler", acquired_s),
        )
        conn.commit()

    def test_future_dated_claim_is_taken_over_and_counted(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", claim_ttl_s=1.0,
                              claim_poll_s=0.01)
        self._plant_claim(store, time.time() + 3600.0)  # far future
        payload, hit = store.get_or_compute(
            KEY, lambda: b"recovered", kind="bound"
        )
        assert payload == b"recovered" and hit is False
        assert store.counters["claim_takeovers"] == 1
        assert store.counters["claim_skew_takeovers"] == 1
        store.close()

    def test_slightly_future_claim_within_ttl_still_blocks(self, tmp_path):
        """Skew tolerance is the TTL itself: a claim a fraction of the
        TTL in the future (small skew between healthy hosts) is live,
        not a takeover target."""
        store = ArtifactStore(tmp_path / "s.db", claim_ttl_s=10.0)
        self._plant_claim(store, time.time() + 2.0)
        assert store._claim_blocks(KEY)
        assert not store._try_claim(KEY)
        assert store.counters["claim_skew_takeovers"] == 0
        store.close()

    def test_claim_state_classification(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.db", claim_ttl_s=10.0)
        now = 1000.0
        assert store._claim_state(now, now) == "live"
        assert store._claim_state(now - 5.0, now) == "live"
        assert store._claim_state(now - 10.0, now) == "stale"
        assert store._claim_state(now + 5.0, now) == "live"  # small skew
        assert store._claim_state(now + 10.1, now) == "skewed"
        store.close()

    def test_takeover_emits_event_with_state(self, tmp_path):
        from repro.obs import EventRing, MetricsRegistry

        store = ArtifactStore(tmp_path / "s.db", claim_ttl_s=1.0,
                              claim_poll_s=0.01)
        store.bind_obs(MetricsRegistry(), EventRing())
        self._plant_claim(store, time.time() + 3600.0)
        store.get_or_compute(KEY, lambda: b"x", kind="bound")
        event = store.events.last("store.claim_takeover")
        assert event["state"] == "skewed"
        assert event["previous_owner"] == "time-traveler"
        snap = store.metrics.snapshot()["counters"]
        assert snap["store.claim_skew_takeovers"] == 1
        store.close()

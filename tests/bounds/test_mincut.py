"""Unit tests for the min-cut / wavefront lower bounds (Lemma 2)."""

import pytest

from repro.algorithms import dot_then_axpy_cdag
from repro.bounds import (
    automated_wavefront_bound,
    best_wavefront_lower_bound,
    heuristic_wavefront_candidates,
    wavefront_lower_bound,
)
from repro.core import chain_cdag, diamond_cdag, reduction_tree_cdag
from repro.pebbling import optimal_rbw_io, spill_game_rbw


class TestLemma2PerVertex:
    def test_formula(self):
        c = dot_then_axpy_cdag(4)
        b = wavefront_lower_bound(c, ("acc", 3), s=3)
        assert b.wavefront == 9
        assert b.value == 2 * (9 - 3)
        assert b.vertex == ("acc", 3)

    def test_floor_at_zero(self):
        c = chain_cdag(5)
        b = wavefront_lower_bound(c, ("chain", 2), s=10)
        assert b.value == 0

    def test_negative_s_rejected(self):
        with pytest.raises(ValueError):
            wavefront_lower_bound(chain_cdag(2), ("chain", 1), s=-1)


class TestBestWavefront:
    def test_best_over_all_vertices(self):
        c = dot_then_axpy_cdag(3)
        b = best_wavefront_lower_bound(c, s=2)
        assert b.wavefront == 7
        assert b.value == 2 * (7 - 2)

    def test_candidate_restriction(self):
        c = dot_then_axpy_cdag(3)
        b = best_wavefront_lower_bound(c, s=2, candidates=[("prod", 0)])
        assert b.wavefront <= 7


class TestHeuristicCandidates:
    def test_candidates_are_vertices(self):
        c = dot_then_axpy_cdag(4)
        cands = heuristic_wavefront_candidates(c)
        assert all(v in c for v in cands)
        assert len(cands) >= 1

    def test_heuristic_includes_reduction_root(self):
        c = dot_then_axpy_cdag(4)
        cands = heuristic_wavefront_candidates(c, max_candidates=8)
        assert ("acc", 3) in cands

    def test_empty_cdag(self):
        from repro.core import CDAG

        assert heuristic_wavefront_candidates(CDAG()) == []

    def test_automated_bound_matches_exhaustive_on_small_cdags(self):
        for cdag in (dot_then_axpy_cdag(3), reduction_tree_cdag(8), diamond_cdag(4, 3)):
            auto = automated_wavefront_bound(cdag, s=2)
            full = best_wavefront_lower_bound(cdag, s=2)
            assert auto.wavefront == full.wavefront


class TestSoundness:
    """Lemma 2 bounds must never exceed the true optimum or any valid game."""

    @pytest.mark.parametrize("s", [4, 6])
    def test_bound_below_optimal(self, s):
        c = dot_then_axpy_cdag(2)
        lb = automated_wavefront_bound(c, s=s).value
        opt = optimal_rbw_io(c, num_red=max(s, 4)).io
        assert lb <= opt

    @pytest.mark.parametrize(
        "cdag_factory",
        [
            lambda: dot_then_axpy_cdag(4),
            lambda: reduction_tree_cdag(16),
            lambda: diamond_cdag(6, 4),
        ],
    )
    def test_bound_below_spill_game(self, cdag_factory):
        c = cdag_factory()
        s = 5
        lb = automated_wavefront_bound(c, s=s).value
        ub = spill_game_rbw(c, num_red=max(s, 4)).io_count
        assert lb <= ub

    def test_wavefront_grows_linearly_for_dot_axpy_family(self):
        # the Theorem 8 structure in miniature: wavefront = 2n + 1
        values = [automated_wavefront_bound(dot_then_axpy_cdag(n), s=0).wavefront
                  for n in (2, 3, 4, 5)]
        assert values == [5, 7, 9, 11]

"""Unit tests for the parallel vertical/horizontal bounds (Theorems 5-7)."""

import pytest

from repro.bounds import (
    horizontal_bound_from_U,
    horizontal_bound_theorem7,
    vertical_bound_from_U,
    vertical_bound_from_sequential,
    vertical_bound_theorem5,
    vertical_bound_theorem6,
)
from repro.pebbling import MemoryHierarchy


@pytest.fixture
def cluster():
    return MemoryHierarchy.cluster(
        nodes=4, cores_per_node=4, registers_per_core=32, cache_size=1024
    )


class TestRawFormulas:
    def test_theorem5_divides_sequential_bound(self):
        assert vertical_bound_from_sequential(1000.0, 4) == 250.0

    def test_theorem5_guards(self):
        with pytest.raises(ValueError):
            vertical_bound_from_sequential(10.0, 0)
        with pytest.raises(ValueError):
            vertical_bound_from_sequential(-1.0, 2)

    def test_theorem6_formula(self):
        # [|V| / (U * N_l) - N_{l-1}/N_l] * S_{l-1}
        val = vertical_bound_from_U(
            num_operations=1_000_000, u_2s=100, n_l=4, n_l_minus_1=4, s_l_minus_1=50
        )
        assert val == pytest.approx((1_000_000 / (100 * 4) - 1) * 50)

    def test_theorem6_floor_at_zero(self):
        assert vertical_bound_from_U(10, 100, 4, 4, 50) == 0.0

    def test_theorem6_guards(self):
        with pytest.raises(ValueError):
            vertical_bound_from_U(10, 0, 4, 4, 50)

    def test_theorem7_formula(self):
        val = horizontal_bound_from_U(
            num_operations=1_000_000, u_2s_top=1000, processors_per_node=8, s_top=500
        )
        assert val == pytest.approx((1_000_000 / (1000 * 8) - 1) * 500)

    def test_theorem7_floor_and_guards(self):
        assert horizontal_bound_from_U(10, 1000, 8, 500) == 0.0
        with pytest.raises(ValueError):
            horizontal_bound_from_U(10, 1000, 0, 500)


class TestHierarchyWrappers:
    def test_theorem5_with_numeric_bound(self, cluster):
        b = vertical_bound_theorem5(cluster, level=2, sequential_io_bound=4000.0)
        assert b.value == 1000.0
        assert b.kind == "vertical" and b.level == 2

    def test_theorem5_with_callable_bound(self, cluster):
        # callable receives the aggregate child capacity (16 procs x 32 regs)
        seen = {}

        def io1(capacity):
            seen["cap"] = capacity
            return 8000.0

        b = vertical_bound_theorem5(cluster, level=2, sequential_io_bound=io1)
        assert seen["cap"] == 16 * 32
        assert b.value == 2000.0

    def test_theorem5_level_validation(self, cluster):
        with pytest.raises(ValueError):
            vertical_bound_theorem5(cluster, level=1, sequential_io_bound=10)

    def test_theorem5_callable_needs_bounded_children(self):
        # a hierarchy whose middle level is unbounded: the callable form
        # cannot be evaluated for the level above it
        from repro.pebbling import LevelSpec

        h = MemoryHierarchy(
            [LevelSpec(4, 8), LevelSpec(4, None), LevelSpec(1, None)]
        )
        with pytest.raises(ValueError):
            vertical_bound_theorem5(h, level=3, sequential_io_bound=lambda c: c)

    def test_theorem6_with_callable_u(self, cluster):
        b = vertical_bound_theorem6(
            cluster, level=2, num_operations=1e6, u_2s=lambda two_s: 4 * two_s
        )
        s1 = 32
        expected = max(0.0, (1e6 / (4 * 2 * s1 * 4) - 16 / 4) * s1)
        assert b.value == pytest.approx(expected)

    def test_theorem6_requires_bounded_child(self, cluster):
        from repro.pebbling import LevelSpec

        unbounded_mid = MemoryHierarchy(
            [LevelSpec(4, 8), LevelSpec(4, None), LevelSpec(1, None)]
        )
        with pytest.raises(ValueError):
            vertical_bound_theorem6(
                unbounded_mid, level=3, num_operations=1e6, u_2s=10
            )
        # in the regular cluster, level 3's children (the caches) are
        # bounded, so the level-3 bound evaluates fine
        b = vertical_bound_theorem6(cluster, level=3, num_operations=1e6, u_2s=10)
        assert b.value >= 0

    def test_theorem7_needs_top_capacity(self, cluster):
        with pytest.raises(ValueError):
            horizontal_bound_theorem7(cluster, num_operations=1e6, u_2s_top=100)
        b = horizontal_bound_theorem7(
            cluster, num_operations=1e6, u_2s_top=100, s_top=1e4
        )
        assert b.kind == "horizontal"
        assert b.value >= 0

    def test_theorem7_with_bounded_top_level(self):
        h = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=8,
            cache_size=64, memory_size=4096,
        )
        b = horizontal_bound_theorem7(h, num_operations=1e6, u_2s_top=500)
        expected = (1e6 / (500 * 2) - 1) * 4096
        assert b.value == pytest.approx(expected)


class TestMonotonicity:
    """Sanity properties the bounds must satisfy."""

    def test_theorem6_decreases_with_more_nodes(self):
        small = vertical_bound_from_U(1e6, 100, 2, 2, 50)
        large = vertical_bound_from_U(1e6, 100, 8, 8, 50)
        assert large <= small

    def test_theorem7_decreases_with_larger_memory(self):
        lo = horizontal_bound_from_U(1e6, 100, 4, 100)
        hi = horizontal_bound_from_U(1e6, 1000, 4, 1000)
        assert hi <= lo

    def test_theorem5_scales_linearly_with_sequential_bound(self):
        double = vertical_bound_from_sequential(200, 4)
        assert double == 2 * vertical_bound_from_sequential(100, 4)

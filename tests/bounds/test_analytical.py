"""Unit tests for the closed-form analytical bounds."""

import math

import pytest

from repro.bounds import (
    block_side,
    cg_vertical_lower_bound,
    cg_wavefront_sizes,
    composite_example_io_upper_bound,
    composite_example_naive_sum,
    fft_io_lower_bound,
    ghost_cell_volume,
    gmres_vertical_lower_bound,
    gmres_wavefront_sizes,
    jacobi_io_lower_bound,
    jacobi_largest_partition,
    matmul_io_lower_bound,
    outer_product_io,
    stencil_horizontal_upper_bound,
)


class TestSection3Formulas:
    def test_matmul_bound_formula(self):
        assert matmul_io_lower_bound(10, 8) == pytest.approx(1000 / (2 * 4))

    def test_matmul_bound_decreases_with_s(self):
        assert matmul_io_lower_bound(64, 64) > matmul_io_lower_bound(64, 256)

    def test_matmul_guards(self):
        with pytest.raises(ValueError):
            matmul_io_lower_bound(0, 4)

    def test_outer_product_exact(self):
        assert outer_product_io(5) == 10 + 25

    def test_composite_upper_bound(self):
        assert composite_example_io_upper_bound(100) == 401

    def test_composite_naive_sum_dominates_upper_bound(self):
        for n in (8, 32, 128):
            naive = composite_example_naive_sum(n, 64)
            assert naive > composite_example_io_upper_bound(n)

    def test_composite_io_below_matmul_step_bound_for_large_n(self):
        # the punchline of Section 3: for sizeable N the whole composite
        # computation moves fewer words than the matmul step's own bound
        n, s = 256, 256
        assert composite_example_io_upper_bound(n) < matmul_io_lower_bound(n, s)


class TestTheorem10:
    def test_jacobi_2d_matches_paper_form(self):
        n, t, s = 100, 50, 128
        expected = n * n * t / (4 * math.sqrt(2 * s))
        assert jacobi_io_lower_bound(n, t, s, dimensions=2) == pytest.approx(expected)

    def test_jacobi_parallel_divides_by_p(self):
        seq = jacobi_io_lower_bound(64, 10, 64, 2, processors=1)
        par = jacobi_io_lower_bound(64, 10, 64, 2, processors=8)
        assert par == pytest.approx(seq / 8)

    def test_jacobi_dimension_dependence(self):
        # higher dimension -> weaker cache exponent -> larger bound per point
        lb2 = jacobi_io_lower_bound(10, 1, 512, 2) / 10 ** 2
        lb3 = jacobi_io_lower_bound(10, 1, 512, 3) / 10 ** 3
        assert lb3 > lb2

    def test_jacobi_largest_partition_closed_form(self):
        assert jacobi_largest_partition(8, 2) == pytest.approx(4 * 8 * 4)

    def test_jacobi_guards(self):
        with pytest.raises(ValueError):
            jacobi_io_lower_bound(0, 1, 1, 1)
        with pytest.raises(ValueError):
            jacobi_largest_partition(0, 2)


class TestFFT:
    def test_fft_bound_formula(self):
        assert fft_io_lower_bound(1024, 32) == pytest.approx(
            1024 * 10 / (2 * math.log2(64))
        )

    def test_fft_guards(self):
        with pytest.raises(ValueError):
            fft_io_lower_bound(1, 4)


class TestTheorems8And9:
    def test_cg_wavefront_sizes(self):
        assert cg_wavefront_sizes(10, 3) == (2000, 1000)

    def test_cg_asymptotic_bound(self):
        assert cg_vertical_lower_bound(100, 5, 3, processors=1) == pytest.approx(
            6 * 100 ** 3 * 5
        )

    def test_cg_exact_form_below_asymptotic(self):
        exact = cg_vertical_lower_bound(10, 2, 3, s=100, asymptotic=False)
        asym = cg_vertical_lower_bound(10, 2, 3, asymptotic=True)
        assert exact <= asym

    def test_cg_parallel_scaling(self):
        assert cg_vertical_lower_bound(50, 4, 3, processors=10) == pytest.approx(
            cg_vertical_lower_bound(50, 4, 3, processors=1) / 10
        )

    def test_gmres_matches_cg_shape(self):
        assert gmres_wavefront_sizes(7, 2) == (98, 49)
        assert gmres_vertical_lower_bound(100, 5, 3) == pytest.approx(
            cg_vertical_lower_bound(100, 5, 3)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cg_vertical_lower_bound(0, 1)
        with pytest.raises(ValueError):
            gmres_vertical_lower_bound(10, 0)


class TestGhostCells:
    def test_block_side(self):
        assert block_side(1000, 8, 3) == pytest.approx(500)

    def test_ghost_volume_2d(self):
        # (B+2)^2 - B^2 = 4B + 4
        assert ghost_cell_volume(10, 2) == pytest.approx(44)

    def test_ghost_volume_3d(self):
        b = 10.0
        assert ghost_cell_volume(b, 3) == pytest.approx((b + 2) ** 3 - b ** 3)

    def test_stencil_horizontal_upper_bound_scales_with_time(self):
        one = stencil_horizontal_upper_bound(100, 4, 2, 1)
        ten = stencil_horizontal_upper_bound(100, 4, 2, 10)
        assert ten == pytest.approx(10 * one)

    def test_guards(self):
        with pytest.raises(ValueError):
            block_side(10, 0, 2)
        with pytest.raises(ValueError):
            ghost_cell_volume(0, 2)
        with pytest.raises(ValueError):
            stencil_horizontal_upper_bound(10, 2, 2, 0)

    def test_paper_cg_horizontal_intensity(self):
        # Section 5.2.3: UB_horiz * N_nodes / |V| ~ 6 N^{1/3} / (20 n)
        n, nodes, t = 1000, 2048, 1
        ub = stencil_horizontal_upper_bound(n, nodes, 3, t)
        intensity = ub * nodes / (20 * n ** 3 * t)
        paper = 6 * nodes ** (1 / 3) / (20 * n)
        assert intensity == pytest.approx(paper, rel=0.2)

"""Unit tests for the Hong-Kung 2S-partition lower bounds."""

import pytest

from repro.bounds import (
    exhaustive_min_partition_count,
    lower_bound_from_largest_subset,
    lower_bound_from_partition_count,
    verify_theorem1_relation,
)
from repro.core import (
    chain_cdag,
    greedy_rbw_partition,
    outer_product_cdag,
    reduction_tree_cdag,
)
from repro.pebbling import spill_game_rbw


class TestLemma1Arithmetic:
    def test_basic_formula(self):
        b = lower_bound_from_partition_count(s=4, h_min=10)
        assert b.value == 4 * 9
        assert b.s == 4 and b.h_lower == 10

    def test_zero_when_h_is_one(self):
        assert lower_bound_from_partition_count(3, 1).value == 0

    def test_never_negative(self):
        assert lower_bound_from_partition_count(3, 0.5).value == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lower_bound_from_partition_count(0, 2)
        with pytest.raises(ValueError):
            lower_bound_from_partition_count(2, -1)


class TestCorollary1Arithmetic:
    def test_basic_formula(self):
        b = lower_bound_from_largest_subset(s=4, num_operations=100, u_upper=10)
        assert b.value == 4 * (100 / 10 - 1)
        assert b.u_upper == 10

    def test_large_u_gives_zero(self):
        assert lower_bound_from_largest_subset(4, 10, 1000).value == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lower_bound_from_largest_subset(4, 10, 0)
        with pytest.raises(ValueError):
            lower_bound_from_largest_subset(4, -1, 10)
        with pytest.raises(ValueError):
            lower_bound_from_largest_subset(0, 10, 10)


class TestTheorem1Relation:
    @pytest.mark.parametrize("s", [4, 5, 8])
    def test_partition_built_from_game_is_valid_and_bounds_io(self, s):
        cdag = reduction_tree_cdag(16)
        record = spill_game_rbw(cdag, s)
        assert verify_theorem1_relation(cdag, record, s)

    def test_theorem1_on_outer_product(self):
        cdag = outer_product_cdag(4)
        record = spill_game_rbw(cdag, 6)
        assert verify_theorem1_relation(cdag, record, 6)

    def test_theorem1_partition_construction_properties(self):
        from repro.core import check_rbw_partition, partition_from_game

        cdag = reduction_tree_cdag(8)
        s = 4
        record = spill_game_rbw(cdag, s)
        part = partition_from_game(cdag, record.moves, s)
        assert check_rbw_partition(cdag, part) == []
        assert part.all_vertices() == set(cdag.operations)
        assert record.io_count >= s * (part.h - 1)


class TestExhaustiveHCount:
    def test_chain_single_subset(self):
        # a chain's operations fit in one subset for S >= 1
        c = chain_cdag(4)
        assert exhaustive_min_partition_count(c, s=2) == 1

    def test_outer_product_needs_multiple_subsets(self):
        c = outer_product_cdag(3)  # 9 products, 6 inputs
        h = exhaustive_min_partition_count(c, s=2)  # 2S = 4 < 6 inputs
        assert h >= 2

    def test_h_decreases_with_s(self):
        c = outer_product_cdag(3)
        h_small = exhaustive_min_partition_count(c, s=2)
        h_large = exhaustive_min_partition_count(c, s=4)
        assert h_large <= h_small

    def test_size_guard(self):
        with pytest.raises(ValueError):
            exhaustive_min_partition_count(reduction_tree_cdag(64), s=4)

    def test_lemma1_with_exhaustive_h_is_sound(self):
        # lower bound from the exact H(2S) must not exceed an actual game's IO
        c = outer_product_cdag(3)
        s = 3
        h = exhaustive_min_partition_count(c, s=s)
        lb = lower_bound_from_partition_count(s, h).value
        ub = spill_game_rbw(c, num_red=s).io_count
        assert lb <= ub


class TestGreedyPartitionInteroperability:
    def test_corollary1_with_greedy_u_is_consistent(self):
        cdag = reduction_tree_cdag(16)
        s = 4
        part = greedy_rbw_partition(cdag, s)
        # the greedy partition's largest subset is a *feasibility witness*,
        # i.e. a lower bound on U(2S); using it in Corollary 1 gives an
        # over-estimate of the bound, which must still not exceed the I/O
        # of the game built from the same schedule plus slack 2S*h.
        u_witness = part.largest_subset_size()
        bound = lower_bound_from_largest_subset(
            s, len(cdag.operations), u_witness
        )
        record = spill_game_rbw(cdag, s)
        assert bound.value <= record.io_count + 2 * s * part.h

"""Unit tests for the composition rules (Theorems 2-4, Corollary 2)."""

import pytest

from repro.bounds import (
    DecompositionBound,
    decompose_disjoint,
    io_deletion_bound,
    nondisjoint_iteration_bound,
    sum_of_bounds,
    tagging_bound,
    untagging_bound,
)
from repro.core import CDAGError, chain_cdag, diamond_cdag, independent_chains_cdag
from repro.pebbling import optimal_rbw_io


class TestDecomposition:
    def test_induced_subgraphs_partition_edges(self):
        c = diamond_cdag(4, 4)
        rows = [[v for v in c.vertices if v[1] == t] for t in range(4)]
        subs = decompose_disjoint(c, rows)
        assert len(subs) == 4
        assert sum(s.num_vertices() for s in subs) == c.num_vertices()
        # only edges within a row survive (the diamond has none)
        assert all(s.num_edges() == 0 for s in subs)

    def test_overlapping_parts_rejected(self):
        c = chain_cdag(3)
        with pytest.raises(CDAGError):
            decompose_disjoint(c, [[("chain", 0)], [("chain", 0), ("chain", 1)]])

    def test_partial_cover_allowed(self):
        c = chain_cdag(3)
        subs = decompose_disjoint(c, [[("chain", 0), ("chain", 1)]])
        assert len(subs) == 1

    def test_sum_of_bounds(self):
        total = sum_of_bounds([("a", 3.0), ("b", 4.5), ("a", 1.0)])
        assert total.total == 8.5
        assert total.terms["a"] == 4.0

    def test_sum_of_bounds_rejects_negative(self):
        with pytest.raises(ValueError):
            sum_of_bounds([("x", -1.0)])

    def test_theorem2_soundness_on_independent_chains(self):
        # The I/O of k independent chains is the sum of the chains' I/O;
        # the decomposition bound (sum of per-chain optima) must not exceed
        # the optimum of the whole CDAG.
        c = independent_chains_cdag(3, 3)
        per_chain = []
        for k in range(3):
            verts = [v for v in c.vertices if v[1] == k]
            sub = c.induced_subgraph(verts)
            per_chain.append((f"chain{k}", optimal_rbw_io(sub, 2).io))
        total = sum_of_bounds(per_chain).total
        whole = optimal_rbw_io(c, 2).io
        assert total <= whole
        assert whole == 6  # 3 chains x (1 load + 1 store)


class TestCorollary2AndTheorem3:
    def test_io_deletion_arithmetic(self):
        assert io_deletion_bound(10.0, 3, 2) == 15.0

    def test_io_deletion_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            io_deletion_bound(1.0, -1, 0)

    def test_untagging_arithmetic(self):
        assert untagging_bound(20.0, 4, 6) == 10.0
        assert untagging_bound(5.0, 4, 6) == 0.0

    def test_tagging_is_identity(self):
        assert tagging_bound(7.5) == 7.5

    def test_theorem3_soundness_on_chain(self):
        # Tag the middle of a chain as an extra output; the tagged CDAG
        # needs one more store.  untagging_bound recovers a valid bound for
        # the original.
        c = chain_cdag(4)
        tagged = c.retagged(add_outputs=[("chain", 2)])
        io_tagged = optimal_rbw_io(tagged, 2).io
        io_plain = optimal_rbw_io(c, 2).io
        assert io_tagged == io_plain + 1
        assert untagging_bound(io_tagged, 0, 1) <= io_plain
        # untagging direction: a bound for the plain CDAG bounds the tagged one
        assert tagging_bound(io_plain) <= io_tagged

    def test_corollary2_soundness_on_chain(self):
        # C' = chain with its input and output vertices; C = the middle.
        c_full = chain_cdag(3)
        io_core = 0  # the middle of a chain alone needs no I/O (no tags)
        assert io_deletion_bound(io_core, 1, 1) <= optimal_rbw_io(c_full, 2).io


class TestTheorem4:
    def test_nondisjoint_iteration_arithmetic(self):
        assert nondisjoint_iteration_bound(12.5, 4) == 50.0
        assert nondisjoint_iteration_bound(12.5, 0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            nondisjoint_iteration_bound(-1.0, 3)
        with pytest.raises(ValueError):
            nondisjoint_iteration_bound(1.0, -3)

    def test_decomposition_bound_accumulator(self):
        b = DecompositionBound(total=0.0)
        b.add("iter0", 5)
        b.add("iter1", 7)
        assert b.total == 12
        assert set(b.terms) == {"iter0", "iter1"}

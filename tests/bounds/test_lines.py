"""Unit tests for the Hong-Kung lines (vertex-disjoint paths) technique."""

import pytest

from repro.bounds.lines import (
    find_lines,
    jacobi_lines_bound,
    lines_lower_bound,
    stencil_f_inverse,
)
from repro.bounds import jacobi_io_lower_bound
from repro.core import (
    chain_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    reduction_tree_cdag,
)
from repro.pebbling import spill_game_rbw


class TestFindLines:
    def test_chain_has_one_line_covering_everything(self):
        c = chain_cdag(5)
        lines = find_lines(c)
        assert len(lines) == 1
        assert len(lines[0]) == c.num_vertices()

    def test_independent_chains_all_found(self):
        c = independent_chains_cdag(4, 3)
        lines = find_lines(c)
        assert len(lines) == 4
        # disjointness
        seen = set()
        for path in lines:
            assert not (set(path) & seen)
            seen |= set(path)

    def test_lines_are_paths_from_inputs_to_outputs(self):
        c = diamond_cdag(5, 4)
        lines = find_lines(c)
        assert len(lines) == 5  # one per column
        for path in lines:
            assert c.is_input(path[0])
            assert c.is_output(path[-1])
            for u, v in zip(path, path[1:]):
                assert c.has_edge(u, v)

    def test_lines_vertex_disjoint_on_stencil(self):
        c = grid_stencil_cdag((4, 4), 2)
        lines = find_lines(c)
        assert len(lines) == 16
        seen = set()
        for path in lines:
            assert not (set(path) & seen)
            seen |= set(path)

    def test_reduction_tree_limited_by_single_output(self):
        c = reduction_tree_cdag(8)
        lines = find_lines(c)
        assert len(lines) == 1

    def test_max_lines_cap(self):
        c = independent_chains_cdag(4, 2)
        assert len(find_lines(c, max_lines=2)) <= 2

    def test_empty_io_sets(self):
        from repro.core import CDAG

        c = CDAG(edges=[("a", "b")])
        assert find_lines(c) == []


class TestFormula:
    def test_lines_lower_bound_formula(self):
        a = lines_lower_bound(total_line_vertices=1000, f_inverse_2s=9.0)
        assert a.value == pytest.approx(1000 / 20)

    def test_guards(self):
        with pytest.raises(ValueError):
            lines_lower_bound(-1, 1.0)
        with pytest.raises(ValueError):
            lines_lower_bound(1, -1.0)
        with pytest.raises(ValueError):
            stencil_f_inverse(0, 2)

    def test_stencil_f_inverse_2d(self):
        # the proof of Theorem 10 quotes F^{-1}(2S) = 2 sqrt(2S) - 1
        assert stencil_f_inverse(128, 2) == pytest.approx(2 * 128 ** 0.5 - 1)


class TestJacobiLinesBound:
    def test_consistent_with_theorem10_closed_form(self):
        n, t, s, d = 6, 3, 8, 2
        cdag = grid_stencil_cdag((n, n), t)
        analysis = jacobi_lines_bound(cdag, s=s, dimensions=d)
        closed = jacobi_io_lower_bound(n, t, s, d)
        # both are Theta(n^d T / (2S)^{1/d}); they agree within a small
        # constant factor on concrete instances
        assert analysis.value == pytest.approx(closed, rel=1.0)
        assert analysis.num_lines == n * n
        assert analysis.total_line_vertices == n * n * (t + 1)

    def test_bound_below_actual_game(self):
        n, t, s = 6, 3, 8
        cdag = grid_stencil_cdag((n, n), t)
        lb = jacobi_lines_bound(cdag, s=s, dimensions=2).value
        ub = spill_game_rbw(cdag, num_red=max(s, 6)).io_count
        assert lb <= ub

    def test_parallel_division(self):
        cdag = grid_stencil_cdag((4, 4), 2)
        seq = jacobi_lines_bound(cdag, s=4, dimensions=2, processors=1).value
        par = jacobi_lines_bound(cdag, s=4, dimensions=2, processors=4).value
        assert par == pytest.approx(seq / 4)

    def test_guards(self):
        cdag = grid_stencil_cdag((3,), 1)
        with pytest.raises(ValueError):
            jacobi_lines_bound(cdag, s=0, dimensions=1)

"""Unit tests for block partitioning and ghost-shell geometry."""

import pytest

from repro.bounds import ghost_cell_volume
from repro.distsim import BlockPartition, node_grid


class TestNodeGrid:
    def test_perfect_cube(self):
        assert node_grid(8, 3) == (2, 2, 2)

    def test_perfect_square(self):
        assert node_grid(16, 2) == (4, 4)

    def test_non_square_factorisation(self):
        grid = node_grid(12, 2)
        assert grid[0] * grid[1] == 12

    def test_one_dimension(self):
        assert node_grid(6, 1) == (6,)

    def test_single_node(self):
        assert node_grid(1, 3) == (1, 1, 1)

    def test_prime_node_count(self):
        grid = node_grid(7, 2)
        assert grid[0] * grid[1] == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            node_grid(0, 2)


class TestBlockPartition:
    def test_blocks_cover_grid_exactly(self):
        part = BlockPartition((10, 9), (2, 3))
        seen = set()
        for node in part.node_ids():
            pts = set(part.block_points(node))
            assert not (pts & seen)
            seen |= pts
        assert len(seen) == 90

    def test_block_sizes_balanced(self):
        part = BlockPartition((10, 10), (3, 3))
        sizes = [part.block_size(n) for n in part.node_ids()]
        assert max(sizes) - min(sizes) <= 7  # (4x4) vs (3x3)

    def test_owner_consistent_with_blocks(self):
        part = BlockPartition((8, 8), (2, 2))
        for node in part.node_ids():
            for p in part.block_points(node):
                assert part.owner(p) == node

    def test_node_index_bijective(self):
        part = BlockPartition((6, 6, 6), (2, 1, 3))
        ranks = {part.node_index(n) for n in part.node_ids()}
        assert ranks == set(range(part.num_nodes))

    def test_ghost_points_adjacent_and_foreign(self):
        part = BlockPartition((8, 8), (2, 2))
        node = (0, 0)
        block = set(part.block_points(node))
        ghosts = part.ghost_points(node)
        assert ghosts
        for g in ghosts:
            assert g not in block
            assert all(0 <= g[k] < 8 for k in range(2))

    def test_interior_node_ghost_volume_matches_formula(self):
        # a 12x12 grid over 3x3 nodes: the centre node owns a 4x4 block and
        # its ghost shell has (B+2)^2 - B^2 = 20 points
        part = BlockPartition((12, 12), (3, 3))
        assert part.ghost_volume((1, 1)) == int(ghost_cell_volume(4, 2))

    def test_corner_node_ghost_volume_smaller(self):
        part = BlockPartition((12, 12), (3, 3))
        assert part.ghost_volume((0, 0)) < part.ghost_volume((1, 1))

    def test_max_ghost_volume(self):
        part = BlockPartition((12, 12), (3, 3))
        assert part.max_ghost_volume() == part.ghost_volume((1, 1))

    def test_ghost_radius_two(self):
        part = BlockPartition((12, 12), (3, 3))
        assert part.ghost_volume((1, 1), radius=2) > part.ghost_volume((1, 1))

    def test_single_node_has_no_ghosts(self):
        part = BlockPartition((5, 5), (1, 1))
        assert part.ghost_volume((0, 0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockPartition((4, 4), (2,))
        with pytest.raises(ValueError):
            BlockPartition((2, 2), (3, 1))
        with pytest.raises(ValueError):
            BlockPartition((0, 4), (1, 1))

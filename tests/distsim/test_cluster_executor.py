"""Unit tests for the simulated cluster and the CDAG-level distributed executor."""

import pytest

from repro.bounds import (
    cg_vertical_lower_bound,
    jacobi_io_lower_bound,
    stencil_horizontal_upper_bound,
)
from repro.core import chain_cdag, diamond_cdag, grid_stencil_cdag
from repro.distsim import DistributedExecutor, SimulatedCluster


class TestSimulatedClusterStencil:
    def test_report_shape(self):
        cluster = SimulatedCluster(num_nodes=4, cache_words=32, dimensions=2)
        rep = cluster.run_stencil((12, 12), timesteps=3)
        assert set(rep.horizontal_per_node) == set(range(4))
        assert rep.total_flops > 0

    def test_vertical_traffic_dominates_theorem10(self):
        n, t, s, nodes = 16, 4, 32, 4
        cluster = SimulatedCluster(nodes, s, 2)
        rep = cluster.run_stencil((n, n), t)
        lb = jacobi_io_lower_bound(n, t, s, 2, processors=nodes)
        assert rep.max_vertical >= lb

    def test_horizontal_traffic_bounded_by_ghost_formula(self):
        n, t, nodes = 16, 5, 4
        cluster = SimulatedCluster(nodes, 64, 2)
        rep = cluster.run_stencil((n, n), t)
        ub = stencil_horizontal_upper_bound(n, nodes, 2, t)
        assert rep.max_horizontal <= ub

    def test_belady_never_more_vertical_than_lru(self):
        args = ((16, 16), 3)
        lru = SimulatedCluster(4, 48, 2, policy="lru").run_stencil(*args)
        opt = SimulatedCluster(4, 48, 2, policy="belady").run_stencil(*args)
        assert opt.max_vertical <= lru.max_vertical

    def test_bigger_cache_reduces_vertical_traffic(self):
        small = SimulatedCluster(4, 16, 2).run_stencil((16, 16), 3)
        large = SimulatedCluster(4, 256, 2).run_stencil((16, 16), 3)
        assert large.max_vertical <= small.max_vertical

    def test_intensities_positive(self):
        rep = SimulatedCluster(4, 32, 2).run_stencil((12, 12), 2)
        assert rep.vertical_intensity() > 0
        assert rep.horizontal_intensity() > 0


class TestSimulatedClusterCG:
    def test_vertical_traffic_dominates_theorem8(self):
        n, t, nodes, s = 16, 4, 4, 64
        cluster = SimulatedCluster(nodes, s, 2)
        rep = cluster.run_cg((n, n), t)
        lb = cg_vertical_lower_bound(n, t, 2, processors=nodes)
        assert rep.max_vertical >= lb

    def test_cg_more_vertical_than_stencil_per_iteration(self):
        cluster = SimulatedCluster(4, 64, 2)
        cg = cluster.run_cg((16, 16), 2)
        st = cluster.run_stencil((16, 16), 2)
        assert cg.max_vertical > st.max_vertical

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0, 16, 2)


class TestDistributedExecutor:
    def test_single_node_has_no_horizontal_traffic(self):
        ex = DistributedExecutor(num_nodes=1, cache_words=8)
        rep = ex.run(diamond_cdag(6, 4))
        assert rep.max_horizontal == 0
        assert rep.total_computes == len(diamond_cdag(6, 4).operations)

    def test_multi_node_incurs_horizontal_traffic(self):
        ex = DistributedExecutor(num_nodes=4, cache_words=8)
        rep = ex.run(diamond_cdag(8, 4))
        assert rep.total_horizontal > 0

    def test_vertical_traffic_counts_misses(self):
        ex = DistributedExecutor(num_nodes=1, cache_words=2)
        rep = ex.run(grid_stencil_cdag((6,), 3))
        assert rep.max_vertical > 0

    def test_partitioner_callable_used(self):
        c = diamond_cdag(6, 3)
        ex = DistributedExecutor(num_nodes=2, cache_words=16)
        rep = ex.run(c, partitioner=lambda v: v[2] // 3)
        assert set(rep.computes_per_node) == {0, 1}
        assert all(n >= 0 for n in rep.computes_per_node.values())

    def test_explicit_assignment_validated(self):
        c = chain_cdag(3)
        ex = DistributedExecutor(num_nodes=2, cache_words=8)
        with pytest.raises(ValueError):
            ex.run(c, assignment={("chain", 0): 0})
        with pytest.raises(ValueError):
            ex.run(c, assignment={v: 7 for v in c.vertices})

    def test_owner_computes_inputs_free_on_owner(self):
        c = chain_cdag(4)
        ex = DistributedExecutor(num_nodes=2, cache_words=8)
        rep = ex.run(c, assignment={v: 0 for v in c.vertices})
        assert rep.horizontal_per_node[0] == 0

    def test_larger_cache_reduces_vertical(self):
        c = grid_stencil_cdag((8, 8), 2)
        small = DistributedExecutor(2, 8).run(c)
        large = DistributedExecutor(2, 512).run(c)
        assert large.total_vertical <= small.total_vertical

    def test_computes_partition_operations(self):
        c = diamond_cdag(6, 4)
        ex = DistributedExecutor(num_nodes=3, cache_words=16)
        rep = ex.run(c)
        assert rep.total_computes == len(c.operations)

"""Unit tests for the cache simulator."""

import pytest

from repro.distsim import CacheSimulator, simulate_trace


class TestBasicBehaviour:
    def test_cold_misses(self):
        sim = CacheSimulator(capacity_words=4)
        for a in range(4):
            assert sim.access(a) is False
        assert sim.stats.misses == 4
        assert sim.stats.hits == 0

    def test_hits_on_resident_lines(self):
        sim = CacheSimulator(4)
        sim.access("x")
        assert sim.access("x") is True
        assert sim.stats.hits == 1

    def test_capacity_eviction_lru(self):
        sim = CacheSimulator(2, policy="lru")
        sim.access("a")
        sim.access("b")
        sim.access("c")  # evicts a
        assert sim.access("b") is True
        assert sim.access("a") is False

    def test_lru_order_updated_on_hit(self):
        sim = CacheSimulator(2, policy="lru")
        sim.access("a")
        sim.access("b")
        sim.access("a")  # refresh a
        sim.access("c")  # evicts b, not a
        assert sim.access("a") is True

    def test_writeback_counted_on_dirty_eviction(self):
        sim = CacheSimulator(1)
        sim.access("a", write=True)
        sim.access("b")  # evicts dirty a -> writeback
        assert sim.stats.writebacks == 1
        assert sim.stats.evictions == 1

    def test_clean_eviction_no_writeback(self):
        sim = CacheSimulator(1)
        sim.access("a")
        sim.access("b")
        assert sim.stats.writebacks == 0

    def test_flush_writes_back_dirty_lines(self):
        sim = CacheSimulator(4)
        sim.access("a", write=True)
        sim.access("b")
        sim.flush()
        assert sim.stats.writebacks == 1
        assert sim.resident_lines == 0

    def test_vertical_traffic_is_misses_plus_writebacks(self):
        sim = CacheSimulator(1)
        sim.access("a", write=True)
        sim.access("b", write=True)
        sim.flush()
        assert sim.stats.vertical_traffic == sim.stats.misses + sim.stats.writebacks

    def test_miss_rate(self):
        sim = CacheSimulator(2)
        sim.access("a")
        sim.access("a")
        assert sim.stats.miss_rate == 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CacheSimulator(0)
        with pytest.raises(ValueError):
            CacheSimulator(4, policy="fifo")
        with pytest.raises(ValueError):
            CacheSimulator(4, line_words=0)


class TestBelady:
    def test_belady_beats_lru_on_adversarial_trace(self):
        # classic pattern where LRU thrashes but OPT keeps the hot line
        trace = []
        for _ in range(10):
            trace.extend(["hot", "a", "b", "c"])
        lru = simulate_trace(trace, capacity_words=3, policy="lru")
        opt = simulate_trace(trace, capacity_words=3, policy="belady")
        assert opt.misses <= lru.misses

    def test_belady_requires_prepared_trace_for_simulate(self):
        stats = simulate_trace(["a", "b", "a"], 1, policy="belady")
        assert stats.accesses == 3

    def test_belady_never_worse_than_lru_on_sequential_scan(self):
        trace = list(range(20)) * 3
        lru = simulate_trace(trace, capacity_words=8, policy="lru")
        opt = simulate_trace(trace, capacity_words=8, policy="belady")
        assert opt.misses <= lru.misses


class TestLineGranularity:
    def test_line_words_groups_integer_addresses(self):
        sim = CacheSimulator(capacity_words=8, line_words=4)
        sim.access(0)
        assert sim.access(3) is True  # same 4-word line
        assert sim.access(4) is False  # next line

    def test_writeback_counts_line_words(self):
        sim = CacheSimulator(capacity_words=4, line_words=4)
        sim.access(0, write=True)
        sim.access(8)  # evicts the dirty line
        assert sim.stats.writebacks == 4


class TestSimulateTrace:
    def test_accepts_pairs_and_plain_addresses(self):
        stats = simulate_trace([("a", True), "b", ("a", False)], 4)
        assert stats.accesses == 3
        assert stats.hits == 1

    def test_full_reuse_in_large_cache(self):
        trace = list(range(16)) * 4
        stats = simulate_trace(trace, capacity_words=16)
        assert stats.misses == 16
        assert stats.hits == 48

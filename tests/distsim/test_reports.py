"""Unit tests for the traffic-report containers of the distributed simulator."""

import pytest

from repro.distsim import ClusterTrafficReport, DistributedExecutionReport


class TestClusterTrafficReport:
    def test_maxima_and_totals(self):
        rep = ClusterTrafficReport(
            horizontal_per_node={0: 10, 1: 30, 2: 20},
            vertical_per_node={0: 100, 1: 80, 2: 120},
            flops_per_node={0: 1000, 1: 1000, 2: 1000},
        )
        assert rep.max_horizontal == 30
        assert rep.max_vertical == 120
        assert rep.total_flops == 3000

    def test_intensities(self):
        rep = ClusterTrafficReport(
            horizontal_per_node={0: 10, 1: 20},
            vertical_per_node={0: 100, 1: 200},
            flops_per_node={0: 500, 1: 500},
        )
        # max_vertical * N / total_flops = 200 * 2 / 1000
        assert rep.vertical_intensity() == pytest.approx(0.4)
        assert rep.horizontal_intensity() == pytest.approx(0.04)

    def test_empty_report(self):
        rep = ClusterTrafficReport()
        assert rep.max_horizontal == 0
        assert rep.max_vertical == 0
        assert rep.vertical_intensity() == 0.0
        assert rep.horizontal_intensity() == 0.0


class TestDistributedExecutionReport:
    def test_aggregates(self):
        rep = DistributedExecutionReport(
            horizontal_per_node={0: 3, 1: 5},
            vertical_per_node={0: 7, 1: 2},
            computes_per_node={0: 10, 1: 12},
        )
        assert rep.max_horizontal == 5
        assert rep.max_vertical == 7
        assert rep.total_computes == 22
        assert rep.total_horizontal == 8
        assert rep.total_vertical == 9

    def test_empty(self):
        rep = DistributedExecutionReport()
        assert rep.max_horizontal == 0 and rep.max_vertical == 0
        assert rep.total_computes == 0

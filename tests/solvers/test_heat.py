"""Integration tests for the heat-equation timestepping driver."""

import numpy as np
import pytest

from repro.solvers import Grid, run_heat_equation


class TestHeatDriver:
    def test_all_solvers_agree_in_1d(self, grid_1d):
        results = {
            name: run_heat_equation(grid_1d, 4, solver=name, tol=1e-12)
            for name in ("cg", "gmres", "jacobi", "thomas")
        }
        ref = results["thomas"].solution
        for name, res in results.items():
            assert np.allclose(res.solution, ref, atol=1e-7), name

    def test_cg_and_gmres_agree_in_2d(self, grid_2d):
        cg = run_heat_equation(grid_2d, 3, solver="cg", tol=1e-12)
        gm = run_heat_equation(grid_2d, 3, solver="gmres", tol=1e-12)
        assert np.allclose(cg.solution, gm.solution, atol=1e-8)

    def test_solution_approaches_exact_decay(self):
        g = Grid(shape=(40,), spacing=1 / 41, timestep=5e-5)
        steps = 20
        res = run_heat_equation(g, steps, solver="cg", tol=1e-12)
        exact = g.exact_solution(steps * g.timestep)
        rel_err = np.linalg.norm(res.solution - exact) / np.linalg.norm(exact)
        assert rel_err < 1e-3

    def test_energy_decays_monotonically(self, grid_2d):
        u = grid_2d.initial_condition()
        norms = [np.linalg.norm(u)]
        for _ in range(3):
            res = run_heat_equation(grid_2d, 1, solver="cg", u0=u, tol=1e-12)
            u = res.solution
            norms.append(np.linalg.norm(u))
        assert all(b < a for a, b in zip(norms, norms[1:]))

    def test_iteration_counts_recorded(self, grid_2d):
        res = run_heat_equation(grid_2d, 3, solver="cg", tol=1e-10)
        assert len(res.solver_iterations) == 3
        assert res.total_inner_iterations >= 3

    def test_thomas_requires_1d(self, grid_2d):
        with pytest.raises(ValueError):
            run_heat_equation(grid_2d, 1, solver="thomas")

    def test_unknown_solver(self, grid_1d):
        with pytest.raises(ValueError):
            run_heat_equation(grid_1d, 1, solver="multigrid")

    def test_custom_initial_condition(self, grid_1d, rng):
        u0 = rng.random(grid_1d.num_points)
        res = run_heat_equation(grid_1d, 1, solver="thomas", u0=u0)
        assert res.solution.shape == u0.shape

    def test_wrong_initial_condition_size(self, grid_1d):
        with pytest.raises(ValueError):
            run_heat_equation(grid_1d, 1, u0=np.zeros(3))

    def test_zero_timesteps(self, grid_1d):
        res = run_heat_equation(grid_1d, 0, solver="cg")
        assert np.allclose(res.solution, grid_1d.initial_condition())

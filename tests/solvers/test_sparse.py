"""Unit tests for the CSR matrix and the matrix-free stencil operator."""

import numpy as np
import pytest

from repro.solvers import CSRMatrix, Grid, StencilOperator, laplacian_csr


class TestCSRConstruction:
    def test_from_coo_and_dense_roundtrip(self, rng):
        dense = rng.random((5, 4))
        dense[dense < 0.5] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)
        assert m.nnz == np.count_nonzero(dense)

    def test_from_coo_sums_duplicates(self):
        m = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert m.to_dense()[0, 1] == 5.0
        assert m.nnz == 1

    def test_invalid_structures(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 1]), (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(1), np.array([5]), np.array([0, 1]), (1, 2))
        with pytest.raises(ValueError):
            CSRMatrix.from_coo([0], [0, 1], [1.0], (2, 2))


class TestCSRKernels:
    def test_matvec_matches_dense(self, rng):
        dense = rng.random((6, 6))
        dense[dense < 0.6] = 0.0
        x = rng.random(6)
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.matvec(x), dense @ x)
        assert np.allclose(m @ x, dense @ x)

    def test_matvec_with_empty_rows(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = 2.0
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.matvec(np.ones(3)), [2.0, 0.0, 0.0])

    def test_matvec_dimension_check(self, rng):
        m = CSRMatrix.from_dense(rng.random((3, 4)))
        with pytest.raises(ValueError):
            m.matvec(np.ones(3))

    def test_diagonal(self, rng):
        dense = rng.random((5, 5))
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.diagonal(), np.diag(dense))

    def test_transpose(self, rng):
        dense = rng.random((4, 6))
        dense[dense < 0.5] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.transpose().to_dense(), dense.T)

    def test_row_access(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0]])
        m = CSRMatrix.from_dense(dense)
        cols, vals = m.row(0)
        assert list(cols) == [0, 2]
        assert list(vals) == [1.0, 2.0]


class TestStencilOperator:
    def test_matches_explicit_csr(self, grid_2d, rng):
        op = StencilOperator(grid_2d)
        csr = laplacian_csr(grid_2d)
        x = rng.random(grid_2d.num_points)
        assert np.allclose(op.matvec(x), csr.matvec(x))
        assert np.allclose(op.to_csr().to_dense(), csr.to_dense())

    def test_symmetric(self, grid_2d):
        dense = laplacian_csr(grid_2d).to_dense()
        assert np.allclose(dense, dense.T)

    def test_positive_definite(self, grid_2d):
        dense = laplacian_csr(grid_2d).to_dense()
        eigvals = np.linalg.eigvalsh(dense)
        assert np.all(eigvals > 0)

    def test_diagonal(self, grid_2d):
        op = StencilOperator(grid_2d)
        diag, _ = grid_2d.implicit_matrix_diagonals()
        assert np.allclose(op.diagonal(), diag)

    def test_shape_and_dimension_check(self, grid_2d):
        op = StencilOperator(grid_2d)
        assert op.shape == (36, 36)
        with pytest.raises(ValueError):
            op.matvec(np.ones(5))

    def test_3d_operator(self, rng):
        g = Grid(shape=(3, 3, 3), spacing=0.25, timestep=0.01)
        op = StencilOperator(g)
        csr = laplacian_csr(g)
        x = rng.random(g.num_points)
        assert np.allclose(op.matvec(x), csr.matvec(x))

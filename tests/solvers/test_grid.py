"""Unit tests for the grid / heat-equation discretization."""

import math

import numpy as np
import pytest

from repro.solvers import Grid


class TestConstruction:
    def test_defaults(self):
        g = Grid(shape=(10,))
        assert g.ndim == 1
        assert g.num_points == 10
        assert g.spacing == pytest.approx(1.0 / 11)
        assert g.timestep > 0

    def test_explicit_parameters(self):
        g = Grid(shape=(4, 5), spacing=0.1, timestep=0.002, diffusivity=2.0)
        assert g.num_points == 20
        assert g.mesh_ratio == pytest.approx(2.0 * 0.002 / 0.01)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Grid(shape=())
        with pytest.raises(ValueError):
            Grid(shape=(0, 3))

    def test_invalid_scalars(self):
        with pytest.raises(ValueError):
            Grid(shape=(3,), spacing=-1.0)
        with pytest.raises(ValueError):
            Grid(shape=(3,), timestep=0.0)


class TestIndexing:
    def test_ravel_unravel_roundtrip(self):
        g = Grid(shape=(3, 4, 5))
        for idx in [(0, 0, 0), (2, 3, 4), (1, 2, 3)]:
            assert g.unravel(g.ravel(idx)) == idx

    def test_points_enumeration(self):
        g = Grid(shape=(2, 3))
        pts = list(g.points())
        assert len(pts) == 6
        assert (1, 2) in pts

    def test_neighbors_interior_and_boundary(self):
        g = Grid(shape=(3, 3))
        assert len(g.neighbors((1, 1))) == 4
        assert len(g.neighbors((0, 0))) == 2
        assert len(g.neighbors((0, 1))) == 3

    def test_coordinates(self):
        g = Grid(shape=(4,), spacing=0.2)
        assert g.coordinates((0,)) == (pytest.approx(0.2),)
        assert g.coordinates((3,)) == (pytest.approx(0.8),)


class TestHeatEquationPieces:
    def test_initial_condition_is_sine(self):
        g = Grid(shape=(9,), spacing=0.1)
        u0 = g.initial_condition()
        x = (np.arange(9) + 1) * 0.1
        assert np.allclose(u0, np.sin(math.pi * x))

    def test_exact_solution_decays(self):
        g = Grid(shape=(9,), spacing=0.1)
        early = g.exact_solution(0.0)
        late = g.exact_solution(0.1)
        assert np.all(np.abs(late) <= np.abs(early) + 1e-15)

    def test_implicit_rhs_1d_matches_paper_formula(self):
        g = Grid(shape=(5,), spacing=0.1, timestep=0.004)
        a = g.mesh_ratio
        u = np.arange(1.0, 6.0)
        rhs = g.implicit_rhs(u)
        # interior point i: a/2 u[i-1] + (1 - a) u[i] + a/2 u[i+1]
        i = 2
        expected = 0.5 * a * u[i - 1] + (1 - a) * u[i] + 0.5 * a * u[i + 1]
        assert rhs[i] == pytest.approx(expected)

    def test_implicit_rhs_respects_zero_boundaries(self):
        g = Grid(shape=(4,), spacing=0.2, timestep=0.004)
        a = g.mesh_ratio
        u = np.ones(4)
        rhs = g.implicit_rhs(u)
        assert rhs[0] == pytest.approx(0.5 * a * 0 + (1 - a) + 0.5 * a)

    def test_implicit_matrix_diagonals(self):
        g = Grid(shape=(5, 5), spacing=0.1, timestep=0.002)
        diag, off = g.implicit_matrix_diagonals()
        a = g.mesh_ratio
        assert diag == pytest.approx(1 + 2 * a)
        assert off == pytest.approx(-a / 2)

    def test_2d_initial_condition_separable(self):
        g = Grid(shape=(3, 3), spacing=0.25)
        u = g.initial_condition().reshape(3, 3)
        x = (np.arange(3) + 1) * 0.25
        expected = np.outer(np.sin(math.pi * x), np.sin(math.pi * x))
        assert np.allclose(u, expected)

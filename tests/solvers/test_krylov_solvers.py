"""Unit tests for the CG and GMRES solvers."""

import numpy as np
import pytest

from repro.solvers import (
    StencilOperator,
    cg_flops_per_iteration,
    cg_total_flops,
    conjugate_gradient,
    gmres,
    gmres_flops,
    laplacian_csr,
)


@pytest.fixture
def spd_system(grid_2d, rng):
    op = StencilOperator(grid_2d)
    x_true = rng.random(grid_2d.num_points)
    return op, op.matvec(x_true), x_true


class TestConjugateGradient:
    def test_solves_spd_system(self, spd_system):
        op, b, x_true = spd_system
        res = conjugate_gradient(op, b, tol=1e-12)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-8

    def test_works_with_csr_and_dense_operators(self, grid_2d, rng):
        csr = laplacian_csr(grid_2d)
        dense = csr.to_dense()
        x_true = rng.random(grid_2d.num_points)
        b = dense @ x_true
        for op in (csr, dense):
            res = conjugate_gradient(op, b, tol=1e-12)
            assert np.allclose(res.x, x_true, atol=1e-7)

    def test_initial_guess_respected(self, spd_system):
        op, b, x_true = spd_system
        res = conjugate_gradient(op, b, x0=x_true, tol=1e-10)
        assert res.iterations == 0
        assert res.converged

    def test_residual_history_monotone_overall(self, spd_system):
        op, b, _ = spd_system
        res = conjugate_gradient(op, b, tol=1e-12)
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_max_iterations_cap(self, spd_system):
        op, b, _ = spd_system
        res = conjugate_gradient(op, b, tol=1e-16, max_iterations=2)
        assert res.iterations <= 2

    def test_callback_invoked(self, spd_system):
        op, b, _ = spd_system
        seen = []
        conjugate_gradient(op, b, tol=1e-12, callback=lambda k, x: seen.append(k))
        assert seen == list(range(1, len(seen) + 1))

    def test_shape_mismatch(self, spd_system):
        op, b, _ = spd_system
        with pytest.raises(ValueError):
            conjugate_gradient(op, b, x0=np.zeros(3))

    def test_converges_in_at_most_n_iterations(self, grid_1d, rng):
        op = StencilOperator(grid_1d)
        b = rng.random(grid_1d.num_points)
        res = conjugate_gradient(op, b, tol=1e-12)
        assert res.iterations <= grid_1d.num_points


class TestGMRES:
    def test_solves_spd_system(self, spd_system):
        op, b, x_true = spd_system
        res = gmres(op, b, tol=1e-12)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-7

    def test_solves_nonsymmetric_system(self, rng):
        n = 20
        a = np.eye(n) * 4 + np.triu(rng.random((n, n)), 1) * 0.3
        x_true = rng.random(n)
        res = gmres(a, a @ x_true, tol=1e-12)
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_hessenberg_shape(self, spd_system):
        op, b, _ = spd_system
        res = gmres(op, b, tol=1e-12, max_iterations=5)
        m = res.iterations
        assert res.hessenberg.shape == (m + 1, m)

    def test_residual_estimates_decrease(self, spd_system):
        op, b, _ = spd_system
        res = gmres(op, b, tol=1e-14)
        assert res.residual_norms[-1] <= res.residual_norms[0]

    def test_zero_rhs(self, grid_2d):
        op = StencilOperator(grid_2d)
        res = gmres(op, np.zeros(grid_2d.num_points))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_max_iterations_cap(self, spd_system):
        op, b, _ = spd_system
        res = gmres(op, b, tol=1e-16, max_iterations=3)
        assert res.iterations <= 3

    def test_callback(self, spd_system):
        op, b, _ = spd_system
        seen = []
        gmres(op, b, tol=1e-12, callback=lambda k, r: seen.append((k, r)))
        assert len(seen) > 0

    def test_agrees_with_cg_on_spd(self, spd_system):
        op, b, x_true = spd_system
        xg = gmres(op, b, tol=1e-12).x
        xc = conjugate_gradient(op, b, tol=1e-12).x
        assert np.allclose(xg, xc, atol=1e-6)


class TestOperationCounts:
    def test_cg_flops_per_iteration_3d(self):
        assert cg_flops_per_iteration(10, 3) == (4 * 3 + 14) * 1000

    def test_cg_total_flops_paper_constant(self):
        assert cg_total_flops(1000, 5, 3, paper_constant=True) == 20.0 * 1000 ** 3 * 5

    def test_gmres_flops_paper_constant(self):
        n, m = 100, 7
        assert gmres_flops(n, m, 3, paper_constant=True) == pytest.approx(
            20 * n ** 3 * m + n ** 3 * m ** 2
        )

    def test_gmres_flops_grow_superlinearly_in_m(self):
        f10 = gmres_flops(50, 10, 3)
        f20 = gmres_flops(50, 20, 3)
        assert f20 > 2 * f10

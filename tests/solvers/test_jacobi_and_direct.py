"""Unit tests for the Jacobi solver, stencil sweeps and the Thomas solver."""

import numpy as np
import pytest

from repro.solvers import (
    Grid,
    StencilOperator,
    build_tridiagonal,
    heat_tridiagonal,
    jacobi_solve,
    stencil_flops,
    stencil_sweeps,
    thomas_solve,
    tiled_sweep_io_estimate,
)


class TestJacobiSolver:
    def test_solves_diagonally_dominant_system(self, grid_2d, rng):
        op = StencilOperator(grid_2d)
        x_true = rng.random(grid_2d.num_points)
        b = op.matvec(x_true)
        res = jacobi_solve(op, b, tol=1e-12, max_iterations=5000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_damping_still_converges(self, grid_1d, rng):
        op = StencilOperator(grid_1d)
        b = rng.random(grid_1d.num_points)
        res = jacobi_solve(op, b, tol=1e-10, damping=0.8, max_iterations=20000)
        assert res.converged

    def test_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            jacobi_solve(a, np.ones(2))

    def test_iteration_cap(self, grid_2d, rng):
        op = StencilOperator(grid_2d)
        b = rng.random(grid_2d.num_points)
        res = jacobi_solve(op, b, tol=1e-16, max_iterations=3)
        assert not res.converged
        assert res.iterations == 3

    def test_residuals_decrease(self, grid_2d, rng):
        op = StencilOperator(grid_2d)
        b = rng.random(grid_2d.num_points)
        res = jacobi_solve(op, b, tol=1e-12, max_iterations=2000)
        assert res.residual_norms[-1] < res.residual_norms[0]


class TestStencilSweeps:
    def test_star_sweep_preserves_shape(self, grid_2d):
        u0 = grid_2d.initial_condition()
        u1 = stencil_sweeps(grid_2d, u0, 3)
        assert u1.shape == u0.shape

    def test_zero_timesteps_is_identity(self, grid_2d):
        u0 = grid_2d.initial_condition()
        assert np.allclose(stencil_sweeps(grid_2d, u0, 0), u0)

    def test_explicit_heat_decays_sine_mode(self):
        g = Grid(shape=(31,), spacing=1 / 32, timestep=0.0002)
        u0 = g.initial_condition()
        u = stencil_sweeps(g, u0, 20)
        # the sine mode decays but keeps its shape
        ratio = u[10] / u0[10]
        assert 0 < ratio < 1
        assert np.allclose(u / ratio, u0, atol=1e-2)

    def test_box_sweep_averages(self):
        g = Grid(shape=(5, 5), spacing=0.1, timestep=0.001)
        u0 = np.ones(g.num_points)
        u1 = stencil_sweeps(g, u0, 1, neighborhood="box")
        centre = u1.reshape(5, 5)[2, 2]
        assert centre == pytest.approx(1.0)

    def test_invalid_neighborhood(self, grid_2d):
        with pytest.raises(ValueError):
            stencil_sweeps(grid_2d, grid_2d.initial_condition(), 1, neighborhood="hex")

    def test_negative_timesteps_rejected(self, grid_2d):
        with pytest.raises(ValueError):
            stencil_sweeps(grid_2d, grid_2d.initial_condition(), -1)


class TestStencilCounts:
    def test_flops_star_vs_box(self):
        assert stencil_flops(10, 2, 2, "star") == 2 * 5 * 100 * 2
        assert stencil_flops(10, 2, 2, "box") == 2 * 9 * 100 * 2

    def test_tiled_sweep_io_estimate_vs_lower_bound(self):
        from repro.bounds import jacobi_io_lower_bound

        n, t, s, d = 64, 16, 256, 2
        ub = tiled_sweep_io_estimate(n, t, d, s)
        lb = jacobi_io_lower_bound(n, t, s, d)
        assert lb <= ub <= 10 * lb  # tight up to a small constant

    def test_tiled_sweep_guards(self):
        with pytest.raises(ValueError):
            tiled_sweep_io_estimate(0, 1, 2, 8)


class TestThomasSolver:
    def test_solves_random_dd_system(self, rng):
        n = 12
        lo, di, up = build_tridiagonal(n, -1.0, 4.0, -1.0)
        x_true = rng.random(n)
        dense = np.diag(di) + np.diag(lo[1:], -1) + np.diag(up[:-1], 1)
        b = dense @ x_true
        assert np.allclose(thomas_solve(lo, di, up, b), x_true)

    def test_heat_bands(self):
        lo, di, up = heat_tridiagonal(5, mesh_ratio=0.4)
        assert di[0] == pytest.approx(1.4)
        assert up[0] == pytest.approx(-0.2)
        assert lo[0] == 0.0 and up[-1] == 0.0

    def test_single_unknown(self):
        lo, di, up = build_tridiagonal(1, 0.0, 2.0, 0.0)
        assert thomas_solve(lo, di, up, np.array([4.0]))[0] == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            thomas_solve(np.zeros(2), np.ones(3), np.zeros(3), np.ones(3))

    def test_zero_pivot_detected(self):
        lo, di, up = build_tridiagonal(3, 1.0, 0.0, 1.0)
        with pytest.raises(ZeroDivisionError):
            thomas_solve(lo, di, up, np.ones(3))

    def test_invalid_mesh_ratio(self):
        with pytest.raises(ValueError):
            heat_tridiagonal(4, 0.0)

"""Property-based tests for the pebble games and bounds (soundness invariants)."""

from hypothesis import given, settings, strategies as st

from repro.bounds import automated_wavefront_bound, lower_bound_from_largest_subset
from repro.core import (
    CDAG,
    check_rbw_partition,
    diamond_cdag,
    greedy_rbw_partition,
    independent_chains_cdag,
    partition_from_game,
    reduction_tree_cdag,
)
from repro.pebbling import spill_game_rbw, spill_game_redblue


@st.composite
def layered_dags(draw):
    """Random layered DAGs: every vertex in layer k reads 1-3 vertices of
    layer k-1 (always well-formed, bounded fan-in, Hong-Kung taggable)."""
    num_layers = draw(st.integers(min_value=2, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=5)) for _ in range(num_layers)]
    edges = []
    for layer in range(1, num_layers):
        for i in range(widths[layer]):
            fan = draw(st.integers(min_value=1, max_value=min(3, widths[layer - 1])))
            preds = draw(
                st.lists(
                    st.integers(min_value=0, max_value=widths[layer - 1] - 1),
                    min_size=fan,
                    max_size=fan,
                    unique=True,
                )
            )
            for p in preds:
                edges.append(((layer - 1, p), (layer, i)))
    vertices = [
        (layer, i) for layer in range(num_layers) for i in range(widths[layer])
    ]
    cdag = CDAG(vertices=vertices, edges=edges)
    for v in cdag.sources():
        cdag.tag_input(v)
    for v in cdag.sinks():
        cdag.tag_output(v)
    return cdag


@given(layered_dags(), st.integers(min_value=4, max_value=8))
@settings(max_examples=40, deadline=None)
def test_spill_game_is_always_a_complete_valid_game(cdag, s):
    record = spill_game_rbw(cdag, num_red=s)
    # every operation fired exactly once; every used input loaded at least once
    assert record.compute_count == len(cdag.operations)
    used_inputs = {v for v in cdag.inputs if cdag.out_degree(v) > 0}
    assert record.load_count >= len(used_inputs)
    # outputs that are also inputs already hold a blue pebble and need no store
    computed_outputs = set(cdag.outputs) - set(cdag.inputs)
    assert record.store_count >= len(computed_outputs)
    assert record.peak_red <= s


@given(layered_dags(), st.integers(min_value=4, max_value=8))
@settings(max_examples=40, deadline=None)
def test_wavefront_lower_bound_below_any_game(cdag, s):
    lb = automated_wavefront_bound(cdag, s=s).value
    ub = spill_game_rbw(cdag, num_red=s).io_count
    assert lb <= ub


@given(layered_dags(), st.integers(min_value=4, max_value=6))
@settings(max_examples=30, deadline=None)
def test_theorem1_partition_from_any_game_is_valid(cdag, s):
    record = spill_game_rbw(cdag, num_red=s)
    part = partition_from_game(cdag, record.moves, s)
    assert check_rbw_partition(cdag, part) == []
    assert record.io_count >= s * (part.h - 1)


@given(layered_dags(), st.integers(min_value=4, max_value=8))
@settings(max_examples=30, deadline=None)
def test_redblue_and_rbw_strategies_agree_without_recomputation(cdag, s):
    # the spill strategy never recomputes, so both engines accept the same
    # plan and count the same I/O
    assert (
        spill_game_redblue(cdag, s).io_count == spill_game_rbw(cdag, s).io_count
    )


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=4, max_value=10))
@settings(max_examples=30, deadline=None)
def test_greedy_partition_valid_on_structured_cdags(width, s):
    for cdag in (
        diamond_cdag(width, 3),
        reduction_tree_cdag(width),
        independent_chains_cdag(2, width),
    ):
        part = greedy_rbw_partition(cdag, s)
        assert check_rbw_partition(cdag, part) == []


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=500))
@settings(max_examples=60, deadline=None)
def test_corollary1_bound_never_negative_and_monotone(num_ops, s, u):
    b = lower_bound_from_largest_subset(s, num_ops, u)
    assert b.value >= 0
    # doubling U can only weaken the bound
    weaker = lower_bound_from_largest_subset(s, num_ops, 2 * u)
    assert weaker.value <= b.value

"""Property-based tests (hypothesis) for the CDAG core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    CDAG,
    diamond_cdag,
    grid_stencil_cdag,
    in_set,
    min_liveset_schedule,
    minimum_set,
    out_set,
    reduction_tree_cdag,
    schedule_wavefronts,
    topological_schedule,
    validate_schedule,
)


# ----------------------------------------------------------------------
# Random-DAG generator: edges only from lower to higher indices, so the
# result is always acyclic.
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw, max_vertices=12):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    edge_flags = draw(
        st.lists(
            st.booleans(),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    edges = []
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            if edge_flags[k]:
                edges.append((i, j))
            k += 1
    cdag = CDAG(vertices=range(n), edges=edges)
    for v in cdag.sources():
        cdag.tag_input(v)
    for v in cdag.sinks():
        cdag.tag_output(v)
    return cdag


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_is_always_valid(cdag):
    order = cdag.topological_order()
    validate_schedule(cdag, order)
    assert len(order) == cdag.num_vertices()


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_hong_kung_tagging_always_validates(cdag):
    cdag.validate(hong_kung=True)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_ancestors_and_descendants_are_consistent(cdag):
    for v in cdag.vertices:
        for a in cdag.ancestors(v):
            assert v in cdag.descendants(a)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_induced_subgraph_never_gains_edges(cdag):
    half = cdag.vertices[: max(1, cdag.num_vertices() // 2)]
    sub = cdag.induced_subgraph(half)
    assert sub.num_edges() <= cdag.num_edges()
    for u, v in sub.edges():
        assert cdag.has_edge(u, v)


@given(random_dags(), st.integers(min_value=0, max_value=11))
@settings(max_examples=60, deadline=None)
def test_in_out_min_set_relations(cdag, seed):
    # pick a deterministic pseudo-random subset of operations
    ops = cdag.operations
    subset = {v for i, v in enumerate(ops) if (i * 7 + seed) % 3 == 0}
    inset = in_set(cdag, subset)
    outset = out_set(cdag, subset)
    minset = minimum_set(cdag, subset)
    # In(V_i) is disjoint from V_i; Out and Min are subsets of V_i
    assert not (inset & subset)
    assert outset <= subset
    assert minset <= subset
    # every Min vertex with no successor outside must be a sink or all its
    # successors are outside by definition
    for v in minset:
        assert all(s not in subset for s in cdag.successors(v))


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_schedule_wavefronts_bounded_by_vertex_count(cdag):
    sched = topological_schedule(cdag)
    sizes = schedule_wavefronts(cdag, sched)
    assert all(1 <= s <= cdag.num_vertices() for s in sizes)


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_min_liveset_schedule_is_valid(cdag):
    sched = min_liveset_schedule(cdag)
    validate_schedule(cdag, sched)


@given(st.integers(min_value=2, max_value=16), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_structured_builders_scale_consistently(width, depth):
    d = diamond_cdag(width, depth)
    assert d.num_vertices() == width * depth
    tree = reduction_tree_cdag(width)
    assert len(tree.inputs) == width
    stencil = grid_stencil_cdag((width,), depth - 1)
    assert stencil.num_vertices() == width * depth

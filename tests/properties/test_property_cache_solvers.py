"""Property-based tests for the cache simulator and the numerical solvers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distsim import simulate_trace
from repro.solvers import (
    CSRMatrix,
    Grid,
    StencilOperator,
    conjugate_gradient,
    gmres,
    stencil_sweeps,
    thomas_solve,
    build_tridiagonal,
)


# ----------------------------------------------------------------------
# Cache simulator invariants
# ----------------------------------------------------------------------
traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
    min_size=1,
    max_size=200,
)


@given(traces, st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_cache_accounting_invariants(trace, capacity):
    stats = simulate_trace(trace, capacity_words=capacity, policy="lru")
    assert stats.hits + stats.misses == stats.accesses == len(trace)
    distinct = len({a for a, _ in trace})
    assert stats.misses >= min(distinct, 1)
    # cold misses: at least one per distinct address
    assert stats.misses >= distinct if capacity >= distinct else True
    writes = sum(1 for _, w in trace if w)
    assert stats.writebacks <= writes


@given(traces, st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_belady_is_optimal_relative_to_lru(trace, capacity):
    lru = simulate_trace(trace, capacity_words=capacity, policy="lru")
    opt = simulate_trace(trace, capacity_words=capacity, policy="belady")
    assert opt.misses <= lru.misses


@given(traces, st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_bigger_cache_never_increases_lru_misses(trace, capacity):
    small = simulate_trace(trace, capacity_words=capacity, policy="lru")
    # LRU is a stack algorithm: inclusion property guarantees monotonicity
    big = simulate_trace(trace, capacity_words=capacity * 2, policy="lru")
    assert big.misses <= small.misses


# ----------------------------------------------------------------------
# Solver invariants
# ----------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_cg_and_gmres_solve_random_spd_systems(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    a = m @ m.T + n * np.eye(n)  # SPD, well conditioned
    x_true = rng.random(n)
    b = a @ x_true
    xc = conjugate_gradient(a, b, tol=1e-12).x
    xg = gmres(a, b, tol=1e-12).x
    assert np.allclose(xc, x_true, atol=1e-6)
    assert np.allclose(xg, x_true, atol=1e-6)


@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_thomas_solver_matches_dense_solve(n, seed):
    rng = np.random.default_rng(seed)
    lo, di, up = build_tridiagonal(n, -1.0, 3.0 + rng.random(), -1.0)
    b = rng.random(n)
    dense = np.diag(di) + np.diag(lo[1:], -1) + np.diag(up[:-1], 1)
    assert np.allclose(thomas_solve(lo, di, up, b), np.linalg.solve(dense, b),
                       atol=1e-8)


@given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_csr_matvec_matches_dense(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n))
    dense[dense < 0.5] = 0.0
    x = rng.random(n)
    assert np.allclose(CSRMatrix.from_dense(dense).matvec(x), dense @ x)


@given(st.integers(min_value=4, max_value=16), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_stencil_sweep_is_linear_and_bounded(n, steps):
    g = Grid(shape=(n,), spacing=1.0 / (n + 1), timestep=0.4 * (1.0 / (n + 1)) ** 2)
    u0 = g.initial_condition()
    u = stencil_sweeps(g, u0, steps)
    # explicit heat update with a stable timestep: max-norm cannot grow
    assert np.max(np.abs(u)) <= np.max(np.abs(u0)) + 1e-12
    # linearity: sweeping 2*u0 gives twice the result
    u2 = stencil_sweeps(g, 2 * u0, steps)
    assert np.allclose(u2, 2 * u, atol=1e-10)


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_stencil_operator_symmetry_random_vectors(n, seed):
    rng = np.random.default_rng(seed)
    g = Grid(shape=(n, n))
    op = StencilOperator(g)
    x, y = rng.random(g.num_points), rng.random(g.num_points)
    # <Ax, y> == <x, Ay> for the symmetric heat operator
    assert np.isclose(op.matvec(x) @ y, x @ op.matvec(y))

"""Tests for the shared validation utilities."""

import pytest

from repro.utils import require_in_range, require_positive


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive("x", 1)
        require_positive("x", 0.5)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            require_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        require_positive("x", 0, strict=False)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive("x", -1, strict=False)

    def test_rejects_non_numbers(self):
        with pytest.raises(ValueError):
            require_positive("x", "three")


class TestRequireInRange:
    def test_accepts_bounds(self):
        require_in_range("x", 0, 0, 10)
        require_in_range("x", 10, 0, 10)
        require_in_range("x", 3.5, 0, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            require_in_range("x", -0.1, 0, 10)

    def test_rejects_non_numbers(self):
        with pytest.raises(ValueError):
            require_in_range("x", None, 0, 1)

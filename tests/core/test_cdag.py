"""Unit tests for the CDAG data structure."""

import pytest

from repro.core import CDAG, CDAGBuilder, CDAGError, CycleError, chain_cdag


class TestConstruction:
    def test_empty_cdag(self):
        c = CDAG()
        assert c.num_vertices() == 0
        assert c.num_edges() == 0
        assert len(c) == 0

    def test_add_vertices_and_edges(self):
        c = CDAG(vertices=["a", "b"], edges=[("a", "b")])
        assert c.has_vertex("a")
        assert c.has_edge("a", "b")
        assert not c.has_edge("b", "a")
        assert c.num_edges() == 1

    def test_edges_create_missing_vertices(self):
        c = CDAG(edges=[("x", "y"), ("y", "z")])
        assert set(c.vertices) == {"x", "y", "z"}

    def test_duplicate_edge_ignored(self):
        c = CDAG(edges=[("a", "b"), ("a", "b")])
        assert c.num_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            CDAG(edges=[("a", "a")])

    def test_cycle_detected_on_validate(self):
        with pytest.raises(CycleError):
            CDAG(edges=[("a", "b"), ("b", "c"), ("c", "a")])

    def test_tag_unknown_vertex_fails(self):
        c = CDAG(vertices=["a"])
        with pytest.raises(CDAGError):
            c.tag_input("zzz")
        with pytest.raises(CDAGError):
            c.tag_output("zzz")

    def test_insertion_order_preserved(self):
        c = CDAG(vertices=["c", "a", "b"])
        assert c.vertices == ["c", "a", "b"]


class TestQueries:
    def test_inputs_outputs_operations(self):
        c = chain_cdag(3)
        assert c.inputs == frozenset({("chain", 0)})
        assert c.outputs == frozenset({("chain", 3)})
        assert len(c.operations) == 3

    def test_degrees(self):
        c = CDAG(edges=[("a", "c"), ("b", "c"), ("c", "d")])
        assert c.in_degree("c") == 2
        assert c.out_degree("c") == 1
        assert c.in_degree("a") == 0

    def test_sources_and_sinks(self):
        c = CDAG(edges=[("a", "c"), ("b", "c"), ("c", "d"), ("c", "e")])
        assert set(c.sources()) == {"a", "b"}
        assert set(c.sinks()) == {"d", "e"}

    def test_successors_predecessors(self):
        c = CDAG(edges=[("a", "b"), ("a", "c")])
        assert set(c.successors("a")) == {"b", "c"}
        assert c.predecessors("b") == ["a"]

    def test_ancestors_descendants(self):
        c = chain_cdag(4)
        assert c.ancestors(("chain", 2)) == {("chain", 0), ("chain", 1)}
        assert c.descendants(("chain", 2)) == {("chain", 3), ("chain", 4)}

    def test_depth(self):
        assert chain_cdag(4).depth() == 5
        assert CDAG(vertices=["a", "b"]).depth() == 1

    def test_stats(self):
        s = chain_cdag(3).stats()
        assert s.num_vertices == 4
        assert s.num_edges == 3
        assert s.num_inputs == 1
        assert s.num_outputs == 1
        assert s.depth == 4

    def test_contains_and_iter(self):
        c = chain_cdag(2)
        assert ("chain", 1) in c
        assert list(iter(c)) == c.vertices


class TestTopologicalOrder:
    def test_topological_order_respects_edges(self):
        c = CDAG(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        order = c.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["c"]

    def test_topological_order_cached_and_invalidated(self):
        c = CDAG(edges=[("a", "b")])
        first = c.topological_order()
        c.add_edge("b", "c")
        second = c.topological_order()
        assert len(second) == 3 and len(first) == 2

    def test_is_acyclic(self):
        assert chain_cdag(2).is_acyclic()


class TestValidation:
    def test_hong_kung_validation_requires_source_inputs(self):
        c = CDAG(edges=[("a", "b")], outputs=["b"])
        with pytest.raises(CDAGError):
            c.validate(hong_kung=True)

    def test_hong_kung_validation_requires_sink_outputs(self):
        c = CDAG(edges=[("a", "b")], inputs=["a"])
        with pytest.raises(CDAGError):
            c.validate(hong_kung=True)

    def test_hong_kung_validation_passes_for_builders(self):
        chain_cdag(3).validate(hong_kung=True)


class TestDerivedCDAGs:
    def test_copy_is_independent(self):
        c = chain_cdag(3)
        c2 = c.copy()
        c2.add_edge(("chain", 3), "extra")
        assert not c.has_vertex("extra")

    def test_induced_subgraph_restricts_tags_and_edges(self):
        c = chain_cdag(4)
        sub = c.induced_subgraph([("chain", 0), ("chain", 1), ("chain", 2)])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 2
        assert sub.inputs == frozenset({("chain", 0)})
        assert sub.outputs == frozenset()

    def test_induced_subgraph_unknown_vertex(self):
        with pytest.raises(CDAGError):
            chain_cdag(2).induced_subgraph(["nope"])

    def test_retagged_changes_only_tags(self):
        c = chain_cdag(3)
        r = c.retagged(add_inputs=[("chain", 1)], add_outputs=[("chain", 2)])
        assert r.num_edges() == c.num_edges()
        assert ("chain", 1) in r.inputs
        assert ("chain", 2) in r.outputs
        # original untouched
        assert ("chain", 1) not in c.inputs

    def test_retagged_remove(self):
        c = chain_cdag(3)
        r = c.retagged(remove_outputs=[("chain", 3)])
        assert r.outputs == frozenset()

    def test_without_io_vertices(self):
        c = chain_cdag(3)
        core = c.without_io_vertices()
        # chain_cdag(3) = input + 3 operations, the last being the output;
        # dropping the input and output vertices leaves the 2 middle ops.
        assert core.num_vertices() == 2
        assert core.inputs == frozenset()
        assert core.outputs == frozenset()


class TestNetworkxInterop:
    def test_roundtrip(self):
        c = chain_cdag(3)
        g = c.to_networkx()
        back = CDAG.from_networkx(g)
        assert set(back.vertices) == set(c.vertices)
        assert back.inputs == c.inputs
        assert back.outputs == c.outputs

    def test_from_untagged_networkx_uses_hong_kung_default(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge(1, 2)
        c = CDAG.from_networkx(g)
        assert c.inputs == frozenset({1})
        assert c.outputs == frozenset({2})


class TestBuilderHelper:
    def test_builder_basic_flow(self):
        b = CDAGBuilder("t")
        x = b.add_input()
        y = b.add_input()
        z = b.operation([x, y], output=True)
        c = b.build()
        assert c.is_input(x) and c.is_input(y)
        assert c.is_output(z)
        assert c.in_degree(z) == 2

    def test_builder_fresh_names_unique(self):
        b = CDAGBuilder()
        names = {b.fresh() for _ in range(100)}
        assert len(names) == 100

"""Unit tests for CDAG structural properties (In/Out/Min sets, dominators,
convex cuts, wavefronts)."""

import pytest

from repro.core import (
    CDAG,
    chain_cdag,
    convex_cut_for_vertex,
    dense_layer_cdag,
    diamond_cdag,
    has_circuit_between,
    in_set,
    is_convex_cut,
    is_dominator,
    max_min_wavefront,
    max_schedule_wavefront,
    min_wavefront,
    minimal_dominator_size,
    minimum_set,
    out_set,
    outer_product_cdag,
    reduction_tree_cdag,
    schedule_wavefronts,
    topological_schedule,
)
from repro.algorithms import dot_then_axpy_cdag


class TestInOutMinSets:
    def test_in_set_of_chain_slice(self):
        c = chain_cdag(5)
        sub = {("chain", 2), ("chain", 3)}
        assert in_set(c, sub) == {("chain", 1)}

    def test_out_set_of_chain_slice(self):
        c = chain_cdag(5)
        sub = {("chain", 2), ("chain", 3)}
        assert out_set(c, sub) == {("chain", 3)}

    def test_out_set_includes_cdag_outputs(self):
        c = chain_cdag(3)
        sub = {("chain", 3)}
        assert out_set(c, sub) == {("chain", 3)}

    def test_min_set_vs_out_set(self):
        # A vertex with one successor inside and one outside is in Out but
        # not in Min.
        c = CDAG(edges=[("a", "b"), ("a", "c")], inputs=[], outputs=["b", "c"])
        sub = {"a", "b"}
        assert out_set(c, sub) == {"a", "b"}
        assert minimum_set(c, sub) == {"b"}

    def test_min_set_contains_sinks(self):
        c = chain_cdag(3)
        sub = {("chain", 3)}
        assert minimum_set(c, sub) == sub

    def test_empty_set(self):
        c = chain_cdag(2)
        assert in_set(c, []) == set()
        assert out_set(c, []) == set()
        assert minimum_set(c, []) == set()


class TestDominators:
    def test_chain_middle_vertex_dominates_suffix(self):
        c = chain_cdag(5)
        assert is_dominator(c, [("chain", 2)], [("chain", 4), ("chain", 5)])

    def test_non_dominator_detected(self):
        c = CDAG(edges=[("a", "c"), ("b", "c")], inputs=["a", "b"], outputs=["c"])
        assert not is_dominator(c, ["a"], ["c"])
        assert is_dominator(c, ["a", "b"], ["c"])
        assert is_dominator(c, ["c"], ["c"])

    def test_minimal_dominator_size_chain(self):
        c = chain_cdag(6)
        assert minimal_dominator_size(c, [("chain", 5)]) == 1

    def test_minimal_dominator_size_dense_layer(self):
        c = dense_layer_cdag(3, 5)
        # every input reaches every output: min dominator is min(3, 5)
        assert minimal_dominator_size(c, c.outputs) == 3

    def test_minimal_dominator_reduction_tree(self):
        c = reduction_tree_cdag(8)
        root = next(iter(c.outputs))
        # the root itself is a dominator of size 1
        assert minimal_dominator_size(c, [root]) == 1

    def test_dominator_empty_target(self):
        c = chain_cdag(2)
        assert minimal_dominator_size(c, []) == 0


class TestCircuits:
    def test_no_circuit_in_chain_halves(self):
        c = chain_cdag(4)
        a = {("chain", 0), ("chain", 1)}
        b = {("chain", 2), ("chain", 3)}
        assert not has_circuit_between(c, a, b)

    def test_circuit_detected(self):
        c = CDAG(edges=[("a", "b"), ("c", "d")], inputs=["a", "c"], outputs=["b", "d"])
        # put a->b edge from set1 to set2 and c->d from set2 to set1
        assert has_circuit_between(c, {"a", "d"}, {"b", "c"})


class TestConvexCuts:
    def test_convex_cut_contains_ancestors(self):
        c = diamond_cdag(4, 3)
        s_side, t_side = convex_cut_for_vertex(c, ("dmd", 1, 1))
        assert ("dmd", 0, 0) in s_side
        assert ("dmd", 2, 1) in t_side
        assert is_convex_cut(c, s_side, t_side)

    def test_convex_cut_rejects_descendant_in_s(self):
        c = chain_cdag(4)
        with pytest.raises(Exception):
            convex_cut_for_vertex(c, ("chain", 1), extra_in_s=[("chain", 3)])

    def test_is_convex_cut_detects_backward_edge(self):
        c = chain_cdag(3)
        assert not is_convex_cut(
            c, [("chain", 0), ("chain", 2)], [("chain", 1), ("chain", 3)]
        )


class TestWavefronts:
    def test_chain_wavefront_is_one(self):
        c = chain_cdag(6)
        assert min_wavefront(c, ("chain", 3)) == 1

    def test_sink_wavefront_is_one(self):
        c = chain_cdag(3)
        assert min_wavefront(c, ("chain", 3)) == 1

    def test_dot_then_axpy_wavefront_matches_theory(self):
        # Theorem 8 in miniature: the reduction result has 2n + 1 minimum
        # wavefront because all 2n vector elements are re-read afterwards.
        for n in (2, 3, 4):
            c = dot_then_axpy_cdag(n)
            root = ("acc", n - 1)
            assert min_wavefront(c, root) == 2 * n + 1

    def test_outer_product_wavefront_small(self):
        c = outer_product_cdag(3)
        # products have no descendants -> wavefront 1
        assert min_wavefront(c, ("A", 0, 0)) == 1

    def test_max_min_wavefront_picks_best_vertex(self):
        c = dot_then_axpy_cdag(3)
        w, v = max_min_wavefront(c)
        assert w == 7
        assert v is not None

    def test_max_min_wavefront_with_candidates(self):
        c = dot_then_axpy_cdag(3)
        w, v = max_min_wavefront(c, candidates=[("prod", 0)])
        assert v == ("prod", 0)
        assert w >= 1

    def test_unknown_vertex_raises(self):
        with pytest.raises(Exception):
            min_wavefront(chain_cdag(2), "nope")


class TestScheduleWavefronts:
    def test_chain_schedule_wavefront_constant(self):
        c = chain_cdag(5)
        sched = topological_schedule(c)
        sizes = schedule_wavefronts(c, sched)
        assert max(sizes) == 1
        assert len(sizes) == c.num_vertices()

    def test_diamond_schedule_wavefront_at_least_width(self):
        c = diamond_cdag(4, 3)
        sched = topological_schedule(c)
        assert max_schedule_wavefront(c, sched) >= 4

    def test_schedule_wavefront_lower_bounds_min_wavefront(self):
        # For every vertex x, any schedule's wavefront at x's position is
        # >= the min wavefront at x.
        c = dot_then_axpy_cdag(2)
        sched = topological_schedule(c)
        sizes = schedule_wavefronts(c, sched)
        pos = {v: i for i, v in enumerate(sched)}
        x = ("acc", 1)
        assert sizes[pos[x]] >= min_wavefront(c, x)

    def test_invalid_schedule_rejected(self):
        c = chain_cdag(3)
        bad = list(reversed(topological_schedule(c)))
        with pytest.raises(Exception):
            schedule_wavefronts(c, bad)

    def test_incomplete_schedule_rejected(self):
        c = chain_cdag(3)
        with pytest.raises(Exception):
            schedule_wavefronts(c, [("chain", 0)])

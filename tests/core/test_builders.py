"""Unit tests for the structured CDAG builders."""

import pytest

from repro.core import (
    broadcast_tree_cdag,
    butterfly_cdag,
    chain_cdag,
    dense_layer_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    outer_product_cdag,
    pyramid_cdag,
    reduction_tree_cdag,
)


class TestChains:
    def test_chain_sizes(self):
        c = chain_cdag(7)
        assert c.num_vertices() == 8
        assert c.num_edges() == 7
        assert c.depth() == 8

    def test_chain_invalid_length(self):
        with pytest.raises(ValueError):
            chain_cdag(0)

    def test_independent_chains(self):
        c = independent_chains_cdag(3, 4)
        assert c.num_vertices() == 3 * 5
        assert c.num_edges() == 3 * 4
        assert len(c.inputs) == 3
        assert len(c.outputs) == 3
        # no edges between chains
        for u, v in c.edges():
            assert u[1] == v[1]


class TestTrees:
    def test_reduction_tree_binary(self):
        c = reduction_tree_cdag(8)
        assert len(c.inputs) == 8
        assert len(c.outputs) == 1
        # binary tree over 8 leaves: 7 internal nodes
        assert c.num_vertices() == 15

    def test_reduction_tree_arbitrary_arity(self):
        c = reduction_tree_cdag(9, arity=3)
        assert len(c.inputs) == 9
        assert len(c.outputs) == 1
        root = next(iter(c.outputs))
        assert c.in_degree(root) <= 3

    def test_reduction_tree_non_power(self):
        c = reduction_tree_cdag(5)
        assert len(c.inputs) == 5
        assert len(c.outputs) == 1
        c.validate(hong_kung=True)

    def test_reduction_tree_single_leaf(self):
        c = reduction_tree_cdag(1)
        assert c.num_vertices() == 1

    def test_broadcast_tree_outputs(self):
        c = broadcast_tree_cdag(5)
        assert len(c.inputs) == 1
        assert len(c.outputs) == 5

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            reduction_tree_cdag(4, arity=1)


class TestGrids:
    def test_diamond_shape(self):
        c = diamond_cdag(5, 3)
        assert c.num_vertices() == 15
        assert len(c.inputs) == 5
        assert len(c.outputs) == 5
        assert c.depth() == 3

    def test_diamond_interior_in_degree(self):
        c = diamond_cdag(5, 2)
        assert c.in_degree(("dmd", 1, 2)) == 3
        assert c.in_degree(("dmd", 1, 0)) == 2  # boundary clamp

    def test_grid_stencil_star_2d(self):
        c = grid_stencil_cdag((3, 3), 2, neighborhood="star")
        assert c.num_vertices() == 9 * 3
        centre = ("st", 1, 1, 1)
        assert c.in_degree(centre) == 5

    def test_grid_stencil_box_2d(self):
        c = grid_stencil_cdag((3, 3), 1, neighborhood="box")
        centre = ("st", 1, 1, 1)
        assert c.in_degree(centre) == 9

    def test_grid_stencil_invalid_neighborhood(self):
        with pytest.raises(ValueError):
            grid_stencil_cdag((3,), 1, neighborhood="weird")

    def test_grid_stencil_3d(self):
        c = grid_stencil_cdag((2, 2, 2), 1, neighborhood="star")
        assert c.num_vertices() == 8 * 2
        assert len(c.inputs) == 8


class TestButterflyAndPyramid:
    def test_butterfly_structure(self):
        c = butterfly_cdag(3)
        n = 8
        assert c.num_vertices() == n * 4
        assert len(c.inputs) == n
        assert len(c.outputs) == n
        # every non-input vertex has exactly 2 predecessors
        for v in c.operations:
            assert c.in_degree(v) == 2

    def test_butterfly_invalid(self):
        with pytest.raises(ValueError):
            butterfly_cdag(0)

    def test_pyramid_structure(self):
        c = pyramid_cdag(4)
        assert len(c.inputs) == 4
        assert len(c.outputs) == 1
        assert c.num_vertices() == 4 + 3 + 2 + 1


class TestOuterAndDense:
    def test_outer_product_counts(self):
        c = outer_product_cdag(4)
        assert len(c.inputs) == 8
        assert len(c.outputs) == 16
        assert c.num_vertices() == 8 + 16
        for v in c.outputs:
            assert c.in_degree(v) == 2

    def test_dense_layer(self):
        c = dense_layer_cdag(3, 5)
        assert c.num_edges() == 15
        assert len(c.inputs) == 3
        assert len(c.outputs) == 5


@pytest.mark.parametrize(
    "cdag",
    [
        chain_cdag(4),
        reduction_tree_cdag(6),
        diamond_cdag(4, 3),
        grid_stencil_cdag((3, 3), 2),
        butterfly_cdag(2),
        pyramid_cdag(4),
        outer_product_cdag(3),
        independent_chains_cdag(2, 3),
        dense_layer_cdag(2, 2),
        broadcast_tree_cdag(4),
    ],
    ids=lambda c: c.name,
)
def test_all_builders_produce_valid_hong_kung_cdags(cdag):
    """Every builder satisfies the Hong-Kung tagging convention."""
    cdag.validate(hong_kung=True)
    assert cdag.is_acyclic()

"""Unit tests for S-partition construction and validation."""


from repro.core import (
    SPartition,
    chain_cdag,
    check_hong_kung_partition,
    check_rbw_partition,
    diamond_cdag,
    greedy_rbw_partition,
    largest_admissible_subset,
    min_liveset_schedule,
    outer_product_cdag,
    partition_from_schedule,
    reduction_tree_cdag,
    topological_schedule,
)


class TestSPartitionContainer:
    def test_basic_accessors(self):
        p = SPartition(subsets=[{"a"}, {"b", "c"}], s=4)
        assert p.h == 2
        assert p.all_vertices() == {"a", "b", "c"}
        assert p.subset_of("c") == 1
        assert p.subset_of("zzz") is None
        assert p.largest_subset_size() == 2


class TestRBWPartitionChecks:
    def test_greedy_partition_is_valid(self, small_diamond):
        for s in (2, 3, 5):
            part = greedy_rbw_partition(small_diamond, s)
            assert check_rbw_partition(small_diamond, part) == []

    def test_partition_missing_vertices_flagged(self, small_chain):
        part = SPartition(subsets=[{("chain", 1)}], s=4)
        errors = check_rbw_partition(small_chain, part)
        assert any("P1" in e for e in errors)

    def test_partition_overlap_flagged(self, small_chain):
        ops = set(small_chain.operations)
        part = SPartition(subsets=[ops, {("chain", 1)}], s=10)
        errors = check_rbw_partition(small_chain, part)
        assert any("overlap" in e for e in errors)

    def test_foreign_vertex_flagged(self, small_chain):
        ops = set(small_chain.operations)
        part = SPartition(subsets=[ops | {"martian"}], s=10)
        # "martian" is not a CDAG vertex: covered check complains
        errors = check_rbw_partition(small_chain, part)
        assert any("foreign" in e for e in errors)

    def test_in_out_limits_enforced(self):
        c = outer_product_cdag(3)
        # one subset with all 9 products: In = 6 inputs > S for S=2
        part = SPartition(subsets=[set(c.operations)], s=2)
        errors = check_rbw_partition(c, part)
        assert any("P3" in e or "P4" in e for e in errors)

    def test_circuit_between_subsets_flagged(self):
        c = chain_cdag(4)
        # interleave chain vertices between two subsets -> circuit
        part = SPartition(
            subsets=[{("chain", 1), ("chain", 3)}, {("chain", 2), ("chain", 4)}],
            s=10,
        )
        errors = check_rbw_partition(c, part)
        assert any("P2" in e for e in errors)


class TestHongKungPartitionChecks:
    def test_valid_hk_partition_of_chain(self):
        c = chain_cdag(4)
        subsets = [
            {("chain", 0), ("chain", 1), ("chain", 2)},
            {("chain", 3), ("chain", 4)},
        ]
        part = SPartition(subsets=subsets, s=2)
        assert check_hong_kung_partition(c, part) == []

    def test_hk_partition_dominator_violation(self):
        c = outer_product_cdag(3)
        part = SPartition(subsets=[set(c.vertices)], s=1)
        errors = check_hong_kung_partition(c, part, exact_dominator=True)
        assert any("P3" in e for e in errors)

    def test_hk_partition_min_set_violation(self):
        c = outer_product_cdag(2)
        part = SPartition(subsets=[set(c.vertices)], s=2)
        errors = check_hong_kung_partition(c, part)
        assert any("P4" in e for e in errors)


class TestPartitionFromSchedule:
    def test_partition_covers_operations(self, small_diamond):
        sched = topological_schedule(small_diamond)
        part = partition_from_schedule(small_diamond, sched, s=2)
        covered = part.all_vertices()
        assert covered == set(small_diamond.operations)

    def test_partition_subsets_respect_2s_limits(self, small_diamond):
        part = partition_from_schedule(
            small_diamond, topological_schedule(small_diamond), s=2
        )
        assert check_rbw_partition(small_diamond, part) == []

    def test_more_pebbles_fewer_subsets(self):
        c = diamond_cdag(8, 6)
        h_small = partition_from_schedule(c, topological_schedule(c), 2).h
        h_large = partition_from_schedule(c, topological_schedule(c), 16).h
        assert h_large <= h_small

    def test_different_schedules_give_valid_partitions(self, small_diamond):
        for sched in (topological_schedule(small_diamond),
                      min_liveset_schedule(small_diamond)):
            part = partition_from_schedule(small_diamond, sched, 3)
            assert check_rbw_partition(small_diamond, part) == []


class TestLargestAdmissibleSubset:
    def test_reduction_tree_estimate_positive(self):
        c = reduction_tree_cdag(16)
        u = largest_admissible_subset(c, s=4)
        assert 1 <= u <= len(c.operations)

    def test_grows_with_s(self):
        c = diamond_cdag(10, 6)
        u2 = largest_admissible_subset(c, s=2)
        u8 = largest_admissible_subset(c, s=8)
        assert u8 >= u2

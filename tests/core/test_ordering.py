"""Unit tests for schedule generation."""

import pytest

from repro.core import (
    chain_cdag,
    dfs_schedule,
    dfs_schedule_ids,
    diamond_cdag,
    max_schedule_wavefront,
    min_liveset_schedule,
    min_liveset_schedule_ids,
    outer_product_cdag,
    priority_schedule,
    reduction_tree_cdag,
    topological_schedule,
    validate_schedule,
)


ALL_SCHEDULERS = [topological_schedule, dfs_schedule, min_liveset_schedule]


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
@pytest.mark.parametrize(
    "cdag_factory",
    [
        lambda: chain_cdag(6),
        lambda: reduction_tree_cdag(9),
        lambda: diamond_cdag(5, 4),
        lambda: outer_product_cdag(3),
    ],
)
def test_schedules_are_valid_total_orders(scheduler, cdag_factory):
    cdag = cdag_factory()
    sched = scheduler(cdag)
    validate_schedule(cdag, sched)
    assert len(sched) == cdag.num_vertices()


class TestValidateSchedule:
    def test_rejects_duplicates(self):
        c = chain_cdag(2)
        with pytest.raises(Exception):
            validate_schedule(
                c, [("chain", 0), ("chain", 0), ("chain", 1), ("chain", 2)]
            )

    def test_rejects_missing_vertices(self):
        c = chain_cdag(2)
        with pytest.raises(Exception):
            validate_schedule(c, [("chain", 0)])

    def test_rejects_dependence_violation(self):
        c = chain_cdag(2)
        with pytest.raises(Exception):
            validate_schedule(c, [("chain", 1), ("chain", 0), ("chain", 2)])


class TestMinLivesetSchedule:
    def test_not_worse_than_plain_topological_on_trees(self):
        c = reduction_tree_cdag(16)
        plain = max_schedule_wavefront(c, topological_schedule(c))
        greedy = max_schedule_wavefront(c, min_liveset_schedule(c))
        assert greedy <= plain

    def test_chain_liveset_is_one(self):
        c = chain_cdag(10)
        assert max_schedule_wavefront(c, min_liveset_schedule(c)) == 1


class TestDFSSchedule:
    def test_dfs_reduces_live_values_on_independent_chains(self):
        from repro.core import independent_chains_cdag

        c = independent_chains_cdag(4, 5)
        dfs = max_schedule_wavefront(c, dfs_schedule(c))
        # DFS finishes one chain before starting the next: live set stays small
        assert dfs <= 4

    def test_dfs_reverse_roots_still_valid(self):
        c = diamond_cdag(4, 3)
        sched = dfs_schedule(c, reverse_roots=True)
        validate_schedule(c, sched)


class TestIdSpaceSchedulersMatchDictReference:
    """The compiled id-space schedulers are pinned, schedule-for-schedule,
    to the seed dict-backend implementations (same traces)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_dfs_equivalence_on_random_cdags(self, seed, random_dag):
        cdag = random_dag(seed, 60, extra_edge_prob=0.2)
        assert dfs_schedule(cdag) == dfs_schedule(cdag, backend="dict")
        assert dfs_schedule(cdag, reverse_roots=True) == dfs_schedule(
            cdag, reverse_roots=True, backend="dict"
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_min_liveset_equivalence_on_random_cdags(self, seed, random_dag):
        cdag = random_dag(seed, 60, extra_edge_prob=0.2)
        assert min_liveset_schedule(cdag) == min_liveset_schedule(
            cdag, backend="dict"
        )

    @pytest.mark.parametrize(
        "cdag_factory",
        [
            lambda: chain_cdag(12),
            lambda: reduction_tree_cdag(16),
            lambda: diamond_cdag(7, 5),
            lambda: outer_product_cdag(4),
        ],
    )
    def test_equivalence_on_structured_builders(self, cdag_factory):
        cdag = cdag_factory()
        assert dfs_schedule(cdag) == dfs_schedule(cdag, backend="dict")
        assert min_liveset_schedule(cdag) == min_liveset_schedule(
            cdag, backend="dict"
        )

    def test_id_variants_return_ids(self):
        cdag = diamond_cdag(5, 3)
        c = cdag.compiled()
        assert c.vertices_of(dfs_schedule_ids(c)) == dfs_schedule(cdag)
        assert c.vertices_of(min_liveset_schedule_ids(c)) == (
            min_liveset_schedule(cdag)
        )

    def test_unknown_backend_rejected(self):
        cdag = chain_cdag(3)
        with pytest.raises(ValueError):
            dfs_schedule(cdag, backend="networkx")
        with pytest.raises(ValueError):
            min_liveset_schedule(cdag, backend="networkx")

    def test_validate_schedule_rejects_unknown_vertex(self):
        cdag = chain_cdag(2)
        with pytest.raises(Exception):
            validate_schedule(
                cdag, [("chain", 0), ("chain", 1), ("nope", 9)]
            )


class TestPrioritySchedule:
    def test_priority_by_insertion_matches_topological_constraints(self):
        c = diamond_cdag(4, 4)
        order_index = {v: i for i, v in enumerate(c.vertices)}
        sched = priority_schedule(c, key=lambda v: (order_index[v],))
        validate_schedule(c, sched)

    def test_priority_key_controls_tiling(self):
        # schedule a 2-row diamond column-by-column using the key
        c = diamond_cdag(6, 2)
        sched = priority_schedule(c, key=lambda v: (v[2], v[1]))
        validate_schedule(c, sched)
        pos = {v: i for i, v in enumerate(sched)}
        # column-major priority: the column-0 vertex of row 1 fires as soon
        # as its two row-0 operands have fired, well before the right edge
        # of row 0 is reached.
        assert sched[0] == ("dmd", 0, 0)
        assert pos[("dmd", 1, 0)] < pos[("dmd", 0, 3)]

"""Unit tests for the tracing executor."""

import numpy as np
import pytest

from repro.core import TraceContext


class TestTracedScalars:
    def test_arithmetic_values(self):
        ctx = TraceContext()
        a = ctx.input_scalar(3.0)
        b = ctx.input_scalar(4.0)
        assert (a + b).value == 7.0
        assert (a - b).value == -1.0
        assert (a * b).value == 12.0
        assert (a / b).value == 0.75
        assert (-a).value == -3.0
        assert (b.sqrt()).value == 2.0

    def test_reflected_operations_with_constants(self):
        ctx = TraceContext()
        a = ctx.input_scalar(2.0)
        assert (1.0 + a).value == 3.0
        assert (1.0 - a).value == -1.0
        assert (3.0 * a).value == 6.0
        assert (8.0 / a).value == 4.0

    def test_graph_records_operations(self):
        ctx = TraceContext()
        a = ctx.input_scalar(1.0)
        b = ctx.input_scalar(2.0)
        c = a * b + a
        ctx.mark_output(c)
        cdag = ctx.build()
        assert len(cdag.inputs) == 2
        assert len(cdag.outputs) == 1
        assert cdag.num_vertices() == 4  # 2 inputs, mul, add
        assert ctx.num_operations == 2

    def test_constants_not_counted_as_inputs(self):
        ctx = TraceContext()
        a = ctx.input_scalar(1.0)
        c = a * 5.0
        ctx.mark_output(c)
        cdag = ctx.build()
        assert len(cdag.inputs) == 1
        # the constant vertex exists but has no edge to the product
        assert cdag.in_degree(c.vertex) == 1


class TestTracedArrays:
    def test_input_array_shape_and_values(self, rng):
        ctx = TraceContext()
        values = rng.random((3, 2))
        arr = ctx.input_array(values)
        assert arr.shape == (3, 2)
        assert np.allclose(arr.values(), values)

    def test_elementwise_ops(self, rng):
        ctx = TraceContext()
        a_vals, b_vals = rng.random(5), rng.random(5)
        a = ctx.input_array(a_vals)
        b = ctx.input_array(b_vals)
        assert np.allclose((a + b).values(), a_vals + b_vals)
        assert np.allclose((a - b).values(), a_vals - b_vals)
        assert np.allclose((a * b).values(), a_vals * b_vals)
        assert np.allclose(a.scale(2.5).values(), 2.5 * a_vals)

    def test_shape_mismatch_raises(self, rng):
        ctx = TraceContext()
        a = ctx.input_array(rng.random(3))
        b = ctx.input_array(rng.random(4))
        with pytest.raises(ValueError):
            _ = a + b

    def test_dot_and_norm(self, rng):
        ctx = TraceContext()
        a_vals, b_vals = rng.random(6), rng.random(6)
        a = ctx.input_array(a_vals)
        b = ctx.input_array(b_vals)
        assert np.isclose(a.dot(b).value, a_vals @ b_vals)
        assert np.isclose(a.norm2().value, np.linalg.norm(a_vals))

    def test_axpy(self, rng):
        ctx = TraceContext()
        x_vals, y_vals = rng.random(4), rng.random(4)
        x = ctx.input_array(x_vals)
        y = ctx.input_array(y_vals)
        out = y.axpy(0.5, x)
        assert np.allclose(out.values(), y_vals + 0.5 * x_vals)

    def test_matvec(self, rng):
        ctx = TraceContext()
        m_vals = rng.random((3, 4))
        x_vals = rng.random(4)
        m = ctx.input_array(m_vals)
        x = ctx.input_array(x_vals)
        assert np.allclose(m.matvec(x).values(), m_vals @ x_vals)

    def test_matvec_dimension_checks(self, rng):
        ctx = TraceContext()
        m = ctx.input_array(rng.random((3, 4)))
        bad = ctx.input_array(rng.random(3))
        with pytest.raises(ValueError):
            m.matvec(bad)
        vec = ctx.input_array(rng.random(4))
        with pytest.raises(ValueError):
            vec.matvec(vec)

    def test_mark_output_array_tags_every_element(self, rng):
        ctx = TraceContext()
        a = ctx.input_array(rng.random(3))
        b = a.scale(2.0)
        ctx.mark_output(b)
        cdag = ctx.build()
        assert len(cdag.outputs) == 3

    def test_traced_cdag_edges_reflect_dataflow(self):
        ctx = TraceContext()
        x = ctx.input_array([1.0, 2.0])
        s = x.sum()
        ctx.mark_output(s)
        cdag = ctx.build()
        # the sum vertex consumes both inputs (directly via the add chain)
        assert cdag.in_degree(s.vertex) == 2

    def test_empty_reduction_raises(self):
        ctx = TraceContext()
        arr = ctx.input_array(np.zeros((0,)))
        with pytest.raises(ValueError):
            arr.sum()

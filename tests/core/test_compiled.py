"""Randomized equivalence suite: compiled backend vs the dict backend.

The compiled integer-indexed backend (:mod:`repro.core.compiled`) must be
an *observationally identical* accelerator: every query it answers has to
match what the dict-of-tuples CDAG answers, and the id-space pebble-game
engines must produce the same games as a reference player written
directly against the dict API.  This suite checks that on the structured
families used throughout the paper (chains, grids, butterflies) plus
seeded random DAGs.
"""

import random

import pytest

from repro.core import (
    CDAG,
    butterfly_cdag,
    chain_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    min_wavefront,
    min_wavefront_rebuild,
    partition_from_schedule,
    reduction_tree_cdag,
)
from repro.core.properties import in_set, out_set
from repro.pebbling import spill_game_rbw, spill_game_redblue
from repro.pebbling.state import MoveKind


def random_dag(seed: int, n: int = 24, p: float = 0.15) -> CDAG:
    """A seeded random DAG with Hong-Kung tagging (sources in, sinks out)."""
    rng = random.Random(seed)
    verts = [("r", i) for i in range(n)]
    edges = [
        (("r", i), ("r", j))
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    cdag = CDAG(verts, edges, name=f"rand{seed}")
    for v in cdag.sources():
        cdag.tag_input(v)
    for v in cdag.sinks():
        cdag.tag_output(v)
    return cdag


def sample_cdags():
    return [
        chain_cdag(8),
        independent_chains_cdag(3, 4),
        diamond_cdag(5, 4),
        grid_stencil_cdag((4, 4), 2),
        butterfly_cdag(3),
        reduction_tree_cdag(16),
        random_dag(1),
        random_dag(2, n=30, p=0.1),
        random_dag(3, n=18, p=0.25),
    ]


@pytest.fixture(params=range(len(sample_cdags())))
def cdag(request):
    return sample_cdags()[request.param]


class TestStructuralEquivalence:
    def test_id_vertex_roundtrip(self, cdag):
        c = cdag.compiled()
        assert c.n == cdag.num_vertices()
        assert c.m == cdag.num_edges()
        for v in cdag.vertices:
            assert c.vertex(c.id(v)) == v

    def test_adjacency_matches(self, cdag):
        c = cdag.compiled()
        for v in cdag.vertices:
            i = c.id(v)
            assert c.vertices_of(c.successors_ids(i)) == cdag.successors(v)
            assert c.vertices_of(c.predecessors_ids(i)) == cdag.predecessors(v)
            assert c.in_degree[i] == cdag.in_degree(v)
            assert c.out_degree[i] == cdag.out_degree(v)

    def test_topological_order_matches(self, cdag):
        assert cdag.compiled().topological_order() == cdag.topological_order()

    def test_stats_match(self, cdag):
        assert cdag.compiled().stats() == cdag.stats()

    def test_tags_match(self, cdag):
        c = cdag.compiled()
        assert set(c.vertices_of(c.input_ids)) == set(cdag.inputs)
        assert set(c.vertices_of(c.output_ids)) == set(cdag.outputs)

    def test_reachability_matches(self, cdag):
        c = cdag.compiled()
        for v in list(cdag.vertices)[::3]:
            i = c.id(v)
            assert set(c.vertices_of(c.ancestors_ids(i))) == cdag.ancestors(v)
            assert (
                set(c.vertices_of(c.descendants_ids(i))) == cdag.descendants(v)
            )

    def test_cache_invalidation_on_mutation(self):
        cdag = chain_cdag(3)
        c1 = cdag.compiled()
        assert cdag.compiled() is c1  # cached between mutations
        cdag.add_edge(("chain", 0), ("chain", 2))
        c2 = cdag.compiled()
        assert c2 is not c1
        assert c2.m == c1.m + 1
        cdag.untag_output(("chain", 3))
        c3 = cdag.compiled()
        assert c3 is not c2
        assert len(c3.output_ids) == len(c2.output_ids) - 1


class TestWavefrontEquivalence:
    def test_solver_matches_rebuild(self, cdag):
        for v in list(cdag.vertices)[::2]:
            assert min_wavefront(cdag, v) == min_wavefront_rebuild(cdag, v)


class TestPartitionEquivalence:
    @staticmethod
    def reference_partition(cdag, schedule, s):
        """The seed's O(|V| * |V_i| * deg) greedy cut, recomputing In/Out."""
        ops = [v for v in schedule if not cdag.is_input(v)]
        limit = 2 * s
        subsets, current = [], set()
        for v in ops:
            candidate = current | {v}
            if current and (
                len(in_set(cdag, candidate)) > limit
                or len(out_set(cdag, candidate)) > limit
            ):
                subsets.append(current)
                current = {v}
            else:
                current = candidate
        if current:
            subsets.append(current)
        return subsets

    @pytest.mark.parametrize("s", [1, 2, 4])
    def test_incremental_matches_reference(self, cdag, s):
        schedule = cdag.topological_order()
        got = partition_from_schedule(cdag, schedule, s)
        want = self.reference_partition(cdag, schedule, s)
        assert got.subsets == want


# ----------------------------------------------------------------------
# Pebble-game equivalence: a reference spill player on the dict backend
# ----------------------------------------------------------------------
class DictBackendSpillPlayer:
    """The seed's sequential spill strategy, written against the dict API.

    Tracks red/blue pebbles as sets of vertex *names*, uses
    ``cdag.predecessors`` / ``cdag.is_input`` directly, and breaks victim
    ties by vertex insertion order — the same deterministic rule the
    id-space production player uses, so move-for-move equality holds.
    """

    def __init__(self, cdag, num_red, policy="lru"):
        self.cdag = cdag
        self.num_red = num_red
        self.policy = policy
        self.order = {v: i for i, v in enumerate(cdag.vertices)}

    def run(self, schedule):
        cdag = self.cdag
        red, blue = set(), set(cdag.inputs)
        counts = {k: 0 for k in ("load", "store", "compute", "delete")}
        peak_red = 0
        position = {v: i for i, v in enumerate(schedule)}
        remaining = {v: cdag.out_degree(v) for v in cdag.vertices}
        future = {
            v: sorted((position[s] for s in cdag.successors(v)), reverse=True)
            for v in cdag.vertices
        }
        last_use = {}
        clock = 0

        def next_use(v):
            uses = future[v]
            while uses and uses[-1] < clock:
                uses.pop()
            return uses[-1] if uses else float("inf")

        def acquire(v):
            nonlocal peak_red
            assert len(red) < self.num_red, "red pebble budget exceeded"
            red.add(v)
            peak_red = max(peak_red, len(red))

        def pick_victim(pinned):
            candidates = [u for u in red if u not in pinned]
            assert candidates, "nothing evictable"
            if self.policy == "belady":
                return max(
                    candidates,
                    key=lambda u: (
                        next_use(u),
                        -max(last_use.get(u, -1), 0),
                        -self.order[u],
                    ),
                )
            return min(
                candidates,
                key=lambda u: (last_use.get(u, -1), self.order[u]),
            )

        def make_room(pinned):
            while len(red) >= self.num_red:
                victim = pick_victim(pinned)
                persist = remaining[victim] > 0 or (
                    self.cdag.is_output(victim) and victim not in blue
                )
                if persist and victim not in blue:
                    blue.add(victim)
                    counts["store"] += 1
                red.remove(victim)
                counts["delete"] += 1

        def ensure_red(v, pinned):
            if v in red:
                last_use[v] = clock
                return
            assert v in blue, f"{v!r} lost (never stored)"
            make_room(pinned)
            acquire(v)
            counts["load"] += 1
            last_use[v] = clock

        for v in schedule:
            clock = position[v]
            if cdag.is_input(v):
                continue
            preds = cdag.predecessors(v)
            pinned = set(preds) | {v}
            for p in preds:
                ensure_red(p, pinned)
            make_room(pinned)
            assert all(p in red for p in preds), "R3 precondition broken"
            if v not in red:
                acquire(v)
            counts["compute"] += 1
            last_use[v] = clock
            if cdag.is_output(v):
                blue.add(v)
                counts["store"] += 1
            for p in preds:
                remaining[p] -= 1
                if remaining[p] == 0 and p in red:
                    if cdag.is_output(p) and p not in blue:
                        blue.add(p)
                        counts["store"] += 1
                    red.remove(p)
                    counts["delete"] += 1
            if remaining[v] == 0 and v in red:
                red.remove(v)
                counts["delete"] += 1

        assert all(v in blue for v in cdag.outputs), "outputs not stored"
        return counts, peak_red


def reasonable_s(cdag):
    need = max(
        (cdag.in_degree(v) + 1 for v in cdag.vertices if not cdag.is_input(v)),
        default=1,
    )
    return need + 1


class TestPebbleGameEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_io_counts_match_dict_backend(self, cdag, policy):
        s = reasonable_s(cdag)
        schedule = cdag.topological_order()
        record = spill_game_redblue(cdag, s, schedule, policy=policy)
        ref_counts, ref_peak = DictBackendSpillPlayer(cdag, s, policy).run(
            schedule
        )
        assert record.load_count == ref_counts["load"]
        assert record.store_count == ref_counts["store"]
        assert record.compute_count == ref_counts["compute"]
        assert record.counts.get(MoveKind.DELETE, 0) == ref_counts["delete"]
        assert record.peak_red == ref_peak

    def test_rbw_and_redblue_agree_without_recompute(self, cdag):
        s = reasonable_s(cdag)
        schedule = cdag.topological_order()
        rb = spill_game_redblue(cdag, s, schedule)
        rbw = spill_game_rbw(cdag, s, schedule)
        assert rb.io_count == rbw.io_count
        assert rb.peak_red == rbw.peak_red

    def test_move_log_replays_on_fresh_engine(self, cdag):
        from repro.pebbling import RedBluePebbleGame

        s = reasonable_s(cdag)
        record = spill_game_redblue(cdag, s)
        fresh = RedBluePebbleGame(cdag, s, strict=False)
        replayed = fresh.replay(record.moves)
        assert replayed.io_count == record.io_count
        assert replayed.peak_red == record.peak_red

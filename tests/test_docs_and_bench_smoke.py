"""Documentation and bench-smoke checks wired into the tier-1 run.

Two things ride in the plain ``pytest -x -q`` invocation:

* the **doctest run** over the documented public surface
  (``core/ordering.py``, ``pebbling/state.py``, ``pebbling/parallel.py``,
  plus the artifact-store/service layer: ``store/keys.py``,
  ``store/db.py``, ``store/analysis.py``, ``service/server.py``)
  — the module-level usage examples those docstrings show must execute as
  written (the same modules can be checked standalone with
  ``PYTHONPATH=src python -m pytest --doctest-modules src/repro/core/ordering.py``);
* a ~1-second **bench smoke**: a complete 10^6-move P-RBW pebble game
  through the full rule-checking engine and columnar move log.  This is
  the scale the seed's one-``Move``-object-per-transition log could not
  reach; the timed version lives in
  ``benchmarks/bench_compiled_core.py`` (``BENCH_SMOKE=1`` selects the
  benchmarks' smoke mode).
"""

import doctest

import numpy as np
import pytest

import repro.core.ordering
import repro.obs.dashboard
import repro.obs.events
import repro.obs.metrics
import repro.pebbling.parallel
import repro.pebbling.state
import repro.service.server
import repro.store.analysis
import repro.store.db
import repro.store.keys
from repro.pebbling.state import OP_COMPUTE, OP_DELETE, OP_LOAD
from repro.pebbling.workloads import prbw_pump_game

DOCTEST_MODULES = [
    repro.core.ordering,
    repro.pebbling.state,
    repro.pebbling.parallel,
    repro.store.keys,
    repro.store.db,
    repro.store.analysis,
    repro.service.server,
    repro.obs.metrics,
    repro.obs.events,
    repro.obs.dashboard,
]

SMOKE_MOVES = 1_000_000


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_doctests_of_documented_public_surface(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0


def test_bench_smoke_million_move_prbw_game_completes():
    game = prbw_pump_game(SMOKE_MOVES)
    assert game.is_complete()
    record = game.record
    assert len(record.moves) == SMOKE_MOVES
    # columnar invariants at scale: counters derive from the opcode column
    kinds = record.log.kinds()
    bins = np.bincount(kinds, minlength=7)
    assert int(bins[OP_LOAD]) == record.load_count == SMOKE_MOVES // 2 - 3
    assert int(bins[OP_DELETE]) == (SMOKE_MOVES - 8) // 2
    assert int(bins[OP_COMPUTE]) == record.compute_count == 2
    assert record.summary()["moves"] == SMOKE_MOVES
    # a 10^6-move log should occupy numpy blocks, not a Python list
    assert len(record.log._blocks) == SMOKE_MOVES // record.log.block_size

"""Unit tests for the machine catalog (Table 1)."""

import pytest

from repro.machine import (
    ALL_MACHINES,
    CRAY_XT5,
    IBM_BGQ,
    PAPER_MACHINES,
    get_machine,
)


class TestTable1Values:
    """The published Table 1 constants must be encoded exactly."""

    def test_bgq_row(self):
        row = IBM_BGQ.as_table_row()
        assert row["nodes"] == 2048
        assert row["memory_GB"] == 16
        assert row["cache_MB"] == 32
        assert row["vertical_balance"] == pytest.approx(0.052)
        assert row["horizontal_balance"] == pytest.approx(0.049)

    def test_xt5_row(self):
        row = CRAY_XT5.as_table_row()
        assert row["nodes"] == 9408
        assert row["memory_GB"] == 16
        assert row["cache_MB"] == 6
        assert row["vertical_balance"] == pytest.approx(0.0256)
        assert row["horizontal_balance"] == pytest.approx(0.058)

    def test_derived_balances_consistent_with_published(self):
        # the raw hardware numbers were chosen to reproduce the published
        # balances; the derived values must agree to within rounding
        for m in PAPER_MACHINES:
            assert m.vertical_balance == pytest.approx(
                m.published_vertical_balance, rel=0.05
            )
            assert m.horizontal_balance == pytest.approx(
                m.published_horizontal_balance, rel=0.05
            )

    def test_bgq_cache_words_is_4_mwords(self):
        # Section 5.4.3 uses S_2 = 4 MWords for the BG/Q L2
        assert IBM_BGQ.cache_words == pytest.approx(4 * 2 ** 20)


class TestCatalogStructure:
    def test_paper_machines_subset_of_all(self):
        assert set(m.name for m in PAPER_MACHINES) <= set(m.name for m in ALL_MACHINES)

    def test_lookup_by_name_and_alias(self):
        assert get_machine("IBM BG/Q") is IBM_BGQ
        assert get_machine("bgq") is IBM_BGQ
        assert get_machine("xt5") is CRAY_XT5
        assert get_machine("cray xt5") is CRAY_XT5

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_machine("does-not-exist")

    def test_all_machines_have_positive_balances(self):
        for m in ALL_MACHINES:
            assert m.effective_vertical_balance() > 0
            assert m.effective_horizontal_balance() > 0

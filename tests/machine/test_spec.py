"""Unit tests for machine specifications and balance values."""

import pytest

from repro.machine import WORD_BYTES, MachineSpec


def make_spec(**overrides):
    base = dict(
        name="test machine",
        num_nodes=16,
        cores_per_node=8,
        memory_per_node_bytes=64 * 2 ** 30,
        cache_per_node_bytes=32 * 2 ** 20,
        peak_flops_per_core=10e9,
        dram_bandwidth_bytes=80e9,
        network_bandwidth_bytes=20e9,
    )
    base.update(overrides)
    return MachineSpec(**base)


class TestDerivedQuantities:
    def test_total_cores(self):
        assert make_spec().total_cores == 128

    def test_cache_and_memory_words(self):
        spec = make_spec()
        assert spec.cache_words == 32 * 2 ** 20 / WORD_BYTES
        assert spec.memory_words == 64 * 2 ** 30 / WORD_BYTES

    def test_peak_flops(self):
        spec = make_spec()
        assert spec.peak_flops_per_node == 80e9
        assert spec.peak_flops_total == 16 * 80e9

    def test_vertical_balance(self):
        spec = make_spec()
        assert spec.vertical_balance == pytest.approx((80e9 / 8) / 80e9)

    def test_horizontal_balance(self):
        spec = make_spec()
        assert spec.horizontal_balance == pytest.approx((20e9 / 8) / 80e9)

    def test_l1_balance_optional(self):
        assert make_spec().l1_balance is None
        spec = make_spec(l1_bandwidth_bytes=800e9)
        assert spec.l1_balance == pytest.approx((800e9 / 8) / 80e9)


class TestPublishedBalances:
    def test_effective_prefers_published(self):
        spec = make_spec(published_vertical_balance=0.05,
                         published_horizontal_balance=0.01)
        assert spec.effective_vertical_balance() == 0.05
        assert spec.effective_horizontal_balance() == 0.01

    def test_effective_falls_back_to_derived(self):
        spec = make_spec()
        assert spec.effective_vertical_balance() == spec.vertical_balance
        assert spec.effective_horizontal_balance() == spec.horizontal_balance


class TestValidationAndReporting:
    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            make_spec(num_nodes=0)
        with pytest.raises(ValueError):
            make_spec(cores_per_node=0)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            make_spec(dram_bandwidth_bytes=0)
        with pytest.raises(ValueError):
            make_spec(peak_flops_per_core=-1)

    def test_table_row_shape(self):
        row = make_spec().as_table_row()
        assert row["machine"] == "test machine"
        assert row["nodes"] == 16
        assert row["memory_GB"] == 64
        assert row["cache_MB"] == 32
        assert "vertical_balance" in row and "horizontal_balance" in row

"""Unit tests for the bandwidth-bound conditions (7)-(10)."""

import pytest

from repro.machine import (
    IBM_BGQ,
    algorithm_horizontal_intensity,
    algorithm_vertical_intensity,
    horizontal_condition,
    vertical_condition,
)


class TestIntensities:
    def test_vertical_intensity_formula(self):
        assert algorithm_vertical_intensity(1e6, 100, 1e9) == pytest.approx(1e-1)

    def test_horizontal_intensity_formula(self):
        assert algorithm_horizontal_intensity(5e3, 10, 1e6) == pytest.approx(0.05)

    def test_guards(self):
        with pytest.raises(ValueError):
            algorithm_vertical_intensity(1, 0, 1)
        with pytest.raises(ValueError):
            algorithm_vertical_intensity(-1, 1, 1)
        with pytest.raises(ValueError):
            algorithm_horizontal_intensity(1, 1, 0)


class TestVerticalCondition:
    def test_cg_is_vertically_bound_on_bgq(self):
        # the paper's CG numbers: LB 6 n^3 T / N_nodes per node, |V| = 20 n^3 T
        n, t = 1000, 1
        lb_per_node = 6 * n ** 3 * t / IBM_BGQ.num_nodes
        verdict = vertical_condition(IBM_BGQ, lb_per_node, 20 * n ** 3 * t)
        assert verdict.algorithm_side == pytest.approx(0.3)
        assert verdict.machine_side == pytest.approx(0.052)
        assert verdict.bound is True
        assert verdict.kind == "vertical"
        assert verdict.ratio > 1

    def test_light_algorithm_not_bound(self):
        verdict = vertical_condition(IBM_BGQ, lb_vertical_per_node=1.0,
                                     total_flops=1e12)
        assert verdict.bound is False

    def test_custom_node_count(self):
        v1 = vertical_condition(IBM_BGQ, 100.0, 1e6, num_nodes=10)
        v2 = vertical_condition(IBM_BGQ, 100.0, 1e6, num_nodes=100)
        assert v2.algorithm_side == pytest.approx(10 * v1.algorithm_side)


class TestHorizontalCondition:
    def test_cg_not_network_bound_on_bgq(self):
        n, t = 1000, 1
        b = n / IBM_BGQ.num_nodes ** (1 / 3)
        ub = ((b + 2) ** 3 - b ** 3) * t
        verdict = horizontal_condition(IBM_BGQ, ub, 20 * n ** 3 * t)
        assert verdict.bound is False
        assert verdict.kind == "horizontal"

    def test_heavy_communication_flagged(self):
        verdict = horizontal_condition(IBM_BGQ, ub_horizontal_per_node=1e9,
                                       total_flops=1e9)
        assert verdict.bound is True

    def test_verdict_carries_machine_name(self):
        verdict = horizontal_condition(IBM_BGQ, 1.0, 1e9)
        assert verdict.machine == "IBM BG/Q"

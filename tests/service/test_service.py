"""Tests for the memoized bound server (:mod:`repro.service`): endpoint
contracts, error mapping, concurrent single-flight behavior, and two
clients sharing one store."""

import threading

import pytest

from repro.service import ServiceClient, ServiceError, make_server
from repro.store.analysis import fresh_bound, fresh_schedule, fresh_spill


@pytest.fixture
def server(tmp_path):
    srv = make_server(tmp_path / "svc.db", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(5.0)
        srv.service.close()
        srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(f"http://127.0.0.1:{server.server_port}")


class TestIntrospection:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["store"].endswith("svc.db")

    def test_stats_reports_traffic_and_store(self, client):
        client.bound(builder="chain", params={"length": 8}, s=2)
        client.bound(builder="chain", params={"length": 8}, s=2)
        stats = client.stats()
        assert stats["requests"]["/v1/bound"] == 2
        store = stats["store"]
        assert store["journal_mode"] == "wal"
        assert store["entries"] >= 2  # compiled + bound
        assert store["counters"]["puts"] >= 2
        assert 0 < store["hit_rate"] <= 1


class TestEndpoints:
    def test_bound_cold_then_warm(self, client):
        cold = client.bound(builder="diamond",
                            params={"width": 3, "depth": 3}, s=2)
        warm = client.bound(builder="diamond",
                            params={"width": 3, "depth": 3}, s=2)
        assert cold["cached"] is False and warm["cached"] is True
        expected = fresh_bound("diamond", {"width": 3, "depth": 3}, s=2)
        assert warm["value"] == cold["value"] == expected["value"]
        assert warm["key"] == cold["key"] and len(cold["key"]) == 64

    def test_bound_methods(self, client):
        analytical = client.bound(builder="butterfly",
                                  params={"log_n": 3}, s=2,
                                  method="analytical")
        assert analytical["value"] == fresh_bound(
            "butterfly", {"log_n": 3}, s=2, method="analytical"
        )["value"]
        hong_kung = client.bound(builder="chain", params={"length": 12},
                                 s=2, method="hong_kung", u_upper=40.0)
        assert hong_kung["value"] == fresh_bound(
            "chain", {"length": 12}, s=2, method="hong_kung", u_upper=40.0
        )["value"]

    def test_compiled(self, client):
        r = client.compiled(builder="grid",
                            params={"shape": [4, 4], "timesteps": 2})
        assert r["cached"] is False
        assert r["n"] > 0 and r["m"] > 0 and r["nbytes"] > 0
        assert client.compiled(
            builder="grid", params={"shape": [4, 4], "timesteps": 2}
        )["cached"] is True

    def test_schedule_with_ids(self, client):
        r = client.schedule(builder="chain", params={"length": 6},
                            kind="dfs", include_ids=True)
        expected = fresh_schedule("chain", {"length": 6}, kind="dfs")
        assert r["length"] == len(expected)
        assert r["ids"] == [int(i) for i in expected]
        # ids are omitted unless asked for
        r2 = client.schedule(builder="chain", params={"length": 6})
        assert "ids" not in r2 and r2["cached"] is True

    def test_pebble(self, client):
        params = {"workload": "star", "ops": 8, "degree": 3}
        r = client.pebble(params=params)
        expected = fresh_spill(params)
        assert r["moves"] == expected["moves"]
        assert r["io"] == expected["io"]
        assert client.pebble(params=params)["cached"] is True


class TestErrors:
    def test_unknown_builder_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.bound(builder="nope")
        assert exc.value.status == 400
        assert "unknown builder" in exc.value.message

    def test_unknown_param_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.compiled(builder="chain", params={"bogus": 1})
        assert exc.value.status == 400

    def test_missing_u_upper_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.bound(builder="chain", method="hong_kung")
        assert exc.value.status == 400
        assert "u_upper" in exc.value.message

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.get("/v1/nothing")
        assert exc.value.status == 404

    def test_malformed_json_is_400(self, client):
        import urllib.request

        req = urllib.request.Request(
            client.base_url + "/v1/bound",
            data=b"not json{",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400


class TestConcurrency:
    def test_identical_concurrent_requests_single_flight(self, server,
                                                         client):
        """N identical in-flight bound queries compute once; the rest
        wait on the single-flight lock and read the published bytes."""
        results = []
        errors = []

        def worker():
            try:
                results.append(
                    client.bound(builder="grid",
                                 params={"shape": [6, 6], "timesteps": 2},
                                 s=4)
                )
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        assert len({r["value"] for r in results}) == 1
        assert len({r["key"] for r in results}) == 1
        counters = server.service.store.counters
        # one compiled + one bound artifact computed, everyone else hit
        assert counters["puts"] == 2
        assert sum(1 for r in results if not r["cached"]) <= 2

    def test_two_clients_share_one_store(self, server):
        """The CI concurrent-clients smoke: two independent clients see
        each other's artifacts through the shared store."""
        base = f"http://127.0.0.1:{server.server_port}"
        a, b = ServiceClient(base), ServiceClient(base)
        cold = a.bound(builder="tree", params={"num_leaves": 8}, s=2)
        warm = b.bound(builder="tree", params={"num_leaves": 8}, s=2)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["value"] == cold["value"]
        assert warm["key"] == cold["key"]

"""Connection-level retry behavior of :class:`ServiceClient`: bounded,
exponentially backed off, jittered — and never applied to HTTP error
responses, which must fail fast."""

import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient, ServiceError


class _FakeResponse:
    def __init__(self, payload=b'{"ok": true}'):
        self._payload = payload

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def read(self):
        return self._payload


def test_retries_validation():
    with pytest.raises(ValueError, match="retries"):
        ServiceClient("http://x", retries=-1)


def test_default_is_no_retry(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    with pytest.raises(urllib.error.URLError):
        ServiceClient("http://x").get("/health")
    assert len(calls) == 1


def test_connection_errors_retried_then_succeed(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        if len(calls) < 3:
            raise urllib.error.URLError("connection refused")
        return _FakeResponse()

    sleeps = []
    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(
        "repro.service.client.time.sleep", sleeps.append
    )
    client = ServiceClient("http://x", retries=4, backoff_s=0.1)
    assert client.get("/health") == {"ok": True}
    assert len(calls) == 3
    # exponential backoff with jitter in [0.5, 1.0] of the nominal delay
    assert len(sleeps) == 2
    assert 0.05 <= sleeps[0] <= 0.1
    assert 0.1 <= sleeps[1] <= 0.2


def test_retry_budget_exhausts(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(
        "repro.service.client.time.sleep", lambda s: None
    )
    with pytest.raises(urllib.error.URLError):
        ServiceClient("http://x", retries=3).get("/health")
    assert len(calls) == 4  # initial attempt + 3 retries


def test_http_errors_are_never_retried(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.HTTPError(
            req.full_url, 400, "Bad Request", hdrs=None, fp=None
        )

    def no_sleep(s):  # pragma: no cover - would mean a retry happened
        raise AssertionError("an HTTP error response must not be retried")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr("repro.service.client.time.sleep", no_sleep)
    with pytest.raises(ServiceError) as err:
        ServiceClient("http://x", retries=5).get("/health")
    assert err.value.status == 400
    assert len(calls) == 1

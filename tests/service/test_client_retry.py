"""Connection-level retry behavior of :class:`ServiceClient`: bounded,
exponentially backed off, jittered — and never applied to HTTP error
responses, which must fail fast."""

import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient, ServiceError


class _FakeResponse:
    def __init__(self, payload=b'{"ok": true}'):
        self._payload = payload

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def read(self):
        return self._payload


def test_retries_validation():
    with pytest.raises(ValueError, match="retries"):
        ServiceClient("http://x", retries=-1)


def test_default_is_no_retry(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    with pytest.raises(urllib.error.URLError):
        ServiceClient("http://x").get("/health")
    assert len(calls) == 1


def test_connection_errors_retried_then_succeed(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        if len(calls) < 3:
            raise urllib.error.URLError("connection refused")
        return _FakeResponse()

    sleeps = []
    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(
        "repro.service.client.time.sleep", sleeps.append
    )
    client = ServiceClient("http://x", retries=4, backoff_s=0.1)
    assert client.get("/health") == {"ok": True}
    assert len(calls) == 3
    # exponential backoff with jitter in [0.5, 1.0] of the nominal delay
    assert len(sleeps) == 2
    assert 0.05 <= sleeps[0] <= 0.1
    assert 0.1 <= sleeps[1] <= 0.2


def test_retry_budget_exhausts(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(
        "repro.service.client.time.sleep", lambda s: None
    )
    with pytest.raises(urllib.error.URLError):
        ServiceClient("http://x", retries=3).get("/health")
    assert len(calls) == 4  # initial attempt + 3 retries


def test_jitter_uses_private_rng_not_module_global(monkeypatch):
    """Retry jitter must come from a per-client ``random.Random``, not
    the module-global generator: a process-wide ``random.seed(...)``
    (seeded tests, seeded workers) must neither correlate every
    client's backoff into a retry storm nor have its own stream
    perturbed by a client's retries."""
    import random

    def fake_urlopen(req, timeout=None):
        raise urllib.error.URLError("connection refused")

    sleeps = []
    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)

    random.seed(1234)
    expected_stream = [random.random() for _ in range(8)]
    random.seed(1234)
    with pytest.raises(urllib.error.URLError):
        ServiceClient("http://x", retries=3, backoff_s=0.1).get("/health")
    assert len(sleeps) == 3  # the client did jitter...
    # ...without consuming from the seeded module-global stream
    assert [random.random() for _ in range(8)] == expected_stream


def test_two_seeded_clients_decorrelate(monkeypatch):
    """Even under a global seed, two clients draw different jitter
    (their private RNGs are OS-entropy seeded)."""
    import random

    def fake_urlopen(req, timeout=None):
        raise urllib.error.URLError("connection refused")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    random.seed(0)

    def jitter_of(client):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        with pytest.raises(urllib.error.URLError):
            client.get("/health")
        return sleeps

    a = jitter_of(ServiceClient("http://x", retries=6, backoff_s=0.1))
    b = jitter_of(ServiceClient("http://x", retries=6, backoff_s=0.1))
    # 6 draws each from independent OS-entropy-seeded generators:
    # identical sequences would mean they share (seeded) state
    assert a != b


def test_http_errors_are_never_retried(monkeypatch):
    calls = []

    def fake_urlopen(req, timeout=None):
        calls.append(req)
        raise urllib.error.HTTPError(
            req.full_url, 400, "Bad Request", hdrs=None, fp=None
        )

    def no_sleep(s):  # pragma: no cover - would mean a retry happened
        raise AssertionError("an HTTP error response must not be retried")

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr("repro.service.client.time.sleep", no_sleep)
    with pytest.raises(ServiceError) as err:
        ServiceClient("http://x", retries=5).get("/health")
    assert err.value.status == 400
    assert len(calls) == 1

"""``GET /metrics`` on the bound server: schema, pinned counter and
histogram values, monotonic-counter properties across scrapes, and the
mirrored artifact-store counters."""

import threading

import pytest

from repro.obs import OBS_SCHEMA
from repro.obs.metrics import dumps_snapshot
from repro.service import ServiceClient, make_server
from repro.service.server import SERVICE_SCHEMA


@pytest.fixture
def server(tmp_path):
    srv = make_server(tmp_path / "svc.db", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(5.0)
        srv.service.close()
        srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(f"http://127.0.0.1:{server.server_port}")


class TestSchema:
    def test_payload_shape(self, client):
        view = client.metrics()
        assert view["schema"] == SERVICE_SCHEMA
        assert view["obs_schema"] == OBS_SCHEMA
        assert view["uptime_s"] >= 0
        snap = view["metrics"]
        assert snap["schema"] == OBS_SCHEMA
        assert set(snap) == {"schema", "counters", "gauges", "histograms"}
        assert isinstance(view["events"], list)

    def test_canonical_json_round_trip(self, client):
        # the payload must survive the canonical encoder (sorted keys,
        # compact, non-finite rejected) — i.e. it is JSON-safe
        view = client.metrics()
        assert dumps_snapshot(view["metrics"])


class TestCounters:
    def test_request_counters_pinned(self, client):
        client.health()
        client.health()
        client.bound(builder="chain", params={"length": 8}, s=2)
        counters = client.metrics()["metrics"]["counters"]
        assert counters["http.requests{GET /health}"] == 2
        assert counters["http.requests{POST /v1/bound}"] == 1

    def test_error_counter(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            client.bound(builder="nope", params={}, s=2)
        counters = client.metrics()["metrics"]["counters"]
        assert counters["http.errors{POST /v1/bound}"] == 1
        assert counters["http.requests{POST /v1/bound}"] == 1

    def test_counters_monotonic_across_scrapes(self, client):
        # a scrape's own request lands in the *next* snapshot (the
        # counter ticks after dispatch) — prime once so the counter
        # exists in both scrapes below
        client.metrics()
        first = client.metrics()["metrics"]["counters"]
        client.health()
        client.bound(builder="chain", params={"length": 8}, s=2)
        second = client.metrics()["metrics"]["counters"]
        for name, value in first.items():
            assert second.get(name, 0) >= value, name
        # the scrape counts itself: strictly increasing here
        assert second["http.requests{GET /metrics}"] > \
            first["http.requests{GET /metrics}"]


class TestHistograms:
    def test_latency_histograms_per_endpoint(self, client):
        client.health()
        client.bound(builder="chain", params={"length": 8}, s=2)
        hists = client.metrics()["metrics"]["histograms"]
        h = hists["http.latency_s{GET /health}"]
        assert h["count"] == 1
        assert sum(h["buckets"]) == 1
        assert len(h["buckets"]) == len(h["edges"]) + 1
        assert hists["http.latency_s{POST /v1/bound}"]["count"] == 1


class TestStoreMirror:
    def test_store_counters_surface_in_scrape(self, client):
        client.bound(builder="chain", params={"length": 8}, s=2)  # cold
        client.bound(builder="chain", params={"length": 8}, s=2)  # warm
        counters = client.metrics()["metrics"]["counters"]
        assert counters["store.puts"] >= 2  # compiled + bound
        assert counters["store.hits"] >= 1
        assert counters["store.misses"] >= 1

    def test_gc_pass_event_and_counters(self, tmp_path):
        from repro.service.server import BoundService
        from repro.store.db import ArtifactStore

        service = BoundService(ArtifactStore(tmp_path / "s.db"))
        try:
            service.store.gc()
            counters = service.metrics.snapshot()["counters"]
            assert counters["store.gc_passes"] == 1
            kinds = [e["kind"] for e in service.events.snapshot()]
            assert "gc.pass" in kinds
        finally:
            service.close()

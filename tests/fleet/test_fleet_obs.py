"""Fleet observability: controller metrics/events/failure rows, the
``GET /metrics`` endpoint, and the end-to-end failure dashboard — a
SIGKILLed cell surfaces in ``repro fleet status --failures`` with its
attempt count, signal name, and backoff state."""

import threading

import pytest

from repro.cli import main
from repro.evaluation.harness import ExperimentDef, RunSpec
from repro.fleet import FleetClient, FleetWorker, make_fleet_server
from repro.fleet.controller import FleetController, spec_to_wire
from repro.obs import OBS_SCHEMA


def _run_quick(params, seed):
    return [{"x": int(params.get("x", 2)), "seed": seed}]


TEST_REGISTRY = {"quick": ExperimentDef("quick", _run_quick, {"x": 2})}


def _quiet(msg):
    pass


def make_controller(root, **kw):
    kw.setdefault("registry", TEST_REGISTRY)
    kw.setdefault("log", _quiet)
    return FleetController(root, **kw)


def _submit(controller, n=1):
    controller.submit_grid([
        spec_to_wire(RunSpec("quick", {"x": i}, 0, f"cell{i}"))
        for i in range(n)
    ])


class TestControllerInstrumentation:
    def test_lease_lifecycle_counters_and_events(self, tmp_path):
        clock = [0.0]
        c = make_controller(tmp_path, lease_ttl_s=5.0,
                            clock=lambda: clock[0])
        _submit(c)
        c.register("w1", slots=1)
        c.lease("w1")
        clock[0] += 10.0  # expire the lease
        view = c.metrics_view()
        counters = view["metrics"]["counters"]
        assert counters["fleet.grids_submitted"] == 1
        assert counters["fleet.workers_registered"] == 1
        assert counters["fleet.leases_granted"] == 1
        assert counters["fleet.leases_expired"] == 1
        assert counters["fleet.cells_requeued"] == 1
        kinds = [e["kind"] for e in view["events"]]
        for kind in ("grid.submitted", "worker.registered",
                     "lease.granted", "cell.started", "lease.expired",
                     "cell.requeued"):
            assert kind in kinds, kind

    def test_failure_report_carries_signal_name(self, tmp_path):
        c = make_controller(tmp_path, max_retries=0)
        _submit(c)
        c.lease("w1")
        c.report("w1", "cell0", ok=False,
                 error="worker killed by SIGKILL")
        view = c.metrics_view()
        assert view["metrics"]["counters"]["fleet.cells_failed"] == 1
        attempt = next(e for e in view["events"]
                       if e["kind"] == "cell.attempt_failed")
        assert attempt["signal"] == "SIGKILL"
        failed = next(e for e in view["events"]
                      if e["kind"] == "cell.failed")
        assert failed["signal"] == "SIGKILL"

    def test_failures_rows_shape(self, tmp_path):
        clock = [0.0]
        c = make_controller(tmp_path, max_retries=2, backoff_s=8.0,
                            clock=lambda: clock[0])
        _submit(c, n=2)
        c.lease("w1")
        c.report("w1", "cell0", ok=False,
                 error="worker killed by SIGSEGV")
        rows = c.failures()
        assert len(rows) == 1  # cell1 never failed: not a row
        row = rows[0]
        assert row["label"] == "cell0"
        assert row["state"] == "delayed"
        assert row["attempts"] == 1 and row["max_retries"] == 2
        assert row["last_signal"] == "SIGSEGV"
        assert row["backoff_in_s"] == pytest.approx(8.0)

    def test_clean_run_has_no_failure_rows(self, tmp_path):
        c = make_controller(tmp_path)
        _submit(c)
        assert c.failures() == []

    def test_metrics_view_schema(self, tmp_path):
        c = make_controller(tmp_path)
        view = c.metrics_view()
        assert view["obs_schema"] == OBS_SCHEMA
        assert view["uptime_s"] >= 0
        assert set(view) >= {"schema", "metrics", "events", "failures"}


@pytest.fixture
def fleet(tmp_path):
    """In-process fleet server with fault-friendly knobs; yields
    ``(url, root)``."""
    root = tmp_path / "fleet"
    server = make_fleet_server(
        root, port=0, lease_ttl_s=5.0, backoff_s=0.05, max_retries=1,
        registry=TEST_REGISTRY, log=_quiet,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", root
    finally:
        server.shutdown()
        thread.join(5.0)
        server.server_close()


class TestMetricsEndpoint:
    def test_http_scrape(self, fleet):
        url, _root = fleet
        client = FleetClient(url)
        client.submit_grid(
            [spec_to_wire(RunSpec("quick", {"x": 1}, 0, "only"))]
        )
        client.lease("w1")
        view = client.metrics()
        counters = view["metrics"]["counters"]
        assert counters["fleet.grids_submitted"] == 1
        assert counters["fleet.leases_granted"] == 1
        assert counters["http.requests{POST /v1/grid}"] == 1
        assert counters["http.requests{POST /v1/lease}"] == 1
        hists = view["metrics"]["histograms"]
        assert hists["http.latency_s{POST /v1/lease}"]["count"] == 1

    def test_scrape_counters_monotonic(self, fleet):
        url, _root = fleet
        client = FleetClient(url)
        client.metrics()  # prime the scrape's own counter
        first = client.metrics()["metrics"]["counters"]
        client.health()
        second = client.metrics()["metrics"]["counters"]
        for name, value in first.items():
            assert second.get(name, 0) >= value, name
        assert second["http.requests{GET /metrics}"] > \
            first["http.requests{GET /metrics}"]


class TestFailureDashboardEndToEnd:
    def test_sigkilled_cells_surface_in_fleet_status_failures(
            self, fleet, monkeypatch, capsys):
        """Fault injection end to end: every cell process SIGKILLs
        itself mid-run (REPRO_HARNESS_KILL_AT), the retry budget burns
        out, and the CLI dashboard names the cell, its attempts, and
        the signal."""
        url, root = fleet
        client = FleetClient(url)
        client.submit_grid(
            [spec_to_wire(RunSpec("quick", {"x": 1}, 0, "doomed"))]
        )
        # forked cell processes inherit the env: every attempt dies
        monkeypatch.setenv("REPRO_HARNESS_KILL_AT", "row:1")
        worker = FleetWorker(url, root, name="w1", slots=1,
                             registry=TEST_REGISTRY, log=_quiet)
        result = worker.run()
        assert result["failed"] >= 1

        status = client.status()
        assert status["complete"]
        assert "doomed" in status["failed"]

        # worker-side instrumentation saw the signal too
        assert worker.metrics.counter("worker.cells_failed").value >= 1
        failed_evt = worker.events.last("cell.failed")
        assert failed_evt["signal"] == "SIGKILL"

        assert main(["fleet", "status", url, "--failures"]) == 0
        out = capsys.readouterr().out
        assert "doomed" in out
        assert "SIGKILL" in out
        assert "failed" in out
        assert "2/2" in out  # 1 first run + max_retries=1, all burned

    def test_failures_flag_all_clear(self, fleet, capsys):
        url, _root = fleet
        assert main(["fleet", "status", url, "--failures"]) == 0
        assert "no failures" in capsys.readouterr().out

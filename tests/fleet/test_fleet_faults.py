"""Fleet fault injection: SIGKILLed workers, dropped heartbeats, and a
SIGKILLed controller mid-grid — the sweep survives all three, committed
cells never re-execute, and the final store is byte-identical to an
uninterrupted sequential sweep."""

import json
import os
import signal
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.evaluation.harness import (
    ExperimentDef,
    RunSpec,
    _mp_context,
    run_grid,
)
from repro.fleet import FleetClient, FleetWorker, fleet_sweep, serve_fleet
from repro.fleet.controller import spec_to_wire

ARTIFACTS = ("manifest.json", "metrics.jsonl", "summary.json")


def _cell_bytes(root):
    root = Path(root)
    out = {}
    for cell in sorted(p.name for p in root.iterdir() if p.is_dir()):
        for name in ARTIFACTS:
            raw = (root / cell / name).read_bytes()
            if name == "manifest.json":
                manifest = json.loads(raw)
                manifest.get("provenance", {}).pop("created_utc", None)
                raw = json.dumps(manifest, sort_keys=True).encode()
            out[(cell, name)] = raw
    return out


# Worker/cell targets must be importable from the module under fork.
def _run_quick(params, seed):
    return [{"x": int(params.get("x", 2)), "seed": seed}]


def _run_first_run_hangs(params, seed):
    """Hangs (until killed) the first time it runs, instant afterwards:
    the flag file marks that a first execution started."""
    flag = params["flag"]
    if not os.path.exists(flag):
        Path(flag).touch()
        time.sleep(120.0)
    return [{"ok": 1, "seed": seed}]


def _run_gated(params, seed):
    """Blocks until the gate file exists (lets a test freeze a cell
    mid-execution deterministically)."""
    deadline = time.time() + 60.0
    while not os.path.exists(params["gate"]):
        if time.time() > deadline:  # pragma: no cover - hung test guard
            raise RuntimeError("gate never opened")
        time.sleep(0.02)
    return [{"ok": 1, "seed": seed}]


FAULT_REGISTRY = {
    "quick": ExperimentDef("quick", _run_quick, {"x": 2}),
    "first_run_hangs": ExperimentDef(
        "first_run_hangs", _run_first_run_hangs, {}
    ),
    "gated": ExperimentDef("gated", _run_gated, {}),
}


def _quiet(msg):
    pass


def _worker_proc_main(url, root, name):
    """Entry point for a worker process that a test will SIGKILL.  The
    new session puts the worker and its cell subprocesses in one process
    group, so killing the group models a machine dying mid-cell."""
    os.setsid()
    FleetWorker(
        url, root, name=name, slots=1, registry=FAULT_REGISTRY, log=_quiet
    ).run()


def _controller_proc_main(root, port):
    serve_fleet(
        root,
        port=port,
        lease_ttl_s=0.4,
        backoff_s=0.05,
        registry=FAULT_REGISTRY,
        log=_quiet,
    )


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _wait(predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached in time")


@pytest.fixture
def fault_fleet(tmp_path):
    """In-process controller with fault-friendly knobs (short TTL, short
    backoff, FAULT_REGISTRY); yields ``(url, root)``."""
    from repro.fleet import make_fleet_server

    root = tmp_path / "fleet"
    server = make_fleet_server(
        root, port=0, lease_ttl_s=0.4, backoff_s=0.05,
        registry=FAULT_REGISTRY, log=_quiet,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", root
    finally:
        server.shutdown()
        thread.join(5.0)
        server.server_close()


def test_sigkilled_worker_mid_cell_is_replaced(fault_fleet, tmp_path):
    """Kill a worker's whole process group while it executes a cell:
    the lease expires, the cell re-queues, and a healthy worker finishes
    the grid.  Final bytes match an uninterrupted sequential run."""
    url, root = fault_fleet
    flag = tmp_path / "started.flag"
    specs = [
        RunSpec("first_run_hangs", {"flag": str(flag)}, 0, "hangs"),
        RunSpec("quick", {"x": 3}, 0, "quick"),
    ]
    client = FleetClient(url)
    client.submit_grid([spec_to_wire(s) for s in specs])

    ctx = _mp_context()
    victim = ctx.Process(
        target=_worker_proc_main, args=(url, str(root), "victim")
    )
    victim.start()
    # wait until the victim is actually mid-cell on the hanging one
    _wait(flag.exists)
    _wait(lambda: any(
        lease["label"] == "hangs" for lease in client.status()["leases"]
    ))
    os.killpg(victim.pid, signal.SIGKILL)
    victim.join(10.0)
    assert victim.exitcode == -signal.SIGKILL

    status_mid = client.status()
    assert not status_mid["complete"]

    rescuer = FleetWorker(url, root, name="rescuer", slots=1,
                          registry=FAULT_REGISTRY, log=_quiet)
    result = rescuer.run()
    final = client.status()
    assert final["complete"] and not final["failed"]
    assert sorted(final["done"]) == ["hangs", "quick"]
    assert result["executed"] >= 1

    # reference: uninterrupted sequential run (flag exists, so the
    # flaky cell takes its instant path — same rows either way)
    ref = run_grid(specs, tmp_path / "ref", registry=FAULT_REGISTRY,
                   log=_quiet)
    assert not ref.failed
    assert _cell_bytes(root) == _cell_bytes(tmp_path / "ref")


def test_dropped_heartbeats_forfeit_the_lease(fault_fleet):
    """A worker that leases a cell and never heartbeats loses it after
    the TTL; its eventual report is acknowledged without effect."""
    url, _root = fault_fleet
    client = FleetClient(url)
    client.submit_grid(
        [spec_to_wire(RunSpec("quick", {"x": 1}, 0, "only"))]
    )
    zombie = FleetClient(url)
    zombie.register("zombie", slots=1)
    assert zombie.lease("zombie")["cell"]["label"] == "only"
    time.sleep(0.6)  # > lease_ttl_s, no heartbeat
    assert zombie.heartbeat("zombie", ["only"])["lost"] == ["only"]
    _wait(lambda: client.status()["cells"]["pending"] == 1)
    lease = client.lease("fresh-worker")
    assert lease["cell"]["label"] == "only" and lease["attempt"] == 1
    assert zombie.report("zombie", "only", ok=True)["accepted"] is False


def test_sigkilled_controller_restart_resumes_without_recompute(tmp_path):
    """SIGKILL the controller process mid-grid (cells committed, one
    leased and mid-execution), restart a fresh controller over the same
    results root, resubmit: committed cells are skipped untouched, the
    in-flight cell re-runs, and the final store is byte-identical to an
    uninterrupted sequential sweep."""
    root = tmp_path / "fleet"
    gate = tmp_path / "open.gate"
    specs = [
        RunSpec("quick", {"x": 1}, 0, "quick1"),
        RunSpec("quick", {"x": 2}, 0, "quick2"),
        RunSpec("gated", {"gate": str(gate)}, 0, "gated"),
    ]
    ctx = _mp_context()

    port = _free_port()
    controller = ctx.Process(target=_controller_proc_main,
                             args=(str(root), port))
    controller.start()
    url = f"http://127.0.0.1:{port}"
    client = FleetClient(url, retries=20, backoff_s=0.05)
    _wait(lambda: client.health()["status"] == "ok")
    client.submit_grid([spec_to_wire(s) for s in specs])

    # worker with a fail-fast client so it exits soon after the kill
    worker_exc = []

    def run_worker():
        try:
            FleetWorker(
                url, root, name="w1", slots=1, registry=FAULT_REGISTRY,
                client=FleetClient(url, retries=1, backoff_s=0.02),
                log=_quiet,
            ).run()
        except Exception as exc:  # the controller died under it
            worker_exc.append(exc)

    worker = threading.Thread(target=run_worker, daemon=True)
    worker.start()

    # grid order: both quick cells commit, then the gated cell blocks
    # mid-execution -> SIGKILL the controller exactly there
    _wait(lambda: sorted(client.status()["done"]) == ["quick1", "quick2"]
          and client.status()["cells"]["leased"] == 1)
    os.kill(controller.pid, signal.SIGKILL)
    controller.join(10.0)
    assert controller.exitcode == -signal.SIGKILL
    worker.join(30.0)
    assert not worker.is_alive()

    committed = {
        label: (root / label / "summary.json").stat().st_mtime_ns
        for label in ("quick1", "quick2")
    }

    # restart: fresh controller process, same results root
    gate.touch()  # un-freeze the gated experiment for the re-run
    port2 = _free_port()
    controller2 = ctx.Process(target=_controller_proc_main,
                              args=(str(root), port2))
    controller2.start()
    url2 = f"http://127.0.0.1:{port2}"
    client2 = FleetClient(url2, retries=20, backoff_s=0.05)
    _wait(lambda: client2.health()["status"] == "ok")

    rescue = threading.Thread(
        target=lambda: FleetWorker(
            url2, root, name="w2", slots=1, registry=FAULT_REGISTRY,
            log=_quiet,
        ).run(),
        daemon=True,
    )
    rescue.start()
    status = fleet_sweep(url2, specs, poll_s=0.1, timeout_s=60, log=_quiet)
    rescue.join(30.0)
    try:
        assert status["complete"] and not status["failed"]
        assert sorted(status["skipped"]) == ["quick1", "quick2"]
        assert status["done"] == ["gated"]
        # the committed cells were never touched, let alone re-executed
        for label, mtime_ns in committed.items():
            assert (
                root / label / "summary.json"
            ).stat().st_mtime_ns == mtime_ns
        ref = run_grid(specs, tmp_path / "ref", registry=FAULT_REGISTRY,
                       log=_quiet)
        assert not ref.failed
        assert _cell_bytes(root) == _cell_bytes(tmp_path / "ref")
    finally:
        os.kill(controller2.pid, signal.SIGTERM)
        controller2.join(10.0)
        if controller2.is_alive():  # pragma: no cover - stuck server
            controller2.kill()
            controller2.join()


def test_crashing_cell_exhausts_retries_and_fails_the_cell(fault_fleet):
    """A cell whose process dies by signal is retried with backoff and
    eventually marked failed, naming the signal; the rest of the grid
    still completes."""
    url, root = fault_fleet
    specs = [
        RunSpec("first_run_hangs", {"flag": "/nonexistent/dir/x"}, 0, "bad"),
        RunSpec("quick", {"x": 5}, 0, "good"),
    ]
    # os.path.exists on an unreadable path is False -> touch() raises ->
    # the cell process exits nonzero every attempt
    client = FleetClient(url)
    client.submit_grid([spec_to_wire(s) for s in specs])
    worker = FleetWorker(url, root, name="w1", slots=1,
                         registry=FAULT_REGISTRY, log=_quiet)
    result = worker.run()
    status = client.status()
    assert status["complete"]
    assert status["done"] == ["good"]
    assert "bad" in status["failed"]
    assert "exited with code" in status["failed"]["bad"]
    assert result["failed"] >= 1

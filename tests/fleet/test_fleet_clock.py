"""Clock-correctness regression tests for the fleet controller: every
lease/backoff/staleness interval runs on the injectable monotonic
``clock``, so tests can step time deterministically and wall-clock
jumps (NTP corrections, VM resume) can neither mass-expire leases nor
immortalize them."""

import time

import pytest

from repro.evaluation.harness import ExperimentDef, RunSpec
from repro.fleet.controller import FleetController, spec_to_wire


def _run_quick(params, seed):
    return [{"x": int(params.get("x", 2)), "seed": seed}]


TEST_REGISTRY = {"quick": ExperimentDef("quick", _run_quick, {"x": 2})}


class SteppingClock:
    """A fake monotonic clock tests advance by hand."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_controller(root, clock, **kw):
    kw.setdefault("registry", TEST_REGISTRY)
    kw.setdefault("log", lambda m: None)
    return FleetController(root, clock=clock, **kw)


def _submit(controller, n=1):
    controller.submit_grid([
        spec_to_wire(RunSpec("quick", {"x": i}, 0, f"cell{i}"))
        for i in range(n)
    ])


class TestSteppedClock:
    def test_lease_expires_exactly_past_ttl(self, tmp_path):
        clock = SteppingClock()
        c = make_controller(tmp_path, clock, lease_ttl_s=10.0)
        _submit(c)
        assert c.lease("w1")["cell"]["label"] == "cell0"

        clock.advance(9.999)  # within the TTL: still leased
        assert c.status()["cells"]["leased"] == 1

        clock.advance(0.002)  # past it: expired and re-queued
        status = c.status()
        assert status["cells"]["leased"] == 0
        assert status["cells"]["pending"] + status["cells"]["delayed"] == 1

    def test_heartbeat_renews_on_the_stepped_clock(self, tmp_path):
        clock = SteppingClock()
        c = make_controller(tmp_path, clock, lease_ttl_s=10.0)
        _submit(c)
        c.lease("w1")
        clock.advance(8.0)
        assert c.heartbeat("w1", ["cell0"])["lost"] == []
        clock.advance(8.0)  # 16s total, but renewed at 8s: still live
        assert c.status()["cells"]["leased"] == 1
        clock.advance(10.5)
        assert c.heartbeat("w1", ["cell0"])["lost"] == ["cell0"]

    def test_backoff_eligibility_steps_with_the_clock(self, tmp_path):
        clock = SteppingClock()
        c = make_controller(tmp_path, clock, lease_ttl_s=10.0,
                            backoff_s=4.0, max_retries=3)
        _submit(c)
        c.lease("w1")
        c.report("w1", "cell0", ok=False, error="boom")
        # first re-queue backs off backoff_s * 2**0 = 4s
        assert c.lease("w1")["cell"] is None
        clock.advance(3.9)
        assert c.lease("w1")["cell"] is None
        clock.advance(0.2)
        assert c.lease("w1")["cell"]["label"] == "cell0"

    def test_uptime_reports_the_injected_clock(self, tmp_path):
        clock = SteppingClock(start=100.0)
        c = make_controller(tmp_path, clock)
        clock.advance(42.0)
        assert c.health()["uptime_s"] == pytest.approx(42.0)
        assert c.status()["uptime_s"] == pytest.approx(42.0)


class TestWallClockImmunity:
    def test_wall_clock_jump_does_not_expire_leases(self, tmp_path,
                                                    monkeypatch):
        """With the default monotonic clock, a huge forward wall-clock
        step must not touch lease arithmetic (the pre-fix behavior used
        ``time.time()`` and would mass-expire here)."""
        c = make_controller(tmp_path, time.monotonic, lease_ttl_s=30.0)
        _submit(c)
        assert c.lease("w1")["cell"]["label"] == "cell0"

        monkeypatch.setattr(time, "time", lambda: time.monotonic() + 1e9)
        status = c.status()
        assert status["cells"]["leased"] == 1
        assert status["cells"]["delayed"] == 0
        lease = status["leases"][0]
        assert lease["expires_in_s"] > 0

    def test_backwards_wall_clock_does_not_immortalize_backoff(
            self, tmp_path, monkeypatch):
        """A backwards wall-clock step must not push a delayed cell's
        eligibility into the far future."""
        clock = SteppingClock()
        c = make_controller(tmp_path, clock, backoff_s=1.0)
        _submit(c)
        c.lease("w1")
        c.report("w1", "cell0", ok=False, error="boom")
        monkeypatch.setattr(time, "time", lambda: -1e9)
        clock.advance(1.1)  # past the 1s backoff on the real interval
        assert c.lease("w1")["cell"]["label"] == "cell0"

"""End-to-end fleet sweeps over localhost HTTP: a controller plus two
polling workers produce results byte-identical to ``sweep --jobs 1``,
resubmission skips every committed cell, and the CLI surfaces wire the
same machinery."""

import json
import threading
from pathlib import Path

import pytest

from repro.cli import main
from repro.evaluation.harness import run_grid, smoke_grid
from repro.fleet import FleetClient, FleetWorker, fleet_sweep, make_fleet_server

ARTIFACTS = ("manifest.json", "metrics.jsonl", "summary.json")


def _cell_bytes(root):
    """Committed cell artifacts, byte for byte — except the manifest's
    ``created_utc`` wall-clock stamp, which legitimately differs between
    two otherwise-identical sweeps."""
    root = Path(root)
    out = {}
    for cell in sorted(p.name for p in root.iterdir() if p.is_dir()):
        for name in ARTIFACTS:
            raw = (root / cell / name).read_bytes()
            if name == "manifest.json":
                manifest = json.loads(raw)
                manifest.get("provenance", {}).pop("created_utc", None)
                raw = json.dumps(manifest, sort_keys=True).encode()
            out[(cell, name)] = raw
    return out


@pytest.fixture
def fleet(tmp_path):
    """A running controller over ``tmp_path / 'fleet'``; yields
    ``(url, root)``."""
    root = tmp_path / "fleet"
    server = make_fleet_server(
        root, port=0, lease_ttl_s=10.0, backoff_s=0.05, log=lambda m: None
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", root
    finally:
        server.shutdown()
        thread.join(5.0)
        server.server_close()


def _spawn_workers(url, root, n, slots=1):
    results = []

    def run(i):
        worker = FleetWorker(
            url, root, name=f"w{i}", slots=slots, log=lambda m: None
        )
        results.append(worker.run())

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(n)
    ]
    for t in threads:
        t.start()
    return threads, results


def test_two_worker_fleet_matches_local_sweep(fleet, tmp_path):
    url, root = fleet
    specs = smoke_grid(seed=0)
    threads, worker_results = _spawn_workers(url, root, n=2)
    status = fleet_sweep(
        url, specs, poll_s=0.1, timeout_s=300, log=lambda m: None
    )
    for t in threads:
        t.join(30.0)
    assert status["complete"] and not status["failed"]
    assert sorted(status["done"]) == sorted(s.label for s in specs)
    # the work was actually split across both workers
    assert sum(r["executed"] for r in worker_results) == len(specs)
    assert all(r["failed"] == 0 for r in worker_results)
    # byte-identical to an uninterrupted local sequential sweep
    seq = run_grid(specs, tmp_path / "seq", log=lambda m: None)
    assert not seq.failed
    assert _cell_bytes(root) == _cell_bytes(tmp_path / "seq")

    # resubmitting the same grid is a pure resume: nothing re-executes
    # (no workers are even attached any more)
    resubmit = FleetClient(url).submit_grid(
        [
            {
                "experiment": s.experiment,
                "params": dict(s.params),
                "seed": s.seed,
                "label": s.label,
            }
            for s in specs
        ]
    )
    assert resubmit["queued"] == 0
    assert resubmit["skipped"] == len(specs)

    # ``sweep --fleet URL`` drives the same path from the CLI
    assert main(["sweep", "--grid", "smoke", "--fleet", url]) == 0

    # ``fleet status URL`` prints the controller state as JSON
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert main(["fleet", "status", url]) == 0
    printed = json.loads(buf.getvalue())
    assert printed["complete"] is True
    assert sorted(printed["skipped"]) == sorted(s.label for s in specs)


def test_health_endpoint(fleet):
    url, _root = fleet
    health = FleetClient(url).health()
    assert health["status"] == "ok"
    assert health["cells"]["total"] == 0
    assert health["complete"] is False  # no grid submitted yet

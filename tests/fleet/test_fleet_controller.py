"""Unit tests for :class:`repro.fleet.FleetController` — queue, lease,
retry, and resume logic, exercised directly (no HTTP, no processes)."""

import time

import pytest

from repro.evaluation.harness import ExperimentDef, RunSpec, run_grid
from repro.fleet.controller import (
    FleetController,
    spec_from_wire,
    spec_to_wire,
)


def _run_quick(params, seed):
    return [{"x": int(params.get("x", 2)), "seed": seed}]


TEST_REGISTRY = {"quick": ExperimentDef("quick", _run_quick, {"x": 2})}


def _specs(n):
    return [RunSpec("quick", {"x": i}, 0, f"cell{i}") for i in range(n)]


def _wire(specs):
    return [spec_to_wire(s) for s in specs]


def make_controller(root, **kw):
    kw.setdefault("registry", TEST_REGISTRY)
    kw.setdefault("log", lambda m: None)
    return FleetController(root, **kw)


def _commit(specs, root):
    """Actually execute cells into ``root`` (the real commit protocol,
    so the controller's done-verification passes)."""
    run_grid(specs, root, registry=TEST_REGISTRY, log=lambda m: None)


class TestWire:
    def test_spec_roundtrip_preserves_hash(self):
        spec = RunSpec("quick", {"b": 2, "a": [1, 2]}, 7, "lbl")
        back = spec_from_wire(spec_to_wire(spec))
        assert back == spec and back.hash() == spec.hash()


class TestSubmit:
    def test_rejects_empty_unknown_and_duplicates(self, tmp_path):
        ctl = make_controller(tmp_path)
        with pytest.raises(ValueError, match="at least one"):
            ctl.submit_grid([])
        with pytest.raises(ValueError, match="unknown experiment"):
            ctl.submit_grid(
                [{"experiment": "nope", "params": {}, "label": "x"}]
            )
        cells = _wire(_specs(1))
        with pytest.raises(ValueError, match="duplicate"):
            ctl.submit_grid(cells + cells)

    def test_rejects_second_grid_while_active(self, tmp_path):
        ctl = make_controller(tmp_path)
        ctl.submit_grid(_wire(_specs(1)))
        with pytest.raises(ValueError, match="already active"):
            ctl.submit_grid(_wire(_specs(1)))

    def test_resume_skips_committed_cells(self, tmp_path):
        specs = _specs(3)
        _commit(specs[:2], tmp_path)
        ctl = make_controller(tmp_path)
        out = ctl.submit_grid(_wire(specs))
        assert out == {"queued": 1, "skipped": 2, "stale": 0, "partial": 0}
        resp = ctl.lease("w1")
        assert resp["cell"]["label"] == "cell2"


class TestLeaseAndReport:
    def test_verified_done_and_unverified_requeue(self, tmp_path):
        specs = _specs(2)
        ctl = make_controller(tmp_path, backoff_s=0.01)
        ctl.submit_grid(_wire(specs))
        lease = ctl.lease("w1")
        label = lease["cell"]["label"]
        # done-report without a committed summary -> treated as failure
        assert ctl.report("w1", label, ok=True)["accepted"]
        assert label not in ctl.status()["done"]
        # the real thing: execute the cell, then report
        time.sleep(0.03)
        lease = ctl.lease("w1")
        assert lease["cell"]["label"] == "cell1"
        _commit([specs[1]], tmp_path)
        assert ctl.report("w1", "cell1", ok=True)["accepted"]
        assert "cell1" in ctl.status()["done"]

    def test_report_requires_the_lease(self, tmp_path):
        ctl = make_controller(tmp_path)
        ctl.submit_grid(_wire(_specs(1)))
        ctl.lease("w1")
        out = ctl.report("intruder", "cell0", ok=True)
        assert out["accepted"] is False and "lease" in out["reason"]

    def test_slot_cap_is_enforced(self, tmp_path):
        ctl = make_controller(tmp_path)
        ctl.register("w1", slots=1)
        ctl.submit_grid(_wire(_specs(2)))
        assert ctl.lease("w1")["cell"] is not None
        denied = ctl.lease("w1")
        assert denied["cell"] is None and "capacity" in denied["reason"]
        # a second worker still gets the other cell
        assert ctl.lease("w2")["cell"] is not None

    def test_failure_backs_off_exponentially_then_fails(self, tmp_path):
        ctl = make_controller(tmp_path, backoff_s=0.02, max_retries=2)
        ctl.submit_grid(_wire(_specs(1)))
        for expected_delay in (0.02, 0.04):
            label = ctl.lease("w1")["cell"]["label"]
            ctl.report("w1", label, ok=False, error="boom")
            status = ctl.status()
            (entry,) = status["delayed"]
            assert entry["eligible_in_s"] <= expected_delay
            assert ctl.lease("w1")["cell"] is None  # still backing off
            time.sleep(expected_delay + 0.02)
        label = ctl.lease("w1")["cell"]["label"]
        ctl.report("w1", label, ok=False, error="boom")
        status = ctl.status()
        assert status["complete"] is True
        assert "boom" in status["failed"]["cell0"]


class TestLeaseExpiry:
    def test_expired_lease_requeues_for_another_worker(self, tmp_path):
        ctl = make_controller(tmp_path, lease_ttl_s=0.05, backoff_s=0.01)
        ctl.submit_grid(_wire(_specs(1)))
        assert ctl.lease("w1")["cell"]["label"] == "cell0"
        time.sleep(0.1)
        # w1's heartbeat now reports the cell as lost...
        assert ctl.heartbeat("w1", ["cell0"])["lost"] == ["cell0"]
        # ...and, once the re-queue backoff elapses, another worker
        # picks it up (attempt bumped)
        time.sleep(0.03)
        lease = ctl.lease("w2")
        assert lease["cell"]["label"] == "cell0" and lease["attempt"] == 1
        # the dead worker's late report is acknowledged without effect
        assert ctl.report("w1", "cell0", ok=True)["accepted"] is False

    def test_heartbeat_extends_the_lease(self, tmp_path):
        ctl = make_controller(tmp_path, lease_ttl_s=0.15)
        ctl.submit_grid(_wire(_specs(1)))
        ctl.lease("w1")
        deadline = time.monotonic() + 0.4
        while time.monotonic() < deadline:
            assert ctl.heartbeat("w1", ["cell0"])["lost"] == []
            time.sleep(0.03)
        assert ctl.status()["leases"][0]["worker"] == "w1"


class TestIntrospection:
    def test_health_and_status_shapes(self, tmp_path):
        ctl = make_controller(tmp_path)
        health = ctl.health()
        assert health["status"] == "ok" and health["complete"] is False
        ctl.register("w1", slots=2)
        ctl.submit_grid(_wire(_specs(2)))
        status = ctl.status()
        assert status["cells"]["pending"] == 2
        assert status["workers"][0]["slots"] == 2
        assert status["pending"] == ["cell0", "cell1"]

    def test_http_dispatch_maps_errors(self, tmp_path):
        ctl = make_controller(tmp_path)
        assert ctl.handle("GET", "/nope", None)[0] == 404
        status, body = ctl.handle("POST", "/v1/grid", {"cells": "x"})
        assert status == 400 and "cells" in body["error"]
        status, body = ctl.handle("POST", "/v1/lease", {})
        assert status == 400
        assert ctl.handle("GET", "/health", None)[0] == 200

"""Integration tests spanning multiple packages.

These exercise the main end-to-end paths a user of the library follows:
trace a real solver, derive bounds from the resulting CDAG, compare
against pebble games and against the simulated cluster, and evaluate the
machine-balance verdicts of the paper.
"""

import pytest

from repro.algorithms import (
    analyze_cg,
    analyze_gmres,
    analyze_jacobi,
    cg_iteration_cdag,
    traced_cg_cdag,
)
from repro.bounds import (
    automated_wavefront_bound,
    cg_vertical_lower_bound,
    jacobi_io_lower_bound,
    sum_of_bounds,
)
from repro.core import grid_stencil_cdag, partition_from_game
from repro.core.partition import check_rbw_partition
from repro.distsim import DistributedExecutor, SimulatedCluster
from repro.machine import CRAY_XT5, IBM_BGQ
from repro.pebbling import (
    MemoryHierarchy,
    parallel_spill_game,
    spill_game_rbw,
)
from repro.solvers import Grid, run_heat_equation


class TestTraceToBoundsPipeline:
    def test_traced_cg_bound_sandwich(self):
        """Trace real CG, compute a Lemma-2 lower bound and a spill-game
        upper bound on its CDAG, and check the sandwich."""
        grid = Grid(shape=(2, 2))
        _, cdag = traced_cg_cdag(grid, iterations=1)
        s = 6
        lb = automated_wavefront_bound(cdag, s=s).value
        ub = spill_game_rbw(cdag, num_red=max(s, 7)).io_count
        assert 0 <= lb <= ub

    def test_structural_and_traced_cg_have_matching_wavefront_scale(self):
        grid = Grid(shape=(2, 2))
        nd = grid.num_points
        _, traced = traced_cg_cdag(grid, iterations=1)
        structural = cg_iteration_cdag(grid.shape, 1)
        wt = automated_wavefront_bound(traced, s=0).wavefront
        ws = automated_wavefront_bound(structural, s=0).wavefront
        assert wt >= 2 * nd and ws >= 2 * nd

    def test_theorem1_machinery_on_traced_cdag(self):
        grid = Grid(shape=(2, 2))
        _, cdag = traced_cg_cdag(grid, iterations=1)
        s = 7
        record = spill_game_rbw(cdag, num_red=s)
        part = partition_from_game(cdag, record.moves, s)
        assert check_rbw_partition(cdag, part) == []
        assert record.io_count >= s * (part.h - 1)


class TestStencilPipelines:
    def test_jacobi_cdag_parallel_game_and_bound(self):
        shape, t = (4, 4), 2
        cdag = grid_stencil_cdag(shape, t)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=8, cache_size=24
        )
        record = parallel_spill_game(cdag, hierarchy)
        # the vertical traffic at the node memories dominates the
        # Theorem-10 bound evaluated with the cache capacity
        lb = jacobi_io_lower_bound(shape[0], t, 24, 2,
                                   processors=hierarchy.num_nodes)
        assert record.max_vertical_io_at_level(3) + record.io_count >= lb

    def test_cluster_measurement_consistent_with_executor(self):
        shape, t, nodes, cache = (12, 12), 2, 4, 48
        cluster_rep = SimulatedCluster(nodes, cache, 2).run_stencil(shape, t)
        cdag = grid_stencil_cdag(shape, t)
        exec_rep = DistributedExecutor(nodes, cache).run(
            cdag, partitioner=lambda v: 0 if v[0] != "st" else (
                (v[2] * 2) // shape[0] * 2 + (v[3] * 2) // shape[1]
            )
        )
        # both measure non-trivial vertical and horizontal traffic
        assert cluster_rep.max_vertical > 0 and exec_rep.max_vertical > 0
        assert cluster_rep.max_horizontal > 0 and exec_rep.total_horizontal > 0

    def test_decomposition_of_stencil_over_timesteps(self):
        # Theorem 2: summing per-timestep bounds is a valid bound for the
        # whole CDAG; check it stays below an actual game's I/O.
        shape, t, s = (6,), 3, 4
        cdag = grid_stencil_cdag(shape, t)
        per_step_bounds = []
        for step in range(1, t + 1):
            verts = [v for v in cdag.vertices if v[1] == step]
            sub = cdag.induced_subgraph(verts)
            per_step_bounds.append(
                (f"t={step}", automated_wavefront_bound(sub, s=s).value)
            )
        total = sum_of_bounds(per_step_bounds).total
        ub = spill_game_rbw(cdag, num_red=s).io_count
        assert total <= ub


class TestSolverToAnalysisPipeline:
    def test_heat_run_feeds_balance_analysis(self):
        grid = Grid(shape=(8, 8))
        result = run_heat_equation(grid, timesteps=2, solver="cg", tol=1e-10)
        total_cg_iterations = result.total_inner_iterations
        assert total_cg_iterations > 0
        analysis = analyze_cg(IBM_BGQ, n=8, dimensions=2,
                              iterations=total_cg_iterations)
        assert analysis.vertical_intensity == pytest.approx(0.3)

    def test_paper_narrative_across_machines(self):
        for machine in (IBM_BGQ, CRAY_XT5):
            cg = analyze_cg(machine)
            gmres10 = analyze_gmres(machine, krylov_iterations=10)
            jacobi3 = analyze_jacobi(machine, dimensions=3, count_flops=True)
            assert cg.vertical_verdict.bound
            assert gmres10.vertical_verdict.bound
            assert not jacobi3.vertical_verdict.bound
            assert not cg.horizontal_verdict.bound
            assert not gmres10.horizontal_verdict.bound

    def test_cg_lower_bound_scales_with_grid_and_iterations(self):
        small = cg_vertical_lower_bound(10, 1, 3)
        larger_grid = cg_vertical_lower_bound(20, 1, 3)
        more_iters = cg_vertical_lower_bound(10, 4, 3)
        assert larger_grid == pytest.approx(8 * small)
        assert more_iters == pytest.approx(4 * small)

"""Property-based tests (hypothesis) for ``MoveLog.merge`` and
``MoveLog.select_columns``.

Merge properties, for arbitrary valid shard logs (arbitrary rows, block
sizes, spill settings, and non-decreasing key arrays):

* **count-preserving** — the merged log holds exactly the union of the
  input rows; per-kind counts are the elementwise sums;
* **order-stable** — the merged rows equal the reference interleave
  sorted by ``(key, input index, input row)``;
* **replayable** — re-splitting a real complete game's log burst-wise
  and merging it back reproduces the original columns exactly, and the
  merged log replays green through the rule-checking engine.

Select properties: for arbitrary logs and arbitrary column subsets (in
any order), the column-selective read agrees chunk-for-chunk with the
full :meth:`iter_chunks` read.

``hypothesis`` is a test extra (``pip install .[test]``); the module
skips cleanly when it is absent so tier-1 never hard-depends on it.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.builders import grid_stencil_cdag  # noqa: E402
from repro.pebbling import MoveLog, RBWPebbleGame, spill_game_rbw  # noqa: E402
from repro.pebbling.state import _NUM_OPCODES  # noqa: E402

_SETTINGS = dict(max_examples=30, deadline=None)

#: one move row: (kind, vid, loc, src) — locs/srcs either absent (-1) or
#: a packed (level, index) instance
row_strategy = st.tuples(
    st.integers(min_value=0, max_value=_NUM_OPCODES - 1),
    st.integers(min_value=0, max_value=99),
    st.one_of(
        st.just(-1),
        st.integers(min_value=1, max_value=3).map(lambda lv: (lv << 24) | 1),
    ),
    st.just(-1),
)

log_rows_strategy = st.lists(row_strategy, min_size=0, max_size=60)


def build_log(rows, block_size, spill, tmp_base=None):
    log = MoveLog(
        block_size=block_size,
        spill=(tmp_base if spill else False),
    )
    for kind, vid, loc, src in rows:
        log.append_ids(kind, vid, loc, src)
    return log


def nondecreasing_keys(draw, n):
    steps = draw(
        st.lists(
            st.integers(min_value=0, max_value=3), min_size=n, max_size=n
        )
    )
    return np.cumsum(steps, dtype=np.int64) if n else np.empty(0, np.int64)


@st.composite
def merge_case(draw):
    num_logs = draw(st.integers(min_value=1, max_value=4))
    cases = []
    for _ in range(num_logs):
        rows = draw(log_rows_strategy)
        block_size = draw(st.integers(min_value=1, max_value=16))
        spill = draw(st.booleans())
        keys = nondecreasing_keys(draw, len(rows))
        cases.append((rows, block_size, spill, keys))
    return cases


def reference_merge(cases):
    """Spec: all rows sorted stably by (key, log index, row index)."""
    tagged = []
    for j, (rows, _, _, keys) in enumerate(cases):
        for r, (row, key) in enumerate(zip(rows, keys.tolist())):
            tagged.append((key, j, r, row))
    tagged.sort(key=lambda t: (t[0], t[1], t[2]))
    return [t[3] for t in tagged]


class TestMergeProperties:
    @settings(**_SETTINGS)
    @given(case=merge_case(), out_block=st.integers(min_value=1, max_value=32))
    def test_merge_is_stable_and_count_preserving(
        self, case, out_block, tmp_path_factory
    ):
        base = str(tmp_path_factory.mktemp("merge"))
        logs = [
            build_log(rows, bs, spill, base)
            for rows, bs, spill, _ in case
        ]
        merged = MoveLog.merge(
            logs,
            [keys for _, _, _, keys in case],
            block_size=out_block,
        )
        expected = reference_merge(case)
        # count-preserving
        assert len(merged) == sum(len(rows) for rows, _, _, _ in case)
        ref_counts = {}
        for log in logs:
            for kind, cnt in log.counts().items():
                ref_counts[kind] = ref_counts.get(kind, 0) + cnt
        assert merged.counts() == ref_counts
        # order-stable: full column equality against the reference
        kinds, vids, locs, srcs = merged.columns()
        got = list(
            zip(kinds.tolist(), vids.tolist(), locs.tolist(), srcs.tolist())
        )
        assert got == expected
        for log in logs:
            log.close()
        merged.close()

    @settings(**_SETTINGS)
    @given(
        case=merge_case(),
        vid_offsets=st.lists(
            st.integers(min_value=0, max_value=50), min_size=4, max_size=4
        ),
    )
    def test_merge_vid_maps_translate_ids(self, case, vid_offsets):
        logs = [build_log(rows, bs, False) for rows, bs, _, _ in case]
        vid_maps = [
            np.arange(100, dtype=np.int32) + off
            for off in vid_offsets[: len(case)]
        ]
        merged = MoveLog.merge(
            logs,
            [keys for _, _, _, keys in case],
            vid_maps=vid_maps,
        )
        expected = reference_merge(
            [
                ([(k, v + off, lo, s) for k, v, lo, s in rows], bs, sp, keys)
                for (rows, bs, sp, keys), off in zip(
                    case, vid_offsets
                )
            ]
        )
        assert merged.vertex_ids().tolist() == [v for _, v, _, _ in expected]

    def test_merge_validation_errors(self):
        log = MoveLog()
        log.append_ids(0, 1)
        with pytest.raises(ValueError, match="one key array per log"):
            MoveLog.merge([log], [])
        with pytest.raises(ValueError, match="entries"):
            MoveLog.merge([log], [[1, 2]])
        log.append_ids(0, 2)
        with pytest.raises(ValueError, match="non-decreasing"):
            MoveLog.merge([log], [[2, 1]])
        with pytest.raises(ValueError, match="one vid map"):
            MoveLog.merge([log], [[1, 2]], vid_maps=[])

    @settings(**_SETTINGS)
    @given(
        splits=st.lists(
            st.integers(min_value=0, max_value=2), min_size=36, max_size=36
        )
    )
    def test_split_and_merge_replays_green(self, splits):
        """Distributing a real game's macro-step bursts over k logs and
        merging them back by burst position reproduces the original log
        — which then replays green through the rule checker."""
        cdag = grid_stencil_cdag((6,), 6)
        c = cdag.compiled()
        marks = []
        record = spill_game_rbw(cdag, 4, step_marks=marks)
        kinds, vids, locs, srcs = record.log.columns()
        bounds = [0] + marks
        k = 3
        shards = [MoveLog(compiled=c) for _ in range(k)]
        keys = [[] for _ in range(k)]
        for b in range(len(marks)):
            j = splits[b % len(splits)]
            lo, hi = bounds[b], bounds[b + 1]
            for r in range(lo, hi):
                shards[j].append_ids(
                    int(kinds[r]), int(vids[r]), int(locs[r]), int(srcs[r])
                )
                keys[j].append(b)
        merged = MoveLog.merge(shards, keys, compiled=c)
        assert merged.kinds().tolist() == kinds.tolist()
        assert merged.vertex_ids().tolist() == vids.tolist()
        replayed = RBWPebbleGame(cdag, 4).replay(merged)
        assert replayed.summary() == record.summary()


class TestSelectColumnsProperties:
    @settings(**_SETTINGS)
    @given(
        rows=log_rows_strategy,
        block_size=st.integers(min_value=1, max_value=16),
        spill=st.booleans(),
        subset=st.lists(
            st.sampled_from(
                ["kinds", "vertex_ids", "locations", "sources"]
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    def test_selected_reads_agree_with_full_reads(
        self, rows, block_size, spill, subset, tmp_path_factory
    ):
        base = str(tmp_path_factory.mktemp("sel"))
        log = build_log(rows, block_size, spill, base)
        full = {
            "kinds": log.kinds(),
            "vertex_ids": log.vertex_ids(),
            "locations": log.locations(),
            "sources": log.sources(),
        }
        chunks = list(log.select_columns(*subset))
        if rows:
            for pos, name in enumerate(subset):
                cat = np.concatenate([c[pos] for c in chunks])
                assert np.array_equal(cat, full[name]), name
        else:
            assert chunks == []
        # chunk boundaries line up with iter_chunks
        assert [len(c[0]) for c in chunks] == [
            len(c[0]) for c in log.iter_chunks()
        ]
        log.close()

    def test_select_columns_rejects_unknown_names(self):
        log = MoveLog()
        with pytest.raises(ValueError, match="unknown column"):
            log.select_columns("steps")
        with pytest.raises(ValueError, match="at least one"):
            log.select_columns()

"""Unit tests for the pebbling strategies (upper-bound game generators)."""

import pytest

from repro.core import (
    chain_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    min_liveset_schedule,
    outer_product_cdag,
    reduction_tree_cdag,
)
from repro.pebbling import (
    GameError,
    MemoryHierarchy,
    contiguous_block_assignment,
    parallel_spill_game,
    spill_game_rbw,
    spill_game_redblue,
)
from repro.bounds import outer_product_io


class TestSequentialSpillGames:
    def test_chain_needs_exactly_two_io(self):
        record = spill_game_rbw(chain_cdag(10), num_red=2)
        assert record.io_count == 2
        assert record.compute_count == 10

    def test_outer_product_io_lower_bounded_by_formula(self):
        c = outer_product_cdag(4)
        record = spill_game_rbw(c, num_red=6)
        assert record.io_count >= outer_product_io(4)
        assert record.store_count >= 16

    def test_outer_product_with_ample_memory_hits_formula(self):
        n = 3
        c = outer_product_cdag(n)
        record = spill_game_rbw(c, num_red=2 * n + 2)
        assert record.io_count == outer_product_io(n)

    def test_more_pebbles_never_increases_io(self):
        c = diamond_cdag(6, 5)
        io_small = spill_game_rbw(c, num_red=4).io_count
        io_large = spill_game_rbw(c, num_red=32).io_count
        assert io_large <= io_small

    def test_belady_not_worse_than_lru(self):
        c = grid_stencil_cdag((6,), 4)
        lru = spill_game_rbw(c, num_red=4, policy="lru").io_count
        belady = spill_game_rbw(c, num_red=4, policy="belady").io_count
        assert belady <= lru

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            spill_game_rbw(chain_cdag(2), 2, policy="random")

    def test_insufficient_pebbles_rejected(self):
        c = reduction_tree_cdag(4)
        with pytest.raises(GameError):
            spill_game_rbw(c, num_red=2)

    def test_custom_schedule_used(self):
        c = reduction_tree_cdag(8)
        sched = min_liveset_schedule(c)
        record = spill_game_rbw(c, num_red=4, schedule=sched)
        assert record.compute_count == len(c.operations)

    def test_redblue_strategy_matches_rbw_on_chain(self):
        c = chain_cdag(5)
        assert (
            spill_game_redblue(c, 2).io_count == spill_game_rbw(c, 2).io_count == 2
        )

    def test_every_output_gets_stored(self):
        c = independent_chains_cdag(3, 3)
        record = spill_game_rbw(c, num_red=4)
        assert record.store_count >= 3

    def test_io_counts_loads_of_all_used_inputs(self):
        c = reduction_tree_cdag(8)
        record = spill_game_rbw(c, num_red=4)
        assert record.load_count >= 8


class TestContiguousAssignment:
    def test_assignment_covers_all_vertices(self):
        c = diamond_cdag(6, 4)
        a = contiguous_block_assignment(c, 4)
        assert set(a) == set(c.vertices)
        assert set(a.values()) <= set(range(4))

    def test_assignment_balanced(self):
        c = diamond_cdag(8, 4)
        a = contiguous_block_assignment(c, 4)
        ops = [v for v in c.vertices if not c.is_input(v)]
        counts = [sum(1 for v in ops if a[v] == p) for p in range(4)]
        assert max(counts) - min(counts) <= max(1, len(ops) // 4)

    def test_inputs_follow_first_consumer(self):
        c = chain_cdag(4)
        a = contiguous_block_assignment(c, 2)
        assert a[("chain", 0)] == a[("chain", 1)]

    def test_single_processor_assignment(self):
        c = chain_cdag(3)
        a = contiguous_block_assignment(c, 1)
        assert set(a.values()) == {0}


class TestParallelSpillGame:
    @pytest.fixture
    def cluster(self):
        return MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=6, cache_size=16
        )

    def test_complete_game_produced(self, cluster):
        c = diamond_cdag(6, 4)
        record = parallel_spill_game(c, cluster)
        assert record.compute_count == len(c.operations)
        assert sum(record.compute_per_processor.values()) == len(c.operations)

    def test_horizontal_traffic_only_with_multiple_nodes(self):
        c = diamond_cdag(6, 4)
        single = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=4, registers_per_core=6, cache_size=16
        )
        multi = MemoryHierarchy.cluster(
            nodes=4, cores_per_node=1, registers_per_core=6, cache_size=16
        )
        rec_single = parallel_spill_game(c, single)
        rec_multi = parallel_spill_game(c, multi)
        # remote gets can only happen across nodes
        remote_single = sum(
            1 for m in rec_single.moves if m.kind.name == "REMOTE_GET"
        )
        remote_multi = sum(
            1 for m in rec_multi.moves if m.kind.name == "REMOTE_GET"
        )
        assert remote_single == 0
        assert remote_multi > 0

    def test_vertical_traffic_recorded_per_instance(self, cluster):
        c = diamond_cdag(6, 3)
        record = parallel_spill_game(c, cluster)
        assert record.total_vertical_io > 0
        levels = {lvl for (lvl, _idx) in record.vertical_io}
        assert levels <= {2, 3}

    def test_requires_unbounded_top_level(self):
        c = chain_cdag(2)
        bounded = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=1, registers_per_core=4,
            cache_size=8, memory_size=64,
        )
        with pytest.raises(GameError):
            parallel_spill_game(c, bounded)

    def test_custom_assignment_respected(self, cluster):
        c = chain_cdag(4)
        assignment = {v: 3 for v in c.vertices}
        record = parallel_spill_game(c, cluster, assignment=assignment)
        assert set(record.compute_per_processor) == {3}

    def test_missing_assignment_rejected(self, cluster):
        c = chain_cdag(3)
        with pytest.raises(GameError):
            parallel_spill_game(c, cluster, assignment={("chain", 0): 0})

    def test_small_registers_rejected(self):
        c = grid_stencil_cdag((4,), 2)  # in-degree 3 => needs >= 4 registers
        h = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=1, registers_per_core=2, cache_size=8
        )
        with pytest.raises(GameError):
            parallel_spill_game(c, h)

    def test_stencil_workload_runs(self):
        c = grid_stencil_cdag((5, 5), 2)
        h = MemoryHierarchy.cluster(
            nodes=4, cores_per_node=1, registers_per_core=8, cache_size=20
        )
        record = parallel_spill_game(c, h)
        assert record.compute_count == 25 * 2
        assert record.total_horizontal_io > 0

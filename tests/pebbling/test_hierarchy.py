"""Unit tests for the memory-hierarchy description."""

import pytest

from repro.pebbling import LevelSpec, MemoryHierarchy


class TestLevelSpec:
    def test_valid_level(self):
        spec = LevelSpec(count=4, capacity=16)
        assert spec.count == 4 and spec.capacity == 16

    def test_unbounded_capacity(self):
        assert LevelSpec(count=1, capacity=None).capacity is None

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            LevelSpec(count=0, capacity=4)
        with pytest.raises(ValueError):
            LevelSpec(count=1, capacity=0)


class TestHierarchyShape:
    def test_two_level_sequential(self):
        h = MemoryHierarchy.two_level(num_red=8)
        assert h.num_levels == 2
        assert h.num_processors == 1
        assert h.num_nodes == 1
        assert h.capacity(1) == 8
        assert h.capacity(2) is None

    def test_cluster_shape(self):
        h = MemoryHierarchy.cluster(
            nodes=4, cores_per_node=8, registers_per_core=32, cache_size=1024
        )
        assert h.num_levels == 3
        assert h.num_processors == 32
        assert h.num_nodes == 4
        assert h.instances(2) == 4
        assert h.processors_per_instance(2) == 8
        assert h.aggregate_capacity(1) == 32 * 32

    def test_shared_memory_node(self):
        h = MemoryHierarchy.shared_memory_node(
            cores=4, registers_per_core=16, cache_size=256
        )
        assert h.num_nodes == 1
        assert h.processors_per_instance(2) == 4

    def test_counts_must_be_non_increasing(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([LevelSpec(2, 4), LevelSpec(4, None)])

    def test_counts_must_divide(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([LevelSpec(6, 4), LevelSpec(4, None)])

    def test_level_bounds_checked(self):
        h = MemoryHierarchy.two_level(4)
        with pytest.raises(ValueError):
            h.capacity(0)
        with pytest.raises(ValueError):
            h.capacity(3)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])


class TestTreeStructure:
    @pytest.fixture
    def cluster(self):
        return MemoryHierarchy.cluster(
            nodes=2, cores_per_node=4, registers_per_core=8, cache_size=64
        )

    def test_parent_instance(self, cluster):
        assert cluster.parent_instance(1, 0) == (2, 0)
        assert cluster.parent_instance(1, 5) == (2, 1)
        assert cluster.parent_instance(2, 1) == (3, 1)

    def test_top_level_has_no_parent(self, cluster):
        with pytest.raises(ValueError):
            cluster.parent_instance(3, 0)

    def test_child_instances(self, cluster):
        assert cluster.child_instances(2, 0) == [(1, 0), (1, 1), (1, 2), (1, 3)]
        assert cluster.child_instances(1, 0) == []

    def test_parent_child_consistency(self, cluster):
        for level in (2, 3):
            for idx in range(cluster.instances(level)):
                for child in cluster.child_instances(level, idx):
                    assert cluster.parent_instance(child[0], child[1]) == (level, idx)

    def test_instance_of_processor(self, cluster):
        assert cluster.instance_of_processor(1, 3) == (1, 3)
        assert cluster.instance_of_processor(2, 3) == (2, 0)
        assert cluster.instance_of_processor(3, 5) == (3, 1)

    def test_processors_of_instance(self, cluster):
        assert cluster.processors_of_instance(2, 1) == [4, 5, 6, 7]
        assert cluster.processors_of_instance(3, 0) == [0, 1, 2, 3]

    def test_processor_index_validated(self, cluster):
        with pytest.raises(ValueError):
            cluster.instance_of_processor(1, 99)

    def test_instance_index_validated(self, cluster):
        with pytest.raises(ValueError):
            cluster.parent_instance(1, 99)

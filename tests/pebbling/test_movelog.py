"""Unit and equivalence tests for the columnar move log.

The equivalence classes here pin the columnar-log engines to the seed's
per-``Move``-object semantics: replaying a recorded log — through the
column fast path *and* through materialized ``Move`` objects — must
reproduce identical columns, counters and partitions on randomized CDAGs.
"""

import numpy as np
import pytest

from repro.core.builders import chain_cdag, diamond_cdag
from repro.core.ordering import topological_schedule
from repro.core.partition import partition_from_game
from repro.distsim.executor import DistributedExecutor
from repro.pebbling import (
    GameRecord,
    MemoryHierarchy,
    Move,
    MoveKind,
    MoveLog,
    ParallelRBWPebbleGame,
    RBWPebbleGame,
    RedBluePebbleGame,
    parallel_spill_game,
    spill_game_rbw,
    spill_game_redblue,
)
from repro.pebbling.state import (
    OP_COMPUTE,
    OP_DELETE,
    OP_LOAD,
    OP_STORE,
    decode_instance,
    encode_instance,
)


def columns_of(record):
    return record.log.columns()


def assert_same_columns(a, b):
    for col_a, col_b in zip(columns_of(a), columns_of(b)):
        assert np.array_equal(col_a, col_b)


class TestMoveLogBasics:
    def test_block_flush_preserves_order(self):
        log = MoveLog(block_size=8)
        rec = GameRecord(log=log)
        for k in range(21):
            rec.append(Move(MoveKind.LOAD if k % 2 else MoveKind.STORE, k))
        assert len(log) == 21
        assert len(log._blocks) == 2  # two full blocks + staging tail
        kinds = log.kinds()
        assert kinds.tolist() == [
            (OP_LOAD if k % 2 else OP_STORE) for k in range(21)
        ]
        # appending after reading columns invalidates the cache
        rec.append(Move(MoveKind.COMPUTE, 99))
        assert log.kinds().tolist()[-1] == OP_COMPUTE

    def test_lazy_move_view_roundtrip(self):
        moves = [
            Move(MoveKind.LOAD, "a"),
            Move(MoveKind.COMPUTE, "b", location=(1, 0)),
            Move(MoveKind.REMOTE_GET, "c", location=(3, 1), source=(3, 0)),
        ]
        log = MoveLog()
        for m in moves:
            log.append(m)
        assert list(log) == moves
        assert log[0] == moves[0]
        assert log[-1] == moves[-1]
        assert log[1:] == moves[1:]
        with pytest.raises(IndexError):
            log[3]

    def test_located_after_unlocated_backfills(self):
        log = MoveLog(block_size=4)
        log.append_ids(OP_LOAD, 0)
        log.append_ids(OP_STORE, 1)
        log.append_ids(OP_COMPUTE, 2, encode_instance((1, 3)))
        locs = log.locations()
        assert locs.tolist()[:2] == [-1, -1]
        assert decode_instance(int(locs[2])) == (1, 3)
        # flush the block, then keep appending
        for k in range(6):
            log.append_ids(OP_DELETE, k, encode_instance((2, k)))
        assert len(log) == 9
        assert decode_instance(int(log.locations()[-1])) == (2, 5)

    def test_counts_and_ids_of_kind(self):
        log = MoveLog()
        for vid, code in [(0, OP_LOAD), (1, OP_COMPUTE), (0, OP_STORE),
                          (2, OP_COMPUTE), (0, OP_DELETE)]:
            log.append_ids(code, vid)
        assert log.counts() == {
            MoveKind.LOAD: 1,
            MoveKind.STORE: 1,
            MoveKind.COMPUTE: 2,
            MoveKind.DELETE: 1,
        }
        assert log.ids_of_kind(MoveKind.COMPUTE).tolist() == [1, 2]
        assert log.steps.tolist() == [0, 1, 2, 3, 4]

    def test_unbound_record_interns_vertices(self):
        rec = GameRecord()
        rec.append(Move(MoveKind.LOAD, ("x", 1)))
        rec.append(Move(MoveKind.LOAD, ("y", 2)))
        rec.append(Move(MoveKind.STORE, ("x", 1)))
        assert [m.vertex for m in rec.moves] == [("x", 1), ("y", 2), ("x", 1)]
        assert rec.log.vertex_ids().tolist() == [-1, -2, -1]
        assert not rec.log.is_bound_to(None)

    def test_instance_codec(self):
        assert encode_instance(None) == -1
        assert decode_instance(-1) is None
        for inst in [(1, 0), (3, 7), (5, (1 << 24) - 1)]:
            assert decode_instance(encode_instance(inst)) == inst


class TestEngineLogEquivalence:
    """Columnar engines pinned to per-Move semantics on randomized CDAGs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("spill", [spill_game_rbw, spill_game_redblue])
    def test_replay_column_and_move_paths_agree(self, seed, spill, random_dag):
        cdag = random_dag(seed, 30)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        record = spill(cdag, s)
        engine = (
            RBWPebbleGame(cdag, s)
            if spill is spill_game_rbw
            else RedBluePebbleGame(cdag, s, strict=False)
        )
        # column fast path (GameRecord -> bound MoveLog)
        fast = engine.replay(record)
        assert_same_columns(fast, record)
        assert fast.peak_red == record.peak_red
        assert fast.summary() == record.summary()
        # materialized-Move reference path on a *fresh* engine state
        slow = engine.replay(list(record.moves))
        assert_same_columns(slow, record)
        assert slow.summary() == record.summary()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_partition_from_game_column_path_matches_reference(
        self, seed, random_dag
    ):
        cdag = random_dag(seed, 40)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        record = spill_game_rbw(cdag, s)
        fast = partition_from_game(cdag, record.moves, s)
        ref = partition_from_game(cdag, list(record.moves), s)
        assert fast.s == ref.s
        assert fast.subsets == ref.subsets

    @pytest.mark.parametrize("seed", [0, 1])
    def test_parallel_replay_reproduces_record(self, seed, random_dag):
        cdag = random_dag(seed, 25)
        max_deg = max(cdag.in_degree(v) for v in cdag.vertices)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2,
            cores_per_node=2,
            registers_per_core=max_deg + 2,
            cache_size=2 * max_deg + 4,
        )
        record = parallel_spill_game(cdag, hierarchy)
        fresh = ParallelRBWPebbleGame(cdag, hierarchy)
        replayed = fresh.replay(record)
        assert_same_columns(replayed, record)
        assert replayed.vertical_io == record.vertical_io
        assert replayed.horizontal_io == record.horizontal_io
        assert replayed.compute_per_processor == record.compute_per_processor
        # the Move-object path agrees too
        fresh.replay(list(record.moves))
        assert fresh.record.summary() == record.summary()

    def test_counters_match_vectorized_recount(self):
        cdag = diamond_cdag(6, 4)
        record = spill_game_rbw(cdag, 5)
        kinds = record.log.kinds()
        bins = np.bincount(kinds, minlength=7)
        assert record.load_count == bins[OP_LOAD]
        assert record.store_count == bins[OP_STORE]
        assert record.compute_count == bins[OP_COMPUTE]
        assert record.io_count == bins[OP_LOAD] + bins[OP_STORE]
        assert len(record.moves) == int(bins.sum())


class TestExecutorRunRecord:
    def test_run_record_matches_schedule_run(self, random_dag):
        cdag = random_dag(7, 40)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        schedule = topological_schedule(cdag)
        record = spill_game_rbw(cdag, s, schedule)
        ex = DistributedExecutor(num_nodes=3, cache_words=8)
        from_schedule = ex.run(cdag, schedule=schedule)
        from_record = ex.run_record(cdag, record)
        assert from_record.horizontal_per_node == from_schedule.horizontal_per_node
        assert from_record.vertical_per_node == from_schedule.vertical_per_node
        assert from_record.computes_per_node == from_schedule.computes_per_node

    def test_run_record_rejects_recomputation(self):
        cdag = chain_cdag(1)
        game = RedBluePebbleGame(cdag, 2)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 1))
        game.compute(("chain", 1))  # legal in red-blue, but not replayable
        ex = DistributedExecutor(num_nodes=2, cache_words=4)
        with pytest.raises(ValueError):
            ex.run_record(cdag, game.record)

    def test_run_record_rejects_compute_on_input(self):
        cdag = chain_cdag(2)
        c = cdag.compiled()
        log = MoveLog(compiled=c)  # "computes" the input, skips an op
        log.append_ids(OP_COMPUTE, c.id(("chain", 0)))
        log.append_ids(OP_COMPUTE, c.id(("chain", 2)))
        ex = DistributedExecutor(num_nodes=2, cache_words=4)
        with pytest.raises(ValueError):
            ex.run_record(cdag, log)

    def test_run_record_rejects_dependence_violation(self):
        cdag = chain_cdag(2)
        c = cdag.compiled()
        log = MoveLog(compiled=c)  # hand-built: fires ops anti-topologically
        log.append_ids(OP_COMPUTE, c.id(("chain", 2)))
        log.append_ids(OP_COMPUTE, c.id(("chain", 1)))
        ex = DistributedExecutor(num_nodes=2, cache_words=4)
        with pytest.raises(ValueError):
            ex.run_record(cdag, log)

    def test_run_record_rejects_foreign_logs(self):
        cdag = chain_cdag(3)
        other = chain_cdag(3)
        record = spill_game_rbw(other, 3)
        ex = DistributedExecutor(num_nodes=2, cache_words=4)
        with pytest.raises(ValueError):
            ex.run_record(cdag, record)

"""Unit tests for the parallel RBW pebble game engine (rules R1-R7)."""

import pytest

from repro.core import CDAG, chain_cdag
from repro.pebbling import GameError, MemoryHierarchy, ParallelRBWPebbleGame


@pytest.fixture
def cluster():
    return MemoryHierarchy.cluster(
        nodes=2, cores_per_node=2, registers_per_core=4, cache_size=8
    )


@pytest.fixture
def tiny_cdag():
    return chain_cdag(2)


class TestR1R2:
    def test_load_places_top_level_pebble_and_white(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        assert (3, 0) in game.pebbles[("chain", 0)]
        assert ("chain", 0) in game.white
        assert game.record.load_count == 1

    def test_load_requires_blue(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.load(("chain", 1), node=0)

    def test_store_requires_matching_node_pebble(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        with pytest.raises(GameError):
            game.store(("chain", 0), node=1)
        game.store(("chain", 0), node=0)
        assert ("chain", 0) in game.blue


class TestR3RemoteGet:
    def test_remote_get_copies_between_nodes(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.remote_get(("chain", 0), dst_node=1, src_node=0)
        assert (3, 1) in game.pebbles[("chain", 0)]
        assert game.record.horizontal_io[1] == 1

    def test_remote_get_requires_source_pebble(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.remote_get(("chain", 0), dst_node=1, src_node=0)

    def test_remote_get_same_node_rejected(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        with pytest.raises(GameError):
            game.remote_get(("chain", 0), dst_node=0, src_node=0)


class TestR4R5VerticalMoves:
    def test_move_up_follows_parent_links(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.move_up(("chain", 0), level=1, index=0)
        assert (1, 0) in game.pebbles[("chain", 0)]
        # traffic accounted to the parent instance of each move
        assert game.record.vertical_io[(3, 0)] == 1
        assert game.record.vertical_io[(2, 0)] == 1

    def test_move_up_wrong_subtree_rejected(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        # cache (2, 1) belongs to node 1, not node 0
        with pytest.raises(GameError):
            game.move_up(("chain", 0), level=2, index=1)

    def test_move_up_level_range(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        with pytest.raises(GameError):
            game.move_up(("chain", 0), level=3, index=0)

    def test_move_down_requires_child_pebble(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.move_down(("chain", 0), level=2, index=0)

    def test_move_down_counts_traffic_at_target(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.move_up(("chain", 0), level=1, index=0)
        game.delete(("chain", 0), 2, 0)
        game.move_down(("chain", 0), level=2, index=0)
        assert game.record.vertical_io[(2, 0)] == 2  # one up + one down

    def test_capacity_enforced_per_instance(self, tiny_cdag):
        h = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=1, registers_per_core=1, cache_size=8
        )
        c = CDAG(edges=[("a", "c"), ("b", "c")], inputs=["a", "b"], outputs=["c"])
        game = ParallelRBWPebbleGame(c, h)
        game.load("a", node=0)
        game.load("b", node=0)
        game.move_up("a", level=2, index=0)
        game.move_up("a", level=1, index=0)
        game.move_up("b", level=2, index=0)
        with pytest.raises(GameError):
            game.move_up("b", level=1, index=0)  # register file full (S_1=1)


class TestR6Compute:
    def test_compute_requires_level1_pebbles_of_same_processor(
        self, cluster, tiny_cdag
    ):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.move_up(("chain", 0), level=1, index=0)  # processor 0's registers
        with pytest.raises(GameError):
            game.compute(("chain", 1), processor=1)
        game.compute(("chain", 1), processor=0)
        assert game.record.compute_per_processor[0] == 1

    def test_compute_rejects_recomputation(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.move_up(("chain", 0), level=1, index=0)
        game.compute(("chain", 1), processor=0)
        game.delete(("chain", 1), 1, 0)
        with pytest.raises(GameError):
            game.compute(("chain", 1), processor=0)

    def test_compute_rejects_input_vertex(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.compute(("chain", 0), processor=0)

    def test_unknown_processor_rejected(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.compute(("chain", 1), processor=99)


class TestR7DeleteAndCompletion:
    def test_delete_specific_shade(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.delete(("chain", 0), 3, 0)
        assert (3, 0) not in game.pebbles[("chain", 0)]
        assert (2, 0) in game.pebbles[("chain", 0)]

    def test_delete_missing_shade_rejected(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        with pytest.raises(GameError):
            game.delete(("chain", 0), 1, 0)

    def test_manual_complete_game(self, cluster):
        c = chain_cdag(1)
        game = ParallelRBWPebbleGame(c, cluster)
        game.load(("chain", 0), node=0)
        game.move_up(("chain", 0), level=2, index=0)
        game.move_up(("chain", 0), level=1, index=0)
        game.compute(("chain", 1), processor=0)
        game.move_down(("chain", 1), level=2, index=0)
        game.move_down(("chain", 1), level=3, index=0)
        game.store(("chain", 1), node=0)
        game.assert_complete()
        assert game.record.io_count == 2
        assert game.record.total_vertical_io == 4

    def test_incomplete_game_detected(self, cluster, tiny_cdag):
        game = ParallelRBWPebbleGame(tiny_cdag, cluster)
        assert not game.is_complete()
        with pytest.raises(GameError):
            game.assert_complete()

"""The I/O-free merge fast path: position-ordered shards feeding a
spilled output are concatenated at the column-file level (no k-way
cursor walk) and the result is indistinguishable from the general
merge."""

import pytest

from repro.pebbling import MoveLog
from repro.pebbling import state as state_mod

ROWS_A = [(0, 1, -1, -1), (1, 2, -1, -1), (0, 3, -1, -1)]
ROWS_B = [(2, 4, -1, -1), (0, 5, -1, -1)]
ROWS_C = [(1, 6, -1, -1)]


def _build(rows, spill=False, block_size=2):
    log = MoveLog(block_size=block_size, spill=spill)
    for kind, vid, loc, src in rows:
        log.append_ids(kind, vid, loc, src)
    return log


def _rows(log):
    kinds, vids, locs, srcs = log.columns()
    return list(
        zip(kinds.tolist(), vids.tolist(), locs.tolist(), srcs.tolist())
    )


@pytest.fixture
def concat_spy(monkeypatch):
    """Counts engagements of the file-level concat fast path."""
    calls = []
    orig = state_mod._SpillStore.concat_from

    def spy(self, other, vid_map=None):
        calls.append(1)
        return orig(self, other, vid_map)

    monkeypatch.setattr(state_mod._SpillStore, "concat_from", spy)
    return calls


def test_ordered_spilled_shards_concat_at_file_level(tmp_path, concat_spy):
    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B, spill=str(tmp_path / "b"))
    merged = MoveLog.merge(
        [a, b], [[0, 0, 1], [2, 3]], spill=str(tmp_path / "out")
    )
    assert len(concat_spy) == 2  # one file-level append per shard
    assert merged.is_spilled
    assert len(merged) == 5
    assert _rows(merged) == ROWS_A + ROWS_B
    for log in (a, b, merged):
        log.close()


def test_boundary_equal_keys_still_take_the_fast_path(tmp_path, concat_spy):
    """``max(keys[j]) == min(keys[j+1])`` is fine: merge breaks key ties
    toward the lower input index, which is exactly concatenation order."""
    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B, spill=str(tmp_path / "b"))
    merged = MoveLog.merge(
        [a, b], [[0, 1, 1], [1, 2]], spill=str(tmp_path / "out")
    )
    assert len(concat_spy) == 2
    assert _rows(merged) == ROWS_A + ROWS_B
    for log in (a, b, merged):
        log.close()


def test_overlapping_keys_fall_back_to_cursor_merge(tmp_path, concat_spy):
    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B, spill=str(tmp_path / "b"))
    merged = MoveLog.merge(
        [a, b], [[0, 2, 4], [1, 3]], spill=str(tmp_path / "out")
    )
    assert not concat_spy  # interleaved keys: the general path
    assert _rows(merged) == [
        ROWS_A[0], ROWS_B[0], ROWS_A[1], ROWS_B[1], ROWS_A[2]
    ]
    for log in (a, b, merged):
        log.close()


def test_concat_path_applies_vid_maps(tmp_path, concat_spy):
    import numpy as np

    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B, spill=str(tmp_path / "b"))
    vid_maps = [
        np.arange(10, dtype=np.int32) + 100,
        np.arange(10, dtype=np.int32) + 200,
    ]
    merged = MoveLog.merge(
        [a, b], [[0, 0, 1], [2, 3]], spill=str(tmp_path / "out"),
        vid_maps=vid_maps,
    )
    assert len(concat_spy) == 2
    assert merged.vertex_ids().tolist() == [101, 102, 103, 204, 205]
    for log in (a, b, merged):
        log.close()


def test_ordered_mixed_spill_uses_chunk_append(tmp_path, concat_spy):
    """Ordered shards where the output (or an input) is in-RAM skip the
    file-level concat but still bulk-append without a cursor walk."""
    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B)  # in-RAM input
    merged = MoveLog.merge([a, b], [[0, 0, 1], [2, 3]])  # in-RAM output
    assert not concat_spy
    assert _rows(merged) == ROWS_A + ROWS_B
    for log in (a, b, merged):
        log.close()


def test_spilled_bytes_account_for_concatenated_rows(tmp_path):
    a = _build(ROWS_A, spill=str(tmp_path / "a"))
    b = _build(ROWS_B, spill=str(tmp_path / "b"))
    merged = MoveLog.merge(
        [a, b], [[0, 0, 1], [2, 3]], spill=str(tmp_path / "out")
    )
    assert merged.spilled_bytes == a.spilled_bytes + b.spilled_bytes
    for log in (a, b, merged):
        log.close()

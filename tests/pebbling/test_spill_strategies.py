"""Batched spill-strategy backend: equivalence, edge cases, validation.

The batched (lazy-heap, flat-array) strategy loops must reproduce the
dict reference *move for move* — these tests pin the full move columns,
not just aggregate costs, on irregular randomized CDAGs as well as the
structured shapes, and cover the edge cases the heap path could get
wrong: eviction ties, a single red pebble, spill-then-reload, and
never-used-again values under Belady.
"""

import numpy as np
import pytest

from repro.core import CDAG
from repro.core.builders import (
    chain_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    outer_product_cdag,
    reduction_tree_cdag,
)
from repro.pebbling import (
    GameError,
    MemoryHierarchy,
    MoveKind,
    ParallelRBWPebbleGame,
    RBWPebbleGame,
    parallel_spill_game,
    spill_game_rbw,
    spill_game_redblue,
)


def assert_same_game(a, b):
    """Identical move columns and counters (move-for-move equivalence)."""
    for col_a, col_b in zip(a.log.columns(), b.log.columns()):
        assert np.array_equal(col_a, col_b)
    assert a.summary() == b.summary()


class TestSequentialBatchedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("policy", ["lru", "belady"])
    @pytest.mark.parametrize("spill", [spill_game_rbw, spill_game_redblue])
    def test_random_irregular_cdags(self, seed, policy, spill, random_dag):
        cdag = random_dag(seed, 40)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        assert_same_game(
            spill(cdag, s, policy=policy, backend="dict"),
            spill(cdag, s, policy=policy, backend="batched"),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_tight_memory_random_cdags(self, seed, policy, random_dag):
        """Exactly max_need pebbles: every step evicts (maximum heap churn)."""
        cdag = random_dag(seed, 30)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 1
        assert_same_game(
            spill_game_rbw(cdag, s, policy=policy, backend="dict"),
            spill_game_rbw(cdag, s, policy=policy, backend="batched"),
        )

    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_structured_cdags(self, policy):
        cases = [
            (grid_stencil_cdag((8,), 6), 4),
            (reduction_tree_cdag(16), 4),
            (outer_product_cdag(4), 6),
            (independent_chains_cdag(12, 6), 4),
        ]
        for cdag, s in cases:
            assert_same_game(
                spill_game_rbw(cdag, s, policy=policy, backend="dict"),
                spill_game_rbw(cdag, s, policy=policy, backend="batched"),
            )

    def test_default_backend_is_batched(self):
        """The default game equals both explicit backends."""
        cdag = grid_stencil_cdag((6,), 4)
        assert_same_game(
            spill_game_rbw(cdag, 4),
            spill_game_rbw(cdag, 4, backend="batched"),
        )


class TestParallelBatchedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_irregular_cdags(self, seed, random_dag):
        cdag = random_dag(seed, 35)
        maxd = max(cdag.in_degree(v) for v in cdag.vertices)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2,
            cores_per_node=2,
            registers_per_core=maxd + 2,
            cache_size=2 * maxd + 4,
        )
        a = parallel_spill_game(cdag, hierarchy, backend="dict")
        b = parallel_spill_game(cdag, hierarchy, backend="batched")
        assert_same_game(a, b)
        assert a.vertical_io == b.vertical_io
        assert a.horizontal_io == b.horizontal_io
        assert a.compute_per_processor == b.compute_per_processor

    def test_tiny_caches_force_cache_evictions(self):
        """Cache-level make_room (persist via move-down) agrees too."""
        cdag = grid_stencil_cdag((5, 5), 2)
        hierarchy = MemoryHierarchy.cluster(
            nodes=4, cores_per_node=1, registers_per_core=8, cache_size=9
        )
        a = parallel_spill_game(cdag, hierarchy, backend="dict")
        b = parallel_spill_game(cdag, hierarchy, backend="batched")
        assert_same_game(a, b)
        assert a.vertical_io == b.vertical_io

    def test_replay_validates_batched_game(self):
        cdag = grid_stencil_cdag((4, 4), 2)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=8, cache_size=16
        )
        record = parallel_spill_game(cdag, hierarchy)
        replayed = ParallelRBWPebbleGame(cdag, hierarchy).replay(record)
        assert replayed.summary() == record.summary()


class TestKernelBackendEquivalence:
    """Tentpole: the fused vectorized kernel backend must reproduce the
    batched and dict loops *move for move* — same columns, same
    counters, same macro-step marks — on sequential and parallel games.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("policy", ["lru", "belady"])
    @pytest.mark.parametrize("spill", [spill_game_rbw, spill_game_redblue])
    def test_random_irregular_cdags(self, seed, policy, spill, random_dag):
        cdag = random_dag(seed, 40)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        kern = spill(cdag, s, policy=policy, backend="kernel")
        assert_same_game(
            spill(cdag, s, policy=policy, backend="dict"), kern
        )
        assert_same_game(
            spill(cdag, s, policy=policy, backend="batched"), kern
        )

    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_eviction_ties_match_batched(self, policy):
        """Tied LRU/Belady victims resolve to the lowest vertex id in
        the kernel planner exactly as in the reference loops."""
        verts = [("a", 0), ("a", 1), ("x",), ("b", 0), ("b", 1), ("y",)]
        edges = [
            (("a", 0), ("x",)), (("a", 1), ("x",)),
            (("b", 0), ("y",)), (("b", 1), ("y",)),
        ]
        cdag = CDAG.from_edge_list(
            verts, edges,
            inputs=[("a", 0), ("a", 1), ("b", 0), ("b", 1)],
            outputs=[("x",), ("y",)],
            name="ties",
        )
        assert_same_game(
            spill_game_rbw(cdag, 3, policy=policy, backend="batched"),
            spill_game_rbw(cdag, 3, policy=policy, backend="kernel"),
        )

    def test_single_red_pebble_zero_operand_ops(self):
        cdag = CDAG.from_edge_list(
            [("v", 0)], [], inputs=[], outputs=[("v", 0)], name="one"
        )
        assert_same_game(
            spill_game_rbw(cdag, 1, backend="batched"),
            spill_game_rbw(cdag, 1, backend="kernel"),
        )

    def test_single_red_pebble_rejected_when_ops_have_operands(self):
        with pytest.raises(GameError, match="cannot fire"):
            spill_game_rbw(chain_cdag(3), 1, backend="kernel")

    def test_spill_then_reload_round_trip(self):
        """Evicted live values come back via R1 in the kernel path too,
        and the produced log passes a full per-move engine replay."""
        cdag = independent_chains_cdag(12, 6)
        record = spill_game_rbw(cdag, 4, backend="kernel")
        assert_same_game(
            spill_game_rbw(cdag, 4, backend="batched"), record
        )
        assert record.counts[MoveKind.LOAD] > 12
        replayed = RBWPebbleGame(cdag, 4).replay(record)
        assert replayed.summary() == record.summary()

    def test_step_marks_match_batched(self):
        cdag = independent_chains_cdag(8, 5)
        marks_ref, marks_ker = [], []
        spill_game_rbw(cdag, 4, backend="batched", step_marks=marks_ref)
        spill_game_rbw(cdag, 4, backend="kernel", step_marks=marks_ker)
        assert marks_ref == marks_ker

    def test_decision_cache_second_run_identical(self):
        """The second kernel run over the same (CDAG, policy, S) serves
        memoized planner decisions — and must stay move-for-move equal."""
        cdag = grid_stencil_cdag((7,), 5)
        first = spill_game_rbw(cdag, 4, backend="kernel")
        second = spill_game_rbw(cdag, 4, backend="kernel")
        assert_same_game(first, second)
        assert_same_game(spill_game_rbw(cdag, 4, backend="batched"), second)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_parallel_random_clusters(self, seed, random_dag):
        cdag = random_dag(seed, 35)
        maxd = max(cdag.in_degree(v) for v in cdag.vertices)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2,
            cores_per_node=2,
            registers_per_core=maxd + 2,
            cache_size=2 * maxd + 4,
        )
        a = parallel_spill_game(cdag, hierarchy, backend="batched")
        b = parallel_spill_game(cdag, hierarchy, backend="kernel")
        assert_same_game(a, b)
        assert a.vertical_io == b.vertical_io
        assert a.horizontal_io == b.horizontal_io
        assert a.compute_per_processor == b.compute_per_processor

    def test_parallel_tiny_caches_warm_run(self):
        """Cache-level evictions agree, and the warm (memoized) second
        run replays the same validated columns."""
        cdag = grid_stencil_cdag((5, 5), 2)
        hierarchy = MemoryHierarchy.cluster(
            nodes=4, cores_per_node=1, registers_per_core=8, cache_size=9
        )
        ref = parallel_spill_game(cdag, hierarchy, backend="batched")
        cold = parallel_spill_game(cdag, hierarchy, backend="kernel")
        warm = parallel_spill_game(cdag, hierarchy, backend="kernel")
        for got in (cold, warm):
            assert_same_game(ref, got)
            assert ref.vertical_io == got.vertical_io
        replayed = ParallelRBWPebbleGame(cdag, hierarchy).replay(warm)
        assert replayed.summary() == ref.summary()

    def test_spilled_kernel_game_matches_in_ram(self):
        cdag = grid_stencil_cdag((6,), 4)
        in_ram = spill_game_rbw(cdag, 4, backend="kernel")
        spilled = spill_game_rbw(cdag, 4, backend="kernel", spill=True)
        assert spilled.log.is_spilled
        assert_same_game(in_ram, spilled)
        spilled.log.close()


class TestStrategyEdgeCases:
    def test_lru_eviction_tie_broken_by_lowest_id(self):
        """Operands of one operation share a touch clock: the later
        eviction among them must pick the lowest vertex id, exactly like
        the reference's ``min(..., (last_use[u], u))``."""
        # Two ops, each reading two fresh inputs; S=3 forces evicting
        # both tied operands of op1 before op2 can fire.
        verts = [("a", 0), ("a", 1), ("x",), ("b", 0), ("b", 1), ("y",)]
        edges = [
            (("a", 0), ("x",)), (("a", 1), ("x",)),
            (("b", 0), ("y",)), (("b", 1), ("y",)),
        ]
        cdag = CDAG.from_edge_list(
            verts, edges,
            inputs=[("a", 0), ("a", 1), ("b", 0), ("b", 1)],
            outputs=[("x",), ("y",)],
            name="ties",
        )
        for policy in ("lru", "belady"):
            ref = spill_game_rbw(cdag, 3, policy=policy, backend="dict")
            got = spill_game_rbw(cdag, 3, policy=policy, backend="batched")
            assert_same_game(ref, got)
        # The dead operands of x are retired before y's loads, in id order.
        got = spill_game_rbw(cdag, 3, backend="batched")
        kinds = [m.kind for m in got.moves]
        assert kinds.count(MoveKind.DELETE) >= 2

    def test_single_red_pebble_zero_operand_ops(self):
        """fast_mem=1 is legal when no op has operands (flexible tags)."""
        cdag = CDAG.from_edge_list(
            [("v", 0)], [], inputs=[], outputs=[("v", 0)], name="one"
        )
        for backend in ("dict", "batched"):
            record = spill_game_rbw(cdag, 1, backend=backend)
            assert record.compute_count == 1
            assert record.store_count == 1
        assert_same_game(
            spill_game_rbw(cdag, 1, backend="dict"),
            spill_game_rbw(cdag, 1, backend="batched"),
        )

    def test_single_red_pebble_rejected_when_ops_have_operands(self):
        for backend in ("dict", "batched"):
            with pytest.raises(GameError, match="cannot fire"):
                spill_game_rbw(chain_cdag(3), 1, backend=backend)

    def test_spill_then_reload_uses_load_not_recompute(self):
        """A live value evicted from fast memory must come back via R1
        (store-then-load round trip), never recomputation — the RBW
        engine would reject a recompute outright, so a valid replay
        proves the batched path persists every evicted live value."""
        cdag = independent_chains_cdag(12, 6)
        record = spill_game_rbw(cdag, 4, backend="batched")
        counts = record.counts
        # Interleaved chains with S=4 must reload chain heads: strictly
        # more loads than there are input vertices.
        assert counts[MoveKind.LOAD] > 12
        assert counts[MoveKind.COMPUTE] == 12 * 6  # fired exactly once
        replayed = RBWPebbleGame(cdag, 4).replay(record)
        assert replayed.summary() == record.summary()

    @pytest.mark.parametrize("policy", ["lru", "belady"])
    def test_outputs_survive_eviction(self, policy, random_dag):
        cdag = random_dag(5, 30)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 1
        record = spill_game_rbw(cdag, s, policy=policy, backend="batched")
        # assert_complete passed inside; every output got its blue pebble
        assert record.store_count >= len(list(cdag.outputs))

    def test_belady_never_used_again_values_evicted_first(self):
        """Belady prefers evicting values with no future use; the heap
        path's NEVER sentinel must order after all real positions."""
        cdag = grid_stencil_cdag((6,), 4)
        assert_same_game(
            spill_game_rbw(cdag, 4, policy="belady", backend="dict"),
            spill_game_rbw(cdag, 4, policy="belady", backend="batched"),
        )
        lru = spill_game_rbw(cdag, 4, policy="lru").io_count
        belady = spill_game_rbw(cdag, 4, policy="belady").io_count
        assert belady <= lru


class TestUniformEntryValidation:
    """Satellite fix: arguments are validated before any schedule or
    game construction work begins, in every call path."""

    def test_invalid_policy_raises_before_schedule_work(self):
        # The schedule is invalid too — policy must be checked first,
        # proving validation happens at entry.
        cdag = chain_cdag(3)
        bogus_schedule = [("chain", 99)]
        for spill in (spill_game_rbw, spill_game_redblue):
            with pytest.raises(ValueError, match="policy"):
                spill(cdag, 2, schedule=bogus_schedule, policy="random")

    def test_invalid_backend_raises_value_error(self):
        cdag = chain_cdag(3)
        for spill in (spill_game_rbw, spill_game_redblue):
            with pytest.raises(ValueError, match="backend"):
                spill(cdag, 2, backend="numpy")
        with pytest.raises(ValueError, match="backend"):
            parallel_spill_game(
                cdag, MemoryHierarchy.two_level(4), backend="numpy"
            )

    def test_invalid_num_red_raises_before_schedule_work(self):
        cdag = chain_cdag(3)
        bogus_schedule = [("chain", 99)]
        for bad in (0, -3, 2.5, "4", True):
            with pytest.raises(ValueError):
                spill_game_rbw(cdag, bad, schedule=bogus_schedule)

    def test_policy_error_message_consistent_across_backends(self):
        cdag = chain_cdag(2)
        msgs = []
        for backend in ("dict", "batched"):
            with pytest.raises(ValueError) as exc:
                spill_game_rbw(cdag, 2, policy="mru", backend=backend)
            msgs.append(str(exc.value))
        assert msgs[0] == msgs[1]


class TestStrategySpillLogs:
    def test_spilled_strategy_game_matches_in_ram(self):
        cdag = grid_stencil_cdag((6,), 4)
        in_ram = spill_game_rbw(cdag, 4)
        spilled = spill_game_rbw(cdag, 4, spill=True)
        assert spilled.log.is_spilled
        assert_same_game(in_ram, spilled)
        spilled.log.close()

    def test_parallel_spilled_game_matches_in_ram(self):
        cdag = grid_stencil_cdag((5, 5), 2)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=8, cache_size=16
        )
        in_ram = parallel_spill_game(cdag, hierarchy)
        spilled = parallel_spill_game(cdag, hierarchy, spill=True)
        assert_same_game(in_ram, spilled)
        assert spilled.log.is_spilled
        spilled.log.close()

"""Unit tests for the Red-Blue-White pebble game engine."""

import pytest

from repro.core import CDAG, chain_cdag, reduction_tree_cdag
from repro.pebbling import GameError, Move, MoveKind, RBWPebbleGame


class TestWhitePebbleSemantics:
    def test_compute_places_white(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        assert ("chain", 1) in game.white

    def test_recomputation_prohibited(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 1))
        with pytest.raises(GameError):
            game.compute(("chain", 1))

    def test_load_places_white(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        assert ("chain", 0) in game.white

    def test_evicted_value_must_be_reloaded_from_blue(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.store(("chain", 1))
        game.delete(("chain", 1))
        game.load(("chain", 1))  # legal: a blue copy exists
        assert ("chain", 1) in game.red

    def test_evicted_unstored_value_cannot_be_recovered(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 1))
        # no blue copy and recomputation prohibited: neither load nor
        # compute can bring the value back
        with pytest.raises(GameError):
            game.load(("chain", 1))
        with pytest.raises(GameError):
            game.compute(("chain", 1))


class TestFlexibleTagging:
    def test_untagged_source_fires_without_load(self):
        # a source vertex not tagged as input may fire directly (R3)
        c = CDAG(edges=[("gen", "use")], inputs=[], outputs=["use"])
        game = RBWPebbleGame(c, num_red=2)
        game.compute("gen")
        game.compute("use")
        game.store("use")
        game.assert_complete()
        assert game.record.io_count == 1  # only the output store

    def test_untagged_sink_needs_no_blue(self):
        c = CDAG(edges=[("a", "b")], inputs=["a"], outputs=[])
        game = RBWPebbleGame(c, num_red=2)
        game.load("a")
        game.compute("b")
        game.assert_complete()
        assert game.record.io_count == 1  # only the input load

    def test_input_vertex_cannot_be_computed(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.compute(("chain", 0))


class TestCompleteness:
    def test_complete_requires_all_whites_and_output_blues(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        for i in range(1, 6):
            game.compute(("chain", i))
            game.delete(("chain", i - 1))
        assert not game.is_complete()  # output not stored yet
        game.store(("chain", 5))
        assert game.is_complete()

    def test_unused_input_does_not_block_completion(self):
        c = CDAG(
            vertices=["lonely"],
            edges=[("a", "b")],
            inputs=["a", "lonely"],
            outputs=["b"],
        )
        game = RBWPebbleGame(c, num_red=2)
        game.load("a")
        game.compute("b")
        game.store("b")
        # "lonely" has no successors; it never needs a white pebble
        assert game.is_complete()

    def test_assert_complete_reports_unfired(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError, match="unfired"):
            game.assert_complete()


class TestCostAccounting:
    def test_io_counts_loads_and_stores_only(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 0))
        assert game.record.io_count == 1
        assert game.record.compute_count == 1
        assert game.record.counts[MoveKind.DELETE] == 1

    def test_summary_keys(self, small_chain):
        game = RBWPebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        s = game.record.summary()
        assert s["io"] == 1 and s["loads"] == 1 and s["stores"] == 0

    def test_replay_full_game(self):
        c = chain_cdag(2)
        moves = [
            Move(MoveKind.LOAD, ("chain", 0)),
            Move(MoveKind.COMPUTE, ("chain", 1)),
            Move(MoveKind.DELETE, ("chain", 0)),
            Move(MoveKind.COMPUTE, ("chain", 2)),
            Move(MoveKind.STORE, ("chain", 2)),
        ]
        record = RBWPebbleGame(c, num_red=2).replay(moves)
        assert record.io_count == 2

    def test_replay_rejects_parallel_move_kinds(self):
        c = chain_cdag(1)
        game = RBWPebbleGame(c, num_red=2)
        with pytest.raises(GameError):
            game.replay([Move(MoveKind.MOVE_UP, ("chain", 0))])


class TestBudget:
    def test_red_budget_enforced(self):
        c = reduction_tree_cdag(4)
        game = RBWPebbleGame(c, num_red=2)
        game.load(("reduce", 0, 0))
        game.load(("reduce", 0, 1))
        with pytest.raises(GameError):
            game.compute(("reduce", 1, 0))  # would need a third pebble

    def test_minimum_one_pebble(self, small_chain):
        with pytest.raises(ValueError):
            RBWPebbleGame(small_chain, num_red=0)

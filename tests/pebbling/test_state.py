"""Unit tests for the move/record bookkeeping shared by the game engines."""

import pytest

from repro.pebbling import GameRecord, Move, MoveKind


class TestMove:
    def test_io_classification(self):
        assert Move(MoveKind.LOAD, "v").is_io()
        assert Move(MoveKind.STORE, "v").is_io()
        assert not Move(MoveKind.COMPUTE, "v").is_io()
        assert not Move(MoveKind.DELETE, "v").is_io()
        assert not Move(MoveKind.REMOTE_GET, "v").is_io()

    def test_moves_are_immutable(self):
        m = Move(MoveKind.LOAD, "v")
        with pytest.raises(Exception):
            m.vertex = "w"  # frozen dataclass


class TestGameRecord:
    def test_append_updates_counts(self):
        rec = GameRecord()
        rec.append(Move(MoveKind.LOAD, "a"))
        rec.append(Move(MoveKind.LOAD, "b"))
        rec.append(Move(MoveKind.STORE, "a"))
        rec.append(Move(MoveKind.COMPUTE, "c"))
        assert rec.io_count == 3
        assert rec.load_count == 2
        assert rec.store_count == 1
        assert rec.compute_count == 1
        assert len(rec.moves) == 4

    def test_vertical_and_horizontal_aggregates(self):
        rec = GameRecord()
        rec.vertical_io[(2, 0)] = 5
        rec.vertical_io[(2, 1)] = 9
        rec.vertical_io[(3, 0)] = 2
        rec.horizontal_io[0] = 4
        rec.horizontal_io[1] = 7
        assert rec.total_vertical_io == 16
        assert rec.total_horizontal_io == 11
        assert rec.max_vertical_io_at_level(2) == 9
        assert rec.max_vertical_io_at_level(3) == 2
        assert rec.max_vertical_io_at_level(4) == 0
        assert rec.max_horizontal_io() == 7

    def test_empty_record_defaults(self):
        rec = GameRecord()
        assert rec.io_count == 0
        assert rec.max_horizontal_io() == 0
        assert rec.max_vertical_io_at_level(1) == 0
        summary = rec.summary()
        assert summary["moves"] == 0 and summary["io"] == 0

    def test_summary_keys_complete(self):
        rec = GameRecord()
        expected = {"moves", "io", "loads", "stores", "computes", "peak_red",
                    "vertical_io", "horizontal_io"}
        assert set(rec.summary()) == expected

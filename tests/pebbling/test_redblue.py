"""Unit tests for the Hong-Kung red-blue pebble game engine."""

import pytest

from repro.core import chain_cdag, reduction_tree_cdag
from repro.pebbling import GameError, Move, MoveKind, RedBluePebbleGame


class TestInitialState:
    def test_inputs_start_blue(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        assert game.blue == set(small_chain.inputs)
        assert game.red == set()

    def test_requires_at_least_one_pebble(self, small_chain):
        with pytest.raises(ValueError):
            RedBluePebbleGame(small_chain, num_red=0)

    def test_strict_mode_enforces_hong_kung_tags(self):
        from repro.core import CDAG

        c = CDAG(edges=[("a", "b")])  # untagged
        with pytest.raises(Exception):
            RedBluePebbleGame(c, num_red=2, strict=True)
        RedBluePebbleGame(c, num_red=2, strict=False)


class TestRules:
    def test_load_requires_blue(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.load(("chain", 1))

    def test_load_places_red(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        game.load(("chain", 0))
        assert ("chain", 0) in game.red
        assert game.record.load_count == 1

    def test_double_load_rejected(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        game.load(("chain", 0))
        with pytest.raises(GameError):
            game.load(("chain", 0))

    def test_store_requires_red(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.store(("chain", 1))

    def test_compute_requires_red_predecessors(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.compute(("chain", 1))

    def test_compute_rejects_input_vertex(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.compute(("chain", 0))

    def test_recomputation_allowed(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 1))
        game.compute(("chain", 1))  # legal in the red-blue game
        assert game.record.compute_count == 2

    def test_delete_requires_red(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        with pytest.raises(GameError):
            game.delete(("chain", 0))

    def test_red_pebble_budget_enforced(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=1)
        game.load(("chain", 0))
        with pytest.raises(GameError):
            game.compute(("chain", 1))

    def test_peak_red_tracked(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=3)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        assert game.record.peak_red == 2


class TestCompleteGames:
    def play_chain(self, length, num_red=2):
        cdag = chain_cdag(length)
        game = RedBluePebbleGame(cdag, num_red=num_red)
        game.load(("chain", 0))
        for i in range(1, length + 1):
            game.compute(("chain", i))
            game.delete(("chain", i - 1))
        game.store(("chain", length))
        return game

    def test_chain_minimal_io_is_two(self):
        game = self.play_chain(6)
        game.assert_complete()
        assert game.record.io_count == 2

    def test_incomplete_game_detected(self, small_chain):
        game = RedBluePebbleGame(small_chain, num_red=2)
        assert not game.is_complete()
        with pytest.raises(GameError):
            game.assert_complete()

    def test_replay_validates_and_counts(self):
        cdag = chain_cdag(2)
        moves = [
            Move(MoveKind.LOAD, ("chain", 0)),
            Move(MoveKind.COMPUTE, ("chain", 1)),
            Move(MoveKind.DELETE, ("chain", 0)),
            Move(MoveKind.COMPUTE, ("chain", 2)),
            Move(MoveKind.STORE, ("chain", 2)),
        ]
        game = RedBluePebbleGame(cdag, num_red=2)
        record = game.replay(moves)
        assert record.io_count == 2
        assert record.compute_count == 2

    def test_replay_rejects_invalid_sequence(self):
        cdag = chain_cdag(2)
        moves = [Move(MoveKind.COMPUTE, ("chain", 1))]
        game = RedBluePebbleGame(cdag, num_red=2)
        with pytest.raises(GameError):
            game.replay(moves)

    def test_replay_rejects_foreign_move_kind(self):
        cdag = chain_cdag(1)
        game = RedBluePebbleGame(cdag, num_red=2)
        with pytest.raises(GameError):
            game.replay([Move(MoveKind.REMOTE_GET, ("chain", 0))])

    def test_reduction_tree_complete_game_io(self):
        cdag = reduction_tree_cdag(4)
        # 4 pebbles: the classic requirement for a depth-2 binary tree
        # without spilling (hold one subtree root while reducing the other).
        game = RedBluePebbleGame(cdag, num_red=4)
        # pebble leaves two at a time, reduce bottom-up, storing only the root
        game.load(("reduce", 0, 0))
        game.load(("reduce", 0, 1))
        game.compute(("reduce", 1, 0))
        game.delete(("reduce", 0, 0))
        game.delete(("reduce", 0, 1))
        game.load(("reduce", 0, 2))
        game.load(("reduce", 0, 3))
        game.compute(("reduce", 1, 1))
        game.delete(("reduce", 0, 2))
        game.delete(("reduce", 0, 3))
        game.compute(("reduce", 2, 0))
        game.store(("reduce", 2, 0))
        game.assert_complete()
        assert game.record.io_count == 5  # 4 loads + 1 store

"""Sharded multiprocess strategy runner: differential + lifecycle suites.

The sharded runner's contract is *move-for-move fidelity*: for any
shardable (CDAG, schedule, memory) the merged record of a ``workers=N``
run must equal the sequential strategy's record — same move columns,
same counts, same counters, same final pebble state after replay — for
both the ``batched`` and the ``dict`` sequential backends.  These tests
pin that contract on randomized multi-component forests, the star and
chains workloads, and the instance-disjoint multi-processor case, plus
the determinism guarantee (same seed + same worker count ⇒
byte-identical merged columns) and the spill-file lifecycle (worker
teardown never leaks spill directories).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import CDAG
from repro.core.builders import grid_stencil_cdag, independent_chains_cdag
from repro.core.ordering import dfs_schedule, topological_schedule
from repro.pebbling import (
    GameError,
    MemoryHierarchy,
    MoveLog,
    ParallelRBWPebbleGame,
    RBWPebbleGame,
    RedBluePebbleGame,
    ShardedStrategyRunner,
    parallel_spill_game,
    run_spill_game,
    spill_game_rbw,
    spill_game_redblue,
)
from repro.pebbling.workloads import component_forest_cdag, star_spill_setup


def assert_same_game(a, b):
    """Identical move columns and counters (move-for-move equivalence)."""
    assert len(a.log) == len(b.log)
    for col_a, col_b in zip(a.log.columns(), b.log.columns()):
        assert np.array_equal(col_a, col_b)
    assert a.counts == b.counts
    assert a.summary() == b.summary()


def chain_components_cdag(num_chains=4, length=6):
    """Independent untagged-sink chains with per-chain processors."""
    verts, edges, inputs = [], [], []
    for k in range(num_chains):
        prev = ("in", k)
        verts.append(prev)
        inputs.append(prev)
        for j in range(length):
            v = ("op", k, j)
            verts.append(v)
            edges.append((prev, v))
            prev = v
    return CDAG.from_edge_list(verts, edges, inputs, [], name="pchains")


class TestSequentialDifferential:
    """Sharded sequential games vs both sequential backends."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_forest_rbw_matches_both_backends(self, seed, workers):
        cdag = component_forest_cdag(6, 12, seed=seed)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(cdag, s, schedule=schedule, workers=workers)
        for backend in ("batched", "dict"):
            seq = spill_game_rbw(cdag, s, schedule=schedule, backend=backend)
            assert_same_game(seq, sharded)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_forest_redblue_matches_both_backends(self, seed):
        cdag = component_forest_cdag(5, 10, seed=seed)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(
            cdag, s, schedule=schedule, workers=2, engine="redblue"
        )
        for backend in ("batched", "dict"):
            seq = spill_game_redblue(
                cdag, s, schedule=schedule, backend=backend
            )
            assert_same_game(seq, sharded)

    def test_chains_workload_with_contiguous_schedule(self):
        cdag = independent_chains_cdag(12, 8)
        schedule = dfs_schedule(cdag)
        sharded = run_spill_game(cdag, 4, schedule=schedule, workers=4)
        seq = spill_game_rbw(cdag, 4, schedule=schedule)
        assert_same_game(seq, sharded)

    def test_final_pebble_state_matches(self):
        cdag = component_forest_cdag(4, 10, seed=3)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(cdag, s, schedule=schedule, workers=2)
        seq = spill_game_rbw(cdag, s, schedule=schedule)
        ga, gb = RBWPebbleGame(cdag, s), RBWPebbleGame(cdag, s)
        ga.replay(seq)
        gb.replay(sharded)
        assert ga.red_ids == gb.red_ids
        assert ga.blue_ids == gb.blue_ids
        assert ga.white_ids == gb.white_ids


class TestParallelDifferential:
    """Sharded P-RBW games vs both sequential backends."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_star_workload(self, workers):
        cdag, hierarchy = star_spill_setup(24)
        sharded = run_spill_game(cdag, hierarchy, workers=workers)
        for backend in ("batched", "dict"):
            seq = parallel_spill_game(cdag, hierarchy, backend=backend)
            assert_same_game(seq, sharded)
            assert seq.vertical_io == sharded.vertical_io
            assert seq.horizontal_io == sharded.horizontal_io
            assert seq.compute_per_processor == sharded.compute_per_processor

    @pytest.mark.parametrize("seed", [0, 1])
    def test_forest_untagged_sinks(self, seed):
        """Criterion B on a single-processor hierarchy: randomized
        components marching through one register file."""
        cdag = component_forest_cdag(5, 9, seed=seed, tag_outputs=False)
        maxd = max(cdag.in_degree(v) for v in cdag.vertices)
        hierarchy = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=1,
            registers_per_core=maxd + 2, cache_size=maxd + 3,
        )
        schedule = dfs_schedule(cdag)
        sharded = run_spill_game(
            cdag, hierarchy, schedule=schedule, workers=2
        )
        for backend in ("batched", "dict"):
            seq = parallel_spill_game(
                cdag, hierarchy, schedule=schedule, backend=backend
            )
            assert_same_game(seq, sharded)
            assert seq.vertical_io == sharded.vertical_io

    def test_instance_disjoint_interleaved_schedule(self):
        """Criterion A: per-processor components under a schedule that
        interleaves the components move-burst by move-burst."""
        cdag = chain_components_cdag(4, 6)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=4, cache_size=6
        )
        assignment = {v: v[1] for v in cdag.vertices}
        schedule = [("in", k) for k in range(4)]
        for j in range(6):
            for k in range(4):
                schedule.append(("op", k, j))
        runner = ShardedStrategyRunner(
            cdag, hierarchy, schedule=schedule,
            assignment=assignment, workers=4,
        )
        plan = runner.plan()
        # chains 0+1 share node 0's cache, chains 2+3 node 1's.
        assert plan.num_shards == 2
        assert plan.criterion == "instance-disjoint"
        sharded = runner.run()
        seq = parallel_spill_game(
            cdag, hierarchy, assignment=assignment, schedule=schedule
        )
        assert_same_game(seq, sharded)
        assert seq.vertical_io == sharded.vertical_io

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_methods_agree(self, method):
        """The fork fast path (copy-on-write shared state) and the spawn
        fallback (pickled payloads) produce the same merged record."""
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        cdag, hierarchy = star_spill_setup(12)
        seq = parallel_spill_game(cdag, hierarchy)
        sharded = ShardedStrategyRunner(
            cdag, hierarchy, workers=2, mp_context=method
        ).run()
        assert_same_game(seq, sharded)

    def test_merged_record_replays_end_to_end(self):
        cdag, hierarchy = star_spill_setup(16)
        sharded = run_spill_game(cdag, hierarchy, workers=2)
        replayed = ParallelRBWPebbleGame(cdag, hierarchy).replay(sharded)
        assert replayed.summary() == sharded.summary()
        seq = parallel_spill_game(cdag, hierarchy)
        fresh = ParallelRBWPebbleGame(cdag, hierarchy)
        fresh.replay(seq)
        again = ParallelRBWPebbleGame(cdag, hierarchy)
        again.replay(sharded)
        assert fresh.pebbles_ids == again.pebbles_ids
        assert fresh.blue_ids == again.blue_ids
        assert fresh.white_ids == again.white_ids


class TestKernelBackendSharded:
    """backend="kernel" flows through the worker pool: sharded kernel
    games must equal the sequential batched/dict references exactly."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_forest_rbw_kernel_matches(self, seed, workers):
        cdag = component_forest_cdag(6, 12, seed=seed)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(
            cdag, s, schedule=schedule, workers=workers, backend="kernel"
        )
        for backend in ("batched", "dict"):
            seq = spill_game_rbw(cdag, s, schedule=schedule, backend=backend)
            assert_same_game(seq, sharded)

    def test_parallel_star_kernel_matches(self):
        cdag, hierarchy = star_spill_setup(24)
        sharded = run_spill_game(
            cdag, hierarchy, workers=2, backend="kernel"
        )
        seq = parallel_spill_game(cdag, hierarchy, backend="batched")
        assert_same_game(seq, sharded)
        assert seq.vertical_io == sharded.vertical_io
        assert seq.horizontal_io == sharded.horizontal_io
        assert seq.compute_per_processor == sharded.compute_per_processor

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_kernel_start_methods_agree(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        cdag = independent_chains_cdag(8, 6)
        schedule = dfs_schedule(cdag)
        seq = spill_game_rbw(cdag, 4, schedule=schedule)
        sharded = ShardedStrategyRunner(
            cdag, 4, schedule=schedule, workers=2,
            backend="kernel", mp_context=method,
        ).run()
        assert_same_game(seq, sharded)


class TestPayloadCache:
    """Satellites: the in-process structural payload cache and the
    spawn-path build-once/pickle-once blob sharing."""

    def _runner(self, cdag, schedule, **kw):
        return ShardedStrategyRunner(
            cdag, 4, schedule=schedule, workers=4, **kw
        )

    def test_repeat_materialization_hits_struct_cache(self):
        """Two payload materializations of the same (CDAG, split) serve
        the identical cached struct object — the rebuild is skipped."""
        from repro.pebbling import sharded as sh

        cdag = independent_chains_cdag(8, 6)
        schedule = dfs_schedule(cdag)
        runner = self._runner(cdag, schedule)
        plan = runner.plan()
        assert plan.num_shards > 1
        sh._payload_struct_cache.clear()
        state = runner._shared_state(plan, handoff="run-one")
        first = [
            sh._materialize_payload(state, idx)
            for idx in range(plan.num_shards)
        ]
        assert len(sh._payload_struct_cache) == plan.num_shards
        # A later sweep (fresh runner, different handoff dir) must be
        # served the very same structural lists.
        runner2 = self._runner(cdag, schedule)
        state2 = runner2._shared_state(runner2.plan(), handoff="run-two")
        for idx, payload in enumerate(first):
            again = sh._materialize_payload(state2, idx)
            assert again["verts"] is payload["verts"]
            assert again["edges"] is payload["edges"]
            assert again["schedule"] is payload["schedule"]
            assert again["spill_dir"] == "run-two"

    def test_stale_cache_entry_rebuilds_not_reuses(self):
        """A colliding key with different shard ids must miss."""
        from repro.pebbling import sharded as sh

        cdag = independent_chains_cdag(8, 6)
        schedule = dfs_schedule(cdag)
        runner = self._runner(cdag, schedule)
        plan = runner.plan()
        state = runner._shared_state(plan, handoff="unused")
        sh._payload_struct_cache.clear()
        good = sh._payload_struct(state, 0)
        key = next(iter(sh._payload_struct_cache))
        entry = sh._payload_struct_cache[key]
        # Corrupt the cached shard-id array: verification must reject
        # the entry and rebuild rather than serve the stale struct.
        entry[1] = entry[1] + 1
        rebuilt = sh._payload_struct(state, 0)
        assert rebuilt == good

    def test_spawn_blob_is_serialized_once_and_reused(self):
        import pickle

        from repro.pebbling import sharded as sh

        cdag = independent_chains_cdag(8, 6)
        schedule = dfs_schedule(cdag)
        runner = self._runner(cdag, schedule)
        plan = runner.plan()
        state = runner._shared_state(plan, handoff="unused")
        sh._payload_struct_cache.clear()
        blob = sh._payload_struct_blob(state, 0)
        assert sh._payload_struct_blob(state, 0) is blob
        # The blob decodes to exactly the cached struct, and merging the
        # run params reproduces the full fork-path payload.
        assert pickle.loads(blob) == sh._payload_struct(state, 0)
        params = sh._payload_params(state, 0)
        assert {**pickle.loads(blob), **params} == sh._materialize_payload(
            state, 0
        )

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_reruns_reuse_blobs_and_match(self):
        from repro.pebbling import sharded as sh

        cdag = independent_chains_cdag(8, 6)
        schedule = dfs_schedule(cdag)
        sh._payload_struct_cache.clear()
        first = self._runner(cdag, schedule, mp_context="spawn").run()
        blobs = [e[4] for e in sh._payload_struct_cache.values()]
        assert all(b is not None for b in blobs)
        second = self._runner(cdag, schedule, mp_context="spawn").run()
        assert [
            e[4] for e in sh._payload_struct_cache.values()
        ] == blobs
        assert_same_game(first, second)
        assert_same_game(spill_game_rbw(cdag, 4, schedule=schedule), second)


class TestPlanning:
    def test_connected_cdag_falls_back_to_sequential(self):
        cdag = grid_stencil_cdag((6, 6), 2)
        runner = ShardedStrategyRunner(cdag, 6, workers=4)
        plan = runner.plan()
        assert plan.num_shards == 1
        assert plan.criterion == "unsharded"
        assert_same_game(spill_game_rbw(cdag, 6), runner.run())

    def test_interleaved_sequential_schedule_stays_fused(self):
        """The BFS order interleaves chains through one fast memory:
        criterion B fails, so the planner must refuse to split."""
        cdag = independent_chains_cdag(8, 5)
        schedule = topological_schedule(cdag)
        runner = ShardedStrategyRunner(cdag, 3, schedule=schedule, workers=4)
        assert runner.plan().num_shards == 1
        assert_same_game(
            spill_game_rbw(cdag, 3, schedule=schedule), runner.run()
        )

    def test_prbw_output_sink_residue_blocks_criterion_b(self):
        """Output-tagged sinks keep pebbles in the P-RBW loop, so
        same-instance components must not be split."""
        cdag = component_forest_cdag(4, 8, seed=0, tag_outputs=True)
        maxd = max(cdag.in_degree(v) for v in cdag.vertices)
        hierarchy = MemoryHierarchy.cluster(
            nodes=1, cores_per_node=1,
            registers_per_core=maxd + 2, cache_size=maxd + 3,
        )
        runner = ShardedStrategyRunner(
            cdag, hierarchy, schedule=dfs_schedule(cdag), workers=2
        )
        plan = runner.plan()
        assert plan.num_shards == 1  # residue: refuse to split
        seq = parallel_spill_game(cdag, hierarchy, schedule=dfs_schedule(cdag))
        assert_same_game(seq, runner.run())

    def test_zero_op_components_ride_along(self):
        cdag = component_forest_cdag(3, 8, seed=1)
        lonely = ("lonely", 0)
        cdag.add_vertex(lonely)
        cdag.tag_input(lonely)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(cdag, s, schedule=schedule, workers=2)
        seq = spill_game_rbw(cdag, s, schedule=schedule)
        assert_same_game(seq, sharded)

    def test_workers_validation(self):
        cdag = component_forest_cdag(2, 6)
        for bad in (0, -1, 1.5, "2", True):
            with pytest.raises(ValueError, match="workers"):
                run_spill_game(cdag, 4, workers=bad)
        with pytest.raises(ValueError, match="engine"):
            run_spill_game(cdag, 4, engine="quantum")
        with pytest.raises(ValueError, match="policy"):
            ShardedStrategyRunner(cdag, 4, policy="mru")

    def test_capacity_error_matches_sequential(self):
        """The global capacity check fires before any pool is spawned,
        with the sequential loop's error."""
        cdag = component_forest_cdag(4, 10, seed=2)
        with pytest.raises(GameError, match="cannot fire"):
            ShardedStrategyRunner(cdag, 1, schedule=dfs_schedule(cdag),
                                  workers=2)
        with pytest.raises(GameError):
            spill_game_rbw(cdag, 1, schedule=dfs_schedule(cdag))


class TestDeterminism:
    def test_same_seed_same_workers_byte_identical(self):
        """Seeding contract: the merged column blocks are a pure
        function of (cdag, schedule, workers) — two runs agree byte for
        byte regardless of pool scheduling."""
        runs = []
        for _ in range(2):
            cdag = component_forest_cdag(5, 11, seed=7)
            schedule = dfs_schedule(cdag)
            s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
            record = run_spill_game(cdag, s, schedule=schedule, workers=2)
            runs.append(
                tuple(col.tobytes() for col in record.log.columns())
            )
        assert runs[0] == runs[1]

    def test_seeding_contract_documented(self):
        assert "byte-identical" in ShardedStrategyRunner.__doc__
        import repro.pebbling.sharded as sharded_mod

        assert "Determinism contract" in sharded_mod.__doc__


class TestShardedSpillOutput:
    def test_spilled_merged_log_matches_in_ram(self, tmp_path):
        cdag, hierarchy = star_spill_setup(16)
        in_ram = run_spill_game(cdag, hierarchy, workers=2)
        spilled = run_spill_game(
            cdag, hierarchy, workers=2, spill=str(tmp_path)
        )
        assert spilled.log.is_spilled
        assert_same_game(in_ram, spilled)
        spilled.log.close()

    def test_sharded_game_through_spilled_redblue_replay(self):
        cdag = component_forest_cdag(4, 9, seed=5)
        schedule = dfs_schedule(cdag)
        s = max(cdag.in_degree(v) for v in cdag.vertices) + 2
        sharded = run_spill_game(
            cdag, s, schedule=schedule, workers=2,
            engine="redblue", spill=True,
        )
        replayed = RedBluePebbleGame(cdag, s).replay(sharded)
        assert replayed.summary() == sharded.summary()
        sharded.log.close()


# ----------------------------------------------------------------------
# Spill-file lifecycle (satellite: idempotent close + finalize teardown)
# ----------------------------------------------------------------------
def _leak_spilled_log(spill_base: str) -> int:
    """Pool worker: create a spilled log, append, and *never* close it.
    The weakref.finalize teardown must reclaim the files at exit."""
    from repro.pebbling.state import OP_LOAD

    log = MoveLog(spill=spill_base, block_size=8)
    for k in range(100):
        log.append_ids(OP_LOAD, k)
    return len(os.listdir(spill_base))


class TestSpillTeardown:
    def test_worker_teardown_leaves_spill_dir_empty(self, tmp_path):
        """Regression: worker-process shutdown must never leak spill
        files, even when the worker forgets to close its log."""
        base = str(tmp_path)
        with multiprocessing.get_context("fork").Pool(2) as pool:
            populated = pool.map(_leak_spilled_log, [base] * 4)
        # While alive, each worker saw its own spill dir in place...
        assert all(n >= 1 for n in populated)
        # ...and after pool shutdown the finalizers removed everything.
        assert os.listdir(base) == []

    def test_close_is_idempotent(self, tmp_path):
        from repro.pebbling.state import OP_STORE

        log = MoveLog(spill=str(tmp_path), block_size=4)
        for k in range(10):
            log.append_ids(OP_STORE, k)
        spill_dir = log._spill.directory
        log.close()
        assert not os.path.isdir(spill_dir)
        log.close()  # second (and third) close: harmless no-ops
        log.close()
        assert not log.is_spilled

    def test_gc_closes_unclosed_log(self, tmp_path):
        import gc

        from repro.pebbling.state import OP_LOAD

        log = MoveLog(spill=str(tmp_path), block_size=4)
        for k in range(10):
            log.append_ids(OP_LOAD, k)
        spill_dir = log._spill.directory
        assert os.path.isdir(spill_dir)
        del log
        gc.collect()
        assert not os.path.isdir(spill_dir)

    def test_detach_then_attach_transfers_ownership(self, tmp_path):
        from repro.pebbling.state import OP_LOAD

        log = MoveLog(spill=str(tmp_path), block_size=4)
        for k in range(9):
            log.append_ids(OP_LOAD, k)
        manifest = log.detach_spill()
        log.close()  # detached log: close is a no-op on the files
        assert os.path.isdir(manifest["directory"])
        attached = MoveLog.attach_spill(manifest)
        assert len(attached) == 9
        assert attached.vertex_ids().tolist() == list(range(9))
        attached.close()
        assert not os.path.isdir(manifest["directory"])

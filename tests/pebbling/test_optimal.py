"""Unit tests for the exhaustive optimal RBW game search."""

import pytest

from repro.core import CDAG, chain_cdag, outer_product_cdag, reduction_tree_cdag
from repro.pebbling import (
    GameError,
    SearchBudgetExceeded,
    optimal_rbw_io,
    spill_game_rbw,
)


class TestExactOptima:
    def test_chain_optimum_is_two(self):
        res = optimal_rbw_io(chain_cdag(4), num_red=2)
        assert res.io == 2

    def test_single_vertex_chain(self):
        res = optimal_rbw_io(chain_cdag(1), num_red=2)
        assert res.io == 2  # one load + one store

    def test_reduction_tree_optimum_equals_leaves_plus_root(self):
        # every leaf must be loaded once, the root stored once; with S = 5
        # (two leaves + the new node + one held root per completed level)
        # the 8-leaf tree can be reduced without any spills.
        res = optimal_rbw_io(reduction_tree_cdag(8), num_red=5)
        assert res.io == 9
        # one pebble less forces spills
        assert optimal_rbw_io(reduction_tree_cdag(8), num_red=4).io > 9

    def test_outer_product_optimum_matches_formula(self):
        n = 2
        res = optimal_rbw_io(outer_product_cdag(n), num_red=4)
        assert res.io == 2 * n + n * n

    def test_fan_in_two_sources(self):
        c = CDAG(
            edges=[("a", "c"), ("b", "c")], inputs=["a", "b"], outputs=["c"]
        )
        res = optimal_rbw_io(c, num_red=3)
        assert res.io == 3  # two loads + one store

    def test_untagged_source_costs_nothing_to_produce(self):
        c = CDAG(edges=[("gen", "out")], inputs=[], outputs=["out"])
        res = optimal_rbw_io(c, num_red=2)
        assert res.io == 1  # only the output store


class TestOptimalityAgainstHeuristics:
    @pytest.mark.parametrize("num_red", [3, 4, 6])
    def test_optimum_never_exceeds_spill_game(self, num_red):
        cdag = reduction_tree_cdag(6)
        opt = optimal_rbw_io(cdag, num_red=num_red).io
        heuristic = spill_game_rbw(cdag, num_red=num_red).io_count
        assert opt <= heuristic

    def test_spills_forced_by_tiny_memory(self):
        # with the bare minimum of red pebbles the tree needs extra I/O
        # compared to the no-spill case
        cdag = reduction_tree_cdag(8)
        tight = optimal_rbw_io(cdag, num_red=3).io
        roomy = optimal_rbw_io(cdag, num_red=8).io
        assert roomy == 9
        assert tight >= roomy

    def test_monotone_in_memory(self):
        cdag = reduction_tree_cdag(6)
        ios = [optimal_rbw_io(cdag, num_red=s).io for s in (3, 4, 8)]
        assert ios == sorted(ios, reverse=True)


class TestGuards:
    def test_insufficient_pebbles(self):
        with pytest.raises(GameError):
            optimal_rbw_io(reduction_tree_cdag(4), num_red=2)

    def test_invalid_pebble_count(self):
        with pytest.raises(ValueError):
            optimal_rbw_io(chain_cdag(2), num_red=0)

    def test_budget_exceeded(self):
        with pytest.raises(SearchBudgetExceeded):
            optimal_rbw_io(outer_product_cdag(3), num_red=4, max_states=50)

    def test_result_metadata(self):
        res = optimal_rbw_io(chain_cdag(3), num_red=2)
        assert res.num_red == 2
        assert res.states_expanded > 0

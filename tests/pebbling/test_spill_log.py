"""Disk-spilled MoveLog: chunk paging, consumers, and flat residency.

A log constructed with ``spill=...`` must be observationally identical
to the in-RAM log — same columns, counts, lazy Move view, replays,
partitions, and executor reports — while keeping every full block on
disk (``_blocks`` stays empty) and releasing its files on ``close``.
"""

import os

import numpy as np
import pytest

from repro.core.builders import chain_cdag, grid_stencil_cdag
from repro.core.ordering import topological_schedule
from repro.core.partition import partition_from_game
from repro.distsim.executor import DistributedExecutor
from repro.pebbling import (
    MoveLog,
    RBWPebbleGame,
    RedBluePebbleGame,
    spill_game_rbw,
)
from repro.pebbling.state import OP_COMPUTE, OP_DELETE, OP_LOAD, OP_STORE
from repro.pebbling.workloads import (
    prbw_pump_game,
    redblue_pump_game,
    synthesize_redblue_pump_log,
)


def paired_logs(moves=10_000, block_size=256):
    """The same red-blue game recorded in-RAM and spilled (tiny blocks
    so the spilled log really pages through many on-disk chunks)."""
    cdag = chain_cdag(2)
    games = []
    for spill in (False, True):
        game = RedBluePebbleGame(
            cdag, 4, spill=spill, log_block_size=block_size
        )
        i0 = int(cdag.compiled().input_ids[0])
        for _ in range((moves - 5) // 2):
            game.load_id(i0)
            game.delete_id(i0)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.compute(("chain", 2))
        game.store(("chain", 2))
        game.delete(("chain", 0))
        games.append(game)
    return cdag, games[0], games[1]


class TestSpilledLogEquivalence:
    def test_columns_and_counts_match_in_ram(self):
        _, ram, spl = paired_logs()
        assert spl.record.log.is_spilled
        assert not spl.record.log._blocks  # all full blocks on disk
        assert spl.record.log.spilled_bytes > 0
        for a, b in zip(ram.record.log.columns(), spl.record.log.columns()):
            assert np.array_equal(a, b)
        assert ram.record.counts == spl.record.counts
        assert ram.record.summary() == spl.record.summary()
        spl.record.log.close()

    def test_iter_chunks_concatenates_to_columns(self):
        _, ram, spl = paired_logs(moves=5_001)
        chunks = list(spl.record.log.iter_chunks())
        assert len(chunks) > 1  # several on-disk blocks plus the tail
        for k in range(4):
            cat = np.concatenate([c[k] for c in chunks])
            assert np.array_equal(cat, ram.record.log.columns()[k])
        spl.record.log.close()

    def test_lazy_move_view_and_ids_of_kind(self):
        from repro.pebbling import MoveKind

        _, ram, spl = paired_logs(moves=2_001)
        assert list(spl.record.log)[:10] == list(ram.record.log)[:10]
        assert spl.record.log[0] == ram.record.log[0]
        assert spl.record.log[-1] == ram.record.log[-1]
        assert np.array_equal(
            spl.record.log.ids_of_kind(MoveKind.COMPUTE),
            ram.record.log.ids_of_kind(MoveKind.COMPUTE),
        )
        spl.record.log.close()

    def test_engine_replay_from_spilled_log(self):
        cdag, ram, spl = paired_logs(moves=4_001)
        fresh = RedBluePebbleGame(cdag, 4)
        replayed = fresh.replay(spl.record)
        assert replayed.summary() == ram.record.summary()
        spl.record.log.close()

    def test_prbw_spilled_pump_replays(self):
        game = prbw_pump_game(10_000)
        # transcode into a spilled log bound to the same compiled CDAG
        spilled = MoveLog(compiled=game.record.log._compiled, spill=True)
        for kinds, vids, locs, srcs in game.record.log.iter_chunks():
            spilled.extend_block(kinds, vids, locs, srcs)
        replayed = type(game)(game.cdag, game.hierarchy).replay(spilled)
        assert replayed.summary() == game.record.summary()
        spilled.close()


class TestSpilledLogConsumers:
    def test_partition_from_game_pages_chunks(self):
        cdag = grid_stencil_cdag((6,), 4)
        ram = spill_game_rbw(cdag, 4)
        spl = spill_game_rbw(cdag, 4, spill=True)
        # force multi-chunk paging by using the columns via the log API
        part_ram = partition_from_game(cdag, ram, 4)
        part_spl = partition_from_game(cdag, spl, 4)
        assert part_ram.subsets == part_spl.subsets
        assert part_ram.s == part_spl.s
        spl.log.close()

    def test_run_record_accepts_spilled_log(self):
        cdag = grid_stencil_cdag((6,), 4)
        schedule = topological_schedule(cdag)
        spl = spill_game_rbw(cdag, 6, schedule=schedule, spill=True)
        ex = DistributedExecutor(num_nodes=2, cache_words=8)
        from_schedule = ex.run(cdag, schedule=schedule)
        from_record = ex.run_record(cdag, spl)
        assert (
            from_record.horizontal_per_node
            == from_schedule.horizontal_per_node
        )
        assert from_record.vertical_per_node == from_schedule.vertical_per_node
        spl.log.close()


class TestBulkAppendAndSynthesis:
    def test_extend_block_preserves_order_with_staged_rows(self):
        log = MoveLog(block_size=8)
        log.append_ids(OP_LOAD, 0)
        log.append_ids(OP_STORE, 1)
        log.extend_block(
            np.array([OP_COMPUTE, OP_DELETE], dtype=np.int8),
            np.array([2, 3], dtype=np.int32),
        )
        log.append_ids(OP_LOAD, 4)
        assert log.kinds().tolist() == [
            OP_LOAD, OP_STORE, OP_COMPUTE, OP_DELETE, OP_LOAD,
        ]
        assert log.vertex_ids().tolist() == [0, 1, 2, 3, 4]

    def test_extend_block_validation(self):
        log = MoveLog()
        with pytest.raises(ValueError, match="equal length"):
            log.extend_block(np.zeros(2, np.int8), np.zeros(3, np.int32))
        with pytest.raises(ValueError, match="together"):
            log.extend_block(
                np.zeros(2, np.int8),
                np.zeros(2, np.int32),
                locs=np.zeros(2, np.int32),
            )
        log.extend_block(np.zeros(0, np.int8), np.zeros(0, np.int32))
        assert len(log) == 0

    def test_synthesized_pump_log_matches_real_game(self):
        target = 4_001
        real = redblue_pump_game(target)
        synth = synthesize_redblue_pump_log(target, cdag=real.cdag)
        for a, b in zip(real.record.log.columns(), synth.columns()):
            assert np.array_equal(a, b)

    def test_synthesized_spilled_log_replays_green(self):
        cdag = chain_cdag(2)
        log = synthesize_redblue_pump_log(20_001, cdag=cdag, spill=True)
        assert log.is_spilled and not log._blocks
        replayed = RedBluePebbleGame(cdag, 4).replay(log)
        assert replayed.summary()["moves"] == 20_001
        log.close()

    def test_synthesize_rejects_bad_move_count(self):
        with pytest.raises(ValueError):
            synthesize_redblue_pump_log(4)


class TestSpillLifecycle:
    def test_close_removes_spill_directory(self, tmp_path):
        log = MoveLog(spill=tmp_path, block_size=16)
        for k in range(100):
            log.append_ids(OP_LOAD, k)
        spill_dir = log._spill.directory
        assert os.path.isdir(spill_dir)
        assert log.spilled_bytes == (100 - len(log._kinds)) * 13
        log.close()
        assert not os.path.isdir(spill_dir)
        assert len(log) == 0 and not log.is_spilled

    def test_spill_into_given_directory(self, tmp_path):
        log = MoveLog(spill=str(tmp_path), block_size=4)
        for k in range(10):
            log.append_ids(OP_STORE, k)
        inside = os.path.dirname(log._spill.directory)
        assert os.path.samefile(inside, tmp_path)
        log.close()

    def test_rbw_engine_spill_kwarg(self):
        cdag = chain_cdag(2)
        game = RBWPebbleGame(cdag, 2, spill=True, log_block_size=8)
        game.load(("chain", 0))
        game.compute(("chain", 1))
        game.delete(("chain", 0))
        game.compute(("chain", 2))
        game.store(("chain", 2))
        assert game.record.log.is_spilled
        assert game.record.io_count == 2
        game.record.log.close()

"""Kernel backend plumbing: mode resolution, numba tiers, replay paths.

Move-for-move equivalence of the kernel's *decisions* is pinned in
``test_spill_strategies.py``; this module covers the execution-tier
plumbing around them: the ``REPRO_KERNEL`` environment variable and the
``kernel_mode=`` argument, the numba fast path (and its numpy fallback
when numba is absent), and the bulk replay fast path inside the engines
— including its fall-back-to-per-move behaviour on invalid logs, which
must preserve the reference diagnostics exactly.
"""

import numpy as np
import pytest

from repro.core.builders import grid_stencil_cdag, independent_chains_cdag
from repro.pebbling import (
    GameError,
    MemoryHierarchy,
    MoveLog,
    ParallelRBWPebbleGame,
    RBWPebbleGame,
    RedBluePebbleGame,
    parallel_spill_game,
    spill_game_rbw,
)
from repro.pebbling import kernel


def same_columns(a, b):
    for col_a, col_b in zip(a.log.columns(), b.log.columns()):
        assert np.array_equal(col_a, col_b)
    assert a.summary() == b.summary()


class TestKernelModeResolution:
    def test_default_mode_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel.kernel_mode() == "numpy"

    def test_env_variable_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        assert kernel.kernel_mode() == "off"
        monkeypatch.setenv("REPRO_KERNEL", "  NumPy ")
        assert kernel.kernel_mode() == "numpy"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        assert kernel.kernel_mode("numpy") == "numpy"

    def test_unknown_mode_raises(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel mode"):
            kernel.kernel_mode("cuda")
        monkeypatch.setenv("REPRO_KERNEL", "gpu")
        with pytest.raises(ValueError, match="kernel mode"):
            kernel.kernel_mode()

    def test_strategy_rejects_unknown_kernel_mode(self):
        cdag = grid_stencil_cdag((5,), 3)
        with pytest.raises(ValueError, match="kernel mode"):
            spill_game_rbw(cdag, 3, backend="kernel", kernel_mode="cuda")

    def test_mode_off_falls_back_to_batched(self, monkeypatch):
        """backend="kernel" with the kernel disabled still plays the
        game — through the batched loop — with identical moves."""
        cdag = grid_stencil_cdag((6,), 4)
        ref = spill_game_rbw(cdag, 4, backend="batched")
        monkeypatch.setenv("REPRO_KERNEL", "off")
        via_env = spill_game_rbw(cdag, 4, backend="kernel")
        monkeypatch.delenv("REPRO_KERNEL")
        via_arg = spill_game_rbw(
            cdag, 4, backend="kernel", kernel_mode="off"
        )
        same_columns(ref, via_env)
        same_columns(ref, via_arg)


class TestNumbaTiers:
    def test_numba_mode_degrades_to_numpy_when_absent(self, monkeypatch):
        """mode="numba" without numba installed must silently run the
        numpy tier — same moves, no import error."""
        monkeypatch.setattr(kernel, "_numba_probe", False)
        cdag = independent_chains_cdag(10, 5)
        ref = spill_game_rbw(cdag, 4, backend="batched")
        got = spill_game_rbw(
            cdag, 4, backend="kernel", kernel_mode="numba"
        )
        same_columns(ref, got)

    def test_numba_jitted_planner_matches(self, monkeypatch):
        """With numba installed, the jitted arity-1 LRU planner must be
        move-for-move equal to the reference (skipped when absent)."""
        pytest.importorskip("numba")
        monkeypatch.setattr(kernel, "_numba_probe", None)
        cdag = independent_chains_cdag(10, 5)
        ref = spill_game_rbw(cdag, 4, backend="batched")
        got = spill_game_rbw(
            cdag, 4, backend="kernel", kernel_mode="numba"
        )
        same_columns(ref, got)

    def test_numba_availability_probe_is_cached(self, monkeypatch):
        monkeypatch.setattr(kernel, "_numba_probe", None)
        first = kernel.numba_available()
        assert kernel.numba_available() is first
        assert kernel._numba_probe is first

    def test_flat_lru_python_tier_matches_reference(self):
        """The njit-able flat loop runs under plain Python too (the tier
        numba compiles); pin it against the batched loop directly."""
        cdag = independent_chains_cdag(8, 6)
        c = cdag.compiled()
        plan, _ = kernel._seq_plan_for(cdag, c, None)
        assert plan.arity1
        chunks = list(
            kernel._plan_lru_arity1_numba(plan, c, 4, use_jit=False)
        )
        ref = list(kernel._plan_lru_arity1(plan, c, 4))
        assert len(chunks) == len(ref)
        for a, b in zip(chunks, ref):
            assert np.array_equal(np.asarray(a), np.asarray(b))


class TestSequentialReplayFastPath:
    def test_replay_uses_kernel_and_matches_per_move(self, monkeypatch):
        cdag = independent_chains_cdag(10, 5)
        record = spill_game_rbw(cdag, 4)
        fast = RBWPebbleGame(cdag, 4)
        fast.replay(record)
        monkeypatch.setenv("REPRO_KERNEL", "off")
        slow = RBWPebbleGame(cdag, 4)
        slow.replay(record)
        assert fast.red_ids == slow.red_ids
        assert fast.blue_ids == slow.blue_ids
        assert fast.white_ids == slow.white_ids
        assert fast.record.summary() == slow.record.summary()

    def test_invalid_log_falls_back_to_exact_diagnostic(self):
        """A corrupted column log is rejected by the bulk validator and
        the per-move fallback raises the reference error message."""
        cdag = independent_chains_cdag(6, 4)
        record = spill_game_rbw(cdag, 4)
        kinds, vids = (
            np.concatenate(list(cols))
            for cols in zip(*record.log.select_columns("kinds", "vertex_ids"))
        )
        # First move is a LOAD of an input; retarget it to vertex 0's
        # successor, which holds no blue pebble: R1 must fire.
        c = cdag.compiled()
        bad_v = next(
            i for i in range(c.n) if not c.is_input_mask[i]
        )
        vids = vids.copy()
        vids[0] = bad_v
        bad = MoveLog(compiled=c)
        bad.extend_block(kinds, vids)
        with pytest.raises(GameError, match="R1 violated"):
            RBWPebbleGame(cdag, 4).replay(bad)

    def test_redblue_replay_fast_path(self, monkeypatch):
        cdag = grid_stencil_cdag((6,), 4)
        from repro.pebbling import spill_game_redblue

        record = spill_game_redblue(cdag, 4)
        fast = RedBluePebbleGame(cdag, 4, strict=False)
        fast.replay(record)
        monkeypatch.setenv("REPRO_KERNEL", "off")
        slow = RedBluePebbleGame(cdag, 4, strict=False)
        slow.replay(record)
        assert fast.red_ids == slow.red_ids
        assert fast.blue_ids == slow.blue_ids
        assert fast.record.summary() == slow.record.summary()


class TestParallelReplayFastPath:
    def _setup(self):
        cdag = grid_stencil_cdag((5, 5), 2)
        hierarchy = MemoryHierarchy.cluster(
            nodes=2, cores_per_node=2, registers_per_core=8, cache_size=16
        )
        return cdag, hierarchy

    def test_replay_matches_per_move(self, monkeypatch):
        cdag, hierarchy = self._setup()
        record = parallel_spill_game(cdag, hierarchy)
        fast = ParallelRBWPebbleGame(cdag, hierarchy)
        fast.replay(record)
        monkeypatch.setenv("REPRO_KERNEL", "off")
        slow = ParallelRBWPebbleGame(cdag, hierarchy)
        slow.replay(record)
        assert fast.pebbles_ids == slow.pebbles_ids
        assert dict(fast.occupancy_ids) == dict(slow.occupancy_ids)
        assert fast.blue_ids == slow.blue_ids
        assert fast.white_ids == slow.white_ids
        assert fast.record.vertical_io == slow.record.vertical_io
        assert fast.record.horizontal_io == slow.record.horizontal_io
        assert (
            fast.record.compute_per_processor
            == slow.record.compute_per_processor
        )

    def test_invalid_parallel_log_rejected_then_diagnosed(self):
        cdag, hierarchy = self._setup()
        record = parallel_spill_game(cdag, hierarchy)
        kinds, vids, locs, srcs = (
            np.concatenate(list(cols))
            for cols in zip(*record.log.iter_chunks())
        )
        kinds = kinds.copy()
        kinds[0] = 3  # first move becomes a DELETE of an absent pebble
        bad = MoveLog(compiled=cdag.compiled())
        bad.extend_block(kinds, vids, locs, srcs)
        game = ParallelRBWPebbleGame(cdag, hierarchy)
        assert not kernel.replay_parallel_kernel(game, bad)
        with pytest.raises(GameError):
            game.replay(bad)

"""Tests for the command-line interface."""

import argparse
import re

import pytest

import repro.cli
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in ("table1", "composite", "cg", "gmres", "jacobi",
                    "matmul", "validate", "distsim", "balance", "spill",
                    "sweep", "reproduce", "bench-view", "serve", "cache",
                    "all"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_docstring_and_help_list_every_subcommand(self):
        """The module docstring's usage block and --help stay in sync with
        the registered subcommands (no stale or missing entries)."""
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        registered = set(sub.choices)
        documented = set(
            re.findall(r"python -m repro\.cli ([\w-]+)", repro.cli.__doc__)
        )
        assert documented == registered
        help_text = parser.format_help()
        for cmd in registered:
            assert cmd in help_text

    def test_argument_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["gmres", "--m", "3", "7", "--n", "50"])
        assert args.m == [3, 7] and args.n == 50
        args = parser.parse_args(["distsim", "--nodes", "2", "--cache", "16"])
        assert args.nodes == 2 and args.cache == 16
        args = parser.parse_args(
            ["spill", "--workload", "star", "--ops", "64", "--workers", "2"]
        )
        assert args.workload == "star" and args.workers == 2


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "IBM BG/Q" in out and "Cray XT5" in out
        assert "0.052" in out

    def test_cg_output(self, capsys):
        assert main(["cg", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "vertical_intensity" in out
        assert "0.3" in out

    def test_gmres_custom_m(self, capsys):
        assert main(["gmres", "--m", "10", "--n", "100"]) == 0
        out = capsys.readouterr().out
        assert "0.2" in out  # 6/(10+20)

    def test_jacobi_output(self, capsys):
        assert main(["jacobi", "--dimensions", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "per_op_requirement" in out

    def test_composite_output(self, capsys):
        assert main(["composite", "--sizes", "4"]) == 0
        out = capsys.readouterr().out
        assert "17" in out  # 4N+1 for N=4

    def test_balance_output(self, capsys):
        assert main(["balance"]) == 0
        out = capsys.readouterr().out
        assert "CG" in out and "Jacobi" in out

    def test_distsim_small(self, capsys):
        assert main(["distsim", "--nodes", "2", "--cache", "32",
                     "--side", "8", "--timesteps", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured_vertical_max" in out

    def test_spill_sequential(self, capsys):
        assert main(["spill", "--workload", "star", "--ops", "16"]) == 0
        out = capsys.readouterr().out
        assert "moves         : 800" in out  # 50 moves/op at degree 8

    def test_spill_sharded_matches_sequential_counts(self, capsys):
        assert main(["spill", "--workload", "star", "--ops", "16",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "moves         : 800" in out
        assert "workers       : 2" in out

    def test_spill_kernel_backend_matches_counts(self, capsys):
        assert main(["spill", "--workload", "star", "--ops", "16",
                     "--backend", "kernel"]) == 0
        out = capsys.readouterr().out
        assert "moves         : 800" in out
        assert "backend       : kernel" in out

    def test_sweep_smoke_resume_and_reproduce(self, tmp_path, capsys):
        """The harness subcommands end to end: sweep a smoke grid,
        resume it (zero cells), reproduce it, derive a bench view."""
        out = tmp_path / "results"
        assert main(["sweep", "--out", str(out), "--grid", "smoke"]) == 0
        assert "executed 4 cell(s), skipped 0" in capsys.readouterr().out
        assert main(
            ["sweep", "--out", str(out), "--grid", "smoke", "--resume"]
        ) == 0
        assert "executed 0 cell(s), skipped 4" in capsys.readouterr().out
        assert main(["reproduce", str(out)]) == 0
        assert "4/4" in capsys.readouterr().out
        view = tmp_path / "view.json"
        assert main(
            ["bench-view", str(out), "--out", str(view)]
        ) == 0
        import json

        results = json.loads(view.read_text())["results"]
        assert any(k.startswith("harness/") for k in results)

    def test_sweep_experiment_filter(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["sweep", "--out", str(out), "--grid", "smoke",
                     "--experiments", "e2"]) == 0
        assert "executed 1 cell(s)" in capsys.readouterr().out
        assert main(["sweep", "--out", str(out), "--grid", "smoke",
                     "--experiments", "nope"]) == 2

    def test_cache_gc_watch_one_pass_evicts_then_exits(self, tmp_path,
                                                       capsys):
        """``cache gc --watch --passes 1`` runs exactly one eviction
        pass (evicting down to the byte budget) and exits instead of
        looping forever."""
        from repro.store.db import ArtifactStore

        db = tmp_path / "store.db"
        with ArtifactStore(db) as store:
            for i in range(4):
                store.put(f"{i:064x}", b"x" * 1000, kind="bound")
        assert main(["cache", "gc", "--db", str(db),
                     "--max-bytes", "1500", "--watch", "--interval",
                     "0.01", "--passes", "1"]) == 0
        out = capsys.readouterr().out
        assert "gc pass 1:" in out
        assert "gc pass 2:" not in out
        with ArtifactStore(db) as store:
            assert store.stats()["payload_bytes"] <= 1500

    def test_cache_gc_watch_multiple_passes(self, tmp_path, capsys):
        from repro.store.db import ArtifactStore

        db = tmp_path / "store.db"
        ArtifactStore(db).close()
        assert main(["cache", "gc", "--db", str(db), "--watch",
                     "--interval", "0.01", "--passes", "3"]) == 0
        out = capsys.readouterr().out
        assert "gc pass 3:" in out and "gc pass 4:" not in out

    def test_fleet_serve_grid_file_help_and_docstring(self):
        """``fleet serve --grid-file`` exists, its help names the sweep
        loader it shares, and the module docstring documents it."""
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        fleet_sub = next(
            a for a in sub.choices["fleet"]._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        serve_help = fleet_sub.choices["serve"].format_help()
        assert "--grid-file" in serve_help
        assert "sweep --grid-file" in serve_help
        assert "fleet serve --root results --grid-file" in repro.cli.__doc__
        args = parser.parse_args(
            ["fleet", "serve", "--grid-file", "g.json", "--seed", "7"]
        )
        assert args.grid_file == "g.json" and args.seed == 7

    def test_resolve_grid_shared_by_sweep_and_fleet_serve(self, tmp_path):
        """The one grid-resolution helper handles named grids, grid
        files (which win), and the neither-given case."""
        import json

        from repro.cli import _resolve_grid

        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps([
            {"experiment": "e2", "label": "mine", "params": {}},
        ]))
        specs = _resolve_grid(None, str(grid_file), seed=3)
        assert [s.label for s in specs] == ["mine"]
        assert specs[0].seed == 3
        smoke = _resolve_grid("smoke", None, seed=0)
        assert len(smoke) == 4
        assert _resolve_grid("smoke", str(grid_file), seed=0)[0].label \
            == "mine"  # grid-file wins
        assert _resolve_grid(None, None, seed=0) is None

    def test_spill_help_documents_repro_kernel(self):
        """--help for the spill subcommand (and the module docstring)
        document the REPRO_KERNEL execution-tier switch."""
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        spill_help = sub.choices["spill"].format_help()
        assert "REPRO_KERNEL" in spill_help
        assert "kernel" in spill_help
        assert "REPRO_KERNEL" in repro.cli.__doc__

"""End-to-end tests for ``repro reproduce``.

Runs a tiny E2+E5 grid through the harness, then checks both
directions of the contract: a faithful store regenerates within
tolerance (exit 0), and an injected corruption — one flipped stored
metric, in either ``summary.json`` or ``metrics.jsonl`` — fails with a
nonzero exit that names the corrupted cell.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.evaluation.harness import make_spec, reproduce, run_grid
from repro.evaluation.manifest import dumps_canonical


def _tiny_grid():
    return [
        make_spec("e2", {"sizes": [4, 8], "s": 64}),
        make_spec("e5", {"dimensions": [2, 3], "n": 50, "timesteps": 50}),
    ]


@pytest.fixture()
def store(tmp_path):
    root = tmp_path / "results"
    result = run_grid(_tiny_grid(), root, log=lambda _: None)
    assert result.executed == ["e2", "e5"]
    return root


class TestReproducePasses:
    def test_faithful_store_reproduces(self, store):
        assert reproduce(store, log=lambda _: None) == []

    def test_cli_exit_zero(self, store, capsys):
        assert main(["reproduce", str(store)]) == 0
        out = capsys.readouterr().out
        assert "[ok]      e2" in out and "[ok]      e5" in out
        assert "2/2" in out

    def test_full_default_cells_reproduce(self, tmp_path):
        """A slightly wider slice: spill cells (incl. the seeded forest
        workload) replay from their manifests too."""
        grid = [
            make_spec("spill", {"workload": "star", "ops": 16}, seed=5,
                      label="star"),
            make_spec(
                "spill",
                {"workload": "forest", "components": 3, "component_size": 8},
                seed=5,
                label="forest",
            ),
        ]
        root = tmp_path / "results"
        run_grid(grid, root, log=lambda _: None)
        assert reproduce(root, log=lambda _: None) == []


class TestReproduceCatchesCorruption:
    def _flip_summary_metric(self, store: Path, label: str) -> str:
        path = store / label / "summary.json"
        summary = json.loads(path.read_text())
        numeric = [
            k for k, m in summary["metrics"].items()
            if m.get("kind") == "numeric"
        ]
        key = numeric[0]
        summary["metrics"][key]["mean"] += 1.0
        path.write_text(dumps_canonical(summary))
        return key

    def test_flipped_summary_metric_fails_naming_the_cell(self, store):
        key = self._flip_summary_metric(store, "e2")
        failures = reproduce(store, log=lambda _: None)
        assert [f.label for f in failures] == ["e2"]
        assert any(f"'{key}'" in p for p in failures[0].problems)

    def test_flipped_summary_metric_nonzero_cli_exit(self, store, capsys):
        self._flip_summary_metric(store, "e5")
        assert main(["reproduce", str(store)]) == 1
        out = capsys.readouterr().out
        assert "reproduce FAILED for cell(s): e5" in out
        assert "[FAIL]    e5" in out
        assert "[ok]      e2" in out

    def test_flipped_metrics_row_fails(self, store):
        path = store / "e2" / "metrics.jsonl"
        lines = path.read_text().splitlines()
        row = json.loads(lines[0])
        row["verified_game_io"] += 1
        lines[0] = dumps_canonical(row, indent=None)
        path.write_text("\n".join(lines) + "\n")
        failures = reproduce(store, log=lambda _: None)
        assert [f.label for f in failures] == ["e2"]
        assert any("verified_game_io" in p for p in failures[0].problems)

    def test_unknown_experiment_in_manifest_fails(self, store):
        path = store / "e2" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["experiment"] = "e99"
        path.write_text(dumps_canonical(manifest))
        failures = reproduce(store, log=lambda _: None)
        assert [f.label for f in failures] == ["e2"]
        assert "unknown experiment" in failures[0].problems[0]

    def test_tampered_manifest_params_fail_the_hash_check(self, store):
        """Editing params without recomputing the hash is detected even
        when the edited config happens to regenerate identical rows."""
        path = store / "e5" / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["params"]["n"] = 51
        path.write_text(dumps_canonical(manifest))
        failures = reproduce(store, log=lambda _: None)
        assert [f.label for f in failures] == ["e5"]
        assert any("config_hash" in p for p in failures[0].problems)

    def test_partial_cells_are_reported_not_reproduced(self, store, capsys):
        (store / "e5" / "summary.json").unlink()
        assert reproduce(store, log=print) == []
        assert "[partial] e5" in capsys.readouterr().out

    def test_empty_store_is_a_failure(self, tmp_path):
        failures = reproduce(tmp_path / "nothing", log=lambda _: None)
        assert failures and "no run directories" in failures[0].problems[0]

"""Seed-plumbing audit for the harness (satellite of the manifest PR).

E1-E9 are deterministic given their parameters; the only randomized
construction reachable from a driver is the ``forest`` workload of
``experiment_spill_strategies``, which takes an **explicit** seed.  The
harness records the seed of every cell in its manifest, and this suite
pins the contract: two same-seed runs of a grid that includes the
randomized workload produce byte-identical ``metrics.jsonl`` (and
summaries), while different seeds are different cell identities.
"""

from repro.evaluation.experiments import experiment_spill_strategies
from repro.evaluation.harness import make_spec, run_grid
from repro.evaluation.manifest import read_manifest, read_metrics


def _seeded_grid(seed):
    return [
        make_spec("e2", {"sizes": [4, 8], "s": 64}, seed=seed),
        make_spec(
            "spill",
            {"workload": "forest", "components": 3, "component_size": 10},
            seed=seed,
            label="forest",
        ),
        make_spec(
            "spill", {"workload": "chains", "chains": 4, "length": 8},
            seed=seed, label="chains",
        ),
    ]


class TestSameSeedIdentity:
    def test_same_seed_runs_write_identical_metrics(self, tmp_path):
        roots = []
        for name in ("a", "b"):
            root = tmp_path / name
            run_grid(_seeded_grid(seed=7), root, log=lambda _: None)
            roots.append(root)
        for cell in ("e2", "forest", "chains"):
            a = (roots[0] / cell / "metrics.jsonl").read_bytes()
            b = (roots[1] / cell / "metrics.jsonl").read_bytes()
            assert a == b, f"metrics.jsonl differs for cell {cell}"
            a_sum = (roots[0] / cell / "summary.json").read_bytes()
            b_sum = (roots[1] / cell / "summary.json").read_bytes()
            assert a_sum == b_sum

    def test_seed_is_recorded_in_manifest_and_rows(self, tmp_path):
        root = tmp_path / "store"
        run_grid(_seeded_grid(seed=7), root, log=lambda _: None)
        for cell in ("e2", "forest", "chains"):
            assert read_manifest(root / cell)["seed"] == 7
        forest_rows = read_metrics(root / "forest")
        assert forest_rows[0]["seed"] == 7

    def test_different_seeds_are_different_cell_identities(self):
        grid7 = _seeded_grid(seed=7)
        grid8 = _seeded_grid(seed=8)
        for a, b in zip(grid7, grid8):
            assert a.label == b.label
            assert a.hash() != b.hash()


class TestDriverSeedPlumbing:
    def test_forest_driver_is_deterministic_per_seed(self):
        rows_a = experiment_spill_strategies(
            workload="forest", components=3, component_size=10, seed=11
        )
        rows_b = experiment_spill_strategies(
            workload="forest", components=3, component_size=10, seed=11
        )
        assert rows_a == rows_b
        assert rows_a[0]["seed"] == 11

    def test_forest_seed_changes_the_game(self):
        """Different seeds build different random forests.  Vertex count
        is fixed by construction, so structure shows up in the edge
        count or the played game; assert on a seed pair where it does
        (deterministically — no RNG in the test itself)."""
        rows_11 = experiment_spill_strategies(
            workload="forest", components=3, component_size=10, seed=11
        )[0]
        rows_12 = experiment_spill_strategies(
            workload="forest", components=3, component_size=10, seed=12
        )[0]
        assert (
            rows_11["num_edges"],
            rows_11["moves"],
            rows_11["io"],
        ) != (rows_12["num_edges"], rows_12["moves"], rows_12["io"])

    def test_deterministic_drivers_ignore_seed(self):
        """The audit's complement: E2 is parameter-deterministic, so the
        seed changes the manifest identity but never the rows."""
        from repro.evaluation.experiments import experiment_composite_example

        assert experiment_composite_example(sizes=(4, 8)) == (
            experiment_composite_example(sizes=(4, 8))
        )

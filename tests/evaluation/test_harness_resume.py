"""Crash/resume differential suite for the manifest-driven harness.

The headline invariant: a grid run SIGKILLed at an arbitrary point
(mid-cell or between a cell's rows and its summary commit) and then
resumed with ``--resume`` produces ``summary.json`` and
``metrics.jsonl`` files **byte-identical** to an uninterrupted run of
the same grid.  The kill point is injected deterministically through
the ``REPRO_HARNESS_KILL_AT`` hook (see
:mod:`repro.evaluation.harness`); one of the parametrized points is
drawn from a seeded RNG so the suite keeps sampling the space without
flaking.

Also pinned here: partial directories (no committed ``summary.json``)
are detected and re-run, resume of a complete grid executes zero cells,
and stale-config cells (same label, different manifest hash) are swept
and re-executed.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.evaluation.harness import (
    make_spec,
    run_grid,
    scan_results_root,
    smoke_grid,
)
from repro.evaluation.manifest import read_manifest, read_summary

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: files whose bytes must match between interrupted+resumed and
#: uninterrupted runs (manifest/timing carry wall-clock provenance)
COMPARED = ("summary.json", "metrics.jsonl")

# The smoke grid writes 6 metrics rows over 4 cells (2 + 2 + 1 + 1); a
# seeded RNG supplies one extra kill point so the space keeps getting
# sampled deterministically.
_RNG_KILL = f"row:{random.Random(0xC0FFEE).randint(2, 6)}"
KILL_POINTS = ["row:1", "row:4", "summary:1", "summary:3", _RNG_KILL]


def _sweep_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    env.update(extra)
    return env


def _sweep_subprocess(out, resume=False, kill_at=None):
    cmd = [
        sys.executable, "-m", "repro.cli",
        "sweep", "--out", str(out), "--grid", "smoke",
    ]
    if resume:
        cmd.append("--resume")
    env = _sweep_env(
        **({"REPRO_HARNESS_KILL_AT": kill_at} if kill_at else {})
    )
    return subprocess.run(
        cmd, env=env, cwd=REPO, capture_output=True, text=True, timeout=120
    )


def _artifact_bytes(root):
    """{relative path: bytes} for every compared artifact under root."""
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for name in COMPARED
        for p in sorted(root.glob(f"*/{name}"))
    }


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    """An uninterrupted in-process run of the smoke grid."""
    root = tmp_path_factory.mktemp("reference")
    result = run_grid(smoke_grid(), root, log=lambda _: None)
    assert len(result.executed) == 4
    return root


class TestCrashResumeDifferential:
    @pytest.mark.parametrize("kill_at", KILL_POINTS)
    def test_sigkill_then_resume_matches_uninterrupted(
        self, kill_at, tmp_path, reference_store
    ):
        out = tmp_path / "store"
        killed = _sweep_subprocess(out, kill_at=kill_at)
        # SIGKILL'd, not a clean exit (-9, or 137 through a shell layer)
        assert killed.returncode in (-9, 137), killed.stderr
        # the interrupted store is genuinely incomplete
        states = scan_results_root(out)
        complete = [s for s in states.values() if s.has_summary]
        assert len(complete) < 4

        resumed = _sweep_subprocess(out, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert _artifact_bytes(out) == _artifact_bytes(reference_store)

    def test_resume_skips_the_committed_prefix(self, tmp_path):
        out = tmp_path / "store"
        _sweep_subprocess(out, kill_at="summary:3")
        states = scan_results_root(out)
        committed_before = {k for k, s in states.items() if s.has_summary}
        assert len(committed_before) == 2  # cells 1-2 committed, 3 partial

        resumed = _sweep_subprocess(out, resume=True)
        assert resumed.returncode == 0
        for label in committed_before:
            assert f"[skip]    {label}" in resumed.stdout
        assert "[partial]" in resumed.stdout

    def test_resume_of_complete_grid_executes_zero_cells(
        self, tmp_path, reference_store
    ):
        out = tmp_path / "store"
        run_grid(smoke_grid(), out, log=lambda _: None)
        again = run_grid(smoke_grid(), out, resume=True, log=lambda _: None)
        assert again.executed == []
        assert len(again.skipped) == 4
        assert _artifact_bytes(out) == _artifact_bytes(reference_store)

    def test_partial_directory_is_detected_and_rerun(
        self, tmp_path, reference_store
    ):
        out = tmp_path / "store"
        run_grid(smoke_grid(), out, resume=False, log=lambda _: None)
        # Demote one cell to partial: drop its commit marker and corrupt
        # its metrics, as a mid-cell crash would.
        victim = out / "e5"
        (victim / "summary.json").unlink()
        with open(victim / "metrics.jsonl", "a") as fh:
            fh.write('{"torn":')  # torn last line
        result = run_grid(smoke_grid(), out, resume=True, log=lambda _: None)
        assert result.executed == ["e5"]
        assert read_summary(victim) is not None
        assert _artifact_bytes(out) == _artifact_bytes(reference_store)

    def test_unparseable_summary_counts_as_partial(self, tmp_path):
        out = tmp_path / "store"
        run_grid(smoke_grid(), out, log=lambda _: None)
        (out / "e2" / "summary.json").write_text("{not json")
        result = run_grid(smoke_grid(), out, resume=True, log=lambda _: None)
        assert result.executed == ["e2"]


class TestStaleConfig:
    def test_stale_config_cell_is_swept_and_rerun(self, tmp_path):
        out = tmp_path / "store"
        run_grid(smoke_grid(), out, log=lambda _: None)
        # Same labels, but e2 now asks for a different size list: its
        # manifest hash no longer matches the committed summary.
        grid = smoke_grid()
        changed = make_spec("e2", {"sizes": [4, 8, 16], "s": 64})
        grid[0] = changed
        result = run_grid(grid, out, resume=True, log=lambda _: None)
        assert result.executed == ["e2"]
        assert result.plan.stale == ("e2",)
        assert len(result.skipped) == 3
        # the re-run committed the new config
        assert read_summary(out / "e2")["config_hash"] == changed.hash()
        assert read_manifest(out / "e2")["config_hash"] == changed.hash()
        rows = (out / "e2" / "metrics.jsonl").read_text().splitlines()
        assert len(rows) == 3  # one per size

    def test_without_resume_everything_reruns(self, tmp_path):
        out = tmp_path / "store"
        first = run_grid(smoke_grid(), out, log=lambda _: None)
        second = run_grid(smoke_grid(), out, resume=False, log=lambda _: None)
        assert second.executed == first.executed
        assert second.skipped == []


class TestGridValidation:
    def test_duplicate_labels_rejected(self, tmp_path):
        grid = [make_spec("e2"), make_spec("e2")]
        with pytest.raises(ValueError, match="duplicate"):
            run_grid(grid, tmp_path / "store", log=lambda _: None)

    def test_manifest_records_identity_and_provenance(self, tmp_path):
        out = tmp_path / "store"
        run_grid(smoke_grid(seed=3), out, log=lambda _: None)
        manifest = read_manifest(out / "e2")
        assert manifest["seed"] == 3
        assert manifest["experiment"] == "e2"
        assert {"git_sha", "python", "numpy", "created_utc"} <= set(
            manifest["provenance"]
        )
        summary = read_summary(out / "e2")
        assert summary["config_hash"] == manifest["config_hash"]
        assert summary["num_rows"] == len(
            (out / "e2" / "metrics.jsonl").read_text().splitlines()
        )

    def test_kill_env_validation(self):
        from repro.evaluation.harness import _KillHook

        with pytest.raises(ValueError):
            _KillHook("rows:3")
        with pytest.raises(ValueError):
            _KillHook("row:0")
        hook = _KillHook(None)
        hook.after_row()  # inert without the env var
        hook.before_summary()

    def test_summary_is_committed_atomically(self, tmp_path):
        """No summary.json.tmp survives a completed run (the temp file
        is renamed over the real name)."""
        out = tmp_path / "store"
        run_grid(smoke_grid(), out, log=lambda _: None)
        assert not list(out.glob("*/summary.json.tmp"))
        assert json.loads((out / "e2" / "summary.json").read_text())

"""``run_grid(..., jobs=N)``: parallel per-cell worker processes are
byte-identical to the sequential sweep, isolate crashes, and enforce
per-cell timeouts with resumable partials."""

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.evaluation.harness import (
    ExperimentDef,
    RunSpec,
    describe_worker_exit,
    plan_resume,
    run_grid,
    scan_results_root,
    smoke_grid,
)

ARTIFACTS = ("manifest.json", "metrics.jsonl", "summary.json")


def _cell_bytes(root):
    """Committed cell artifacts, byte for byte — except the manifest's
    ``created_utc`` wall-clock stamp, which legitimately differs between
    two otherwise-identical sweeps."""
    root = Path(root)
    out = {}
    for cell in sorted(p.name for p in root.iterdir() if p.is_dir()):
        for name in ARTIFACTS:
            raw = (root / cell / name).read_bytes()
            if name == "manifest.json":
                manifest = json.loads(raw)
                manifest.get("provenance", {}).pop("created_utc", None)
                raw = json.dumps(manifest, sort_keys=True).encode()
            out[(cell, name)] = raw
    return out


# Worker targets must be importable from the module under fork/spawn.
def _run_sleepy(params, seed):
    time.sleep(float(params.get("sleep_s", 60.0)))
    return [{"x": 1}]


def _run_quick(params, seed):
    return [{"x": int(params.get("x", 2)), "seed": seed}]


def _run_crashy(params, seed):
    raise RuntimeError("worker goes down")


def _run_selfkill(params, seed):
    os.kill(os.getpid(), signal.SIGKILL)


TEST_REGISTRY = {
    "sleepy": ExperimentDef("sleepy", _run_sleepy, {"sleep_s": 60.0}),
    "quick": ExperimentDef("quick", _run_quick, {"x": 2}),
    "crashy": ExperimentDef("crashy", _run_crashy, {}),
    "selfkill": ExperimentDef("selfkill", _run_selfkill, {}),
}


def test_jobs_validation():
    with pytest.raises(ValueError, match="jobs"):
        run_grid([], "unused", jobs=0)
    with pytest.raises(ValueError, match="cell_timeout"):
        run_grid([], "unused", jobs=2, cell_timeout=0.0)


def test_parallel_matches_sequential_byte_for_byte(tmp_path):
    specs = smoke_grid(seed=0)
    seq = run_grid(specs, tmp_path / "seq", log=lambda m: None)
    par = run_grid(specs, tmp_path / "par", jobs=3, log=lambda m: None)
    assert not par.failed
    assert sorted(par.executed) == sorted(seq.executed)
    assert _cell_bytes(tmp_path / "par") == _cell_bytes(tmp_path / "seq")


def test_parallel_with_store_matches_too(tmp_path):
    specs = smoke_grid(seed=0)
    seq = run_grid(specs, tmp_path / "seq", log=lambda m: None)
    par = run_grid(specs, tmp_path / "par", jobs=2,
                   store_path=tmp_path / "store.db", log=lambda m: None)
    assert not par.failed
    assert sorted(par.executed) == sorted(seq.executed)
    assert _cell_bytes(tmp_path / "par") == _cell_bytes(tmp_path / "seq")


def test_timeout_terminates_cell_and_leaves_resumable_partial(tmp_path):
    specs = [
        RunSpec("sleepy", {"sleep_s": 60.0}, 0, "sleepy"),
        RunSpec("quick", {"x": 2}, 0, "quick"),
    ]
    result = run_grid(specs, tmp_path, registry=TEST_REGISTRY, jobs=2,
                      cell_timeout=1.5, log=lambda m: None)
    assert result.executed == ["quick"]
    assert [label for label, _ in result.failed] == ["sleepy"]
    assert "timed out" in result.failed[0][1]
    # the timed-out cell is a partial -> --resume re-runs exactly it
    plan = plan_resume(specs, scan_results_root(tmp_path))
    assert plan.partial == ("sleepy",)
    assert plan.skip == ("quick",)


def test_crashing_worker_does_not_take_down_the_sweep(tmp_path):
    specs = [
        RunSpec("crashy", {}, 0, "crashy"),
        RunSpec("quick", {"x": 5}, 0, "quick"),
    ]
    result = run_grid(specs, tmp_path, registry=TEST_REGISTRY, jobs=2,
                      log=lambda m: None)
    assert result.executed == ["quick"]
    assert [label for label, _ in result.failed] == ["crashy"]
    assert "exited" in result.failed[0][1]
    # the crashed cell never committed a summary
    plan = plan_resume(specs, scan_results_root(tmp_path))
    assert plan.partial == ("crashy",)


def test_sequential_jobs1_still_raises(tmp_path):
    """Under jobs=1 cell errors propagate to the caller, unchanged."""
    specs = [RunSpec("crashy", {}, 0, "crashy")]
    with pytest.raises(RuntimeError, match="worker goes down"):
        run_grid(specs, tmp_path, registry=TEST_REGISTRY, log=lambda m: None)


def test_describe_worker_exit_names_signals():
    assert describe_worker_exit(-signal.SIGKILL) == "worker killed by SIGKILL"
    assert describe_worker_exit(-signal.SIGTERM) == "worker killed by SIGTERM"
    assert describe_worker_exit(1) == "worker exited with code 1"
    assert describe_worker_exit(None) == "worker exited with code None"


def test_signal_killed_cell_is_reported_by_signal_name(tmp_path):
    specs = [
        RunSpec("selfkill", {}, 0, "boom"),
        RunSpec("quick", {"x": 2}, 0, "quick"),
    ]
    result = run_grid(specs, tmp_path, registry=TEST_REGISTRY, jobs=2,
                      log=lambda m: None)
    assert result.executed == ["quick"]
    assert result.failed == [("boom", "worker killed by SIGKILL")]


def test_interrupted_schedule_loop_reaps_every_worker(tmp_path):
    """A KeyboardInterrupt (or any exception) escaping the scheduling
    loop must not orphan live cell processes: they are terminated and
    joined on the way out, leaving quiescent partials for --resume."""
    specs = [
        RunSpec("sleepy", {"sleep_s": 60.0}, 0, f"sleepy{i}")
        for i in range(2)
    ]
    scheduled = []

    def exploding_log(msg):
        if msg.lstrip().startswith("["):
            scheduled.append(msg)
            if len(scheduled) == 2:  # both cells are running now
                raise KeyboardInterrupt

    before = time.monotonic()
    with pytest.raises(KeyboardInterrupt):
        run_grid(specs, tmp_path, registry=TEST_REGISTRY, jobs=2,
                 log=exploding_log)
    # cleanup was prompt (termination, not waiting out the sleeps)...
    assert time.monotonic() - before < 30.0
    # ...and complete: no stray live cell processes remain
    assert all(
        not proc.is_alive() for proc in multiprocessing.active_children()
    )
    # the interrupted cells are resumable partials
    plan = plan_resume(specs, scan_results_root(tmp_path))
    assert set(plan.partial) == {"sleepy0", "sleepy1"}

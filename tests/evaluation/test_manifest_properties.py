"""Hypothesis property suite for the manifest/harness layer.

Pins the three contracts the resume machinery stands on:

* **Manifest round-trip** — ``config -> manifest -> config`` is the
  identity on canonical configs (tuples/lists and numpy scalars
  normalize; nothing else changes through JSON).
* **Hash stability** — ``config_hash`` is invariant under dict key
  reordering and tuple/list spelling, and changes when the config
  actually changes.
* **Resume planning** — :func:`repro.evaluation.harness.plan_resume`
  is a pure function of (existing dirs x requested grid): complete
  matching cells skip, stale-config and partial cells re-run, absent
  cells run, and a fully-committed matching grid executes zero cells.

Plus the tolerance semantics used by ``reproduce``.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.evaluation.harness import (  # noqa: E402
    CellState,
    RunSpec,
    plan_resume,
)
from repro.evaluation.manifest import (  # noqa: E402
    build_manifest,
    canonical_config,
    compare_summaries,
    config_hash,
    dumps_canonical,
    summarize_rows,
    within_tolerance,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=8)
)
_values = st.recursive(
    _scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=12,
)
_configs = st.dictionaries(st.text(min_size=1, max_size=8), _values, max_size=6)


# ----------------------------------------------------------------------
# Manifest round-trip
# ----------------------------------------------------------------------
class TestManifestRoundTrip:
    @given(config=_configs, seed=st.integers(0, 2**31))
    def test_config_survives_json_round_trip(self, config, seed):
        canon = canonical_config(config)
        assert canonical_config(json.loads(json.dumps(canon))) == canon

    @given(config=_configs, seed=st.integers(0, 2**31))
    def test_manifest_round_trips_params_and_seed(self, config, seed):
        manifest = build_manifest(
            "e2", config, seed, "cell", provenance={"git_sha": "x"}
        )
        back = json.loads(dumps_canonical(manifest))
        assert back["params"] == canonical_config(config)
        assert back["seed"] == seed
        assert back["experiment"] == "e2"
        assert back["config_hash"] == config_hash("e2", config, seed)

    def test_tuples_normalize_to_lists(self):
        assert canonical_config({"a": (1, 2, (3,))}) == {"a": [1, 2, [3]]}

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical_config({1: "x"})

    def test_non_finite_floats_rejected(self):
        with pytest.raises(TypeError):
            canonical_config({"a": float("nan")})


# ----------------------------------------------------------------------
# Hash stability
# ----------------------------------------------------------------------
class TestHashStability:
    @given(
        items=st.lists(
            st.tuples(st.text(min_size=1, max_size=8), _values),
            max_size=6,
            unique_by=lambda kv: kv[0],
        ),
        seed=st.integers(0, 2**31),
        data=st.data(),
    )
    def test_key_reordering_preserves_hash(self, items, seed, data):
        perm = data.draw(st.permutations(items))
        assert config_hash("e5", dict(items), seed) == config_hash(
            "e5", dict(perm), seed
        )

    @given(config=_configs, seed=st.integers(0, 2**31))
    def test_added_key_changes_hash(self, config, seed):
        changed = dict(config)
        changed["__fresh_key__"] = 1
        assert config_hash("e5", config, seed) != config_hash(
            "e5", changed, seed
        )

    @given(config=_configs, seed=st.integers(0, 2**31 - 1))
    def test_seed_and_experiment_are_part_of_identity(self, config, seed):
        base = config_hash("e5", config, seed)
        assert base != config_hash("e5", config, seed + 1)
        assert base != config_hash("e6", config, seed)

    def test_tuple_and_list_spellings_agree(self):
        assert config_hash("e2", {"sizes": (4, 8)}, 0) == config_hash(
            "e2", {"sizes": [4, 8]}, 0
        )


# ----------------------------------------------------------------------
# Resume planning as a pure function
# ----------------------------------------------------------------------
_MATCH, _MISMATCH, _PARTIAL, _ABSENT = "match", "mismatch", "partial", "absent"


def _spec(label: str, i: int) -> RunSpec:
    return RunSpec("e2", {"sizes": [i + 1]}, seed=0, label=label)


@st.composite
def _grids_with_state(draw):
    labels = draw(
        st.lists(
            st.text(
                alphabet="abcdefgh", min_size=1, max_size=6
            ),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    specs = [_spec(label, i) for i, label in enumerate(labels)]
    kinds = {
        label: draw(
            st.sampled_from([_MATCH, _MISMATCH, _PARTIAL, _ABSENT])
        )
        for label in labels
    }
    existing = {}
    for spec in specs:
        kind = kinds[spec.label]
        if kind == _ABSENT:
            continue
        if kind == _PARTIAL:
            existing[spec.label] = CellState(has_summary=False)
        elif kind == _MATCH:
            existing[spec.label] = CellState(
                has_summary=True, config_hash=spec.hash()
            )
        else:
            existing[spec.label] = CellState(
                has_summary=True, config_hash="0" * 64
            )
    return specs, existing, kinds


class TestResumePlanning:
    @given(_grids_with_state())
    def test_decisions_partition_the_grid(self, grid):
        specs, existing, kinds = grid
        plan = plan_resume(specs, existing)
        assert sorted(plan.run + plan.skip + plan.stale + plan.partial) == (
            sorted(s.label for s in specs)
        )
        for spec in specs:
            kind = kinds[spec.label]
            if kind == _ABSENT:
                assert spec.label in plan.run
            elif kind == _PARTIAL:
                assert spec.label in plan.partial
            elif kind == _MATCH:
                assert spec.label in plan.skip
            else:
                assert spec.label in plan.stale

    @given(_grids_with_state())
    def test_skip_exactly_the_committed_matching_cells(self, grid):
        specs, existing, kinds = grid
        plan = plan_resume(specs, existing)
        assert set(plan.to_execute) == {
            label for label, kind in kinds.items() if kind != _MATCH
        }

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=8, unique=True))
    def test_resume_of_complete_grid_executes_zero_cells(self, sizes):
        specs = [_spec(f"cell{i}", n) for i, n in enumerate(sizes)]
        existing = {
            s.label: CellState(has_summary=True, config_hash=s.hash())
            for s in specs
        }
        plan = plan_resume(specs, existing)
        assert plan.to_execute == ()
        assert list(plan.skip) == [s.label for s in specs]

    def test_extra_on_disk_cells_are_ignored(self):
        specs = [_spec("a", 1)]
        existing = {
            "a": CellState(has_summary=True, config_hash=specs[0].hash()),
            "orphan": CellState(has_summary=True, config_hash="f" * 64),
        }
        plan = plan_resume(specs, existing)
        assert plan.skip == ("a",) and plan.to_execute == ()


# ----------------------------------------------------------------------
# Tolerance semantics
# ----------------------------------------------------------------------
_finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


class TestToleranceSemantics:
    @given(a=_finite, rel=st.floats(0, 1), abs_=st.floats(0, 1e6))
    def test_reflexive(self, a, rel, abs_):
        assert within_tolerance(a, a, rel, abs_)

    @given(a=_finite, b=_finite)
    def test_zero_tolerance_is_equality(self, a, b):
        assert within_tolerance(a, b, 0.0, 0.0) == (a == b)

    @given(a=_finite, b=_finite, rel=st.floats(0, 1), abs_=st.floats(0, 1e6))
    def test_symmetric(self, a, b, rel, abs_):
        assert within_tolerance(a, b, rel, abs_) == within_tolerance(
            b, a, rel, abs_
        )

    @settings(max_examples=50)
    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {"x": _finite, "tag": st.sampled_from(["p", "q"])}
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_identical_rows_summarize_identically(self, rows):
        assert compare_summaries(
            summarize_rows(rows), summarize_rows(list(rows))
        ) == []

    def test_out_of_tolerance_perturbation_is_reported(self):
        stored = summarize_rows([{"x": 1.0}, {"x": 3.0}])
        fresh = summarize_rows([{"x": 1.0}, {"x": 3.1}])
        problems = compare_summaries(
            stored, fresh, tolerances={"x": {"rel": 1e-3, "abs": 0.0}}
        )
        assert problems and any("'x'" in p for p in problems)
        # ...and a loose-enough tolerance accepts the same perturbation.
        assert (
            compare_summaries(
                stored, fresh, tolerances={"x": {"rel": 0.1, "abs": 0.0}}
            )
            == []
        )

    def test_non_numeric_metrics_compare_exactly(self):
        stored = summarize_rows([{"name": "a"}])
        fresh = summarize_rows([{"name": "b"}])
        assert compare_summaries(stored, fresh)

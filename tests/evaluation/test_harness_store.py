"""``run_grid(..., store_path=...)``: sweeps through the artifact store
produce byte-identical results and actually reuse cached snapshots."""

import json
from pathlib import Path

from repro.evaluation.harness import run_grid, smoke_grid
from repro.store import ArtifactStore

ARTIFACTS = ("manifest.json", "metrics.jsonl", "summary.json")


def _cell_bytes(root):
    """Committed cell artifacts, byte for byte — except the manifest's
    ``created_utc`` wall-clock stamp, which legitimately differs between
    two otherwise-identical sweeps."""
    root = Path(root)
    out = {}
    for cell in sorted(p.name for p in root.iterdir() if p.is_dir()):
        for name in ARTIFACTS:
            raw = (root / cell / name).read_bytes()
            if name == "manifest.json":
                manifest = json.loads(raw)
                manifest.get("provenance", {}).pop("created_utc", None)
                raw = json.dumps(manifest, sort_keys=True).encode()
            out[(cell, name)] = raw
    return out


def test_store_sweep_is_byte_identical_to_plain_sweep(tmp_path):
    specs = smoke_grid(seed=0)
    plain = run_grid(specs, tmp_path / "plain", log=lambda m: None)
    stored = run_grid(
        specs,
        tmp_path / "stored",
        store_path=tmp_path / "store.db",
        log=lambda m: None,
    )
    assert stored.executed == plain.executed
    assert not stored.failed
    assert _cell_bytes(tmp_path / "stored") == _cell_bytes(
        tmp_path / "plain"
    )


def test_store_sweep_reuses_compiled_snapshots(tmp_path):
    specs = [s for s in smoke_grid(seed=0) if s.experiment == "spill"]
    db = tmp_path / "store.db"
    run_grid(specs, tmp_path / "first", store_path=db, log=lambda m: None)
    with ArtifactStore(db) as store:
        stats = store.stats()
        assert stats["kinds"]["compiled"]["entries"] == len(specs)
    # second sweep over a fresh results root: every cell adopts its
    # snapshot from the store instead of recompiling
    run_grid(specs, tmp_path / "second", store_path=db, log=lambda m: None)
    with ArtifactStore(db) as store:
        assert store.stats()["kinds"]["compiled"]["entries"] == len(specs)
    assert _cell_bytes(tmp_path / "second") == _cell_bytes(
        tmp_path / "first"
    )


def test_store_survives_resume(tmp_path):
    specs = smoke_grid(seed=0)
    db = tmp_path / "store.db"
    out = tmp_path / "results"
    first = run_grid(specs, out, store_path=db, log=lambda m: None)
    assert len(first.executed) == len(specs)
    second = run_grid(specs, out, resume=True, store_path=db,
                      log=lambda m: None)
    assert second.executed == []
    assert len(second.skipped) == len(specs)

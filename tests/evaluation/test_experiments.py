"""Tests for the evaluation experiment drivers (E1-E9)."""

import pytest

from repro.evaluation import (
    experiment_balance_conditions,
    experiment_bound_validation,
    experiment_cg_bounds,
    experiment_composite_example,
    experiment_distsim_parallel,
    experiment_gmres_bounds,
    experiment_jacobi_bounds,
    experiment_matmul_bounds,
    experiment_table1_machines,
    format_table,
    render_report,
)


class TestE1Table1:
    def test_rows_match_paper_constants(self):
        rows = experiment_table1_machines()
        by_name = {r["machine"]: r for r in rows}
        assert by_name["IBM BG/Q"]["vertical_balance"] == pytest.approx(0.052)
        assert by_name["IBM BG/Q"]["horizontal_balance"] == pytest.approx(0.049)
        assert by_name["Cray XT5"]["vertical_balance"] == pytest.approx(0.0256)
        assert by_name["Cray XT5"]["horizontal_balance"] == pytest.approx(0.058)
        assert by_name["IBM BG/Q"]["nodes"] == 2048
        assert by_name["Cray XT5"]["nodes"] == 9408


class TestE2Composite:
    def test_verified_game_matches_4n_plus_1(self):
        rows = experiment_composite_example(sizes=(4, 8))
        for row in rows:
            assert row["verified_game_io"] == 4 * row["N"] + 1
            assert row["verified_game_io"] == row["composite_upper_bound_4N+1"]
            assert row["naive_step_sum"] > row["verified_game_io"]


class TestE3CG:
    def test_vertical_intensity_and_verdicts(self):
        rows = experiment_cg_bounds(n=1000, dimensions=3)
        machine_rows = [r for r in rows if r["machine"] in ("IBM BG/Q", "Cray XT5")]
        assert len(machine_rows) == 2
        for r in machine_rows:
            assert r["vertical_intensity"] == pytest.approx(0.3)
            assert r["vertically_bound"] is True
            assert r["possibly_network_bound"] is False

    def test_wavefront_check_row_present(self):
        rows = experiment_cg_bounds()
        check = [r for r in rows if "wavefront check" in str(r["machine"])]
        assert len(check) == 1
        assert check[0]["vertically_bound"] is True  # wavefront >= 2 n^d


class TestE4GMRES:
    def test_intensity_tracks_paper_formula(self):
        rows = experiment_gmres_bounds(krylov_dimensions=(5, 10, 100))
        for r in rows:
            assert r["vertical_intensity"] == pytest.approx(
                r["paper_formula_6/(m+20)"]
            )
        # crossover: memory bound for small m, not for m = 100 on BG/Q
        assert rows[0]["vertically_bound"] is True
        assert rows[-1]["vertically_bound"] is False


class TestE5Jacobi:
    def test_threshold_and_verdicts(self):
        rows = experiment_jacobi_bounds(dimensions=(1, 2, 3, 11))
        by_d = {r["d"]: r for r in rows}
        assert by_d[2]["vertically_bound"] is False
        assert by_d[3]["vertically_bound"] is False
        assert by_d[11]["vertically_bound"] is True
        # thresholds reported consistently across rows
        assert by_d[2]["exact_threshold_d"] == by_d[3]["exact_threshold_d"]
        assert by_d[2]["paper_threshold_d"] == pytest.approx(4.83, rel=0.01)


class TestE6Matmul:
    def test_sandwich_holds(self):
        rows = experiment_matmul_bounds(sizes=(4,), cache_sizes=(8,))
        for r in rows:
            assert r["sandwich_ok"] is True
            assert r["corollary1_LB"] <= r["spill_game_UB"]


class TestE7Validation:
    def test_all_rows_sound(self):
        rows = experiment_bound_validation()
        assert len(rows) >= 5
        assert all(r["sound"] for r in rows)


class TestE8Distsim:
    def test_measured_traffic_dominates_bounds(self):
        rows = experiment_distsim_parallel(
            shape=(12, 12), timesteps=3, num_nodes=4, cache_words=32,
            policies=("lru",),
        )
        assert len(rows) == 2
        for r in rows:
            assert r["vertical_ok"] is True
            assert r["measured_vertical_max"] >= r["vertical_LB_per_node"]


class TestE9Balance:
    def test_summary_narrative(self):
        rows = experiment_balance_conditions()
        cg_rows = [r for r in rows if r["algorithm"] == "CG"]
        jac_rows = [r for r in rows if r["algorithm"] == "Jacobi"]
        assert all(r["vertically_bound"] for r in cg_rows)
        assert all(not r["vertically_bound"] for r in jac_rows)
        assert all(not r["possibly_network_bound"] for r in cg_rows)


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 23456789, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_empty(self):
        assert "empty" in format_table([])

    def test_render_report_includes_title_and_notes(self):
        out = render_report("My Table", [{"x": 1.5}], notes=["hello"])
        assert "My Table" in out and "hello" in out

    def test_float_formatting(self):
        from repro.evaluation import format_value

        assert format_value(0.3) == "0.3"
        assert "e" in format_value(1.23e-9)
        assert format_value(True) == "yes"

"""Tests for the bounded event ring and the failure dashboard."""

import pytest

from repro.obs import EventRing, render_failure_table, signal_from_error


class TestEventRing:
    def test_emit_returns_record_with_seq_and_ts(self):
        ring = EventRing(clock=lambda: 123.0)
        e = ring.emit("lease.granted", label="c0", worker="w1")
        assert e["kind"] == "lease.granted"
        assert e["ts"] == 123.0
        assert e["seq"] == 1
        assert e["label"] == "c0" and e["worker"] == "w1"

    def test_seq_is_process_unique_and_increasing(self):
        ring = EventRing()
        seqs = [ring.emit("x")["seq"] for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_capacity_drops_oldest_and_counts(self):
        ring = EventRing(capacity=2)
        for i in range(5):
            ring.emit("e", i=i)
        assert len(ring) == 2
        assert [e["i"] for e in ring.snapshot()] == [3, 4]
        assert ring.dropped == 3

    def test_snapshot_filters(self):
        ring = EventRing()
        ring.emit("a")
        mid = ring.emit("b")["seq"]
        ring.emit("a")
        ring.emit("b")
        assert [e["kind"] for e in ring.snapshot(kind="a")] == ["a", "a"]
        assert [e["seq"] for e in ring.snapshot(since_seq=mid)] == [3, 4]
        assert [e["seq"] for e in ring.snapshot(limit=2)] == [3, 4]
        assert ring.last("b")["seq"] == 4
        assert ring.last("zzz") is None

    def test_rejects_empty_kind_and_bad_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)
        with pytest.raises(ValueError):
            EventRing().emit("")

    def test_snapshot_returns_copies(self):
        ring = EventRing()
        ring.emit("a", n=1)
        ring.snapshot()[0]["n"] = 99
        assert ring.snapshot()[0]["n"] == 1


class TestSignalFromError:
    def test_extracts_signal_names(self):
        assert signal_from_error("worker killed by SIGKILL (worker w1)") \
            == "SIGKILL"
        assert signal_from_error("died: SIGSEGV at 0x0") == "SIGSEGV"

    def test_empty_when_no_signal(self):
        assert signal_from_error("worker exited with code 1") == ""
        assert signal_from_error("") == ""
        assert signal_from_error(None) == ""


class TestRenderFailureTable:
    ROW = {
        "label": "cell-b", "state": "failed", "attempts": 4,
        "max_retries": 3, "worker": "", "backoff_in_s": None,
        "last_error": "worker killed by SIGKILL (worker w1)",
        "last_signal": "SIGKILL",
    }

    def test_empty_is_all_clear(self):
        assert "no failures" in render_failure_table([])

    def test_columns_and_values(self):
        out = render_failure_table([self.ROW])
        header, row = out.splitlines()
        for col in ("CELL", "STATE", "ATTEMPTS", "SIGNAL", "BACKOFF",
                    "WORKER", "LAST ERROR"):
            assert col in header
        assert "cell-b" in row and "failed" in row
        assert "4/4" in row  # attempts / (1 + max_retries)
        assert "SIGKILL" in row

    def test_sorted_by_label_and_backoff_format(self):
        rows = [
            dict(self.ROW, label="z", state="delayed", backoff_in_s=2.5,
                 attempts=1),
            dict(self.ROW, label="a"),
        ]
        lines = render_failure_table(rows).splitlines()
        assert lines[1].startswith("a") and lines[2].startswith("z")
        assert "2.50s" in lines[2]

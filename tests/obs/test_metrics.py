"""Tests for the metrics registry (counters, gauges, histograms)."""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_EDGES_S,
    OBS_SCHEMA,
    MetricsRegistry,
    dumps_snapshot,
    labeled,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("store.hits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_delta(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2

    def test_thread_safety_no_lost_increments(self):
        reg = MetricsRegistry()
        n, per = 8, 2000

        def worker():
            c = reg.counter("hot")
            for _ in range(per):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hot").value == n * per


class TestGauge:
    def test_moves_both_ways(self):
        g = MetricsRegistry().gauge("queue.depth")
        g.set(7)
        g.dec(3)
        g.inc()
        assert g.value == 5

    def test_rejects_non_finite(self):
        g = MetricsRegistry().gauge("x")
        with pytest.raises(ValueError):
            g.set(float("inf"))


class TestHistogram:
    def test_fixed_buckets_with_overflow(self):
        h = MetricsRegistry().histogram("lat", edges=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        view = h.view()
        assert view["buckets"] == [1, 2, 1]
        assert view["count"] == 4
        assert view["min"] == 0.05 and view["max"] == 5.0

    def test_edges_must_be_strictly_increasing(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", edges=(1.0, 1.0))

    def test_reregistration_with_other_edges_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", edges=(0.1, 1.0))
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("lat", edges=(0.5, 1.0))

    def test_default_latency_edges(self):
        h = MetricsRegistry().histogram("lat")
        assert h.edges == DEFAULT_LATENCY_EDGES_S
        assert len(h.view()["buckets"]) == len(DEFAULT_LATENCY_EDGES_S) + 1


class TestSnapshot:
    def test_schema_and_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["schema"] == OBS_SCHEMA
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2}
        assert snap["histograms"]["h"]["buckets"] == [1, 0]

    def test_snapshot_json_is_byte_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.histogram("lat", edges=(0.1,)).observe(0.01)
        assert reg.snapshot_json() == reg.snapshot_json()
        # sorted keys, compact separators: the canonical form
        decoded = json.loads(reg.snapshot_json())
        assert decoded == reg.snapshot()
        assert reg.snapshot_json() == dumps_snapshot(reg.snapshot())

    def test_dumps_snapshot_rejects_non_finite(self):
        with pytest.raises(ValueError):
            dumps_snapshot({"bad": float("nan")})


def test_labeled_convention():
    assert labeled("http.requests", "GET /health") == \
        "http.requests{GET /health}"

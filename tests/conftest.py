"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import (
    chain_cdag,
    diamond_cdag,
    outer_product_cdag,
    reduction_tree_cdag,
)
from repro.machine import CRAY_XT5, IBM_BGQ
from repro.solvers import Grid


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_chain():
    return chain_cdag(5)


@pytest.fixture
def small_tree():
    return reduction_tree_cdag(8)


@pytest.fixture
def small_diamond():
    return diamond_cdag(5, 4)


@pytest.fixture
def small_outer():
    return outer_product_cdag(3)


@pytest.fixture
def grid_2d():
    return Grid(shape=(6, 6), spacing=1.0 / 7, timestep=0.005)


@pytest.fixture
def grid_1d():
    return Grid(shape=(16,), spacing=1.0 / 17, timestep=0.001)


@pytest.fixture
def bgq():
    return IBM_BGQ


@pytest.fixture
def xt5():
    return CRAY_XT5

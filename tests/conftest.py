"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import (
    CDAG,
    chain_cdag,
    diamond_cdag,
    outer_product_cdag,
    reduction_tree_cdag,
)
from repro.machine import CRAY_XT5, IBM_BGQ
from repro.solvers import Grid


def make_random_dag(seed: int, n: int, extra_edge_prob: float = 0.15) -> CDAG:
    """A seeded random connected DAG on ``n`` vertices; sources are
    tagged input, sinks output (valid under flexible RBW tagging).
    Shared by the scheduler- and move-log-equivalence suites via the
    ``random_dag`` fixture."""
    rng = np.random.default_rng(seed)
    edges = set()
    for j in range(1, n):
        edges.add((int(rng.integers(0, j)), j))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < extra_edge_prob:
                edges.add((i, j))
    edge_list = sorted(edges)
    has_pred = {j for _, j in edge_list}
    has_succ = {i for i, _ in edge_list}
    return CDAG.from_edge_list(
        vertices=[("v", i) for i in range(n)],
        edges=[(("v", i), ("v", j)) for i, j in edge_list],
        inputs=[("v", i) for i in range(n) if i not in has_pred],
        outputs=[("v", i) for i in range(n) if i not in has_succ],
        name=f"rand{n}",
    )


@pytest.fixture
def random_dag():
    """Factory fixture: ``random_dag(seed, n, extra_edge_prob=0.15)``."""
    return make_random_dag


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_chain():
    return chain_cdag(5)


@pytest.fixture
def small_tree():
    return reduction_tree_cdag(8)


@pytest.fixture
def small_diamond():
    return diamond_cdag(5, 4)


@pytest.fixture
def small_outer():
    return outer_product_cdag(3)


@pytest.fixture
def grid_2d():
    return Grid(shape=(6, 6), spacing=1.0 / 7, timestep=0.005)


@pytest.fixture
def grid_1d():
    return Grid(shape=(16,), spacing=1.0 / 17, timestep=0.001)


@pytest.fixture
def bgq():
    return IBM_BGQ


@pytest.fixture
def xt5():
    return CRAY_XT5

"""Setup shim for environments whose pip/setuptools cannot perform PEP 660
editable installs (no `wheel` package available offline).  All metadata
lives in pyproject.toml."""
from setuptools import setup

setup()

# Convenience targets; every command also runs as written in README.md.
# CI (.github/workflows/ci.yml) calls these same targets, one per job.
PY := PYTHONPATH=src python

.PHONY: test test-sharded test-kernel test-harness test-service \
  test-fleet test-obs doctest bench bench-smoke bench-kernel \
  bench-service bench-guard lint check

# Tier-1 suite (includes the doctest run over the documented public
# surface and the ~1 s bench smoke in tests/test_docs_and_bench_smoke.py).
test:
	$(PY) -m pytest -x -q

# Sharded-runner smoke: the workers=2 differential + lifecycle suites
# (spawns real process pools; its own CI step so a pool/teardown
# regression is named in the job list).
test-sharded:
	$(PY) -m pytest tests/pebbling/test_sharded_strategies.py \
	  tests/pebbling/test_movelog_merge_properties.py -q

# Kernel-backend differential suites (numpy tier by default; CI's numba
# matrix arm runs this with numba installed and REPRO_KERNEL=numba so
# the jitted planner is pinned move-for-move too).
test-kernel:
	$(PY) -m pytest tests/pebbling/test_kernel_backend.py \
	  tests/pebbling/test_spill_strategies.py \
	  tests/pebbling/test_sharded_strategies.py -q

# Manifest-driven harness suites: the crash/resume differential test
# (SIGKILL a 4-cell smoke grid mid-run, resume, byte-compare against an
# uninterrupted run), the manifest/resume hypothesis property suite,
# the `repro reproduce` end-to-end pass (incl. injected corruption),
# and the seed-identity audit.
test-harness:
	$(PY) -m pytest tests/evaluation/test_harness_resume.py \
	  tests/evaluation/test_manifest_properties.py \
	  tests/evaluation/test_reproduce.py \
	  tests/evaluation/test_harness_seeds.py -q

# Artifact store + memoized bound server: the randomized differential
# suite (cached bytes == fresh bytes), the store engine/corruption
# tests, the key-stability property suite, the HTTP endpoint +
# concurrent-clients suite, and the sweep --store/--jobs integration.
test-service:
	$(PY) -m pytest tests/store tests/service \
	  tests/evaluation/test_harness_store.py \
	  tests/evaluation/test_harness_jobs.py -q

# Fleet suites: controller queue/lease/retry unit tests, the localhost
# controller + 2-worker end-to-end sweep (byte-identical to
# `sweep --jobs 1`), and the fault-injection suite (SIGKILLed worker,
# dropped heartbeats, SIGKILLed controller mid-grid + restart).
test-fleet:
	$(PY) -m pytest tests/fleet -q

# Observability suites: metrics registry / event ring / dashboard unit
# tests, GET /metrics on both HTTP servers (schema + pinned counters +
# monotonic-scrape properties), the monotonic-clock regression tests,
# claim clock-skew tolerance, and the SIGKILL fault-injection run that
# must surface in `repro fleet status --failures`.
test-obs:
	$(PY) -m pytest tests/obs tests/service/test_metrics_endpoint.py \
	  tests/fleet/test_fleet_obs.py tests/fleet/test_fleet_clock.py \
	  tests/store/test_store_claims.py -q

# Standalone doctest pass over the documented modules.
doctest:
	$(PY) -m pytest --doctest-modules \
	  src/repro/core/ordering.py \
	  src/repro/pebbling/state.py \
	  src/repro/pebbling/parallel.py \
	  src/repro/store/keys.py \
	  src/repro/store/db.py \
	  src/repro/store/analysis.py \
	  src/repro/service/server.py \
	  src/repro/obs/metrics.py \
	  src/repro/obs/events.py \
	  src/repro/obs/dashboard.py -q

# Smallest-size benchmark smoke (still completes the 10^6-move P-RBW game).
bench-smoke:
	BENCH_SMOKE=1 $(PY) -m pytest benchmarks -q -m "not bench" --benchmark-disable

# Full core benchmarks; refreshes BENCH_core.json.
bench:
	$(PY) -m pytest benchmarks/bench_compiled_core.py \
	  benchmarks/bench_service.py -q --benchmark-disable

# Service/store load benchmark alone: cold-vs-warm compiled path (>=10x
# asserted), warm HTTP latency, and the many-tenant mixed-grid load run.
bench-service:
	$(PY) -m pytest benchmarks/bench_service.py -q --benchmark-disable

# Kernel-backend benchmark subset: refreshes only the strategy/kernel_*
# entries (plus the same-run batched baselines they are measured
# against) in BENCH_core.json.
bench-kernel:
	$(PY) -m pytest benchmarks/bench_compiled_core.py -q -k kernel \
	  --benchmark-disable

# CI bench-regression guard: smoke-measure into a scratch json and fail
# on >3x regressions of the movelog/sched/strategy/service/fleet
# entries.
bench-guard:
	$(PY) benchmarks/check_bench.py

# Lint (ruleset in pyproject.toml; the tree is clean under it).
lint:
	ruff check .

check: test bench-smoke

"""Structural properties of CDAGs used by the lower-bound machinery.

This module implements the graph-theoretic notions that the paper's
partitioning and min-cut lower bounds rely on:

* **Dominator sets** (Definition 3, P3): a set ``D`` *dominates* a vertex
  set ``V_i`` if every path from the input set ``I`` to a vertex of
  ``V_i`` passes through some vertex of ``D``.  The Hong-Kung
  2S-partition condition requires a dominator of size at most ``S``.
* **Minimum sets** (Definition 3, P4): ``Min(V_i)`` is the set of
  vertices of ``V_i`` all of whose successors lie outside ``V_i``.
* **In/Out sets** (Definition 5, the RBW variant): ``In(V_i)`` is the set
  of vertices outside ``V_i`` with a successor inside; ``Out(V_i)`` is
  the set of vertices of ``V_i`` that are outputs or have a successor
  outside ``V_i``.
* **Convex cuts and wavefronts** (Section 3.3): for a vertex ``x``, the
  convex cut ``(S_x, T_x)`` puts ``x`` and its ancestors in ``S_x``, the
  descendants in ``T_x``, with no edge from ``T_x`` to ``S_x``.  The
  *wavefront* induced by the cut is the set of vertices of ``S_x`` with
  an outgoing edge into ``T_x``; its minimum cardinality over valid cuts,
  ``|W^min_G(x)|``, is a vertex min-cut and feeds Lemma 2.
* **Schedule wavefronts**: the memory footprint of a concrete execution
  order at each firing (used both for validating the min-cut bound and
  for the upper-bound schedulers).

The vertex min-cut is computed by the classic vertex-splitting reduction
to edge min-cut / max-flow, using :mod:`networkx` maximum-flow.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from .cdag import CDAG, CDAGError, Vertex
from .compiled import HAVE_SCIPY, CompiledCDAG

if HAVE_SCIPY:
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import maximum_flow as _maximum_flow

__all__ = [
    "in_set",
    "out_set",
    "minimum_set",
    "is_dominator",
    "minimal_dominator_size",
    "has_circuit_between",
    "convex_cut_for_vertex",
    "is_convex_cut",
    "wavefront_of_cut",
    "WavefrontSolver",
    "min_wavefront",
    "min_wavefront_rebuild",
    "max_min_wavefront",
    "schedule_wavefronts",
    "max_schedule_wavefront",
]


# ----------------------------------------------------------------------
# In / Out / Min sets (Definitions 3 and 5)
# ----------------------------------------------------------------------
def in_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``In(V_i)``: vertices of ``V \\ V_i`` with at least one successor in ``V_i``.

    This is the RBW-game notion used in Definition 5 (P3).  Values of
    ``In(V_i)`` must be brought into fast memory (or already be there)
    before the vertices of ``V_i`` can fire.
    """
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        for p in cdag.predecessors(v):
            if p not in vset:
                result.add(p)
    return result


def out_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``Out(V_i)``: vertices of ``V_i`` that are outputs of the CDAG or
    have at least one successor outside ``V_i`` (Definition 5, P4)."""
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        if cdag.is_output(v):
            result.add(v)
            continue
        for s in cdag.successors(v):
            if s not in vset:
                result.add(v)
                break
    return result


def minimum_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``Min(V_i)``: vertices of ``V_i`` all of whose successors are outside ``V_i``.

    This is the Hong-Kung notion from Definition 3 (P4).  Note the subtle
    difference with :func:`out_set`: ``Min`` requires *all* successors
    outside, ``Out`` requires *at least one* (or being a CDAG output).
    Sink vertices (no successors at all) belong to ``Min(V_i)``
    vacuously.
    """
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        succs = cdag.successors(v)
        if all(s not in vset for s in succs):
            result.add(v)
    return result


def is_dominator(
    cdag: CDAG,
    candidate: Iterable[Vertex],
    vertex_set: Iterable[Vertex],
    sources: Optional[Iterable[Vertex]] = None,
) -> bool:
    """Check whether ``candidate`` dominates ``vertex_set``.

    ``candidate ∈ Dom(V_i)`` iff every path from the input set ``I``
    (or ``sources`` if given) to a vertex in ``V_i`` contains a vertex of
    ``candidate``.  Implemented by removing ``candidate`` and testing
    reachability.
    """
    dom = set(candidate)
    targets = set(vertex_set) - dom
    if not targets:
        return True
    starts = set(sources) if sources is not None else set(cdag.inputs)
    starts -= dom
    # BFS from the sources avoiding dominator vertices.
    seen: Set[Vertex] = set()
    stack = [s for s in starts if s in cdag]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        if u in targets:
            return False
        for w in cdag.successors(u):
            if w not in dom and w not in seen:
                stack.append(w)
    return True


def minimal_dominator_size(
    cdag: CDAG,
    vertex_set: Iterable[Vertex],
    sources: Optional[Iterable[Vertex]] = None,
) -> int:
    """Size of a minimum dominator set of ``vertex_set`` w.r.t. the inputs.

    Computed exactly as a vertex min-cut between a super-source connected
    to the CDAG inputs and a super-sink connected *from* the target set,
    where every ordinary vertex may be "cut".  Vertices of the target set
    itself are allowed in the dominator (a vertex trivially dominates
    itself), which matches the paper's definition of ``Dom``.
    """
    vset = set(vertex_set)
    if not vset:
        return 0
    starts = set(sources) if sources is not None else set(cdag.inputs)
    starts = {s for s in starts if s in cdag}
    if not starts:
        return 0
    # If an input is itself in the target set, it must be in any dominator
    # (the trivial path of length 0 ends at it); vertex-splitting handles
    # this naturally because the path source->...->target passes through
    # the split node.  The split graph is shared with the wavefront
    # machinery via the cached solver — repeated dominator queries on the
    # same CDAG (e.g. one per partition subset) only toggle terminal arcs.
    c = cdag.compiled()
    return c.wavefront_solver().vertex_cut_ids(
        np.asarray(c.ids_of(starts), dtype=np.int64),
        np.asarray(c.ids_of(vset), dtype=np.int64),
    )


def _split_graph_csr(c: CompiledCDAG, internal_caps: np.ndarray):
    """CSR arrays of the vertex-splitting flow network of ``c``.

    Every row is emitted in sorted-column order:

    * row ``2v`` (= ``in(v)``): the single internal arc to ``2v+1``;
    * row ``2v+1`` (= ``out(v)``): one INF arc per CDAG successor plus a
      zero-capacity arc to the sink (activated per query);
    * row ``2n`` (source): a zero-capacity arc to every ``in(v)``
      (activated per query);
    * row ``2n+1`` (sink): empty.

    Returns ``(indptr, indices, data, src_pos, sink_pos, internal_pos)``
    where the three position arrays index ``data`` slots of the
    source->in(v), out(v)->sink and in(v)->out(v) arcs of each vertex.
    """
    n = c.n
    m = c.m
    inf = n + 1
    nnz = 2 * n + m + n  # internal + sink arcs + edge arcs + source arcs

    out_deg = c.out_degree
    row_len = np.empty(2 * n + 2, dtype=np.int64)
    row_len[0 : 2 * n : 2] = 1  # in(v) rows
    row_len[1 : 2 * n : 2] = out_deg + 1  # out(v) rows (+ sink arc)
    row_len[2 * n] = n  # source row
    row_len[2 * n + 1] = 0  # sink row
    indptr = np.concatenate(([0], np.cumsum(row_len)))

    indices = np.empty(nnz, dtype=np.int32)
    data = np.zeros(nnz, dtype=np.int64)

    internal_pos = indptr[0 : 2 * n : 2]  # row 2v has exactly one slot
    indices[internal_pos] = 2 * np.arange(n, dtype=np.int32) + 1
    data[internal_pos] = internal_caps

    # out(v) rows: successors (sorted ids -> sorted columns) then the sink.
    sink_pos = indptr[2 : 2 * n + 2 : 2] - 1  # last slot of each out-row
    for v in range(n):
        start = indptr[2 * v + 1]
        succ = np.sort(c.successors_ids(v))
        indices[start : start + succ.size] = 2 * succ
        data[start : start + succ.size] = inf
    indices[sink_pos] = 2 * n + 1
    # data[sink_pos] stays 0 until a query activates it.

    # Source row: in(v) for every v, ascending.
    src_start = indptr[2 * n]
    src_pos = src_start + np.arange(n, dtype=np.int64)
    indices[src_pos] = 2 * np.arange(n, dtype=np.int32)
    # data[src_pos] stays 0 until a query activates it.

    return indptr, indices, data, src_pos, sink_pos, internal_pos


def has_circuit_between(
    cdag: CDAG, set_a: Iterable[Vertex], set_b: Iterable[Vertex]
) -> bool:
    """True if there are edges both from ``set_a`` to ``set_b`` and back.

    Definition 3 / Definition 5 (P2) forbid such "circuits" between the
    subsets of an S-partition.
    """
    a, b = set(set_a), set(set_b)
    a_to_b = b_to_a = False
    for u, v in cdag.edges():
        if u in a and v in b:
            a_to_b = True
        elif u in b and v in a:
            b_to_a = True
        if a_to_b and b_to_a:
            return True
    return False


# ----------------------------------------------------------------------
# Convex cuts and wavefronts (Section 3.3)
# ----------------------------------------------------------------------
def convex_cut_for_vertex(
    cdag: CDAG, x: Vertex, extra_in_s: Iterable[Vertex] = ()
) -> Tuple[Set[Vertex], Set[Vertex]]:
    """A canonical convex cut ``(S_x, T_x)`` associated with ``x``.

    ``S_x`` contains ``x`` and all its ancestors (plus ``extra_in_s`` and
    their ancestors), ``T_x`` contains everything else; because ancestors
    are closed under predecessors there can be no edge from ``T_x`` to
    ``S_x``, so the cut is convex.  Descendants of ``x`` are guaranteed to
    be in ``T_x``.
    """
    if x not in cdag:
        raise CDAGError(f"unknown vertex {x!r}")
    s_side: Set[Vertex] = {x} | cdag.ancestors(x)
    for v in extra_in_s:
        if v in cdag.descendants(x):
            raise CDAGError(
                f"cannot place descendant {v!r} of {x!r} on the S side"
            )
        s_side.add(v)
        s_side |= cdag.ancestors(v)
    t_side = set(cdag.vertices) - s_side
    return s_side, t_side


def is_convex_cut(
    cdag: CDAG, s_side: Iterable[Vertex], t_side: Iterable[Vertex]
) -> bool:
    """Check the convexity condition: no edge from ``T`` to ``S``."""
    s, t = set(s_side), set(t_side)
    for u, v in cdag.edges():
        if u in t and v in s:
            return False
    return True


def wavefront_of_cut(cdag: CDAG, s_side: Iterable[Vertex]) -> Set[Vertex]:
    """Vertices of ``S`` with at least one outgoing edge into ``V - S``."""
    s = set(s_side)
    wf: Set[Vertex] = set()
    for v in s:
        for w in cdag.successors(v):
            if w not in s:
                wf.add(v)
                break
    return wf


class WavefrontSolver:
    """Reusable ``|W^min_G(x)|`` solver over a compiled CDAG.

    The vertex-splitting flow network (``in(v) -> out(v)`` capacity 1,
    CDAG edges INF) is structurally identical for every candidate vertex
    — only which vertices are forced onto the S/T sides changes.  The
    seed implementation rebuilt a :class:`networkx.DiGraph` from scratch
    per candidate, which dominated ``max_min_wavefront``; this solver
    builds the split graph **once** and per query only toggles the
    capacities of the pre-allocated source/sink arcs (scipy backend) or
    adds/removes the two terminal nodes (networkx fallback).

    Obtain instances via ``cdag.compiled().wavefront_solver()`` — they
    are cached alongside the compiled snapshot, so repeated
    :func:`min_wavefront` calls on an unmutated CDAG share one network.
    """

    def __init__(self, compiled: CompiledCDAG) -> None:
        self._c = compiled
        n = compiled.n
        self._inf = n + 1
        self._source = 2 * n
        self._sink = 2 * n + 1
        if HAVE_SCIPY:
            (
                indptr,
                indices,
                self._data,
                self._src_pos,
                self._sink_pos,
                self._internal_pos,
            ) = _split_graph_csr(compiled, np.ones(n, dtype=np.int64))
            self._graph = _csr_matrix(
                (self._data, indices, indptr), shape=(2 * n + 2, 2 * n + 2)
            )
            self._base = None
        else:  # hoisted networkx fallback: base graph built once
            g = nx.DiGraph()
            inf = float("inf")
            for v in range(n):
                g.add_edge(2 * v, 2 * v + 1, capacity=1)
            succ_lists = compiled.succ_lists
            for v in range(n):
                for w in succ_lists[v]:
                    g.add_edge(2 * v + 1, 2 * w, capacity=inf)
            self._base = g

    def vertex_cut_ids(
        self,
        forced_s: np.ndarray,
        forced_t: np.ndarray,
        uncuttable: Optional[np.ndarray] = None,
    ) -> int:
        """Minimum vertex cut separating ``forced_s`` from ``forced_t``.

        ``uncuttable`` vertices get INF internal capacity (they may lie on
        a path but can never be cut).  All per-query capacity changes are
        rolled back before returning, so the shared network stays clean.
        """
        if len(forced_s) == 0 or len(forced_t) == 0:
            return 0  # no source/sink side: nothing to separate
        if HAVE_SCIPY:
            data = self._data
            inf = self._inf
            int_pos = (
                self._internal_pos[uncuttable]
                if uncuttable is not None and uncuttable.size
                else None
            )
            snk_pos = self._sink_pos[forced_t]
            src_pos = self._src_pos[forced_s]
            try:
                if int_pos is not None:
                    data[int_pos] = inf
                data[snk_pos] = inf
                data[src_pos] = inf
                return int(
                    _maximum_flow(
                        self._graph, self._source, self._sink
                    ).flow_value
                )
            finally:
                # The network is cached and shared across queries: restore
                # capacities even if max-flow (or an interrupt) blew up.
                if int_pos is not None:
                    data[int_pos] = 1
                data[snk_pos] = 0
                data[src_pos] = 0
        g = self._base
        inf = float("inf")
        touched = (
            uncuttable.tolist()
            if uncuttable is not None and uncuttable.size
            else []
        )
        try:
            for v in touched:
                g[2 * v][2 * v + 1]["capacity"] = inf
            for v in forced_t.tolist():
                g.add_edge(2 * v + 1, self._sink, capacity=inf)
            for v in forced_s.tolist():
                g.add_edge(self._source, 2 * v, capacity=inf)
            cut_value, _ = nx.minimum_cut(g, self._source, self._sink)
            return int(cut_value)
        finally:
            if self._source in g:
                g.remove_node(self._source)
            if self._sink in g:
                g.remove_node(self._sink)
            for v in touched:
                g[2 * v][2 * v + 1]["capacity"] = 1

    def min_wavefront_id(
        self,
        x: int,
        anc: Optional[np.ndarray] = None,
        desc: Optional[np.ndarray] = None,
    ) -> int:
        """``|W^min_G(x)|`` for the vertex with id ``x``.

        ``anc``/``desc`` accept precomputed ``ancestors_ids(x)`` /
        ``descendants_ids(x)`` arrays so callers that already ran the
        reachability pass (e.g. for candidate pruning) don't repeat it.
        """
        c = self._c
        if desc is None:
            desc = c.descendants_ids(x)
        if desc.size == 0:
            # x is a sink: the minimum over valid cuts is just {x}.
            return 1
        if anc is None:
            anc = c.ancestors_ids(x)
        forced_s = np.append(anc, np.int32(x))
        # Descendants of x can never be wavefront members, so their
        # internal arcs must not be cuttable.
        return self.vertex_cut_ids(forced_s, desc, uncuttable=desc)

    def min_wavefront(self, x: Vertex) -> int:
        """``|W^min_G(x)|`` for a vertex given by name."""
        return self.min_wavefront_id(self._c.id(x))


def min_wavefront(cdag: CDAG, x: Vertex) -> int:
    """``|W^min_G(x)|``: the minimum-cardinality wavefront induced by ``x``.

    This is a vertex min-cut between the (mandatory) ``S``-side —
    ``{x} ∪ Anc(x)`` — and the (mandatory) ``T``-side — ``Desc(x)`` —
    where the "cut vertices" are the S-side vertices with an edge into
    the T-side, computed with the standard vertex-splitting max-flow
    construction (see :class:`WavefrontSolver`).  The split graph is
    cached on the compiled CDAG, so evaluating many candidate vertices of
    the same CDAG reuses one network.
    """
    if x not in cdag:
        raise CDAGError(f"unknown vertex {x!r}")
    return cdag.compiled().wavefront_solver().min_wavefront(x)


def min_wavefront_rebuild(cdag: CDAG, x: Vertex) -> int:
    """Reference implementation of :func:`min_wavefront`.

    Rebuilds the networkx split graph from scratch for the single vertex
    ``x`` — exactly the seed code path.  Kept for the equivalence tests
    and as the baseline the compiled-backend benchmarks compare against.
    """
    if x not in cdag:
        raise CDAGError(f"unknown vertex {x!r}")
    desc = cdag.descendants(x)
    if not desc:
        return 1
    anc = cdag.ancestors(x)
    forced_s = anc | {x}
    forced_t = desc

    INF = float("inf")
    g = nx.DiGraph()
    source, sink = ("__wf_src__",), ("__wf_snk__",)

    def v_in(v: Vertex) -> Tuple[str, Vertex]:
        return ("in", v)

    def v_out(v: Vertex) -> Tuple[str, Vertex]:
        return ("out", v)

    for v in cdag.vertices:
        cap = INF if v in forced_t else 1
        g.add_edge(v_in(v), v_out(v), capacity=cap)
    for u, v in cdag.edges():
        g.add_edge(v_out(u), v_in(v), capacity=INF)
    for v in forced_s:
        g.add_edge(source, v_in(v), capacity=INF)
    for v in forced_t:
        g.add_edge(v_out(v), sink, capacity=INF)
    cut_value, _ = nx.minimum_cut(g, source, sink)
    return int(cut_value)


def max_min_wavefront(
    cdag: CDAG, candidates: Optional[Iterable[Vertex]] = None
) -> Tuple[int, Optional[Vertex]]:
    """``w^max_G = max_x |W^min_G(x)|`` and an attaining vertex.

    Computing the min-cut for every vertex is O(|V|) max-flow runs; the
    paper uses hand-picked vertices (the dot-product results in CG/GMRES)
    for its closed-form bounds and mentions an automated heuristic.  Here
    the caller can restrict the candidate set (e.g. to reduction vertices)
    to keep the cost reasonable; with ``candidates=None`` all vertices are
    tried (fine for the small CDAGs used in tests and validation benches).
    All candidates share one :class:`WavefrontSolver` network.
    """
    best = 0
    best_vertex: Optional[Vertex] = None
    c = cdag.compiled()
    solver = c.wavefront_solver()
    pool = c.ids_of(candidates) if candidates is not None else range(c.n)
    for i in pool:
        w = solver.min_wavefront_id(i)
        if w > best:
            best = w
            best_vertex = c.vertex(i)
    return best, best_vertex


# ----------------------------------------------------------------------
# Schedule wavefronts
# ----------------------------------------------------------------------
def schedule_wavefronts(
    cdag: CDAG, schedule: Sequence[Vertex]
) -> List[int]:
    """Wavefront sizes of a concrete schedule.

    Given a topological execution order ``schedule`` of all the vertices,
    return, for each position ``k``, the size of the schedule wavefront
    ``W_P(x_k)``: the number of already-fired vertices (including ``x_k``)
    that still have an unfired successor.  This is the live-value count —
    the minimum fast-memory footprint of that schedule at that instant.

    Runs in ``O(|V| + |E|)`` using remaining-successor counters.
    """
    position = {v: i for i, v in enumerate(schedule)}
    if len(position) != cdag.num_vertices():
        raise CDAGError("schedule must contain every vertex exactly once")
    for u, v in cdag.edges():
        if position[u] > position[v]:
            raise CDAGError(
                f"schedule violates dependence {u!r} -> {v!r}"
            )
    remaining = {v: cdag.out_degree(v) for v in cdag.vertices}
    live: Set[Vertex] = set()
    sizes: List[int] = []
    for v in schedule:
        # v has just fired; it is live if it has any unfired successor.
        if remaining[v] > 0:
            live.add(v)
        # firing v may retire some predecessors
        for p in cdag.predecessors(v):
            remaining[p] -= 1
            if remaining[p] == 0:
                live.discard(p)
        # the wavefront at the instant v fires includes v itself
        sizes.append(len(live | {v}))
    return sizes


def max_schedule_wavefront(cdag: CDAG, schedule: Sequence[Vertex]) -> int:
    """Maximum wavefront size over a schedule (its peak live-value count)."""
    sizes = schedule_wavefronts(cdag, schedule)
    return max(sizes) if sizes else 0

"""Structural properties of CDAGs used by the lower-bound machinery.

This module implements the graph-theoretic notions that the paper's
partitioning and min-cut lower bounds rely on:

* **Dominator sets** (Definition 3, P3): a set ``D`` *dominates* a vertex
  set ``V_i`` if every path from the input set ``I`` to a vertex of
  ``V_i`` passes through some vertex of ``D``.  The Hong-Kung
  2S-partition condition requires a dominator of size at most ``S``.
* **Minimum sets** (Definition 3, P4): ``Min(V_i)`` is the set of
  vertices of ``V_i`` all of whose successors lie outside ``V_i``.
* **In/Out sets** (Definition 5, the RBW variant): ``In(V_i)`` is the set
  of vertices outside ``V_i`` with a successor inside; ``Out(V_i)`` is
  the set of vertices of ``V_i`` that are outputs or have a successor
  outside ``V_i``.
* **Convex cuts and wavefronts** (Section 3.3): for a vertex ``x``, the
  convex cut ``(S_x, T_x)`` puts ``x`` and its ancestors in ``S_x``, the
  descendants in ``T_x``, with no edge from ``T_x`` to ``S_x``.  The
  *wavefront* induced by the cut is the set of vertices of ``S_x`` with
  an outgoing edge into ``T_x``; its minimum cardinality over valid cuts,
  ``|W^min_G(x)|``, is a vertex min-cut and feeds Lemma 2.
* **Schedule wavefronts**: the memory footprint of a concrete execution
  order at each firing (used both for validating the min-cut bound and
  for the upper-bound schedulers).

The vertex min-cut is computed by the classic vertex-splitting reduction
to edge min-cut / max-flow, using :mod:`networkx` maximum-flow.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .cdag import CDAG, CDAGError, Vertex

__all__ = [
    "in_set",
    "out_set",
    "minimum_set",
    "is_dominator",
    "minimal_dominator_size",
    "has_circuit_between",
    "convex_cut_for_vertex",
    "is_convex_cut",
    "wavefront_of_cut",
    "min_wavefront",
    "max_min_wavefront",
    "schedule_wavefronts",
    "max_schedule_wavefront",
]


# ----------------------------------------------------------------------
# In / Out / Min sets (Definitions 3 and 5)
# ----------------------------------------------------------------------
def in_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``In(V_i)``: vertices of ``V \\ V_i`` with at least one successor in ``V_i``.

    This is the RBW-game notion used in Definition 5 (P3).  Values of
    ``In(V_i)`` must be brought into fast memory (or already be there)
    before the vertices of ``V_i`` can fire.
    """
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        for p in cdag.predecessors(v):
            if p not in vset:
                result.add(p)
    return result


def out_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``Out(V_i)``: vertices of ``V_i`` that are outputs of the CDAG or
    have at least one successor outside ``V_i`` (Definition 5, P4)."""
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        if cdag.is_output(v):
            result.add(v)
            continue
        for s in cdag.successors(v):
            if s not in vset:
                result.add(v)
                break
    return result


def minimum_set(cdag: CDAG, vertex_set: Iterable[Vertex]) -> Set[Vertex]:
    """``Min(V_i)``: vertices of ``V_i`` all of whose successors are outside ``V_i``.

    This is the Hong-Kung notion from Definition 3 (P4).  Note the subtle
    difference with :func:`out_set`: ``Min`` requires *all* successors
    outside, ``Out`` requires *at least one* (or being a CDAG output).
    Sink vertices (no successors at all) belong to ``Min(V_i)``
    vacuously.
    """
    vset = set(vertex_set)
    result: Set[Vertex] = set()
    for v in vset:
        succs = cdag.successors(v)
        if all(s not in vset for s in succs):
            result.add(v)
    return result


def is_dominator(
    cdag: CDAG,
    candidate: Iterable[Vertex],
    vertex_set: Iterable[Vertex],
    sources: Optional[Iterable[Vertex]] = None,
) -> bool:
    """Check whether ``candidate`` dominates ``vertex_set``.

    ``candidate ∈ Dom(V_i)`` iff every path from the input set ``I``
    (or ``sources`` if given) to a vertex in ``V_i`` contains a vertex of
    ``candidate``.  Implemented by removing ``candidate`` and testing
    reachability.
    """
    dom = set(candidate)
    targets = set(vertex_set) - dom
    if not targets:
        return True
    starts = set(sources) if sources is not None else set(cdag.inputs)
    starts -= dom
    # BFS from the sources avoiding dominator vertices.
    seen: Set[Vertex] = set()
    stack = [s for s in starts if s in cdag]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        if u in targets:
            return False
        for w in cdag.successors(u):
            if w not in dom and w not in seen:
                stack.append(w)
    return True


def minimal_dominator_size(
    cdag: CDAG,
    vertex_set: Iterable[Vertex],
    sources: Optional[Iterable[Vertex]] = None,
) -> int:
    """Size of a minimum dominator set of ``vertex_set`` w.r.t. the inputs.

    Computed exactly as a vertex min-cut between a super-source connected
    to the CDAG inputs and a super-sink connected *from* the target set,
    where every ordinary vertex may be "cut".  Vertices of the target set
    itself are allowed in the dominator (a vertex trivially dominates
    itself), which matches the paper's definition of ``Dom``.
    """
    vset = set(vertex_set)
    if not vset:
        return 0
    starts = set(sources) if sources is not None else set(cdag.inputs)
    starts = {s for s in starts if s in cdag}
    if not starts:
        return 0
    # If an input is itself in the target set, it must be in any dominator
    # (the trivial path of length 0 ends at it); vertex-splitting handles
    # this naturally because the path source->...->target passes through
    # the split node.
    g = nx.DiGraph()
    INF = float("inf")
    source, sink = ("__dom_src__",), ("__dom_snk__",)

    def v_in(v: Vertex) -> Tuple[str, Vertex]:
        return ("in", v)

    def v_out(v: Vertex) -> Tuple[str, Vertex]:
        return ("out", v)

    for v in cdag.vertices:
        g.add_edge(v_in(v), v_out(v), capacity=1)
    for u, v in cdag.edges():
        g.add_edge(v_out(u), v_in(v), capacity=INF)
    for s in starts:
        g.add_edge(source, v_in(s), capacity=INF)
    for t in vset:
        g.add_edge(v_out(t), sink, capacity=INF)
    cut_value, _ = nx.minimum_cut(g, source, sink)
    return int(cut_value)


def has_circuit_between(
    cdag: CDAG, set_a: Iterable[Vertex], set_b: Iterable[Vertex]
) -> bool:
    """True if there are edges both from ``set_a`` to ``set_b`` and back.

    Definition 3 / Definition 5 (P2) forbid such "circuits" between the
    subsets of an S-partition.
    """
    a, b = set(set_a), set(set_b)
    a_to_b = b_to_a = False
    for u, v in cdag.edges():
        if u in a and v in b:
            a_to_b = True
        elif u in b and v in a:
            b_to_a = True
        if a_to_b and b_to_a:
            return True
    return False


# ----------------------------------------------------------------------
# Convex cuts and wavefronts (Section 3.3)
# ----------------------------------------------------------------------
def convex_cut_for_vertex(
    cdag: CDAG, x: Vertex, extra_in_s: Iterable[Vertex] = ()
) -> Tuple[Set[Vertex], Set[Vertex]]:
    """A canonical convex cut ``(S_x, T_x)`` associated with ``x``.

    ``S_x`` contains ``x`` and all its ancestors (plus ``extra_in_s`` and
    their ancestors), ``T_x`` contains everything else; because ancestors
    are closed under predecessors there can be no edge from ``T_x`` to
    ``S_x``, so the cut is convex.  Descendants of ``x`` are guaranteed to
    be in ``T_x``.
    """
    if x not in cdag:
        raise CDAGError(f"unknown vertex {x!r}")
    s_side: Set[Vertex] = {x} | cdag.ancestors(x)
    for v in extra_in_s:
        if v in cdag.descendants(x):
            raise CDAGError(
                f"cannot place descendant {v!r} of {x!r} on the S side"
            )
        s_side.add(v)
        s_side |= cdag.ancestors(v)
    t_side = set(cdag.vertices) - s_side
    return s_side, t_side


def is_convex_cut(cdag: CDAG, s_side: Iterable[Vertex], t_side: Iterable[Vertex]) -> bool:
    """Check the convexity condition: no edge from ``T`` to ``S``."""
    s, t = set(s_side), set(t_side)
    for u, v in cdag.edges():
        if u in t and v in s:
            return False
    return True


def wavefront_of_cut(cdag: CDAG, s_side: Iterable[Vertex]) -> Set[Vertex]:
    """Vertices of ``S`` with at least one outgoing edge into ``V - S``."""
    s = set(s_side)
    wf: Set[Vertex] = set()
    for v in s:
        for w in cdag.successors(v):
            if w not in s:
                wf.add(v)
                break
    return wf


def min_wavefront(cdag: CDAG, x: Vertex) -> int:
    """``|W^min_G(x)|``: the minimum-cardinality wavefront induced by ``x``.

    This is a vertex min-cut between the (mandatory) ``S``-side —
    ``{x} ∪ Anc(x)`` — and the (mandatory) ``T``-side — ``Desc(x)`` —
    where the "cut vertices" are the S-side vertices with an edge into
    the T-side.  We compute it with the standard vertex-splitting max-flow
    construction:

    * every vertex ``v`` becomes ``v_in -> v_out`` with capacity 1;
    * every CDAG edge ``u -> v`` becomes ``u_out -> v_in`` with infinite
      capacity;
    * a super-source feeds ``x`` and its ancestors (they are forced onto
      the S side), a super-sink drains the descendants of ``x`` (forced
      onto the T side);
    * free vertices (neither ancestor nor descendant) may fall on either
      side, which the flow network naturally allows.

    If ``x`` has no descendants the wavefront is ``{x}`` itself whenever
    ``x`` has unfired successors — by convention we return 1 for vertices
    with successors-free structure only if the graph is a single vertex;
    otherwise the max-flow value is returned with a floor of 1 when
    ``x`` has at least one successor.
    """
    if x not in cdag:
        raise CDAGError(f"unknown vertex {x!r}")
    desc = cdag.descendants(x)
    if not desc:
        # x is a sink: at the instant x fires the wavefront is just {x}
        # (plus possibly other already-fired vertices, but the *minimum*
        # over valid cuts is 1).
        return 1
    anc = cdag.ancestors(x)
    forced_s = anc | {x}
    forced_t = desc

    INF = float("inf")
    g = nx.DiGraph()
    source, sink = ("__wf_src__",), ("__wf_snk__",)

    def v_in(v: Vertex) -> Tuple[str, Vertex]:
        return ("in", v)

    def v_out(v: Vertex) -> Tuple[str, Vertex]:
        return ("out", v)

    for v in cdag.vertices:
        # Descendants of x are forced onto the T side and can never be
        # wavefront members, so they must not be usable as cut vertices.
        cap = INF if v in forced_t else 1
        g.add_edge(v_in(v), v_out(v), capacity=cap)
    for u, v in cdag.edges():
        g.add_edge(v_out(u), v_in(v), capacity=INF)
    for v in forced_s:
        g.add_edge(source, v_in(v), capacity=INF)
    for v in forced_t:
        g.add_edge(v_out(v), sink, capacity=INF)
    cut_value, _ = nx.minimum_cut(g, source, sink)
    return int(cut_value)


def max_min_wavefront(
    cdag: CDAG, candidates: Optional[Iterable[Vertex]] = None
) -> Tuple[int, Optional[Vertex]]:
    """``w^max_G = max_x |W^min_G(x)|`` and an attaining vertex.

    Computing the min-cut for every vertex is O(|V|) max-flow runs; the
    paper uses hand-picked vertices (the dot-product results in CG/GMRES)
    for its closed-form bounds and mentions an automated heuristic.  Here
    the caller can restrict the candidate set (e.g. to reduction vertices)
    to keep the cost reasonable; with ``candidates=None`` all vertices are
    tried (fine for the small CDAGs used in tests and validation benches).
    """
    best = 0
    best_vertex: Optional[Vertex] = None
    pool = list(candidates) if candidates is not None else cdag.vertices
    for x in pool:
        w = min_wavefront(cdag, x)
        if w > best:
            best = w
            best_vertex = x
    return best, best_vertex


# ----------------------------------------------------------------------
# Schedule wavefronts
# ----------------------------------------------------------------------
def schedule_wavefronts(
    cdag: CDAG, schedule: Sequence[Vertex]
) -> List[int]:
    """Wavefront sizes of a concrete schedule.

    Given a topological execution order ``schedule`` of all the vertices,
    return, for each position ``k``, the size of the schedule wavefront
    ``W_P(x_k)``: the number of already-fired vertices (including ``x_k``)
    that still have an unfired successor.  This is the live-value count —
    the minimum fast-memory footprint of that schedule at that instant.

    Runs in ``O(|V| + |E|)`` using remaining-successor counters.
    """
    position = {v: i for i, v in enumerate(schedule)}
    if len(position) != cdag.num_vertices():
        raise CDAGError("schedule must contain every vertex exactly once")
    for u, v in cdag.edges():
        if position[u] > position[v]:
            raise CDAGError(
                f"schedule violates dependence {u!r} -> {v!r}"
            )
    remaining = {v: cdag.out_degree(v) for v in cdag.vertices}
    live: Set[Vertex] = set()
    sizes: List[int] = []
    for v in schedule:
        # v has just fired; it is live if it has any unfired successor.
        if remaining[v] > 0:
            live.add(v)
        # firing v may retire some predecessors
        for p in cdag.predecessors(v):
            remaining[p] -= 1
            if remaining[p] == 0:
                live.discard(p)
        # the wavefront at the instant v fires includes v itself
        sizes.append(len(live | {v}))
    return sizes


def max_schedule_wavefront(cdag: CDAG, schedule: Sequence[Vertex]) -> int:
    """Maximum wavefront size over a schedule (its peak live-value count)."""
    sizes = schedule_wavefronts(cdag, schedule)
    return max(sizes) if sizes else 0

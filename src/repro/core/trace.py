"""Tracing executor: build CDAGs from real numerical code.

The paper analyses algorithms (CG, GMRES, Jacobi) through their CDAGs.
Rather than hand-coding every CDAG, this module provides a tiny tracing
layer: numerical code written against :class:`TracedValue` /
:class:`TracedArray` records every scalar operation as a CDAG vertex while
*also* computing the numerical result.  This gives two guarantees that a
hand-built CDAG cannot:

1. the CDAG is exactly the data-flow of the executed program (every edge
   corresponds to a real operand), and
2. the numerical output can be checked against a NumPy reference, so the
   traced program is known to be the real algorithm and not a sketch.

The tracer intentionally models *scalar* operations — the granularity of
the pebble-game model — so traced problem sizes are kept small (the
solvers package provides untraced vectorised implementations for large
runs).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .cdag import CDAG, CDAGBuilder, Vertex

__all__ = ["TraceContext", "TracedValue", "TracedArray"]

Number = Union[int, float]


class TraceContext:
    """Owns the CDAG under construction and mints traced values.

    Typical use::

        ctx = TraceContext("dot")
        x = ctx.input_array(np.arange(4.0), prefix="x")
        y = ctx.input_array(np.ones(4), prefix="y")
        s = (x * y).sum()
        ctx.mark_output(s)
        cdag = ctx.build()
        assert s.value == 6.0
    """

    def __init__(self, name: str = "trace") -> None:
        self._builder = CDAGBuilder(name=name)
        self._num_ops = 0

    # -- value creation -------------------------------------------------
    def constant(self, value: Number, prefix: str = "const") -> "TracedValue":
        """A constant that does not count as a CDAG input (embedded in the
        program text, like the stencil coefficients of Section 5.1)."""
        v = self._builder.fresh(prefix)
        self._builder._cdag.add_vertex(v)
        return TracedValue(self, v, float(value), is_constant=True)

    def input_scalar(self, value: Number, name: Optional[Vertex] = None,
                     prefix: str = "in") -> "TracedValue":
        v = self._builder.add_input(name, prefix=prefix)
        return TracedValue(self, v, float(value))

    def input_array(
        self, values: Sequence[Number], prefix: str = "in"
    ) -> "TracedArray":
        vals = np.asarray(values, dtype=float)
        flat = [
            self.input_scalar(x, name=(prefix,) + idx)
            for idx, x in np.ndenumerate(vals)
        ]
        return TracedArray(np.array(flat, dtype=object).reshape(vals.shape), self)

    # -- graph operations ------------------------------------------------
    def _operation(
        self, operands: Sequence["TracedValue"], value: float, prefix: str
    ) -> "TracedValue":
        vertex = self._builder.operation(
            [o.vertex for o in operands if not o.is_constant], prefix=prefix
        )
        self._num_ops += 1
        return TracedValue(self, vertex, value)

    def mark_output(self, value: Union["TracedValue", "TracedArray"]) -> None:
        if isinstance(value, TracedArray):
            for v in value.flat():
                self._builder.mark_output(v.vertex)
        else:
            self._builder.mark_output(value.vertex)

    @property
    def num_operations(self) -> int:
        """Number of compute vertices recorded so far (the |V - I| count)."""
        return self._num_ops

    def build(self, validate: bool = True) -> CDAG:
        return self._builder.build(validate=validate)


class TracedValue:
    """A scalar value that records the operations applied to it."""

    __slots__ = ("ctx", "vertex", "value", "is_constant")

    def __init__(
        self,
        ctx: TraceContext,
        vertex: Vertex,
        value: float,
        is_constant: bool = False,
    ) -> None:
        self.ctx = ctx
        self.vertex = vertex
        self.value = float(value)
        self.is_constant = is_constant

    # -- helpers ----------------------------------------------------------
    def _coerce(self, other: Union["TracedValue", Number]) -> "TracedValue":
        if isinstance(other, TracedValue):
            return other
        return self.ctx.constant(other)

    def _binop(self, other, value: float, prefix: str) -> "TracedValue":
        other = self._coerce(other)
        return self.ctx._operation([self, other], value, prefix)

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other):
        o = self._coerce(other)
        return self._binop(o, self.value + o.value, "add")

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        o = self._coerce(other)
        return self._binop(o, self.value - o.value, "sub")

    def __rsub__(self, other):
        o = self._coerce(other)
        return o._binop(self, o.value - self.value, "sub")

    def __mul__(self, other):
        o = self._coerce(other)
        return self._binop(o, self.value * o.value, "mul")

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        o = self._coerce(other)
        return self._binop(o, self.value / o.value, "div")

    def __rtruediv__(self, other):
        o = self._coerce(other)
        return o._binop(self, o.value / self.value, "div")

    def __neg__(self):
        return self.ctx._operation([self], -self.value, "neg")

    def sqrt(self) -> "TracedValue":
        return self.ctx._operation([self], float(np.sqrt(self.value)), "sqrt")

    def __repr__(self) -> str:  # pragma: no cover
        return f"TracedValue({self.vertex!r}, {self.value})"


class TracedArray:
    """A dense array of :class:`TracedValue` with NumPy-like helpers.

    Only the operations the traced solvers need are provided: elementwise
    arithmetic, dot products, axpy updates, matrix-vector products and
    norms.  Each helper both performs the numerical computation and
    extends the CDAG.
    """

    def __init__(self, data: np.ndarray, ctx: TraceContext) -> None:
        self._data = data  # object ndarray of TracedValue
        self.ctx = ctx

    # -- structure ---------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx) -> Union["TracedArray", TracedValue]:
        out = self._data[idx]
        if isinstance(out, np.ndarray):
            return TracedArray(out, self.ctx)
        return out

    def __setitem__(self, idx, value) -> None:
        self._data[idx] = value

    def flat(self) -> List[TracedValue]:
        return list(self._data.flat)

    def values(self) -> np.ndarray:
        """The numerical contents as a plain float ndarray."""
        return np.array(
            [v.value for v in self._data.flat], dtype=float
        ).reshape(self.shape)

    def copy(self) -> "TracedArray":
        return TracedArray(self._data.copy(), self.ctx)

    # -- elementwise --------------------------------------------------------
    def _elementwise(self, other, op) -> "TracedArray":
        if isinstance(other, TracedArray):
            if other.shape != self.shape:
                raise ValueError("shape mismatch")
            flat = [op(a, b) for a, b in zip(self._data.flat, other._data.flat)]
        else:
            flat = [op(a, other) for a in self._data.flat]
        return TracedArray(
            np.array(flat, dtype=object).reshape(self.shape), self.ctx
        )

    def __add__(self, other):
        return self._elementwise(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self._elementwise(other, lambda a, b: a - b)

    def __mul__(self, other):
        return self._elementwise(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self.__mul__(other)

    def scale(self, alpha: Union[TracedValue, Number]) -> "TracedArray":
        return self._elementwise(alpha, lambda a, b: a * b)

    def axpy(self, alpha, other: "TracedArray") -> "TracedArray":
        """``self + alpha * other`` (the SAXPY of the CG/GMRES pseudocode)."""
        return self + other.scale(alpha)

    # -- reductions -----------------------------------------------------------
    def sum(self) -> TracedValue:
        flat = self.flat()
        if not flat:
            raise ValueError("cannot reduce an empty array")
        acc = flat[0]
        for v in flat[1:]:
            acc = acc + v
        return acc

    def dot(self, other: "TracedArray") -> TracedValue:
        return (self * other).sum()

    def norm2_squared(self) -> TracedValue:
        return self.dot(self)

    def norm2(self) -> TracedValue:
        return self.norm2_squared().sqrt()

    # -- linear algebra ----------------------------------------------------------
    def matvec(self, x: "TracedArray") -> "TracedArray":
        """Dense matrix-vector product (self must be 2-D)."""
        if len(self.shape) != 2:
            raise ValueError("matvec requires a 2-D array")
        m, n = self.shape
        if x.shape != (n,):
            raise ValueError("dimension mismatch in matvec")
        rows = []
        for i in range(m):
            acc = self._data[i, 0] * x._data[0]
            for j in range(1, n):
                acc = acc + self._data[i, j] * x._data[j]
            rows.append(acc)
        return TracedArray(np.array(rows, dtype=object), self.ctx)

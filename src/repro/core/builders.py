"""Generic CDAG builders.

Structured CDAG families used throughout the tests, validation benches
and related-work comparisons:

* chains and independent chain bundles (the degenerate case highlighted
  after Corollary 2: matrix multiplication without its input/output
  vertices is a set of independent chains pebblable with 2 red pebbles);
* reduction trees (binary and k-ary) — the dot-product sub-CDAGs of CG
  and GMRES;
* broadcast (fan-out) trees;
* diamond / grid DAGs — the dependence pattern of 1D stencils over time
  (each interior point depends on its neighbours at the previous step);
* butterfly (FFT) networks — used by the related-work comparisons
  (Ranjan et al. style bounds);
* r-pyramids;
* complete bipartite-style outer products.

Vertices are named with readable tuples such as ``("chain", i, j)`` so
that failures in tests and games are easy to interpret; the naming also
keeps builders deterministic, which matters for reproducible benchmark
numbers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .cdag import CDAG, Vertex

__all__ = [
    "chain_cdag",
    "independent_chains_cdag",
    "reduction_tree_cdag",
    "broadcast_tree_cdag",
    "diamond_cdag",
    "grid_stencil_cdag",
    "butterfly_cdag",
    "pyramid_cdag",
    "outer_product_cdag",
    "dense_layer_cdag",
]


def chain_cdag(length: int, name: str = "chain") -> CDAG:
    """A simple dependence chain ``in -> v_1 -> ... -> v_length``.

    The single source is tagged input and the single sink output.  I/O
    complexity with any ``S >= 1`` red pebbles is exactly 2 (one load,
    one store) under the RBW game.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    vertices: List[Vertex] = [("chain", 0)]
    edges: List[Tuple[Vertex, Vertex]] = []
    for i in range(1, length + 1):
        vertices.append(("chain", i))
        edges.append((("chain", i - 1), ("chain", i)))
    return CDAG.from_edge_list(
        vertices=vertices,
        edges=edges,
        inputs=[("chain", 0)],
        outputs=[("chain", length)],
        name=name,
    )


def independent_chains_cdag(
    num_chains: int, length: int, name: str = "chains"
) -> CDAG:
    """``num_chains`` disjoint chains, each of the given length.

    This is the structure left of a matrix-multiplication CDAG after
    deleting its input and output vertices (the accumulation chains
    ``C_ij += A_ik * B_kj`` over ``k``); each chain can be evaluated with
    2 red pebbles, which is why naive input/output deletion gives weak
    bounds and motivates Theorem 3 (retagging).
    """
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    outputs: List[Vertex] = []
    for c in range(num_chains):
        prev: Vertex = ("chains", c, 0)
        vertices.append(prev)
        inputs.append(prev)
        for i in range(1, length + 1):
            v: Vertex = ("chains", c, i)
            vertices.append(v)
            edges.append((prev, v))
            prev = v
        outputs.append(prev)
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def reduction_tree_cdag(
    num_leaves: int, arity: int = 2, name: str = "reduce"
) -> CDAG:
    """A k-ary reduction tree over ``num_leaves`` input leaves.

    The leaves are inputs, the root is the single output.  Dot products
    (``<<r, r>>`` in CG, ``<<w, v_j>>`` in GMRES) have this shape, with
    an elementwise-multiply layer feeding the tree.
    """
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    level = 0
    current: List[Vertex] = []
    for i in range(num_leaves):
        v: Vertex = ("reduce", 0, i)
        vertices.append(v)
        inputs.append(v)
        current.append(v)
    while len(current) > 1:
        level += 1
        nxt: List[Vertex] = []
        for j in range(0, len(current), arity):
            group = current[j : j + arity]
            v = ("reduce", level, j // arity)
            vertices.append(v)
            for u in group:
                edges.append((u, v))
            nxt.append(v)
        current = nxt
    return CDAG.from_edge_list(vertices, edges, inputs, [current[0]], name=name)


def broadcast_tree_cdag(
    num_leaves: int, arity: int = 2, name: str = "bcast"
) -> CDAG:
    """A fan-out tree: one input value broadcast to ``num_leaves`` outputs."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    root: Vertex = ("bcast", 0, 0)
    vertices: List[Vertex] = [root]
    edges: List[Tuple[Vertex, Vertex]] = []
    current: List[Vertex] = [root]
    level = 0
    while len(current) < num_leaves:
        level += 1
        nxt: List[Vertex] = []
        for i, parent in enumerate(current):
            for k in range(arity):
                if len(nxt) + len(current) - i - 1 >= num_leaves and k > 0:
                    # keep tree minimal once enough leaves can be reached
                    pass
                child: Vertex = ("bcast", level, len(nxt))
                vertices.append(child)
                edges.append((parent, child))
                nxt.append(child)
                if len(nxt) >= num_leaves:
                    break
            if len(nxt) >= num_leaves:
                # remaining parents keep their value as leaves
                nxt.extend(current[i + 1 :])
                break
        current = nxt
    return CDAG.from_edge_list(vertices, edges, [root], current[:num_leaves], name=name)


def diamond_cdag(width: int, depth: int, name: str = "diamond") -> CDAG:
    """A "diamond"/grid DAG: ``depth`` rows of ``width`` vertices where
    vertex ``(t, i)`` depends on ``(t-1, i-1)``, ``(t-1, i)`` and
    ``(t-1, i+1)`` (clamped at the boundary).

    This is the CDAG of a 3-point 1D Jacobi-style stencil iterated
    ``depth - 1`` times; the first row is tagged input and the last row
    output.  Hong & Kung's "lines" argument (used in Theorem 10) applies:
    all inputs reach all outputs through vertex-disjoint paths (the
    columns).
    """
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    for t in range(depth):
        for i in range(width):
            v: Vertex = ("dmd", t, i)
            vertices.append(v)
            if t > 0:
                for di in (-1, 0, 1):
                    j = i + di
                    if 0 <= j < width:
                        edges.append((("dmd", t - 1, j), v))
    inputs = [("dmd", 0, i) for i in range(width)]
    outputs = [("dmd", depth - 1, i) for i in range(width)]
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def grid_stencil_cdag(
    shape: Sequence[int],
    timesteps: int,
    neighborhood: str = "star",
    name: str = "stencil",
) -> CDAG:
    """CDAG of an iterated d-dimensional Jacobi-style stencil.

    Parameters
    ----------
    shape:
        Grid extents ``(n_1, ..., n_d)``.
    timesteps:
        Number of sweeps ``T``; vertices exist for ``t = 0..T`` where row
        ``t=0`` holds the inputs.
    neighborhood:
        ``"star"`` (2d+1-point: offsets ±1 along each axis plus centre) or
        ``"box"`` (3^d-point: all offsets in {-1,0,1}^d, the "9-point"
        stencil of Theorem 10 when d=2).
    """
    import itertools

    shape = tuple(int(n) for n in shape)
    if any(n < 1 for n in shape) or timesteps < 1:
        raise ValueError("shape entries and timesteps must be >= 1")
    d = len(shape)
    if neighborhood == "star":
        offsets = [tuple(0 for _ in range(d))]
        for axis in range(d):
            for sign in (-1, 1):
                off = [0] * d
                off[axis] = sign
                offsets.append(tuple(off))
    elif neighborhood == "box":
        offsets = list(itertools.product((-1, 0, 1), repeat=d))
    else:
        raise ValueError("neighborhood must be 'star' or 'box'")

    def in_bounds(idx: Tuple[int, ...]) -> bool:
        return all(0 <= idx[k] < shape[k] for k in range(d))

    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    points = list(itertools.product(*[range(n) for n in shape]))
    for t in range(timesteps + 1):
        for p in points:
            v: Vertex = ("st", t) + p
            vertices.append(v)
            if t > 0:
                for off in offsets:
                    q = tuple(p[k] + off[k] for k in range(d))
                    if in_bounds(q):
                        edges.append((("st", t - 1) + q, v))
    inputs = [("st", 0) + p for p in points]
    outputs = [("st", timesteps) + p for p in points]
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def butterfly_cdag(log_n: int, name: str = "fft") -> CDAG:
    """The n-input FFT butterfly CDAG with ``n = 2**log_n``.

    ``log_n`` stages; vertex ``(s, i)`` at stage ``s >= 1`` depends on
    ``(s-1, i)`` and ``(s-1, i XOR 2^{s-1})``.  Inputs are stage 0,
    outputs are the final stage.  Classic Hong-Kung result:
    ``Q = Θ(n log n / log S)``.
    """
    if log_n < 1:
        raise ValueError("log_n must be >= 1")
    n = 1 << log_n
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    for s in range(log_n + 1):
        for i in range(n):
            v: Vertex = ("fft", s, i)
            vertices.append(v)
            if s > 0:
                stride = 1 << (s - 1)
                edges.append((("fft", s - 1, i), v))
                edges.append((("fft", s - 1, i ^ stride), v))
    inputs = [("fft", 0, i) for i in range(n)]
    outputs = [("fft", log_n, i) for i in range(n)]
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def pyramid_cdag(base: int, name: str = "pyramid") -> CDAG:
    """A 2-pyramid: row ``r`` has ``base - r`` vertices, each depending on
    the two vertices below it (rows counted from the base, r = 0).

    r-pyramids are the subject of Ranjan et al.'s bounds cited in the
    related-work section; they make good test cases because the exact
    sequential I/O is easy to reason about for small sizes.
    """
    if base < 1:
        raise ValueError("base must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    for r in range(base):
        width = base - r
        for i in range(width):
            v: Vertex = ("pyr", r, i)
            vertices.append(v)
            if r > 0:
                edges.append((("pyr", r - 1, i), v))
                edges.append((("pyr", r - 1, i + 1), v))
    inputs = [("pyr", 0, i) for i in range(base)]
    outputs = [("pyr", base - 1, 0)]
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def outer_product_cdag(n: int, name: str = "outer") -> CDAG:
    """CDAG of the outer product ``A = p × q^T`` of two length-n vectors.

    ``2n`` inputs, ``n^2`` multiply vertices each reading one element of
    ``p`` and one of ``q``; every multiply is an output.  Its I/O
    complexity is ``2n + n^2`` regardless of ``S`` (every input must be
    loaded once, every result stored once) — the example used in
    Section 3 of the paper.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    outputs: List[Vertex] = []
    for i in range(n):
        vertices.append(("p", i))
        inputs.append(("p", i))
    for j in range(n):
        vertices.append(("q", j))
        inputs.append(("q", j))
    for i in range(n):
        for j in range(n):
            v: Vertex = ("A", i, j)
            vertices.append(v)
            edges.append((("p", i), v))
            edges.append((("q", j), v))
            outputs.append(v)
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def dense_layer_cdag(
    num_inputs: int, num_outputs: int, name: str = "dense"
) -> CDAG:
    """A complete bipartite dependence layer: every output reads every input.

    Useful as a stress case for the dominator/min-cut machinery (the
    minimum dominator of the output layer is ``min(num_inputs,
    num_outputs)``).
    """
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs = [("x", i) for i in range(num_inputs)]
    outputs = [("y", j) for j in range(num_outputs)]
    vertices.extend(inputs)
    vertices.extend(outputs)
    for i in range(num_inputs):
        for j in range(num_outputs):
            edges.append((("x", i), ("y", j)))
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)

"""S-partitions of CDAGs (Hong-Kung and RBW variants).

The 2S-partitioning technique of Hong & Kung relates any complete pebble
game with ``S`` red pebbles to a partition of the CDAG into ``h`` subsets
each "touching" at most ``2S`` boundary values, giving the key lower bound
``Q >= S * (h_min - 1)`` (Lemma 1).

Two flavours of the partition conditions exist in the paper:

* **Hong-Kung S-partition** (Definition 3): a partition of *all* vertices
  ``V`` into subsets ``V_1..V_h`` such that

  - P1: the subsets are disjoint and cover ``V``;
  - P2: no circuit between subsets (no pair of subsets with edges in both
    directions);
  - P3: each ``V_i`` has a dominator set of size at most ``S``;
  - P4: ``|Min(V_i)| <= S``.

* **RBW S-partition** (Definition 5): a partition of the *operation*
  vertices ``V - I`` such that P1, P2 hold and

  - P3': ``|In(V_i)| <= S``;
  - P4': ``|Out(V_i)| <= S``.

This module provides a partition container plus validity checkers for both
variants, a constructor that extracts a 2S-partition from an executed RBW
game (the constructive direction of Theorem 1, used for validation tests),
and greedy partition *upper-bound* estimators for ``U(2S)`` (the largest
admissible vertex-set size), which plugs into Corollary 1 and Theorems 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cdag import CDAG, CDAGError, Vertex
from .properties import in_set, minimal_dominator_size, minimum_set, out_set

__all__ = [
    "SPartition",
    "PartitionViolation",
    "check_hong_kung_partition",
    "check_rbw_partition",
    "greedy_rbw_partition",
    "partition_from_schedule",
    "largest_admissible_subset",
]


class PartitionViolation(CDAGError):
    """Raised (or collected) when a partition violates P1-P4."""


@dataclass
class SPartition:
    """A candidate S-partition: an ordered list of disjoint vertex subsets.

    Attributes
    ----------
    subsets:
        The vertex subsets ``V_1, ..., V_h`` in order.
    s:
        The value of ``S`` the partition is claimed to be valid for
        (a *2S*-partition obtained from a game with ``S`` red pebbles has
        ``s = 2 * S_pebbles``).
    """

    subsets: List[Set[Vertex]]
    s: int

    @property
    def h(self) -> int:
        """Number of subsets in the partition."""
        return len(self.subsets)

    def all_vertices(self) -> Set[Vertex]:
        out: Set[Vertex] = set()
        for sub in self.subsets:
            out |= sub
        return out

    def subset_of(self, v: Vertex) -> Optional[int]:
        """Index of the subset containing ``v``, or None."""
        for i, sub in enumerate(self.subsets):
            if v in sub:
                return i
        return None

    def largest_subset_size(self) -> int:
        return max((len(s) for s in self.subsets), default=0)


def _check_disjoint_cover(
    partition: SPartition, expected: Set[Vertex]
) -> List[str]:
    errors: List[str] = []
    seen: Set[Vertex] = set()
    for i, sub in enumerate(partition.subsets):
        overlap = seen & sub
        if overlap:
            errors.append(
                f"P1 violated: subset {i} overlaps earlier subsets on "
                f"{sorted(map(repr, overlap))[:3]}"
            )
        seen |= sub
    missing = expected - seen
    extra = seen - expected
    if missing:
        errors.append(
            f"P1 violated: {len(missing)} vertices uncovered, e.g. "
            f"{sorted(map(repr, missing))[:3]}"
        )
    if extra:
        errors.append(
            f"P1 violated: {len(extra)} foreign vertices, e.g. "
            f"{sorted(map(repr, extra))[:3]}"
        )
    return errors


def _check_no_circuits(cdag: CDAG, partition: SPartition) -> List[str]:
    """P2: no pair of subsets with edges in both directions.

    Implemented on the quotient graph in O(|E|) rather than pairwise.
    """
    errors: List[str] = []
    owner: Dict[Vertex, int] = {}
    for i, sub in enumerate(partition.subsets):
        for v in sub:
            owner[v] = i
    forward: Set[Tuple[int, int]] = set()
    for u, v in cdag.edges():
        iu, iv = owner.get(u), owner.get(v)
        if iu is None or iv is None or iu == iv:
            continue
        forward.add((iu, iv))
    for (a, b) in forward:
        if (b, a) in forward and a < b:
            errors.append(f"P2 violated: circuit between subsets {a} and {b}")
    return errors


def check_hong_kung_partition(
    cdag: CDAG, partition: SPartition, exact_dominator: bool = False
) -> List[str]:
    """Validate a Hong-Kung S-partition (Definition 3).  Returns violations.

    Parameters
    ----------
    exact_dominator:
        When True, the minimum dominator size of each subset is computed
        exactly via max-flow.  When False (default) a cheaper sufficient
        check is used first (``In(V_i) ∪ (I ∩ V_i)`` is always a
        dominator), falling back to the exact computation only when the
        cheap dominator is too large.
    """
    errors = _check_disjoint_cover(partition, set(cdag.vertices))
    errors += _check_no_circuits(cdag, partition)
    s = partition.s
    known_vertices = set(cdag.vertices)
    for i, sub in enumerate(partition.subsets):
        sub = set(sub) & known_vertices
        if not sub:
            continue
        # P3: exists a dominator of size <= S.
        cheap = in_set(cdag, sub) | (set(cdag.inputs) & sub)
        if len(cheap) > s or exact_dominator:
            dom_size = minimal_dominator_size(cdag, sub)
            if dom_size > s:
                errors.append(
                    f"P3 violated: subset {i} has minimum dominator "
                    f"{dom_size} > S={s}"
                )
        # P4: |Min(V_i)| <= S.
        msize = len(minimum_set(cdag, sub))
        if msize > s:
            errors.append(
                f"P4 violated: subset {i} has |Min| = {msize} > S={s}"
            )
    return errors


def check_rbw_partition(cdag: CDAG, partition: SPartition) -> List[str]:
    """Validate an RBW S-partition (Definition 5).  Returns violations.

    The partition must cover ``V - I`` (operation vertices only) and each
    subset must satisfy ``|In(V_i)| <= S`` and ``|Out(V_i)| <= S``.
    """
    expected = set(cdag.vertices) - set(cdag.inputs)
    errors = _check_disjoint_cover(partition, expected)
    errors += _check_no_circuits(cdag, partition)
    s = partition.s
    known_vertices = set(cdag.vertices)
    for i, sub in enumerate(partition.subsets):
        # Foreign vertices are already reported by the P1 check; restrict
        # the structural checks to the vertices that belong to the CDAG.
        sub = set(sub) & known_vertices
        if not sub:
            continue
        isize = len(in_set(cdag, sub))
        if isize > s:
            errors.append(
                f"P3 violated: subset {i} has |In| = {isize} > S={s}"
            )
        osize = len(out_set(cdag, sub))
        if osize > s:
            errors.append(
                f"P4 violated: subset {i} has |Out| = {osize} > S={s}"
            )
    return errors


def partition_from_game(cdag: CDAG, moves, s: int) -> SPartition:
    """Build the ``2S``-partition associated with a game (Theorem 1 proof).

    The constructive direction of Theorem 1 slices a complete game with
    ``S`` red pebbles into consecutive phases containing (at most) ``S``
    I/O transitions each; the vertices *computed* during phase ``i`` form
    the subset ``V_i``.  Because at most ``S`` values can enter a phase
    from slow memory and at most ``S`` can already be in fast memory when
    it starts (and symmetrically for outputs), every ``V_i`` satisfies the
    RBW ``2S``-partition conditions, and the number of phases ``h``
    satisfies ``S*h >= q >= S*(h-1)`` where ``q`` is the game's I/O count.

    Parameters
    ----------
    cdag:
        The CDAG the game was played on.
    moves:
        The move sequence of a complete game: a
        :class:`~repro.pebbling.state.GameRecord`, its columnar
        :class:`~repro.pebbling.state.MoveLog` (``record.moves``), or any
        iterable of :class:`~repro.pebbling.state.Move` objects.  A log
        bound to ``cdag``'s compiled backend is sliced into phases
        *vectorized* over the opcode column; the per-``Move`` loop is kept
        as the reference path for arbitrary iterables.
    s:
        The number of red pebbles the game used.
    """
    # local imports to avoid a core <-> pebbling cycle
    from ..pebbling.state import (
        OP_COMPUTE,
        OP_LOAD,
        OP_STORE,
        GameRecord,
        MoveKind,
        MoveLog,
    )

    log = moves.log if isinstance(moves, GameRecord) else moves
    if isinstance(log, MoveLog) and log.is_bound_to(cdag.compiled()):
        import numpy as np

        c = cdag.compiled()
        verts = c._verts
        by_phase: Dict[int, Set[Vertex]] = {}
        # Number of I/O moves strictly before each move; the phase of a
        # compute is how many times the "(S+1)-th I/O closes the phase"
        # rule has fired before it.  Chunk at a time (spilled logs stay
        # memory-flat, and only the opcode + vertex-id column files are
        # paged in): ``io_seen`` carries the count across chunks.
        io_seen = 0
        for kinds, vids in log.select_columns("kinds", "vertex_ids"):
            io_mask = (kinds == OP_LOAD) | (kinds == OP_STORE)
            io_before = io_seen + np.cumsum(io_mask) - io_mask
            compute_mask = kinds == OP_COMPUTE
            phases = np.maximum(0, (io_before[compute_mask] - 1) // s)
            fired = vids[compute_mask]
            for ph, vid in zip(phases.tolist(), fired.tolist()):
                by_phase.setdefault(ph, set()).add(verts[vid])
            io_seen += int(io_mask.sum())
        return SPartition(
            subsets=[by_phase[ph] for ph in sorted(by_phase)], s=2 * s
        )

    subsets: List[Set[Vertex]] = []
    current: Set[Vertex] = set()
    io_in_phase = 0
    for move in log:
        if move.kind in (MoveKind.LOAD, MoveKind.STORE):
            if io_in_phase >= s:
                # close the phase before admitting the (S+1)-th I/O
                if current:
                    subsets.append(current)
                    current = set()
                io_in_phase = 0
            io_in_phase += 1
        elif move.kind == MoveKind.COMPUTE:
            current.add(move.vertex)
    if current:
        subsets.append(current)
    return SPartition(subsets=subsets, s=2 * s)


def partition_from_schedule(
    cdag: CDAG, schedule: Sequence[Vertex], s: int
) -> SPartition:
    """Build an RBW ``2S``-partition by greedily cutting a schedule.

    This mirrors the constructive direction of Theorem 1: walking a valid
    execution order, we close the current subset as soon as adding the
    next vertex would push ``|In|`` or ``|Out|`` beyond ``2S``.  The
    resulting partition is always a valid RBW ``2S``-partition (each
    subset is a contiguous slice of a topological order, so P2 holds),
    and its ``h`` upper-bounds ``H(2S)``, hence the implied bound
    ``S*(h-1)`` *under*-estimates nothing — it is primarily used for
    cross-checking and for empirical ``U(2S)`` estimation.

    The In/Out sets of the growing subset are maintained *incrementally*
    over the compiled CDAG: adding a vertex touches only its own edges,
    and closing a subset on an over-limit add rolls the last add back.
    Total cost is ``O(|V| + |E|)`` instead of the seed's
    ``O(|V| * |V_i| * deg)`` full recomputation per step.
    """
    c = cdag.compiled()
    is_input = c.is_input_mask.tolist()
    is_output = c.is_output_mask.tolist()
    pred_lists = c.pred_lists
    out_degree = c.out_degree.tolist()
    succ_lists = c.succ_lists

    ops = [i for i in c.ids_of(schedule) if not is_input[i]]
    limit = 2 * s
    subsets: List[Set[Vertex]] = []

    member = bytearray(c.n)  # membership flags of the *current* subset
    members: List[int] = []
    in_ids: Set[int] = set()  # In(V_i): outside vertices feeding the subset
    out_ids: Set[int] = set()  # Out(V_i): members that are outputs / feed out
    # Number of successors outside the current subset, per member.
    outside_succ = [0] * c.n

    def add(i: int):
        """Add ``i`` to the current subset; return an undo log."""
        undo: List[Tuple[int, int]] = []  # (what, vertex-id) pairs
        if i in in_ids:
            in_ids.remove(i)
            undo.append((0, i))  # 0: re-add to in_ids
        for p in pred_lists[i]:
            if member[p]:
                outside_succ[p] -= 1
                undo.append((1, p))  # 1: re-increment outside_succ
                if outside_succ[p] == 0 and not is_output[p] and p in out_ids:
                    out_ids.remove(p)
                    undo.append((2, p))  # 2: re-add to out_ids
            elif p not in in_ids:
                in_ids.add(p)
                undo.append((3, p))  # 3: remove from in_ids
        member[i] = 1
        members.append(i)
        # In a valid schedule no successor of i has fired yet, but count
        # members defensively so non-topological schedules keep the exact
        # seed semantics.
        outside = out_degree[i]
        for w in succ_lists[i]:
            if member[w]:
                outside -= 1
        outside_succ[i] = outside
        if is_output[i] or outside > 0:
            out_ids.add(i)
            undo.append((4, i))  # 4: remove from out_ids
        return undo

    def rollback(i: int, undo) -> None:
        member[i] = 0
        members.pop()
        for what, p in reversed(undo):
            if what == 0:
                in_ids.add(p)
            elif what == 1:
                outside_succ[p] += 1
            elif what == 2:
                out_ids.add(p)
            elif what == 3:
                in_ids.remove(p)
            elif what == 4:
                out_ids.discard(p)

    def close_subset() -> None:
        verts = c._verts
        subsets.append({verts[i] for i in members})
        for i in members:
            member[i] = 0
        members.clear()
        in_ids.clear()
        out_ids.clear()

    for i in ops:
        had_members = bool(members)
        undo = add(i)
        if had_members and (len(in_ids) > limit or len(out_ids) > limit):
            rollback(i, undo)
            close_subset()
            add(i)
    if members:
        close_subset()
    return SPartition(subsets=subsets, s=limit)


def greedy_rbw_partition(cdag: CDAG, s: int) -> SPartition:
    """Greedy RBW ``2S``-partition along a default topological order."""
    return partition_from_schedule(cdag, cdag.topological_order(), s)


def largest_admissible_subset(
    cdag: CDAG,
    s: int,
    schedules: Optional[Iterable[Sequence[Vertex]]] = None,
) -> int:
    """Empirical estimate of ``U(2S)``: the largest subset size achievable
    in a valid ``2S``-partition.

    ``U(2S)`` appears in Corollary 1 and Theorems 6/7: the parallel lower
    bounds take the form ``(|V| / U(C, 2S) - 1) * S``.  For the algorithms
    analysed in the paper, closed forms of ``U`` are known (e.g.
    ``U = 4S*(2S)^{1/d}`` for d-dimensional Jacobi); this function gives a
    *lower* bound on the true ``U(2S)`` by construction (any valid subset
    exhibits feasibility), which turns the derived I/O bound into an
    *upper* estimate of the true lower bound — useful for sanity-checking
    the closed forms on small instances, not as a certified bound.

    The estimator greedily grows subsets along one or more schedules and
    reports the largest subset seen.
    """
    best = 0
    pools = list(schedules) if schedules is not None else [cdag.topological_order()]
    for sched in pools:
        part = partition_from_schedule(cdag, sched, s)
        best = max(best, part.largest_subset_size())
    return best

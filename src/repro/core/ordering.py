"""Execution orders (schedules) for CDAGs.

A *schedule* is a total order of the CDAG vertices consistent with the
edge partial order.  Schedules matter in two ways for the paper's
framework:

* every pebble game induces a schedule (the order in which compute rule
  R3/R6 fires), and conversely a schedule plus a spilling policy induces a
  game — this is how upper bounds are produced;
* the *schedule wavefront* (Section 3.3) of a schedule at a firing is the
  live-set size, whose minimum over schedules relates to the min-cut
  lower bound of Lemma 2.

This module provides several schedule generators with different
memory-pressure characteristics:

* plain Kahn topological order (insertion-order tie-break);
* depth-first post-order-ish scheduling, which tends to retire values
  quickly (good for chains/trees);
* a greedy *minimum-live-set* heuristic that at each step fires the ready
  vertex minimizing the resulting live-value count — a practical
  approximation of a memory-optimal order;
* priority scheduling with a user-supplied key (used by the tiled /
  blocked schedules of the algorithm modules).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .cdag import CDAG, CDAGError, Vertex

__all__ = [
    "topological_schedule",
    "dfs_schedule",
    "min_liveset_schedule",
    "priority_schedule",
    "validate_schedule",
]


def validate_schedule(cdag: CDAG, schedule: Sequence[Vertex]) -> None:
    """Raise :class:`CDAGError` unless ``schedule`` is a valid total order."""
    pos = {v: i for i, v in enumerate(schedule)}
    if len(pos) != len(schedule):
        raise CDAGError("schedule contains duplicate vertices")
    if set(pos) != set(cdag.vertices):
        raise CDAGError("schedule must contain every vertex exactly once")
    for u, v in cdag.edges():
        if pos[u] > pos[v]:
            raise CDAGError(f"schedule violates dependence {u!r} -> {v!r}")


def topological_schedule(cdag: CDAG) -> List[Vertex]:
    """Kahn topological order with deterministic insertion-order tie-break."""
    return cdag.topological_order()


def dfs_schedule(cdag: CDAG, reverse_roots: bool = False) -> List[Vertex]:
    """Depth-first schedule.

    Performs an iterative DFS from the source vertices, emitting a vertex
    as soon as all its predecessors have been emitted.  For tree- and
    chain-like CDAGs this tends to keep the live set small because whole
    subtrees are finished before moving on.
    """
    emitted: Set[Vertex] = set()
    remaining_preds: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    roots = [v for v in cdag.vertices if remaining_preds[v] == 0]
    if reverse_roots:
        roots = list(reversed(roots))
    schedule: List[Vertex] = []
    stack: List[Vertex] = list(reversed(roots))
    queued: Set[Vertex] = set(roots)
    while stack:
        v = stack.pop()
        if v in emitted:
            continue
        if remaining_preds[v] > 0:
            # Not ready yet; it will be re-pushed when its last
            # predecessor fires.
            queued.discard(v)
            continue
        emitted.add(v)
        schedule.append(v)
        for w in reversed(cdag.successors(v)):
            remaining_preds[w] -= 1
            if remaining_preds[w] == 0 and w not in emitted:
                stack.append(w)
                queued.add(w)
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule


def min_liveset_schedule(cdag: CDAG) -> List[Vertex]:
    """Greedy minimum-live-set schedule.

    At each step, among ready vertices, fire the one whose firing leads to
    the smallest live-value count: firing ``v`` adds 1 to the live set if
    ``v`` has unfired successors and retires every predecessor whose last
    unfired successor was ``v``.  Ties are broken by insertion order.

    This is a heuristic (the problem of minimizing the peak live set is
    NP-hard in general — it is equivalent to one-shot pebbling), but it
    gives good upper bounds on ``w_max`` for the structured CDAGs used in
    the evaluation and drives the spill-based upper-bound games.
    """
    remaining_succ: Dict[Vertex, int] = {
        v: cdag.out_degree(v) for v in cdag.vertices
    }
    remaining_pred: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    order_index = {v: i for i, v in enumerate(cdag.vertices)}
    ready: List[Vertex] = [v for v in cdag.vertices if remaining_pred[v] == 0]
    fired: Set[Vertex] = set()
    schedule: List[Vertex] = []

    def delta(v: Vertex) -> int:
        """Net change in live-set size caused by firing v."""
        d = 1 if remaining_succ[v] > 0 else 0
        for p in cdag.predecessors(v):
            if remaining_succ[p] == 1:  # v is p's last unfired successor
                d -= 1
        return d

    while ready:
        ready.sort(key=lambda v: (delta(v), order_index[v]))
        v = ready.pop(0)
        fired.add(v)
        schedule.append(v)
        for p in cdag.predecessors(v):
            remaining_succ[p] -= 1
        for w in cdag.successors(v):
            remaining_pred[w] -= 1
            if remaining_pred[w] == 0:
                ready.append(w)
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule


def priority_schedule(
    cdag: CDAG, key: Callable[[Vertex], Tuple]
) -> List[Vertex]:
    """List scheduling with an arbitrary priority ``key`` (lower = earlier).

    Ready vertices are kept in a heap ordered by ``key``; this is how the
    blocked/tiled schedules of the algorithm modules (e.g. tile-by-tile
    Jacobi) are expressed: the key encodes the tile index so that a whole
    tile is finished before the next one starts.
    """
    counter = 0
    remaining_pred: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    heap: List[Tuple[Tuple, int, Vertex]] = []
    for v in cdag.vertices:
        if remaining_pred[v] == 0:
            heapq.heappush(heap, (key(v), counter, v))
            counter += 1
    schedule: List[Vertex] = []
    while heap:
        _, _, v = heapq.heappop(heap)
        schedule.append(v)
        for w in cdag.successors(v):
            remaining_pred[w] -= 1
            if remaining_pred[w] == 0:
                heapq.heappush(heap, (key(w), counter, w))
                counter += 1
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule

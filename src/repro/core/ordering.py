"""Execution orders (schedules) for CDAGs.

A *schedule* is a total order of the CDAG vertices consistent with the
edge partial order.  Schedules matter in two ways for the paper's
framework:

* every pebble game induces a schedule (the order in which compute rule
  R3/R6 fires), and conversely a schedule plus a spilling policy induces a
  game — this is how upper bounds are produced;
* the *schedule wavefront* (Section 3.3) of a schedule at a firing is the
  live-set size, whose minimum over schedules relates to the min-cut
  lower bound of Lemma 2.

This module provides several schedule generators with different
memory-pressure characteristics:

* plain Kahn topological order (insertion-order tie-break);
* depth-first post-order-ish scheduling, which tends to retire values
  quickly (good for chains/trees);
* a greedy *minimum-live-set* heuristic that at each step fires the ready
  vertex minimizing the resulting live-value count — a practical
  approximation of a memory-optimal order;
* priority scheduling with a user-supplied key (used by the tiled /
  blocked schedules of the algorithm modules).

The DFS and min-live-set generators run on the compiled integer-indexed
backend (:meth:`CDAG.compiled`) by default: :func:`dfs_schedule_ids` and
:func:`min_liveset_schedule_ids` walk plain-``int`` adjacency lists and
the vertex-space wrappers convert ids back to names once at the end.  The
seed's dict-backend implementations are kept, bit-for-bit equivalent, as
the reference semantics — select them with ``backend="dict"`` (the
equivalence tests pin both paths to identical schedules on randomized
CDAGs).  :func:`validate_schedule` checks the edge partial order
vectorized over the compiled CSR arrays.

Usage example (doctest)::

    >>> from repro.core.builders import diamond_cdag
    >>> from repro.core.ordering import (
    ...     dfs_schedule, min_liveset_schedule, validate_schedule)
    >>> cdag = diamond_cdag(3, 2)       # 3-wide, 2-row stencil diamond
    >>> sched = min_liveset_schedule(cdag)
    >>> validate_schedule(cdag, sched)  # raises CDAGError if not a valid order
    >>> sched[:3]
    [('dmd', 0, 0), ('dmd', 0, 1), ('dmd', 1, 0)]
    >>> sched == min_liveset_schedule(cdag, backend="dict")
    True
    >>> dfs_schedule(cdag) == dfs_schedule(cdag, backend="dict")
    True
    >>> c = cdag.compiled()             # the id-space variants
    >>> from repro.core.ordering import dfs_schedule_ids
    >>> c.vertices_of(dfs_schedule_ids(c)) == dfs_schedule(cdag)
    True
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from .cdag import CDAG, CDAGError, Vertex
from .compiled import CompiledCDAG

__all__ = [
    "topological_schedule",
    "dfs_schedule",
    "dfs_schedule_ids",
    "find_dependence_violation",
    "min_liveset_schedule",
    "min_liveset_schedule_ids",
    "priority_schedule",
    "validate_schedule",
]


def find_dependence_violation(c: CompiledCDAG, pos: np.ndarray):
    """First CSR edge ``(u, v)`` (as ids) with ``pos[u] > pos[v]``, or
    ``None`` if the positions respect every dependence.

    ``pos`` maps vertex id -> position; entries of ``-1`` mean "no
    position" and are ignored (used by partial orders such as the
    distsim executor's operation-only replay, where inputs are always
    available).  One vectorized pass over the compiled CSR arrays.
    """
    if c.m == 0:
        return None
    head_pos = np.repeat(pos, np.diff(c.succ_indptr))
    tail_pos = pos[c.succ_indices]
    bad = np.flatnonzero(
        (head_pos >= 0) & (tail_pos >= 0) & (head_pos > tail_pos)
    )
    if not bad.size:
        return None
    k = int(bad[0])
    u = int(np.searchsorted(c.succ_indptr, k, side="right") - 1)
    v = int(c.succ_indices[k])
    return u, v


def validate_schedule(cdag: CDAG, schedule: Sequence[Vertex]) -> None:
    """Raise :class:`CDAGError` unless ``schedule`` is a valid total order.

    Runs on the compiled backend: the schedule is converted to ids once
    and the dependence check compares the position arrays of every CSR
    edge in a single vectorized pass.
    """
    c = cdag.compiled()
    try:
        ids = c.ids_of(schedule)
    except KeyError as exc:
        raise CDAGError(
            f"schedule contains unknown vertex {exc.args[0]!r}"
        ) from None
    if len(set(ids)) != len(ids):
        raise CDAGError("schedule contains duplicate vertices")
    if len(ids) != c.n:
        raise CDAGError("schedule must contain every vertex exactly once")
    if c.n == 0:
        return
    pos = np.empty(c.n, dtype=np.int64)
    pos[ids] = np.arange(c.n, dtype=np.int64)
    violation = find_dependence_violation(c, pos)
    if violation is not None:
        u, v = violation
        raise CDAGError(
            f"schedule violates dependence {c.vertex(u)!r} -> {c.vertex(v)!r}"
        )


def topological_schedule(cdag: CDAG) -> List[Vertex]:
    """Kahn topological order with deterministic insertion-order tie-break."""
    return cdag.topological_order()


# ======================================================================
# Depth-first schedule
# ======================================================================
def dfs_schedule_ids(
    c: CompiledCDAG, reverse_roots: bool = False
) -> List[int]:
    """Depth-first schedule in id space (see :func:`dfs_schedule`).

    Takes a :class:`~repro.core.compiled.CompiledCDAG` and returns vertex
    ids; this is the hot path the vertex-space wrapper converts from.
    """
    remaining = c.in_degree.tolist()
    succ_lists = c.succ_lists
    emitted = bytearray(c.n)
    roots = [i for i in range(c.n) if remaining[i] == 0]
    if reverse_roots:
        roots.reverse()
    stack = roots[::-1]
    schedule: List[int] = []
    append = schedule.append
    while stack:
        v = stack.pop()
        if emitted[v] or remaining[v] > 0:
            # Already emitted, or re-pushed before its last predecessor
            # fired; it will be pushed again when it becomes ready.
            continue
        emitted[v] = 1
        append(v)
        for w in reversed(succ_lists[v]):
            remaining[w] -= 1
            if remaining[w] == 0 and not emitted[w]:
                stack.append(w)
    if len(schedule) != c.n:
        raise CDAGError("graph contains a directed cycle")
    return schedule


def dfs_schedule(
    cdag: CDAG, reverse_roots: bool = False, backend: str = "compiled"
) -> List[Vertex]:
    """Depth-first schedule.

    Performs an iterative DFS from the source vertices, emitting a vertex
    as soon as all its predecessors have been emitted.  For tree- and
    chain-like CDAGs this tends to keep the live set small because whole
    subtrees are finished before moving on.

    ``backend="compiled"`` (default) runs :func:`dfs_schedule_ids` on the
    integer-indexed backend; ``backend="dict"`` runs the seed's
    dict-backend reference implementation.  Both produce the identical
    schedule — ids are insertion order, so every tie-break matches.
    """
    if backend == "dict":
        return _dfs_schedule_dict(cdag, reverse_roots)
    if backend != "compiled":
        raise ValueError(f"unknown backend {backend!r}")
    c = cdag.compiled()
    return c.vertices_of(dfs_schedule_ids(c, reverse_roots))


def _dfs_schedule_dict(
    cdag: CDAG, reverse_roots: bool = False
) -> List[Vertex]:
    """Reference dict-backend DFS schedule (seed implementation)."""
    emitted: Set[Vertex] = set()
    remaining_preds: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    roots = [v for v in cdag.vertices if remaining_preds[v] == 0]
    if reverse_roots:
        roots = list(reversed(roots))
    schedule: List[Vertex] = []
    stack: List[Vertex] = list(reversed(roots))
    queued: Set[Vertex] = set(roots)
    while stack:
        v = stack.pop()
        if v in emitted:
            continue
        if remaining_preds[v] > 0:
            # Not ready yet; it will be re-pushed when its last
            # predecessor fires.
            queued.discard(v)
            continue
        emitted.add(v)
        schedule.append(v)
        for w in reversed(cdag.successors(v)):
            remaining_preds[w] -= 1
            if remaining_preds[w] == 0 and w not in emitted:
                stack.append(w)
                queued.add(w)
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule


# ======================================================================
# Greedy minimum-live-set schedule
# ======================================================================
def min_liveset_schedule_ids(c: CompiledCDAG) -> List[int]:
    """Greedy minimum-live-set schedule in id space (see
    :func:`min_liveset_schedule`).

    Same greedy rule as the dict reference: among ready vertices fire the
    one minimizing the live-set delta, ties broken by insertion order —
    which in id space is simply the id itself.

    Selection is identical to the reference but far cheaper: the
    reference re-derives every candidate's delta each step (a predecessor
    walk per candidate per step).  Here deltas are maintained
    *incrementally* — an unfired vertex's delta only ever changes when one
    of its predecessors drops to a single unfired successor, which
    happens once per predecessor — and ready vertices sit in a
    lazy-deletion heap keyed by ``(delta, id)``: stale entries (fired, or
    pushed with an outdated delta) are discarded on pop.  The key is a
    strict total order and every ready vertex always has an entry with
    its current delta, so the fired sequence matches the reference
    exactly, at ``O((V + E) log V)`` instead of per-step ready-list
    walks.
    """
    out_degree = c.out_degree.tolist()
    remaining_succ = c.out_degree.tolist()
    remaining_pred = c.in_degree.tolist()
    pred_lists = c.pred_lists
    succ_lists = c.succ_lists
    fired = bytearray(c.n)
    # delta[v] = net live-set change of firing v *now*; kept current for
    # every unfired vertex.
    delta = [0] * c.n
    for v in range(c.n):
        d = 1 if out_degree[v] > 0 else 0
        for p in pred_lists[v]:
            if out_degree[p] == 1:  # v is p's only successor
                d -= 1
        delta[v] = d
    heap = [(delta[i], i) for i in range(c.n) if remaining_pred[i] == 0]
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    schedule: List[int] = []
    append = schedule.append
    while heap:
        d, v = pop(heap)
        if fired[v] or d != delta[v]:
            continue  # stale entry; the current one is still queued
        append(v)
        fired[v] = 1
        for p in pred_lists[v]:
            remaining_succ[p] -= 1
            if remaining_succ[p] == 1:
                # p now has exactly one unfired successor: that successor
                # would retire p by firing, so its delta drops by one.
                for w in succ_lists[p]:
                    if not fired[w]:
                        delta[w] -= 1
                        if remaining_pred[w] == 0:
                            push(heap, (delta[w], w))
                        break
        for w in succ_lists[v]:
            remaining_pred[w] -= 1
            if remaining_pred[w] == 0:
                push(heap, (delta[w], w))
    if len(schedule) != c.n:
        raise CDAGError("graph contains a directed cycle")
    return schedule


def min_liveset_schedule(
    cdag: CDAG, backend: str = "compiled"
) -> List[Vertex]:
    """Greedy minimum-live-set schedule.

    At each step, among ready vertices, fire the one whose firing leads to
    the smallest live-value count: firing ``v`` adds 1 to the live set if
    ``v`` has unfired successors and retires every predecessor whose last
    unfired successor was ``v``.  Ties are broken by insertion order.

    This is a heuristic (the problem of minimizing the peak live set is
    NP-hard in general — it is equivalent to one-shot pebbling), but it
    gives good upper bounds on ``w_max`` for the structured CDAGs used in
    the evaluation and drives the spill-based upper-bound games.

    ``backend="compiled"`` (default) runs
    :func:`min_liveset_schedule_ids`; ``backend="dict"`` runs the seed's
    reference implementation.  Both produce the identical schedule.
    """
    if backend == "dict":
        return _min_liveset_schedule_dict(cdag)
    if backend != "compiled":
        raise ValueError(f"unknown backend {backend!r}")
    c = cdag.compiled()
    return c.vertices_of(min_liveset_schedule_ids(c))


def _min_liveset_schedule_dict(cdag: CDAG) -> List[Vertex]:
    """Reference dict-backend min-live-set schedule (seed implementation)."""
    remaining_succ: Dict[Vertex, int] = {
        v: cdag.out_degree(v) for v in cdag.vertices
    }
    remaining_pred: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    order_index = {v: i for i, v in enumerate(cdag.vertices)}
    ready: List[Vertex] = [v for v in cdag.vertices if remaining_pred[v] == 0]
    fired: Set[Vertex] = set()
    schedule: List[Vertex] = []

    def delta(v: Vertex) -> int:
        """Net change in live-set size caused by firing v."""
        d = 1 if remaining_succ[v] > 0 else 0
        for p in cdag.predecessors(v):
            if remaining_succ[p] == 1:  # v is p's last unfired successor
                d -= 1
        return d

    while ready:
        ready.sort(key=lambda v: (delta(v), order_index[v]))
        v = ready.pop(0)
        fired.add(v)
        schedule.append(v)
        for p in cdag.predecessors(v):
            remaining_succ[p] -= 1
        for w in cdag.successors(v):
            remaining_pred[w] -= 1
            if remaining_pred[w] == 0:
                ready.append(w)
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule


# ======================================================================
# Priority schedule
# ======================================================================
def priority_schedule(
    cdag: CDAG, key: Callable[[Vertex], Tuple]
) -> List[Vertex]:
    """List scheduling with an arbitrary priority ``key`` (lower = earlier).

    Ready vertices are kept in a heap ordered by ``key``; this is how the
    blocked/tiled schedules of the algorithm modules (e.g. tile-by-tile
    Jacobi) are expressed: the key encodes the tile index so that a whole
    tile is finished before the next one starts.  (The key runs on vertex
    *names* by design — tiling keys are name-structured — so this stays on
    the dict backend.)
    """
    counter = 0
    remaining_pred: Dict[Vertex, int] = {
        v: cdag.in_degree(v) for v in cdag.vertices
    }
    heap: List[Tuple[Tuple, int, Vertex]] = []
    for v in cdag.vertices:
        if remaining_pred[v] == 0:
            heapq.heappush(heap, (key(v), counter, v))
            counter += 1
    schedule: List[Vertex] = []
    while heap:
        _, _, v = heapq.heappop(heap)
        schedule.append(v)
        for w in cdag.successors(v):
            remaining_pred[w] -= 1
            if remaining_pred[w] == 0:
                heapq.heappush(heap, (key(w), counter, w))
                counter += 1
    if len(schedule) != cdag.num_vertices():
        raise CDAGError("graph contains a directed cycle")
    return schedule

"""Compiled integer-indexed CDAG backend.

The dict-of-tuples representation of :class:`~repro.core.cdag.CDAG` is
convenient for construction and for readable error messages, but every
traversal pays Python tuple-hashing per neighbour.  On the problem sizes
of the paper's evaluation (Jacobi/CG/GMRES grids where ``|V|`` reaches
10^5-10^6), that hashing dominates the pebble games, the 2S-partition
construction and the wavefront min-cuts.

:class:`CompiledCDAG` is a frozen snapshot of a CDAG in integer-id space:

* vertices are numbered ``0..n-1`` in insertion order (so ids double as
  the deterministic tie-break used everywhere else);
* successor and predecessor adjacency are stored as CSR arrays
  (``indptr``/``indices``, numpy int32), with plain-``int`` list-of-list
  mirrors for hot Python loops (hashing a small ``int`` is several times
  cheaper than hashing a name tuple);
* input/output tags are boolean masks plus id arrays;
* the topological order is computed once and cached;
* an ``id <-> vertex`` table converts at the API boundary only.

Instances are obtained via the cached :meth:`repro.core.cdag.CDAG.compiled`
accessor; any mutation of the source CDAG (new vertex/edge, re-tagging)
invalidates the cache, so holding on to a compiled view across mutations
is safe — you simply get a fresh snapshot next time.

The snapshot is *immutable by convention*: none of its methods mutate it,
and consumers (pebble engines, partitioners, the wavefront solver) treat
the arrays as read-only.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

try:  # scipy is optional: every consumer has a pure-python fallback
    from scipy import sparse as _sparse
    from scipy.sparse import csgraph as _csgraph
except ImportError:  # pragma: no cover - exercised only without scipy
    _sparse = None
    _csgraph = None

Vertex = Hashable

__all__ = ["CompiledCDAG", "HAVE_SCIPY"]

HAVE_SCIPY = _sparse is not None


class CompiledCDAG:
    """An immutable, integer-indexed snapshot of a CDAG.

    Parameters
    ----------
    cdag:
        The source :class:`~repro.core.cdag.CDAG`.  Construction is
        ``O(|V| + |E|)`` and is the *only* place tuple hashing happens;
        afterwards all traversal is id arithmetic.
    """

    __slots__ = (
        "name",
        "n",
        "m",
        "_verts",
        "_index",
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "in_degree",
        "out_degree",
        "is_input_mask",
        "is_output_mask",
        "input_ids",
        "output_ids",
        "_succ_lists",
        "_pred_lists",
        "_topo_ids",
        "_succ_matrix",
        "_pred_matrix",
        "_wavefront_solver",
    )

    def __init__(self, cdag) -> None:
        succ: Dict[Vertex, List[Vertex]] = cdag._succ
        pred: Dict[Vertex, List[Vertex]] = cdag._pred
        verts: List[Vertex] = list(succ)
        n = len(verts)
        index: Dict[Vertex, int] = {v: i for i, v in enumerate(verts)}

        out_degree = np.fromiter(
            (len(succ[v]) for v in verts), dtype=np.int64, count=n
        )
        in_degree = np.fromiter(
            (len(pred[v]) for v in verts), dtype=np.int64, count=n
        )
        m = int(out_degree.sum())

        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_degree, out=succ_indptr[1:])
        succ_indices = np.fromiter(
            (index[w] for v in verts for w in succ[v]),
            dtype=np.int32,
            count=m,
        )
        pred_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_degree, out=pred_indptr[1:])
        pred_indices = np.fromiter(
            (index[u] for v in verts for u in pred[v]),
            dtype=np.int32,
            count=m,
        )

        is_input = np.zeros(n, dtype=bool)
        for v in cdag._inputs:
            is_input[index[v]] = True
        is_output = np.zeros(n, dtype=bool)
        for v in cdag._outputs:
            is_output[index[v]] = True

        self.name = cdag.name
        self.n = n
        self.m = m
        self._verts = verts
        self._index = index
        self.succ_indptr = succ_indptr
        self.succ_indices = succ_indices
        self.pred_indptr = pred_indptr
        self.pred_indices = pred_indices
        self.in_degree = in_degree
        self.out_degree = out_degree
        self.is_input_mask = is_input
        self.is_output_mask = is_output
        self.input_ids = np.flatnonzero(is_input).astype(np.int32)
        self.output_ids = np.flatnonzero(is_output).astype(np.int32)
        self._succ_lists: Optional[List[List[int]]] = None
        self._pred_lists: Optional[List[List[int]]] = None
        self._topo_ids: Optional[np.ndarray] = None
        self._succ_matrix = None
        self._pred_matrix = None
        self._wavefront_solver = None

    @classmethod
    def from_arrays(
        cls,
        name: str,
        verts: List[Vertex],
        succ_indptr: np.ndarray,
        succ_indices: np.ndarray,
        pred_indptr: np.ndarray,
        pred_indices: np.ndarray,
        in_degree: np.ndarray,
        out_degree: np.ndarray,
        is_input_mask: np.ndarray,
        is_output_mask: np.ndarray,
    ) -> "CompiledCDAG":
        """Rehydrate a snapshot from its stored arrays (the artifact
        store's read path; see :mod:`repro.store.codec`).

        The arrays are adopted as-is — callers hand over ownership and
        must treat them as read-only afterwards, exactly like a snapshot
        built from a CDAG.  Derived caches (topological order, adjacency
        matrices, the wavefront solver) rebuild lazily on first use.
        """
        self = object.__new__(cls)
        n = len(verts)
        self.name = name
        self.n = n
        self.m = int(succ_indices.shape[0])
        self._verts = list(verts)
        self._index = {v: i for i, v in enumerate(self._verts)}
        self.succ_indptr = np.asarray(succ_indptr, dtype=np.int64)
        self.succ_indices = np.asarray(succ_indices, dtype=np.int32)
        self.pred_indptr = np.asarray(pred_indptr, dtype=np.int64)
        self.pred_indices = np.asarray(pred_indices, dtype=np.int32)
        self.in_degree = np.asarray(in_degree, dtype=np.int64)
        self.out_degree = np.asarray(out_degree, dtype=np.int64)
        self.is_input_mask = np.asarray(is_input_mask, dtype=bool)
        self.is_output_mask = np.asarray(is_output_mask, dtype=bool)
        self.input_ids = np.flatnonzero(self.is_input_mask).astype(np.int32)
        self.output_ids = np.flatnonzero(self.is_output_mask).astype(np.int32)
        self._succ_lists = None
        self._pred_lists = None
        self._topo_ids = None
        self._succ_matrix = None
        self._pred_matrix = None
        self._wavefront_solver = None
        if len(self._index) != n:
            raise ValueError("duplicate vertex names in stored snapshot")
        if (
            self.succ_indptr.shape != (n + 1,)
            or self.pred_indptr.shape != (n + 1,)
            or self.pred_indices.shape[0] != self.m
            or self.in_degree.shape != (n,)
            or self.out_degree.shape != (n,)
            or self.is_input_mask.shape != (n,)
            or self.is_output_mask.shape != (n,)
        ):
            raise ValueError("inconsistent array shapes in stored snapshot")
        return self

    # ------------------------------------------------------------------
    # id <-> vertex conversion (the API boundary)
    # ------------------------------------------------------------------
    def id(self, v: Vertex) -> int:
        """Integer id of ``v`` (raises ``KeyError`` for unknown vertices)."""
        return self._index[v]

    def vertex(self, i: int) -> Vertex:
        """The vertex named by id ``i``."""
        return self._verts[i]

    def ids_of(self, vertices: Iterable[Vertex]) -> List[int]:
        index = self._index
        return [index[v] for v in vertices]

    def vertices_of(self, ids: Iterable[int]) -> List[Vertex]:
        verts = self._verts
        return [verts[i] for i in ids]

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._index

    @property
    def vertices(self) -> List[Vertex]:
        return list(self._verts)

    def num_vertices(self) -> int:
        return self.n

    def num_edges(self) -> int:
        return self.m

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def successors_ids(self, i: int) -> np.ndarray:
        return self.succ_indices[self.succ_indptr[i] : self.succ_indptr[i + 1]]

    def predecessors_ids(self, i: int) -> np.ndarray:
        return self.pred_indices[self.pred_indptr[i] : self.pred_indptr[i + 1]]

    @property
    def succ_lists(self) -> List[List[int]]:
        """Successor ids as plain-``int`` lists (built once, for hot loops)."""
        if self._succ_lists is None:
            flat = self.succ_indices.tolist()
            ptr = self.succ_indptr.tolist()
            self._succ_lists = [
                flat[ptr[i] : ptr[i + 1]] for i in range(self.n)
            ]
        return self._succ_lists

    @property
    def pred_lists(self) -> List[List[int]]:
        """Predecessor ids as plain-``int`` lists (built once, for hot loops)."""
        if self._pred_lists is None:
            flat = self.pred_indices.tolist()
            ptr = self.pred_indptr.tolist()
            self._pred_lists = [
                flat[ptr[i] : ptr[i + 1]] for i in range(self.n)
            ]
        return self._pred_lists

    def sources_ids(self) -> np.ndarray:
        return np.flatnonzero(self.in_degree == 0)

    def sinks_ids(self) -> np.ndarray:
        return np.flatnonzero(self.out_degree == 0)

    # ------------------------------------------------------------------
    # Topological order (cached)
    # ------------------------------------------------------------------
    def topological_order_ids(self) -> np.ndarray:
        """One topological order of vertex ids (Kahn, id tie-break).

        Matches the dict backend's order exactly: ids are insertion order
        and the ready queue is FIFO-seeded in ascending id.
        """
        if self._topo_ids is not None:
            return self._topo_ids
        indeg = self.in_degree.tolist()
        succ_lists = self.succ_lists
        ready = deque(i for i in range(self.n) if indeg[i] == 0)
        order: List[int] = []
        append = order.append
        while ready:
            i = ready.popleft()
            append(i)
            for w in succ_lists[i]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != self.n:
            from .cdag import CycleError  # deferred: avoid import cycle

            raise CycleError("graph contains a directed cycle")
        self._topo_ids = np.asarray(order, dtype=np.int32)
        return self._topo_ids

    def topological_order(self) -> List[Vertex]:
        verts = self._verts
        return [verts[i] for i in self.topological_order_ids().tolist()]

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def _adjacency_matrix(self, direction: str):
        """scipy CSR adjacency (cached); ``None`` when scipy is absent."""
        if _sparse is None:
            return None
        if direction == "succ":
            if self._succ_matrix is None:
                self._succ_matrix = _sparse.csr_matrix(
                    (
                        np.ones(self.m, dtype=np.int8),
                        self.succ_indices,
                        self.succ_indptr,
                    ),
                    shape=(self.n, self.n),
                )
            return self._succ_matrix
        if self._pred_matrix is None:
            self._pred_matrix = _sparse.csr_matrix(
                (
                    np.ones(self.m, dtype=np.int8),
                    self.pred_indices,
                    self.pred_indptr,
                ),
                shape=(self.n, self.n),
            )
        return self._pred_matrix

    def _reach(self, start: int, direction: str) -> np.ndarray:
        """Ids reachable from ``start`` (exclusive) along ``direction``."""
        mat = self._adjacency_matrix(direction)
        if mat is not None:
            nodes = _csgraph.breadth_first_order(
                mat, start, directed=True, return_predecessors=False
            )
            return nodes[nodes != start].astype(np.int32)
        # Pure-python fallback BFS.
        lists = self.succ_lists if direction == "succ" else self.pred_lists
        seen = bytearray(self.n)
        stack = list(lists[start])
        out: List[int] = []
        while stack:
            u = stack.pop()
            if not seen[u]:
                seen[u] = 1
                out.append(u)
                stack.extend(lists[u])
        return np.asarray(out, dtype=np.int32)

    def ancestors_ids(self, i: int) -> np.ndarray:
        """Ids of all strict ancestors of vertex id ``i``."""
        return self._reach(i, "pred")

    def descendants_ids(self, i: int) -> np.ndarray:
        """Ids of all strict descendants of vertex id ``i``."""
        return self._reach(i, "succ")

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Number of vertices on the longest path."""
        if self.n == 0:
            return 0
        longest = [1] * self.n
        succ_lists = self.succ_lists
        for i in self.topological_order_ids().tolist():
            li = longest[i] + 1
            for w in succ_lists[i]:
                if li > longest[w]:
                    longest[w] = li
        return max(longest)

    def layers(self) -> np.ndarray:
        """Longest-path layer (distance from the sources) of every vertex."""
        layer = [0] * self.n
        succ_lists = self.succ_lists
        for i in self.topological_order_ids().tolist():
            li = layer[i] + 1
            for w in succ_lists[i]:
                if li > layer[w]:
                    layer[w] = li
        return np.asarray(layer, dtype=np.int64)

    def stats(self):
        """Summary statistics matching :meth:`CDAG.stats` field-for-field."""
        from .cdag import _Stats  # deferred: avoid import cycle

        return _Stats(
            num_vertices=self.n,
            num_edges=self.m,
            num_inputs=int(self.is_input_mask.sum()),
            num_outputs=int(self.is_output_mask.sum()),
            num_operations=self.n - int(self.is_input_mask.sum()),
            max_in_degree=int(self.in_degree.max()) if self.n else 0,
            max_out_degree=int(self.out_degree.max()) if self.n else 0,
            num_sources=int((self.in_degree == 0).sum()),
            num_sinks=int((self.out_degree == 0).sum()),
            depth=self.depth(),
        )

    def wavefront_solver(self):
        """The cached :class:`~repro.core.properties.WavefrontSolver`."""
        if self._wavefront_solver is None:
            from .properties import WavefrontSolver  # deferred import

            self._wavefront_solver = WavefrontSolver(self)
        return self._wavefront_solver

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledCDAG(name={self.name!r}, |V|={self.n}, |E|={self.m})"
        )

"""Core CDAG data structures and graph analyses.

The :mod:`repro.core` package contains the computational-DAG model of the
paper (Section 2.1), the structural properties used by the lower-bound
machinery (dominators, In/Out sets, convex cuts, wavefronts), the
S-partition objects of the Hong-Kung and RBW games, schedule generation,
structured CDAG builders and the tracing executor that derives CDAGs from
real numerical code.
"""

from .cdag import CDAG, CDAGBuilder, CDAGError, CycleError, Vertex
from .compiled import CompiledCDAG
from .builders import (
    broadcast_tree_cdag,
    butterfly_cdag,
    chain_cdag,
    dense_layer_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    independent_chains_cdag,
    outer_product_cdag,
    pyramid_cdag,
    reduction_tree_cdag,
)
from .ordering import (
    dfs_schedule,
    dfs_schedule_ids,
    min_liveset_schedule,
    min_liveset_schedule_ids,
    priority_schedule,
    topological_schedule,
    validate_schedule,
)
from .partition import (
    SPartition,
    check_hong_kung_partition,
    check_rbw_partition,
    greedy_rbw_partition,
    largest_admissible_subset,
    partition_from_game,
    partition_from_schedule,
)
from .properties import (
    WavefrontSolver,
    convex_cut_for_vertex,
    has_circuit_between,
    in_set,
    is_convex_cut,
    is_dominator,
    max_min_wavefront,
    max_schedule_wavefront,
    min_wavefront,
    min_wavefront_rebuild,
    minimal_dominator_size,
    minimum_set,
    out_set,
    schedule_wavefronts,
    wavefront_of_cut,
)
from .trace import TraceContext, TracedArray, TracedValue

__all__ = [
    "CDAG",
    "CDAGBuilder",
    "CDAGError",
    "CompiledCDAG",
    "CycleError",
    "Vertex",
    # builders
    "broadcast_tree_cdag",
    "butterfly_cdag",
    "chain_cdag",
    "dense_layer_cdag",
    "diamond_cdag",
    "grid_stencil_cdag",
    "independent_chains_cdag",
    "outer_product_cdag",
    "pyramid_cdag",
    "reduction_tree_cdag",
    # ordering
    "dfs_schedule",
    "dfs_schedule_ids",
    "min_liveset_schedule",
    "min_liveset_schedule_ids",
    "priority_schedule",
    "topological_schedule",
    "validate_schedule",
    # partitions
    "SPartition",
    "check_hong_kung_partition",
    "check_rbw_partition",
    "greedy_rbw_partition",
    "largest_admissible_subset",
    "partition_from_game",
    "partition_from_schedule",
    # properties
    "WavefrontSolver",
    "min_wavefront_rebuild",
    "convex_cut_for_vertex",
    "has_circuit_between",
    "in_set",
    "is_convex_cut",
    "is_dominator",
    "max_min_wavefront",
    "max_schedule_wavefront",
    "min_wavefront",
    "minimal_dominator_size",
    "minimum_set",
    "out_set",
    "schedule_wavefronts",
    "wavefront_of_cut",
    # tracing
    "TraceContext",
    "TracedArray",
    "TracedValue",
]

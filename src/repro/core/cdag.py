"""Computational DAG (CDAG) data structure.

The CDAG is the computational model of the paper (Definition 1, "CDAG-HK"
following Bilardi & Peserico's notation): a 4-tuple ``C = (I, V, E, O)``
where

* ``V`` is the set of vertices, each representing one computational
  operation (or one input value),
* ``E ⊆ V × V`` is the set of data-flow edges,
* ``I ⊆ V`` is the *input set* (vertices whose values initially reside in
  slow memory -- they carry a blue pebble at the start of a pebble game),
* ``O ⊆ V`` is the *output set* (vertices whose values must reside in slow
  memory at the end -- they must carry a blue pebble when a game ends).

Two properties make the CDAG a convenient abstraction for data-movement
analysis (Section 2.1 of the paper):

1. no particular execution order is specified -- only the partial order
   induced by the edges;
2. no memory locations are associated with operands or results.

The :class:`CDAG` class in this module is a light-weight, hashable-vertex
DAG with explicit input/output *tagging*.  Tagging is deliberately kept
separate from graph structure because the Red-Blue-White game (Section 3)
allows relabelling vertices as inputs/outputs without changing the graph
(Theorem 3, "Input/Output (Un)Tagging").

The class intentionally stores the graph as plain adjacency dictionaries
(successors / predecessors) rather than wrapping :mod:`networkx`
everywhere: pebble-game simulation is hot-path code and benefits from the
flat representation, while conversion to :class:`networkx.DiGraph` is
provided for the analyses (dominators, min-cuts) that want library
algorithms.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

Vertex = Hashable

__all__ = [
    "Vertex",
    "CDAGError",
    "CycleError",
    "CDAG",
    "CDAGBuilder",
]


class CDAGError(ValueError):
    """Raised when a CDAG violates a structural invariant."""


class CycleError(CDAGError):
    """Raised when the proposed edge set contains a directed cycle."""


@dataclass(frozen=True)
class _Stats:
    """Summary statistics of a CDAG, returned by :meth:`CDAG.stats`."""

    num_vertices: int
    num_edges: int
    num_inputs: int
    num_outputs: int
    num_operations: int
    max_in_degree: int
    max_out_degree: int
    num_sources: int
    num_sinks: int
    depth: int


class CDAG:
    """A computational directed acyclic graph ``C = (I, V, E, O)``.

    Parameters
    ----------
    vertices:
        Iterable of hashable vertex identifiers.  Order of first
        appearance is preserved and used as a deterministic tie-break in
        iteration (important for reproducible games and partitions).
    edges:
        Iterable of ``(u, v)`` pairs, meaning *the value produced at u is
        consumed by v*.
    inputs:
        Vertices tagged as inputs (``I``).  Under the Hong-Kung convention
        every source vertex is an input; under the RBW convention tagging
        is free (Section 3, "Flexible input/output vertex labeling").
    outputs:
        Vertices tagged as outputs (``O``).

    Notes
    -----
    * The graph must be acyclic; a :class:`CycleError` is raised otherwise.
    * Inputs are allowed to have incoming edges only if
      ``allow_nonsource_inputs`` is set (this never happens for CDAGs
      built by this library but is permitted by the general definition
      when retagging).
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_succ_sets",
        "_inputs",
        "_outputs",
        "_order",
        "_topo_cache",
        "_compiled",
        "name",
    )

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Tuple[Vertex, Vertex]] = (),
        inputs: Iterable[Vertex] = (),
        outputs: Iterable[Vertex] = (),
        name: str = "cdag",
        validate: bool = True,
    ) -> None:
        self._succ: Dict[Vertex, List[Vertex]] = {}
        self._pred: Dict[Vertex, List[Vertex]] = {}
        # Parallel membership sets per adjacency list so that the duplicate
        # check in add_edge is O(1) instead of a linear scan.  ``None``
        # means "not built yet" (bulk-constructed CDAGs defer it until the
        # first incremental add_edge).
        self._succ_sets: Optional[Dict[Vertex, Set[Vertex]]] = {}
        self._order: Dict[Vertex, int] = {}
        self._topo_cache: Optional[List[Vertex]] = None
        self._compiled = None
        self.name = name

        for v in vertices:
            self._add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

        self._inputs: Set[Vertex] = set()
        self._outputs: Set[Vertex] = set()
        for v in inputs:
            self.tag_input(v)
        for v in outputs:
            self.tag_output(v)

        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_vertex(self, v: Vertex) -> None:
        if v not in self._succ:
            self._succ[v] = []
            self._pred[v] = []
            if self._succ_sets is not None:
                self._succ_sets[v] = set()
            self._order[v] = len(self._order)
            self._topo_cache = None
            self._compiled = None

    def add_vertex(self, v: Vertex) -> Vertex:
        """Add a vertex (no-op if it already exists) and return it."""
        self._add_vertex(v)
        return v

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the data-flow edge ``u -> v``, creating missing endpoints.

        O(1) amortized: duplicate detection uses a membership set kept in
        parallel with the ordered adjacency list.
        """
        if u == v:
            raise CycleError(f"self loop on vertex {u!r}")
        self._add_vertex(u)
        self._add_vertex(v)
        if self._succ_sets is None:
            # Bulk-constructed CDAG switching to incremental mutation:
            # materialize the membership sets once.
            self._succ_sets = {w: set(vs) for w, vs in self._succ.items()}
        uset = self._succ_sets[u]
        if v not in uset:
            uset.add(v)
            self._succ[u].append(v)
            self._pred[v].append(u)
            self._topo_cache = None
            self._compiled = None

    def tag_input(self, v: Vertex) -> None:
        """Tag ``v`` as a member of the input set ``I``."""
        if v not in self._succ:
            raise CDAGError(f"cannot tag unknown vertex {v!r} as input")
        self._inputs.add(v)
        self._compiled = None

    def tag_output(self, v: Vertex) -> None:
        """Tag ``v`` as a member of the output set ``O``."""
        if v not in self._succ:
            raise CDAGError(f"cannot tag unknown vertex {v!r} as output")
        self._outputs.add(v)
        self._compiled = None

    def untag_input(self, v: Vertex) -> None:
        """Remove ``v`` from the input set (Theorem 3 style relabelling)."""
        self._inputs.discard(v)
        self._compiled = None

    def untag_output(self, v: Vertex) -> None:
        """Remove ``v`` from the output set."""
        self._outputs.discard(v)
        self._compiled = None

    @classmethod
    def from_edge_list(
        cls,
        vertices: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
        inputs: Iterable[Vertex] = (),
        outputs: Iterable[Vertex] = (),
        name: str = "cdag",
        validate: bool = False,
        dedup: bool = False,
    ) -> "CDAG":
        """Bulk-construct a CDAG from pre-assembled vertex/edge lists.

        This is the fast path for the structured builders and algorithm
        CDAG constructors, which generate duplicate-free edge lists: it
        fills the adjacency dictionaries directly, skipping the per-edge
        duplicate check and the per-call indirection of :meth:`add_edge`.
        Membership sets for incremental mutation are built lazily on the
        first post-construction ``add_edge``.

        Parameters
        ----------
        dedup:
            Set True when ``edges`` may contain duplicates; they are then
            filtered (at the cost of one set per source vertex).
        validate:
            Run :meth:`validate` after construction (acyclicity + tags).
            Off by default — the builders guarantee acyclicity by
            construction.
        """
        self = cls.__new__(cls)
        succ: Dict[Vertex, List[Vertex]] = {}
        pred: Dict[Vertex, List[Vertex]] = {}
        for v in vertices:
            if v not in succ:
                succ[v] = []
                pred[v] = []
        if dedup:
            seen: Set[Tuple[Vertex, Vertex]] = set()
            for u, v in edges:
                if u == v:
                    raise CycleError(f"self loop on vertex {u!r}")
                if (u, v) in seen:
                    continue
                seen.add((u, v))
                if u not in succ:
                    succ[u] = []
                    pred[u] = []
                if v not in succ:
                    succ[v] = []
                    pred[v] = []
                succ[u].append(v)
                pred[v].append(u)
        else:
            for u, v in edges:
                if u == v:
                    raise CycleError(f"self loop on vertex {u!r}")
                if u not in succ:
                    succ[u] = []
                    pred[u] = []
                if v not in succ:
                    succ[v] = []
                    pred[v] = []
                succ[u].append(v)
                pred[v].append(u)
        self._succ = succ
        self._pred = pred
        self._succ_sets = None
        self._order = {v: i for i, v in enumerate(succ)}
        self._topo_cache = None
        self._compiled = None
        self.name = name
        self._inputs = set()
        self._outputs = set()
        for v in inputs:
            if v not in succ:
                raise CDAGError(f"cannot tag unknown vertex {v!r} as input")
            self._inputs.add(v)
        for v in outputs:
            if v not in succ:
                raise CDAGError(f"cannot tag unknown vertex {v!r} as output")
            self._outputs.add(v)
        if validate:
            self.validate()
        return self

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> List[Vertex]:
        """All vertices, in insertion order."""
        return list(self._succ)

    @property
    def inputs(self) -> FrozenSet[Vertex]:
        """The input set ``I``."""
        return frozenset(self._inputs)

    @property
    def outputs(self) -> FrozenSet[Vertex]:
        """The output set ``O``."""
        return frozenset(self._outputs)

    @property
    def operations(self) -> List[Vertex]:
        """The operation set ``V - I`` (vertices that must be computed)."""
        return [v for v in self._succ if v not in self._inputs]

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over all edges as ``(u, v)`` pairs."""
        for u, vs in self._succ.items():
            for v in vs:
                yield (u, v)

    def successors(self, v: Vertex) -> List[Vertex]:
        """Immediate successors (consumers) of ``v``."""
        return list(self._succ[v])

    def predecessors(self, v: Vertex) -> List[Vertex]:
        """Immediate predecessors (operands) of ``v``."""
        return list(self._pred[v])

    def in_degree(self, v: Vertex) -> int:
        return len(self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        return len(self._succ[v])

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._succ

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if self._succ_sets is not None:
            return v in self._succ_sets.get(u, ())
        return v in self._succ.get(u, ())

    def is_input(self, v: Vertex) -> bool:
        return v in self._inputs

    def is_output(self, v: Vertex) -> bool:
        return v in self._outputs

    def num_vertices(self) -> int:
        return len(self._succ)

    def num_edges(self) -> int:
        return sum(len(vs) for vs in self._succ.values())

    def sources(self) -> List[Vertex]:
        """Vertices with no incoming edges."""
        return [v for v in self._succ if not self._pred[v]]

    def sinks(self) -> List[Vertex]:
        """Vertices with no outgoing edges."""
        return [v for v in self._succ if not self._succ[v]]

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CDAG(name={self.name!r}, |V|={self.num_vertices()}, "
            f"|E|={self.num_edges()}, |I|={len(self._inputs)}, "
            f"|O|={len(self._outputs)})"
        )

    # ------------------------------------------------------------------
    # Orders and traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Vertex]:
        """Return one topological order (Kahn's algorithm, deterministic).

        The order is cached; mutating the CDAG invalidates the cache.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg = {v: len(self._pred[v]) for v in self._succ}
        ready = deque(sorted((v for v, d in indeg.items() if d == 0),
                             key=self._order.__getitem__))
        order: List[Vertex] = []
        while ready:
            v = ready.popleft()
            order.append(v)
            for w in self._succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != len(self._succ):
            raise CycleError("graph contains a directed cycle")
        self._topo_cache = order
        return list(order)

    def is_acyclic(self) -> bool:
        """True if the edge set is acyclic."""
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def ancestors(self, v: Vertex) -> Set[Vertex]:
        """All strict ancestors of ``v`` (vertices with a path to ``v``)."""
        seen: Set[Vertex] = set()
        stack = list(self._pred[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._pred[u])
        return seen

    def descendants(self, v: Vertex) -> Set[Vertex]:
        """All strict descendants of ``v``."""
        seen: Set[Vertex] = set()
        stack = list(self._succ[v])
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def reachable_from(self, sources: Iterable[Vertex]) -> Set[Vertex]:
        """All vertices reachable from ``sources`` (inclusive)."""
        seen: Set[Vertex] = set()
        stack = list(sources)
        while stack:
            u = stack.pop()
            if u not in seen:
                seen.add(u)
                stack.extend(self._succ[u])
        return seen

    def depth(self) -> int:
        """Length (number of vertices) of the longest path in the CDAG."""
        longest = {v: 1 for v in self._succ}
        for v in self.topological_order():
            for w in self._succ[v]:
                if longest[v] + 1 > longest[w]:
                    longest[w] = longest[v] + 1
        return max(longest.values()) if longest else 0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, hong_kung: bool = False) -> None:
        """Check structural invariants; raise :class:`CDAGError` on failure.

        Parameters
        ----------
        hong_kung:
            When True, additionally enforce the Hong-Kung convention of
            Definition 2: every source vertex must be an input and every
            sink vertex must be an output.
        """
        self.topological_order()  # raises CycleError on cycles
        for v in self._inputs:
            if v not in self._succ:
                raise CDAGError(f"input {v!r} is not a vertex")
        for v in self._outputs:
            if v not in self._succ:
                raise CDAGError(f"output {v!r} is not a vertex")
        if hong_kung:
            for v in self.sources():
                if v not in self._inputs:
                    raise CDAGError(
                        f"Hong-Kung convention violated: source {v!r} is "
                        "not tagged as input"
                    )
            for v in self.sinks():
                if v not in self._outputs:
                    raise CDAGError(
                        f"Hong-Kung convention violated: sink {v!r} is "
                        "not tagged as output"
                    )

    def stats(self) -> _Stats:
        """Return summary statistics for reports and sanity checks."""
        return _Stats(
            num_vertices=self.num_vertices(),
            num_edges=self.num_edges(),
            num_inputs=len(self._inputs),
            num_outputs=len(self._outputs),
            num_operations=self.num_vertices() - len(self._inputs),
            max_in_degree=max((len(p) for p in self._pred.values()), default=0),
            max_out_degree=max((len(s) for s in self._succ.values()), default=0),
            num_sources=len(self.sources()),
            num_sinks=len(self.sinks()),
            depth=self.depth(),
        )

    # ------------------------------------------------------------------
    # Derived CDAGs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "CDAG":
        """Deep copy of the CDAG (graph structure and tags)."""
        return CDAG(
            vertices=self.vertices,
            edges=self.edges(),
            inputs=self._inputs,
            outputs=self._outputs,
            name=name or self.name,
            validate=False,
        )

    def induced_subgraph(
        self,
        vertices: Iterable[Vertex],
        name: Optional[str] = None,
        keep_tags: bool = True,
    ) -> "CDAG":
        """The sub-CDAG induced by ``vertices``.

        Edges with an endpoint outside the vertex set are dropped.  Input
        and output tags are restricted to the retained vertices
        (``I_i = I ∩ V_i``, ``O_i = O ∩ V_i`` as in Theorem 2).
        """
        vset = set(vertices)
        unknown = vset.difference(self._succ)
        if unknown:
            raise CDAGError(
                "unknown vertices in subgraph request: "
                f"{sorted(map(repr, unknown))[:5]}"
            )
        sub_edges = [(u, v) for u, v in self.edges() if u in vset and v in vset]
        ordered = [v for v in self._succ if v in vset]
        return CDAG(
            vertices=ordered,
            edges=sub_edges,
            inputs=(self._inputs & vset) if keep_tags else (),
            outputs=(self._outputs & vset) if keep_tags else (),
            name=name or f"{self.name}[{len(vset)}]",
            validate=False,
        )

    def retagged(
        self,
        add_inputs: Iterable[Vertex] = (),
        add_outputs: Iterable[Vertex] = (),
        remove_inputs: Iterable[Vertex] = (),
        remove_outputs: Iterable[Vertex] = (),
        name: Optional[str] = None,
    ) -> "CDAG":
        """Return a copy with modified input/output tags (Theorem 3).

        The graph ``G = (V, E)`` is unchanged; only the labelling of
        vertices as inputs/outputs changes.  This is the operation used
        when comparing ``IO(C)`` and ``IO(C')`` in the (un)tagging
        theorem.
        """
        new_inputs = (self._inputs | set(add_inputs)) - set(remove_inputs)
        new_outputs = (self._outputs | set(add_outputs)) - set(remove_outputs)
        return CDAG(
            vertices=self.vertices,
            edges=self.edges(),
            inputs=new_inputs,
            outputs=new_outputs,
            name=name or f"{self.name}:retagged",
            validate=False,
        )

    def without_io_vertices(self, name: Optional[str] = None) -> "CDAG":
        """Drop input and output *vertices* entirely (Corollary 2 set-up).

        Corollary 2 (Input/Output Deletion) relates ``IO(C')`` of a CDAG
        with dedicated input/output vertices to ``IO(C) + |dI| + |dO|`` of
        the CDAG with those vertices removed.  This helper produces ``C``
        from ``C'``.
        """
        keep = [v for v in self._succ
                if v not in self._inputs and v not in self._outputs]
        return self.induced_subgraph(keep, name=name or f"{self.name}:core",
                                     keep_tags=False)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def compiled(self) -> "CompiledCDAG":
        """The integer-indexed compiled view of this CDAG (cached).

        The snapshot is rebuilt lazily after any mutation (vertex/edge
        addition, input/output re-tagging); repeated calls between
        mutations return the same object, so engines and solvers that
        derive further caches from it (topological order, adjacency
        matrices, the wavefront split graph) share them automatically.
        """
        if self._compiled is None:
            from .compiled import CompiledCDAG  # deferred: avoid cycle

            self._compiled = CompiledCDAG(self)
        return self._compiled

    def adopt_compiled(self, snapshot) -> bool:
        """Install an externally built snapshot as this CDAG's compiled
        view (the artifact store's cache-hit path).

        The snapshot is validated against the current graph — vertex
        count, edge count, insertion order of the vertex names, and the
        input/output tag sets must all match — and rejected (``False``
        returned, nothing installed) otherwise, so a stale or
        wrong-keyed artifact can never impersonate this CDAG.  Any later
        mutation clears the adopted snapshot exactly like a locally
        compiled one.
        """
        if snapshot is None:
            return False
        verts = list(self._succ)
        if (
            snapshot.n != len(verts)
            or snapshot.m != self.num_edges()
            or snapshot._verts != verts
        ):
            return False
        if set(snapshot.vertices_of(snapshot.input_ids)) != self._inputs:
            return False
        if set(snapshot.vertices_of(snapshot.output_ids)) != self._outputs:
            return False
        self._compiled = snapshot
        return True

    def to_networkx(self) -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph` (tags stored as attrs)."""
        g = nx.DiGraph(name=self.name)
        for v in self._succ:
            g.add_node(v, is_input=v in self._inputs,
                       is_output=v in self._outputs)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: Optional[str] = None) -> "CDAG":
        """Build a CDAG from a DiGraph; ``is_input``/``is_output`` node
        attributes become tags.  Untagged graphs get the Hong-Kung default
        (sources are inputs, sinks are outputs)."""
        inputs = [v for v, d in g.nodes(data=True) if d.get("is_input")]
        outputs = [v for v, d in g.nodes(data=True) if d.get("is_output")]
        cdag = cls(
            vertices=g.nodes(),
            edges=g.edges(),
            inputs=inputs,
            outputs=outputs,
            name=name or (g.name or "cdag"),
            validate=False,
        )
        if not inputs and not outputs:
            for v in cdag.sources():
                cdag.tag_input(v)
            for v in cdag.sinks():
                cdag.tag_output(v)
        cdag.validate()
        return cdag


class CDAGBuilder:
    """Incremental CDAG construction helper.

    The builder assigns fresh integer-free symbolic names on demand and is
    used by the tracing executor (:mod:`repro.core.trace`) and by the
    algorithm-specific CDAG constructors.  Each ``operation`` call wires
    the operands to a new vertex, mirroring how a single scalar operation
    appears in the CDAG model.
    """

    def __init__(self, name: str = "cdag") -> None:
        self._cdag = CDAG(name=name, validate=False)
        self._counter = 0

    def fresh(self, prefix: str = "v") -> Vertex:
        """Return a fresh unique vertex name."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def add_input(self, v: Optional[Vertex] = None, prefix: str = "in") -> Vertex:
        """Add (and tag) an input vertex."""
        v = v if v is not None else self.fresh(prefix)
        self._cdag.add_vertex(v)
        self._cdag.tag_input(v)
        return v

    def operation(
        self,
        operands: Sequence[Vertex],
        v: Optional[Vertex] = None,
        prefix: str = "op",
        output: bool = False,
    ) -> Vertex:
        """Add a compute vertex consuming ``operands``; optionally tag as output."""
        v = v if v is not None else self.fresh(prefix)
        self._cdag.add_vertex(v)
        for u in operands:
            self._cdag.add_edge(u, v)
        if output:
            self._cdag.tag_output(v)
        return v

    def mark_output(self, v: Vertex) -> None:
        self._cdag.tag_output(v)

    def build(self, validate: bool = True, hong_kung: bool = False) -> CDAG:
        """Finalize and return the CDAG."""
        if validate:
            self._cdag.validate(hong_kung=hong_kung)
        return self._cdag

"""Small shared utilities."""

from .validation import require_positive, require_in_range

__all__ = ["require_positive", "require_in_range"]

"""Argument validation helpers used across the library.

Kept deliberately tiny: most validation lives next to the code it guards,
but a couple of patterns repeat often enough (positive numeric parameters,
bounded ranges) that a shared helper keeps error messages consistent.
"""

from __future__ import annotations

from numbers import Real

__all__ = ["require_positive", "require_in_range"]


def require_positive(name: str, value, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive (or non-negative)
    real number."""
    if not isinstance(value, Real):
        raise ValueError(f"{name} must be a number, got {type(value).__name__}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def require_in_range(name: str, value, low, high) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not isinstance(value, Real):
        raise ValueError(f"{name} must be a number, got {type(value).__name__}")
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")

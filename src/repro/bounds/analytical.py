"""Closed-form I/O bounds for the algorithm families analysed in the paper.

Every formula below is quoted from (or directly derived in) the paper and
is exposed as a checked, documented function so that the evaluation
harness can regenerate the Section 5 analyses and the tests can
cross-check the formulas against the graph-based machinery on small
instances.

Sequential (two-level) bounds
-----------------------------
* matrix multiplication (classical algorithm): ``Q >= N^3 / (2 sqrt(2S))``
  (the asymptotic Hong-Kung / Irony-Toledo-Tiskin bound used in
  Section 3);
* vector outer product: ``Q = 2N + N^2`` exactly (inputs + results,
  independent of ``S``);
* composite example of Section 3 (two outer products, a matmul of the
  results, and a global sum): ``Q <= 4N + 1`` with about ``4N + 4`` fast
  memory — demonstrating that bounds of parts do not add under the
  red-blue game;
* d-dimensional Jacobi over ``T`` steps (Theorem 10):
  ``Q >= n^d T / (4 (2S)^{1/d})`` sequentially, ``/P`` in parallel;
* FFT (butterfly) of size n: ``Q = Θ(n log n / log S)`` — included for the
  related-work cross-checks.

Wavefront bounds (per outer iteration)
--------------------------------------
* CG (Theorem 8): wavefronts of size ``2 n^d`` (at the scalar ``a``) and
  ``n^d`` (at ``g``) give ``Q >= T * 2(3 n^d - 2S) -> 6 n^d T`` and
  ``6 n^d T / P`` in parallel;
* GMRES (Theorem 9): identical shape with ``m`` outer iterations:
  ``Q >= 6 n^d m / P``.

Largest-2S-partition closed forms
---------------------------------
* d-dimensional Jacobi: ``U(C, 2S) = 4 S (2S)^{1/d}`` (from the tightness
  of Theorem 10 — used in the machine-balance analysis of Section 5.4.3).

Horizontal (ghost-cell) upper bounds
------------------------------------
* CG / GMRES / Jacobi on a block-partitioned d-dimensional grid with
  block side ``B = n / N_nodes^{1/d}``: ``(B+2)^d - B^d = O(2 d B^{d-1})``
  words per iteration per node.
"""

from __future__ import annotations

import math

__all__ = [
    "matmul_io_lower_bound",
    "outer_product_io",
    "composite_example_io_upper_bound",
    "composite_example_naive_sum",
    "jacobi_io_lower_bound",
    "jacobi_largest_partition",
    "fft_io_lower_bound",
    "cg_wavefront_sizes",
    "cg_vertical_lower_bound",
    "gmres_wavefront_sizes",
    "gmres_vertical_lower_bound",
    "ghost_cell_volume",
    "block_side",
    "stencil_horizontal_upper_bound",
]


# ----------------------------------------------------------------------
# Section 3: matmul, outer product and the composite example
# ----------------------------------------------------------------------
def matmul_io_lower_bound(n: int, s: int) -> float:
    """Asymptotic I/O lower bound for classical ``N x N`` matrix multiply.

    ``Q >= N^3 / (2 sqrt(2S))`` — the form quoted in Section 3 of the
    paper (Hong & Kung 1981; Irony, Toledo & Tiskin 2004; Ballard et al.).
    """
    if n < 1 or s < 1:
        raise ValueError("n and s must be >= 1")
    return n ** 3 / (2.0 * math.sqrt(2.0 * s))


def outer_product_io(n: int) -> int:
    """Exact I/O of an ``N x N`` outer product: ``2N`` loads + ``N^2`` stores.

    Independent of the fast-memory capacity ``S`` (every input must be
    read once and every result written once; no reuse is possible).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return 2 * n + n * n


def composite_example_io_upper_bound(n: int) -> int:
    """I/O of the Section 3 composite example with ~``4N+4`` fast memory.

    The computation is::

        A = p q^T ; B = r s^T ; C = A B ; sum = sum_ij C_ij

    With ``4N + 4`` words of fast memory the four input vectors are loaded
    once (``4N`` I/O) and every element of A, B and C is (re)computed on
    the fly and accumulated into ``sum``, which is finally stored:
    ``Q = 4N + 1``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return 4 * n + 1


def composite_example_naive_sum(n: int, s: int) -> float:
    """The *invalid* "sum of per-step bounds" for the composite example.

    Adding the individual bounds — two outer products (``2N + N^2`` each),
    one matrix multiplication (``N^3 / 2 sqrt(2S)``) and the final
    reduction (``N^2 + 1``) — vastly exceeds the true I/O of the composite
    CDAG (:func:`composite_example_io_upper_bound`), which is the paper's
    motivation for the RBW game and its decomposition theorem.
    """
    return 2 * outer_product_io(n) + matmul_io_lower_bound(n, s) + n * n + 1


# ----------------------------------------------------------------------
# Theorem 10: Jacobi / stencils
# ----------------------------------------------------------------------
def jacobi_io_lower_bound(
    n: int, timesteps: int, s: int, dimensions: int = 2, processors: int = 1
) -> float:
    """Theorem 10: ``Q >= n^d T / (4 P (2S)^{1/d})``.

    For the 2-D (9-point) case this is the paper's
    ``Q >= N^2 T / (4 P sqrt(2S))``; the generalisation to ``d`` dimensions
    replaces ``sqrt`` by the ``d``-th root.
    """
    if min(n, timesteps, s, dimensions, processors) < 1:
        raise ValueError("all parameters must be >= 1")
    return (n ** dimensions) * timesteps / (
        4.0 * processors * (2.0 * s) ** (1.0 / dimensions)
    )


def jacobi_largest_partition(s: int, dimensions: int) -> float:
    """Closed form ``U(C, 2S) = 4 S (2S)^{1/d}`` for d-dimensional Jacobi.

    Quoted in Section 5.4.3; it is the partition size achieved by the
    tiled stencil schedule (which matches the Theorem 10 lower bound, so
    the bound is tight).
    """
    if s < 1 or dimensions < 1:
        raise ValueError("s and dimensions must be >= 1")
    return 4.0 * s * (2.0 * s) ** (1.0 / dimensions)


def fft_io_lower_bound(n: int, s: int) -> float:
    """Hong-Kung FFT bound ``Q = Omega(n log n / log S)``.

    We return the standard constant-free form ``n * log2(n) / (2 log2(2S))``
    which is a valid lower bound for the butterfly CDAG under the RBW
    game (Savage 1995; Ranjan et al. 2011 give sharper constants).
    """
    if n < 2 or s < 1:
        raise ValueError("n must be >= 2 and s >= 1")
    return n * math.log2(n) / (2.0 * math.log2(2.0 * s))


# ----------------------------------------------------------------------
# Theorems 8 and 9: CG and GMRES
# ----------------------------------------------------------------------
def cg_wavefront_sizes(n: int, dimensions: int = 3) -> tuple:
    """The two wavefront sizes used in Theorem 8.

    At the scalar ``a = <r,r>/<p,v>`` the ``2 n^d`` elements of ``p`` and
    ``v`` all have disjoint paths to the descendants (the two SAXPYs), so
    ``|W^min(v_a)| = 2 n^d``; at ``g = <r_new,r_new>/<r,r>`` the ``n^d``
    elements of ``r_new`` give ``|W^min(v_g)| = n^d``.
    """
    nd = n ** dimensions
    return (2 * nd, nd)


def cg_vertical_lower_bound(
    n: int,
    iterations: int,
    dimensions: int = 3,
    processors: int = 1,
    s: int = 0,
    asymptotic: bool = True,
) -> float:
    """Theorem 8: vertical I/O lower bound for CG.

    Exact form (before the ``n >> S`` limit):
    ``Q >= T * 2 (3 n^d - 2 S) / P``; asymptotically ``6 n^d T / P``.
    """
    if min(n, iterations, dimensions, processors) < 1 or s < 0:
        raise ValueError("invalid CG parameters")
    nd = n ** dimensions
    if asymptotic:
        per_iter = 6.0 * nd
    else:
        w_a, w_g = cg_wavefront_sizes(n, dimensions)
        per_iter = 2.0 * max(0, w_a - s) + 2.0 * max(0, w_g - s)
    return iterations * per_iter / processors


def gmres_wavefront_sizes(n: int, dimensions: int = 3) -> tuple:
    """Theorem 9 wavefront sizes: ``2 n^d`` (at ``h_{i,i}``) and ``n^d``
    (at ``h_{i+1,i} = ||v'_{i+1}||``)."""
    nd = n ** dimensions
    return (2 * nd, nd)


def gmres_vertical_lower_bound(
    n: int,
    krylov_iterations: int,
    dimensions: int = 3,
    processors: int = 1,
    s: int = 0,
    asymptotic: bool = True,
) -> float:
    """Theorem 9: ``Q >= 6 n^d m / P`` for GMRES with ``m`` outer iterations."""
    if min(n, krylov_iterations, dimensions, processors) < 1 or s < 0:
        raise ValueError("invalid GMRES parameters")
    nd = n ** dimensions
    if asymptotic:
        per_iter = 6.0 * nd
    else:
        w_x, w_y = gmres_wavefront_sizes(n, dimensions)
        per_iter = 2.0 * max(0, w_x - s) + 2.0 * max(0, w_y - s)
    return krylov_iterations * per_iter / processors


# ----------------------------------------------------------------------
# Horizontal (ghost-cell) upper bounds — Sections 5.2.2 / 5.3.2 / 5.4.2
# ----------------------------------------------------------------------
def block_side(n: int, num_nodes: int, dimensions: int) -> float:
    """Block side ``B = n / N_nodes^{1/d}`` of the block-partitioned grid."""
    if min(n, num_nodes, dimensions) < 1:
        raise ValueError("invalid parameters")
    return n / num_nodes ** (1.0 / dimensions)


def ghost_cell_volume(block: float, dimensions: int) -> float:
    """Ghost-cell words exchanged per sweep per node: ``(B+2)^d - B^d``."""
    if block <= 0 or dimensions < 1:
        raise ValueError("invalid parameters")
    return (block + 2.0) ** dimensions - block ** dimensions


def stencil_horizontal_upper_bound(
    n: int, num_nodes: int, dimensions: int, iterations: int
) -> float:
    """Per-node horizontal data movement over ``T`` iterations:
    ``((B+2)^d - B^d) * T = O(2 d B^{d-1} T)``.

    This is the upper bound used for CG (Section 5.2.2), GMRES (5.3.2) and
    Jacobi (5.4.2): in each outer iteration the SpMV / stencil sweep needs
    the ghost shell of the local block once.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    b = block_side(n, num_nodes, dimensions)
    return ghost_cell_volume(b, dimensions) * iterations

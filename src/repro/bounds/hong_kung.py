"""Hong-Kung 2S-partitioning lower bounds (Theorem 1, Lemma 1, Corollary 1).

The chain of reasoning reproduced here:

* **Theorem 1** — any complete game with ``S`` red pebbles induces a
  ``2S``-partition with ``S*h >= q >= S*(h-1)`` where ``q`` is the game's
  I/O count and ``h`` the number of subsets.
* **Lemma 1** — therefore ``Q >= S * (H(2S) - 1)`` where ``H(2S)`` is the
  *minimum* number of subsets of any valid ``2S``-partition.
* **Corollary 1** — if ``U(2S)`` is the size of the largest vertex set of
  any valid ``2S``-partition, then ``H(2S) >= |V'| / U(2S)`` (with
  ``V' = V - I``) and hence ``Q >= S * (|V'|/U(2S) - 1)``.

Exact computation of ``H(2S)`` or ``U(2S)`` is itself hard; the paper's
strategy — which we follow — is to obtain *closed-form upper bounds* on
``U(2S)`` from the CDAG's structure (e.g. ``U <= 4S(2S)^{1/d}`` for
d-dimensional stencils), which yield valid lower bounds on ``Q``.  This
module provides:

* the arithmetic of Lemma 1 / Corollary 1 as checked functions;
* an exhaustive ``H(2S)`` computation for tiny CDAGs (for validating the
  machinery against the exact optimum);
* a verifier for the Theorem 1 relation on (game, partition) pairs
  produced by the constructive procedure of
  :func:`repro.core.partition.partition_from_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..core.cdag import CDAG, Vertex
from ..core.partition import SPartition, check_rbw_partition
from ..pebbling.state import GameRecord

__all__ = [
    "lower_bound_from_partition_count",
    "lower_bound_from_largest_subset",
    "HongKungBound",
    "verify_theorem1_relation",
    "exhaustive_min_partition_count",
]


@dataclass(frozen=True)
class HongKungBound:
    """A lower bound derived from 2S-partition reasoning.

    Attributes
    ----------
    value:
        The lower bound on the I/O count ``Q``.
    s:
        The number of red pebbles ``S`` assumed.
    h_lower:
        The lower bound on the number of subsets ``H(2S)`` used.
    u_upper:
        The upper bound on the largest subset ``U(2S)`` used (may be
        ``None`` when the bound came directly from ``h_lower``).
    """

    value: float
    s: int
    h_lower: float
    u_upper: Optional[float] = None


def lower_bound_from_partition_count(s: int, h_min: float) -> HongKungBound:
    """Lemma 1: ``Q >= S * (H(2S) - 1)``.

    ``h_min`` must be a valid lower bound on the minimum number of vertex
    sets of any ``2S``-partition of the CDAG.
    """
    if s < 1:
        raise ValueError("S must be >= 1")
    if h_min < 0:
        raise ValueError("H(2S) cannot be negative")
    return HongKungBound(value=max(0.0, s * (h_min - 1)), s=s, h_lower=h_min)


def lower_bound_from_largest_subset(
    s: int, num_operations: int, u_upper: float
) -> HongKungBound:
    """Corollary 1: ``Q >= S * (|V'| / U(2S) - 1)``.

    Parameters
    ----------
    s:
        Number of red pebbles.
    num_operations:
        ``|V'| = |V - I|``, the number of operation vertices.
    u_upper:
        A valid *upper* bound on ``U(2S)`` (the largest subset size of any
        valid ``2S``-partition).  Using an upper bound on ``U`` keeps the
        resulting lower bound on ``Q`` valid.
    """
    if s < 1:
        raise ValueError("S must be >= 1")
    if u_upper <= 0:
        raise ValueError("U(2S) must be positive")
    if num_operations < 0:
        raise ValueError("number of operations cannot be negative")
    h_lower = num_operations / u_upper
    return HongKungBound(
        value=max(0.0, s * (h_lower - 1)),
        s=s,
        h_lower=h_lower,
        u_upper=u_upper,
    )


def verify_theorem1_relation(cdag: CDAG, record: GameRecord, s: int) -> bool:
    """Machine-check Theorem 1 on a concrete game.

    Builds the ``2S``-partition associated with the game via the proof
    construction (:func:`repro.core.partition.partition_from_game`) and
    checks both halves of the theorem:

    * the constructed partition is a valid RBW ``2S``-partition
      (conditions P1-P4 of Definition 5), and
    * the I/O count ``q`` of the game satisfies ``q >= S * (h - 1)`` where
      ``h`` is the number of (non-empty) subsets.

    Returns True when both hold.
    """
    from ..core.partition import partition_from_game

    partition = partition_from_game(cdag, record.moves, s)
    if check_rbw_partition(cdag, partition):
        return False
    q = record.io_count
    return q >= s * (partition.h - 1)


def exhaustive_min_partition_count(
    cdag: CDAG, s: int, max_vertices: int = 14
) -> int:
    """Exact ``H(2S)`` for tiny CDAGs by exhaustive search over partitions.

    The search enumerates partitions of the operation vertices into
    ordered "runs" of a topological order — which is *not* fully general —
    plus arbitrary set partitions when the CDAG has at most
    ``max_vertices`` operations, checking RBW validity (Definition 5) for
    each candidate and returning the smallest number of parts found.

    Notes
    -----
    ``H(2S)`` minimisation over *all* partitions is exponential; the
    arbitrary-set-partition path uses the standard restricted-growth-string
    enumeration and is only feasible for roughly a dozen operations, which
    is all the validation benches need.
    """
    ops = [v for v in cdag.vertices if not cdag.is_input(v)]
    n = len(ops)
    if n == 0:
        return 0
    if n > max_vertices:
        raise ValueError(
            f"exhaustive H(2S) limited to {max_vertices} operations, got {n}"
        )

    best = n  # singletons are always a valid partition if S >= max degree

    # Enumerate set partitions via restricted growth strings, smallest
    # number of blocks first by pruning on the current block count.
    def rgs(prefix: List[int], max_label: int):
        nonlocal best
        idx = len(prefix)
        blocks = max_label + 1
        if blocks >= best:
            return
        if idx == n:
            subsets: List[Set[Vertex]] = [set() for _ in range(blocks)]
            for i, lab in enumerate(prefix):
                subsets[lab].add(ops[i])
            cand = SPartition(subsets=subsets, s=2 * s)
            if not check_rbw_partition(cdag, cand):
                best = min(best, blocks)
            return
        for lab in range(min(max_label + 1, best - 1) + 1):
            rgs(prefix + [lab], max(max_label, lab))

    rgs([0], 0)
    return best

"""The Hong-Kung "lines" (vertex-disjoint paths) lower-bound technique.

Theorem 10 of the paper bounds the I/O of iterated stencils by invoking
Hong & Kung's Theorem 5.1: if a CDAG has the property that *all inputs
reach all outputs through vertex-disjoint paths* (called **lines**), and
``F(d)`` is a monotone function such that for any two vertices of the same
line at distance at least ``d`` there exist ``F(d)`` vertices, none on the
same line, each lying on a path connecting them, then the sequential I/O
satisfies

``Q  >=  L / (2 * (F^{-1}(2S) + 1))``

where ``L`` is the total number of vertices on the lines.  For the
d-dimensional Jacobi CDAG, ``F^{-1}(2S) = Θ((2S)^{1/d})`` which yields the
``n^d T / (4 (2S)^{1/d})`` bound of Theorem 10.

This module makes the technique executable:

* :func:`find_lines` — extract a maximum set of vertex-disjoint
  input-to-output paths from a CDAG (max-flow with unit vertex
  capacities), returning the paths themselves so ``L`` can be measured
  rather than assumed;
* :func:`lines_lower_bound` — evaluate the Hong-Kung formula given the
  measured ``L`` and the CDAG family's ``F^{-1}``;
* :func:`stencil_f_inverse` — the closed form ``F^{-1}(x) = 2 x^{1/d} - 1``
  for d-dimensional grid stencils (the 2-D case ``2 sqrt(2S) - 1`` is
  quoted in the proof of Theorem 10);
* :func:`jacobi_lines_bound` — the end-to-end pipeline for a stencil CDAG:
  find the lines, measure ``L``, apply the formula, and (in tests) check
  the result is consistent with the closed-form Theorem 10 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from ..core.cdag import CDAG, Vertex

__all__ = [
    "LinesAnalysis",
    "find_lines",
    "lines_lower_bound",
    "stencil_f_inverse",
    "jacobi_lines_bound",
]


@dataclass(frozen=True)
class LinesAnalysis:
    """Result of a lines-based lower-bound computation.

    Attributes
    ----------
    num_lines:
        Number of vertex-disjoint input-output paths found.
    total_line_vertices:
        ``L`` — the number of vertices covered by the lines.
    f_inverse_2s:
        The value ``F^{-1}(2S)`` used.
    value:
        The lower bound ``L / (2 (F^{-1}(2S) + 1))``.
    """

    num_lines: int
    total_line_vertices: int
    f_inverse_2s: float
    value: float


def find_lines(cdag: CDAG, max_lines: Optional[int] = None) -> List[List[Vertex]]:
    """Find a maximum family of vertex-disjoint input-to-output paths.

    Uses the standard vertex-splitting max-flow construction (every vertex
    has capacity 1) between a super-source attached to the inputs and a
    super-sink attached to the outputs, then decomposes the integral flow
    into paths.  The returned paths are pairwise vertex-disjoint and each
    runs from an input vertex to an output vertex.
    """
    if not cdag.inputs or not cdag.outputs:
        return []
    g = nx.DiGraph()
    source, sink = ("__lines_src__",), ("__lines_snk__",)

    def v_in(v: Vertex) -> Tuple[str, Vertex]:
        return ("in", v)

    def v_out(v: Vertex) -> Tuple[str, Vertex]:
        return ("out", v)

    for v in cdag.vertices:
        g.add_edge(v_in(v), v_out(v), capacity=1)
    for u, v in cdag.edges():
        g.add_edge(v_out(u), v_in(v), capacity=1)
    for v in cdag.inputs:
        g.add_edge(source, v_in(v), capacity=1)
    for v in cdag.outputs:
        g.add_edge(v_out(v), sink, capacity=1)

    flow_value, flow = nx.maximum_flow(g, source, sink)
    if max_lines is not None:
        flow_value = min(flow_value, max_lines)

    # Decompose the unit flow into vertex-disjoint paths.
    paths: List[List[Vertex]] = []
    used: set = set()
    for start in cdag.inputs:
        if len(paths) >= flow_value:
            break
        if flow[source].get(v_in(start), 0) < 1 or start in used:
            continue
        path = [start]
        used.add(start)
        node = start
        while not cdag.is_output(node) or _has_flow_successor(flow, node, used):
            nxt = _flow_successor(flow, node, used)
            if nxt is None:
                break
            path.append(nxt)
            used.add(nxt)
            node = nxt
            if cdag.is_output(node):
                break
        if cdag.is_output(path[-1]):
            paths.append(path)
    return paths


def _flow_successor(flow, node: Vertex, used: set) -> Optional[Vertex]:
    """The next vertex along the unit flow leaving ``node`` (if any)."""
    out_edges = flow.get(("out", node), {})
    for target, amount in out_edges.items():
        if amount >= 1 and isinstance(target, tuple) and target[0] == "in":
            candidate = target[1]
            if candidate not in used:
                return candidate
    return None


def _has_flow_successor(flow, node: Vertex, used: set) -> bool:
    return _flow_successor(flow, node, used) is not None


def stencil_f_inverse(two_s: float, dimensions: int) -> float:
    """``F^{-1}(2S)`` for d-dimensional grid stencil CDAGs.

    From the proof of Theorem 10 (2-D case): ``F^{-1}(2S) = 2 sqrt(2S) - 1``;
    generalised to ``2 (2S)^{1/d} - 1`` in d dimensions.
    """
    if two_s <= 0 or dimensions < 1:
        raise ValueError("2S must be positive and dimensions >= 1")
    return 2.0 * two_s ** (1.0 / dimensions) - 1.0


def lines_lower_bound(
    total_line_vertices: int,
    f_inverse_2s: float,
    num_lines: int = 0,
) -> LinesAnalysis:
    """Evaluate the Hong-Kung Theorem 5.1 formula.

    ``Q >= L / (2 (F^{-1}(2S) + 1))`` where ``L`` is the number of vertices
    lying on the vertex-disjoint input-output lines.
    """
    if total_line_vertices < 0:
        raise ValueError("L cannot be negative")
    if f_inverse_2s < 0:
        raise ValueError("F^{-1}(2S) cannot be negative")
    value = total_line_vertices / (2.0 * (f_inverse_2s + 1.0))
    return LinesAnalysis(
        num_lines=num_lines,
        total_line_vertices=total_line_vertices,
        f_inverse_2s=f_inverse_2s,
        value=value,
    )


def jacobi_lines_bound(
    cdag: CDAG, s: int, dimensions: int, processors: int = 1
) -> LinesAnalysis:
    """End-to-end lines bound for an iterated-stencil CDAG.

    Finds the vertex-disjoint lines of the concrete CDAG by max-flow,
    measures ``L``, and applies the formula with the stencil closed form of
    ``F^{-1}``.  Dividing by ``P`` gives the parallel version exactly as
    Theorem 5 does for the closed-form bound.
    """
    if s < 1 or processors < 1:
        raise ValueError("s and processors must be >= 1")
    lines = find_lines(cdag)
    total = sum(len(p) for p in lines)
    f_inv = stencil_f_inverse(2.0 * s, dimensions)
    base = lines_lower_bound(total, f_inv, num_lines=len(lines))
    return LinesAnalysis(
        num_lines=base.num_lines,
        total_line_vertices=base.total_line_vertices,
        f_inverse_2s=base.f_inverse_2s,
        value=base.value / processors,
    )

"""Composition rules for I/O lower bounds (Section 3.2).

The RBW game makes lower bounds *composable*: the I/O of a CDAG is at
least the sum of the I/O of the sub-CDAGs induced by any disjoint vertex
partitioning.  This module implements the bookkeeping for the four
composition tools of the paper:

* **Theorem 2 (Decomposition)** — ``sum_i IO(C_i) <= IO(C)`` for the
  induced sub-CDAGs ``C_i`` of any disjoint partitioning of ``V``; hence
  lower bounds add.
* **Corollary 2 (Input/Output Deletion)** — if ``C'`` is ``C`` with extra
  dedicated input vertices ``dI`` and output vertices ``dO`` attached,
  then ``IO(C) + |dI| + |dO| <= IO(C')``.
* **Theorem 3 (Input/Output (Un)Tagging)** — retagging vertices of the
  *same* graph: ``IO(C') - |dI| - |dO| <= IO(C) <= IO(C')`` where ``C'``
  has the extra tags.
* **Theorem 4 (Non-disjoint decomposition)** — when a vertex set ``D_x``
  (e.g. the values produced in outer-loop iteration ``t`` and re-used in
  iteration ``t+1``) is shared between consecutive sub-CDAGs, the loads
  into the rest, the stores out of the rest and the I/O of ``D_x`` can be
  accounted separately; operationally we expose it as the ability to sum
  bounds of *overlapping* sub-CDAGs as long as every edge/vertex class is
  counted once, which is how Theorems 8 and 9 use it (the factor-2 tighter
  per-iteration bounds for CG/GMRES).

These functions only manipulate *numbers* (bounds) and CDAG decompositions;
the bounds themselves come from :mod:`repro.bounds.hong_kung` and
:mod:`repro.bounds.mincut`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.cdag import CDAG, CDAGError, Vertex

__all__ = [
    "DecompositionBound",
    "decompose_disjoint",
    "sum_of_bounds",
    "io_deletion_bound",
    "untagging_bound",
    "tagging_bound",
    "nondisjoint_iteration_bound",
]


@dataclass
class DecompositionBound:
    """A lower bound assembled from per-sub-CDAG contributions.

    ``terms`` maps a human-readable sub-CDAG label to its contribution so
    that evaluation reports can show the provenance of the total.
    """

    total: float
    terms: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, value: float) -> None:
        self.terms[label] = self.terms.get(label, 0.0) + value
        self.total += value


def decompose_disjoint(
    cdag: CDAG, parts: Sequence[Iterable[Vertex]], names: Optional[Sequence[str]] = None
) -> List[CDAG]:
    """Induced sub-CDAGs of a disjoint vertex partitioning (Theorem 2).

    The parts must be pairwise disjoint; they need not cover ``V``
    (uncovered vertices contribute a trivial bound of 0, which keeps the
    sum valid).  The partitioning need not be acyclic between parts —
    Theorem 2 explicitly allows arbitrary disjoint partitionings.
    """
    seen: Set[Vertex] = set()
    result: List[CDAG] = []
    for k, part in enumerate(parts):
        pset = set(part)
        overlap = pset & seen
        if overlap:
            raise CDAGError(
                f"decompose_disjoint: part {k} overlaps earlier parts on "
                f"{sorted(map(repr, overlap))[:3]}"
            )
        seen |= pset
        name = names[k] if names is not None else f"{cdag.name}/part{k}"
        result.append(cdag.induced_subgraph(pset, name=name))
    return result


def sum_of_bounds(bounds: Iterable[Tuple[str, float]]) -> DecompositionBound:
    """Theorem 2's conclusion: lower bounds of disjoint sub-CDAGs add."""
    out = DecompositionBound(total=0.0)
    for label, value in bounds:
        if value < 0:
            raise ValueError(f"bound for {label!r} is negative")
        out.add(label, value)
    return out


def io_deletion_bound(core_bound: float, num_deleted_inputs: int,
                      num_deleted_outputs: int) -> float:
    """Corollary 2: ``IO(C') >= IO(C) + |dI| + |dO|``.

    Given a lower bound for the CDAG *without* its dedicated input/output
    vertices, return the implied lower bound for the CDAG *with* them.
    """
    if num_deleted_inputs < 0 or num_deleted_outputs < 0:
        raise ValueError("vertex counts cannot be negative")
    return core_bound + num_deleted_inputs + num_deleted_outputs


def untagging_bound(tagged_bound: float, num_added_input_tags: int,
                    num_added_output_tags: int) -> float:
    """Theorem 3 (tagging direction): ``IO(C) >= IO(C') - |dI| - |dO|``.

    ``tagged_bound`` is a lower bound for the re-tagged CDAG ``C'`` (with
    ``dI`` extra input tags and ``dO`` extra output tags); the return
    value is a valid lower bound for the original ``C``.  This is the tool
    that rescues matrix-multiplication-like CDAGs where deleting the
    inputs leaves only trivial chains: tag the high-fan-out sources as
    inputs, bound the tagged CDAG, then subtract the tag counts.
    """
    if num_added_input_tags < 0 or num_added_output_tags < 0:
        raise ValueError("tag counts cannot be negative")
    return max(0.0, tagged_bound - num_added_input_tags - num_added_output_tags)


def tagging_bound(untagged_bound: float) -> float:
    """Theorem 3 (untagging direction): ``IO(C') >= IO(C)``.

    A lower bound for the less-tagged CDAG is already a lower bound for
    the more-tagged one (extra tags can only force extra I/O).
    """
    return untagged_bound


def nondisjoint_iteration_bound(
    per_iteration_bound: float,
    iterations: int,
) -> float:
    """Theorem 4 applied to time-iterated CDAGs.

    When the CDAG of an iterative method is decomposed per outer
    iteration with the iteration-coupling vertices *shared* between
    neighbouring sub-CDAGs (non-disjoint decomposition), each iteration's
    bound may be accounted in full, giving ``iterations *
    per_iteration_bound``; the disjoint alternative would have to give the
    coupling vertices to only one side, weakening the per-iteration bound.
    This helper just performs the multiplication with validation — the
    scientific content (that the per-iteration bound was derived with the
    correct sharing) lives in the algorithm modules that call it
    (Theorems 8 and 9).
    """
    if iterations < 0:
        raise ValueError("iterations cannot be negative")
    if per_iteration_bound < 0:
        raise ValueError("per-iteration bound cannot be negative")
    return iterations * per_iteration_bound

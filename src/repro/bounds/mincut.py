"""Min-cut / wavefront lower bounds (Section 3.3, Lemma 2).

The 2S-partitioning technique looks only at the *boundaries* of partitions;
the min-cut approach captures *internal* storage requirements via the
abstraction of wavefronts:

* for any vertex ``x`` of a CDAG without input vertices, any valid
  execution must, at the instant ``x`` fires, keep alive every vertex of
  the schedule wavefront ``W_P(x)``;
* the minimum possible wavefront at ``x`` over all valid executions is
  the vertex min-cut ``|W^min_G(x)|`` between ``{x} ∪ Anc(x)`` and
  ``Desc(x)``;
* values in excess of the fast memory capacity ``S`` must make a round
  trip to slow memory, giving **Lemma 2**:

  ``IO(C) >= 2 * (|W^min_G(x)| - S)``   for every ``x``, and hence
  ``IO(C) >= 2 * (w^max_G - S)``.

The paper uses hand-identified wavefront vertices (the dot-product results
of CG and GMRES, whose ``2 n^d`` predecessors all reach the descendants
through disjoint paths) and mentions an automated heuristic.  This module
provides both: exact per-vertex evaluation through max-flow
(:func:`repro.core.properties.min_wavefront`) and a candidate-selection
heuristic that avoids running a max-flow per vertex on large CDAGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.cdag import CDAG, Vertex
from ..core.properties import max_min_wavefront, min_wavefront

__all__ = [
    "MinCutBound",
    "wavefront_lower_bound",
    "best_wavefront_lower_bound",
    "heuristic_wavefront_candidates",
    "automated_wavefront_bound",
]


@dataclass(frozen=True)
class MinCutBound:
    """A Lemma 2 lower bound.

    Attributes
    ----------
    value:
        The lower bound ``2 * (wavefront - S)`` (floored at zero).
    wavefront:
        The wavefront size used.
    s:
        The fast-memory capacity assumed.
    vertex:
        The vertex inducing the wavefront (None when unknown).
    """

    value: float
    wavefront: int
    s: int
    vertex: Optional[Vertex] = None


def wavefront_lower_bound(cdag: CDAG, x: Vertex, s: int) -> MinCutBound:
    """Lemma 2 for a specific vertex: ``IO >= 2 (|W^min_G(x)| - S)``.

    The lemma is stated for CDAGs without input vertices (``I = ∅``);
    for CDAGs with inputs the bound still holds for the *untagged* CDAG
    and can be transferred back via Theorem 3, which the caller is
    responsible for (see :mod:`repro.bounds.composition`).
    """
    if s < 0:
        raise ValueError("S cannot be negative")
    w = min_wavefront(cdag, x)
    return MinCutBound(value=max(0.0, 2.0 * (w - s)), wavefront=w, s=s, vertex=x)


def best_wavefront_lower_bound(
    cdag: CDAG, s: int, candidates: Optional[Iterable[Vertex]] = None
) -> MinCutBound:
    """Lemma 2 with ``w^max``: maximise the wavefront over candidate vertices."""
    w, x = max_min_wavefront(cdag, candidates)
    return MinCutBound(value=max(0.0, 2.0 * (w - s)), wavefront=w, s=s, vertex=x)


def _candidate_scores(cdag: CDAG):
    """Per-vertex heuristic scores and layers over the compiled CDAG.

    Returns ``(compiled, score, layer)`` where ``score``/``layer`` are
    id-indexed lists.  One topological pass each; no name hashing.
    """
    c = cdag.compiled()
    succ_lists = c.succ_lists
    topo = c.topological_order_ids().tolist()

    # Longest-path layer of each vertex (cheap, one topological pass).
    layer = c.layers().tolist()

    # Cheap ancestor-count proxy: number of *distinct input vertices*
    # reaching v, capped; computed by a capped bitset-free propagation of
    # counts (over-counts shared ancestors, hence only a heuristic score).
    is_input = c.is_input_mask.tolist()
    in_degree = c.in_degree.tolist()
    out_degree = c.out_degree.tolist()
    reach = [
        1.0 if (is_input[v] or in_degree[v] == 0) else 0.0
        for v in range(c.n)
    ]
    for v in topo:
        rv = reach[v]
        for w in succ_lists[v]:
            nw = reach[w] + rv
            reach[w] = nw if nw < 1e9 else 1e9

    score = [
        (reach[v] if out_degree[v] > 0 else 0.0) + in_degree[v]
        for v in range(c.n)
    ]
    return c, score, layer


def _candidate_ids(cdag: CDAG, max_candidates: int) -> List[int]:
    """Candidate vertex ids, ranked by heuristic score (descending)."""
    if cdag.num_vertices() == 0:
        return []
    c, score, layer = _candidate_scores(cdag)
    ranked = sorted(range(c.n), key=score.__getitem__, reverse=True)
    picked = ranked[:max_candidates]
    # Ensure per-layer coverage.
    chosen = set(picked)
    best_per_layer: dict = {}
    for v in range(c.n):
        cur = best_per_layer.get(layer[v])
        if cur is None or score[v] > score[cur]:
            best_per_layer[layer[v]] = v
    for v in best_per_layer.values():
        if v not in chosen:
            picked.append(v)
            chosen.add(v)
    return picked


def heuristic_wavefront_candidates(
    cdag: CDAG, max_candidates: int = 32
) -> List[Vertex]:
    """Pick promising vertices for the automated wavefront bound.

    Intuition (matching how the paper picks its wavefront vertices):
    vertices that *join* many independent data streams — reduction roots,
    scalars produced from whole vectors — induce large wavefronts, because
    their ancestors must all have fired while their descendants (which the
    same vectors also feed) have not.  We therefore rank vertices by a
    cheap structural score:

    ``score(x) = (#ancestors capped) * has_descendants + in_degree``

    and keep the top ``max_candidates``, always including the
    highest-in-degree vertex of each "layer" (distance from the sources)
    so that deep CDAGs get candidates spread over their depth.
    """
    ids = _candidate_ids(cdag, max_candidates)
    return cdag.compiled().vertices_of(ids) if ids else []


def automated_wavefront_bound(
    cdag: CDAG, s: int, max_candidates: int = 32
) -> MinCutBound:
    """The automated heuristic: candidate selection + exact min-cut on each.

    Returns the best (largest) Lemma 2 bound found.  Because every
    candidate's bound is individually valid, taking the maximum is valid;
    the heuristic only affects tightness, never soundness.

    Candidates are evaluated best-score-first against one shared
    :class:`~repro.core.properties.WavefrontSolver` network, with two
    sound prunes layered on top: sink candidates contribute a wavefront
    of exactly 1, and a candidate whose ancestor count satisfies
    ``|Anc(x)| + 1 <= best`` cannot improve on ``best`` (the canonical
    convex cut ``S = {x} ∪ Anc(x)`` witnesses ``|W^min(x)| <= |Anc(x)|+1``),
    so its max-flow is skipped entirely.
    """
    ids = _candidate_ids(cdag, max_candidates)
    if not ids:
        return MinCutBound(
            value=max(0.0, -2.0 * s), wavefront=0, s=s, vertex=None
        )
    c = cdag.compiled()
    solver = c.wavefront_solver()
    out_degree = c.out_degree
    best = 0
    best_vertex = None
    for i in ids:
        if out_degree[i] == 0:
            w = 1  # sinks: the minimum over valid cuts is {x} itself
        else:
            anc = c.ancestors_ids(i)
            if best > 0 and anc.size + 1 <= best:
                continue  # upper bound can't beat the incumbent
            w = solver.min_wavefront_id(i, anc=anc)
        if w > best:
            best = w
            best_vertex = c.vertex(i)
    return MinCutBound(
        value=max(0.0, 2.0 * (best - s)), wavefront=best, s=s,
        vertex=best_vertex,
    )

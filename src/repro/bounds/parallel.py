"""Parallel lower bounds: vertical and horizontal data movement (Section 4).

Two kinds of data movement are distinguished in the P-RBW model:

* **vertical** — through the memory hierarchy inside a node (DRAM <-> L2,
  L2 <-> L1, ...);
* **horizontal** — across nodes through the interconnect (remote gets).

The paper gives three lower bounds, all reproduced here as checked
functions operating on problem-level quantities:

* **Theorem 5** — the most-loaded level-``l`` storage instance receives at
  least ``IO_1(C, S_{l-1} * N_{l-1}) / N_l`` words from below, where
  ``IO_1(C, S)`` is the *sequential* I/O lower bound of the CDAG with a
  fast memory of ``S`` words.  (Divide the sequential bound over the
  ``N_l`` instances.)
* **Theorem 6** — alternatively, using the largest-2S-partition quantity
  ``U(C, 2S_{l-1})``:
  ``IO_vert >= (|V| / (U(C,2S_{l-1}) * N_l) - N_{l-1}/N_l) * S_{l-1}``,
  approximately ``|V| * S_{l-1} / (U * N_l)``.
* **Theorem 7** — the node whose processors perform the most compute
  issues at least ``(|V| / (U(C, 2S_L) * P_i) - 1) * S_L`` remote gets,
  where ``P_i`` is the number of processors in that node's group.

The functions take the already-derived sequential quantities (``IO_1`` or
``U``) as arguments so that either the closed-form per-algorithm values
(:mod:`repro.bounds.analytical`) or the graph-derived estimates
(:mod:`repro.bounds.hong_kung`, :mod:`repro.bounds.mincut`) can be plugged
in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pebbling.hierarchy import MemoryHierarchy

__all__ = [
    "ParallelBound",
    "vertical_bound_from_sequential",
    "vertical_bound_from_U",
    "horizontal_bound_from_U",
    "vertical_bound_theorem5",
    "vertical_bound_theorem6",
    "horizontal_bound_theorem7",
]


@dataclass(frozen=True)
class ParallelBound:
    """A lower bound on per-instance data movement in the parallel model.

    Attributes
    ----------
    value:
        Lower bound on the number of words moved at the identified
        storage instance (the maximally loaded one).
    level:
        The hierarchy level the bound applies to (``None`` for the
        horizontal/interconnect bound).
    kind:
        ``"vertical"`` or ``"horizontal"``.
    """

    value: float
    kind: str
    level: Optional[int] = None


# ----------------------------------------------------------------------
# Raw formulas (problem-level quantities)
# ----------------------------------------------------------------------
def vertical_bound_from_sequential(io_sequential: float, num_instances: int) -> float:
    """Theorem 5 formula: ``IO_1(C, S_{l-1} N_{l-1}) / N_l``."""
    if num_instances < 1:
        raise ValueError("the hierarchy needs at least one instance")
    if io_sequential < 0:
        raise ValueError("sequential I/O bound cannot be negative")
    return io_sequential / num_instances


def vertical_bound_from_U(
    num_operations: float,
    u_2s: float,
    n_l: int,
    n_l_minus_1: int,
    s_l_minus_1: float,
) -> float:
    """Theorem 6 formula:
    ``[|V| / (U(C,2S_{l-1}) * N_l) - N_{l-1}/N_l] * S_{l-1}``.
    """
    if u_2s <= 0 or n_l < 1 or n_l_minus_1 < 1 or s_l_minus_1 <= 0:
        raise ValueError("invalid parameters for Theorem 6")
    h = num_operations / (u_2s * n_l) - n_l_minus_1 / n_l
    return max(0.0, h * s_l_minus_1)


def horizontal_bound_from_U(
    num_operations: float, u_2s_top: float, processors_per_node: int, s_top: float
) -> float:
    """Theorem 7 formula: ``(|V| / (U(C,2S_L) * P_i) - 1) * S_L``."""
    if u_2s_top <= 0 or processors_per_node < 1 or s_top <= 0:
        raise ValueError("invalid parameters for Theorem 7")
    h = num_operations / (u_2s_top * processors_per_node) - 1.0
    return max(0.0, h * s_top)


# ----------------------------------------------------------------------
# Hierarchy-aware wrappers
# ----------------------------------------------------------------------
def vertical_bound_theorem5(
    hierarchy: MemoryHierarchy,
    level: int,
    sequential_io_bound,
) -> ParallelBound:
    """Theorem 5 against a concrete hierarchy.

    Parameters
    ----------
    hierarchy:
        The machine model; ``level`` must satisfy ``2 <= level <= L``.
    sequential_io_bound:
        Either a number — the value of ``IO_1(C, S_{l-1} * N_{l-1})`` — or
        a callable taking the aggregate child capacity and returning that
        value (so algorithm modules can pass their closed forms directly).
    """
    if not 2 <= level <= hierarchy.num_levels:
        raise ValueError("vertical bounds apply to levels 2..L")
    child_capacity = hierarchy.aggregate_capacity(level - 1)
    if callable(sequential_io_bound):
        if child_capacity is None:
            raise ValueError(
                "child level has unbounded capacity; pass a numeric bound"
            )
        io1 = float(sequential_io_bound(child_capacity))
    else:
        io1 = float(sequential_io_bound)
    value = vertical_bound_from_sequential(io1, hierarchy.instances(level))
    return ParallelBound(value=value, kind="vertical", level=level)


def vertical_bound_theorem6(
    hierarchy: MemoryHierarchy,
    level: int,
    num_operations: float,
    u_2s,
) -> ParallelBound:
    """Theorem 6 against a concrete hierarchy.

    ``u_2s`` is either a number — ``U(C, 2 S_{l-1})`` — or a callable
    taking ``2 * S_{l-1}`` and returning it.
    """
    if not 2 <= level <= hierarchy.num_levels:
        raise ValueError("vertical bounds apply to levels 2..L")
    s_child = hierarchy.capacity(level - 1)
    if s_child is None:
        raise ValueError("child level must have bounded capacity")
    u_value = float(u_2s(2 * s_child)) if callable(u_2s) else float(u_2s)
    value = vertical_bound_from_U(
        num_operations=num_operations,
        u_2s=u_value,
        n_l=hierarchy.instances(level),
        n_l_minus_1=hierarchy.instances(level - 1),
        s_l_minus_1=s_child,
    )
    return ParallelBound(value=value, kind="vertical", level=level)


def horizontal_bound_theorem7(
    hierarchy: MemoryHierarchy,
    num_operations: float,
    u_2s_top,
    s_top: Optional[float] = None,
) -> ParallelBound:
    """Theorem 7 against a concrete hierarchy.

    ``u_2s_top`` is ``U(C, 2 S_L)`` or a callable of ``2 * S_L``.  When
    the top-level capacity is unbounded in the hierarchy object (the
    common modelling choice), an explicit ``s_top`` — the effective
    per-node memory in words — must be supplied.
    """
    L = hierarchy.num_levels
    cap = hierarchy.capacity(L)
    if cap is None and s_top is None:
        raise ValueError(
            "top-level capacity is unbounded; pass s_top explicitly"
        )
    s_val = float(cap if cap is not None else s_top)
    u_value = float(u_2s_top(2 * s_val)) if callable(u_2s_top) else float(u_2s_top)
    value = horizontal_bound_from_U(
        num_operations=num_operations,
        u_2s_top=u_value,
        processors_per_node=hierarchy.processors_per_instance(L),
        s_top=s_val,
    )
    return ParallelBound(value=value, kind="horizontal", level=None)

"""Lower-bound machinery for the data movement complexity of CDAGs.

* :mod:`repro.bounds.hong_kung` — 2S-partitioning bounds (Theorem 1,
  Lemma 1, Corollary 1);
* :mod:`repro.bounds.mincut` — convex-cut / wavefront bounds (Lemma 2)
  with an automated candidate heuristic;
* :mod:`repro.bounds.composition` — decomposition, input/output deletion
  and (un)tagging rules (Theorems 2-4, Corollary 2);
* :mod:`repro.bounds.parallel` — vertical and horizontal bounds for the
  P-RBW model (Theorems 5-7);
* :mod:`repro.bounds.analytical` — the closed forms for matmul, the
  composite example, CG, GMRES, Jacobi and FFT used by the evaluation.
"""

from .analytical import (
    block_side,
    cg_vertical_lower_bound,
    cg_wavefront_sizes,
    composite_example_io_upper_bound,
    composite_example_naive_sum,
    fft_io_lower_bound,
    ghost_cell_volume,
    gmres_vertical_lower_bound,
    gmres_wavefront_sizes,
    jacobi_io_lower_bound,
    jacobi_largest_partition,
    matmul_io_lower_bound,
    outer_product_io,
    stencil_horizontal_upper_bound,
)
from .composition import (
    DecompositionBound,
    decompose_disjoint,
    io_deletion_bound,
    nondisjoint_iteration_bound,
    sum_of_bounds,
    tagging_bound,
    untagging_bound,
)
from .hong_kung import (
    HongKungBound,
    exhaustive_min_partition_count,
    lower_bound_from_largest_subset,
    lower_bound_from_partition_count,
    verify_theorem1_relation,
)
from .lines import (
    LinesAnalysis,
    find_lines,
    jacobi_lines_bound,
    lines_lower_bound,
    stencil_f_inverse,
)
from .mincut import (
    MinCutBound,
    automated_wavefront_bound,
    best_wavefront_lower_bound,
    heuristic_wavefront_candidates,
    wavefront_lower_bound,
)
from .parallel import (
    ParallelBound,
    horizontal_bound_from_U,
    horizontal_bound_theorem7,
    vertical_bound_from_U,
    vertical_bound_from_sequential,
    vertical_bound_theorem5,
    vertical_bound_theorem6,
)

__all__ = [
    # analytical
    "block_side",
    "cg_vertical_lower_bound",
    "cg_wavefront_sizes",
    "composite_example_io_upper_bound",
    "composite_example_naive_sum",
    "fft_io_lower_bound",
    "ghost_cell_volume",
    "gmres_vertical_lower_bound",
    "gmres_wavefront_sizes",
    "jacobi_io_lower_bound",
    "jacobi_largest_partition",
    "matmul_io_lower_bound",
    "outer_product_io",
    "stencil_horizontal_upper_bound",
    # composition
    "DecompositionBound",
    "decompose_disjoint",
    "io_deletion_bound",
    "nondisjoint_iteration_bound",
    "sum_of_bounds",
    "tagging_bound",
    "untagging_bound",
    # hong-kung
    "HongKungBound",
    "exhaustive_min_partition_count",
    "lower_bound_from_largest_subset",
    "lower_bound_from_partition_count",
    "verify_theorem1_relation",
    # lines
    "LinesAnalysis",
    "find_lines",
    "jacobi_lines_bound",
    "lines_lower_bound",
    "stencil_f_inverse",
    # min-cut
    "MinCutBound",
    "automated_wavefront_bound",
    "best_wavefront_lower_bound",
    "heuristic_wavefront_candidates",
    "wavefront_lower_bound",
    # parallel
    "ParallelBound",
    "horizontal_bound_from_U",
    "horizontal_bound_theorem7",
    "vertical_bound_from_U",
    "vertical_bound_from_sequential",
    "vertical_bound_theorem5",
    "vertical_bound_theorem6",
]

"""repro — data movement complexity of computational DAGs for parallel execution.

A production-quality reproduction of

    V. Elango, F. Rastello, L.-N. Pouchet, J. Ramanujam, P. Sadayappan.
    "On Characterizing the Data Movement Complexity of Computational DAGs
    for Parallel Execution." SPAA 2014 / Inria RR-8522.

The library provides:

* :mod:`repro.core` — the CDAG model, structural analyses (dominators,
  In/Out sets, convex cuts, wavefronts), S-partitions, schedules and a
  tracing executor that derives CDAGs from real numerical code;
* :mod:`repro.pebbling` — red-blue, Red-Blue-White and parallel RBW pebble
  game engines, upper-bound strategies and an exact optimal-game search;
* :mod:`repro.bounds` — the lower-bound machinery: 2S-partitioning
  (Hong-Kung), min-cut/wavefront bounds, decomposition/tagging rules, and
  the parallel vertical/horizontal bounds of Theorems 5-7;
* :mod:`repro.machine` — machine-balance models and the Table 1 catalog;
* :mod:`repro.algorithms` — CDAG constructors and closed-form bounds for
  the algorithms analysed in the paper (matmul, composite example, CG,
  GMRES, Jacobi, FFT);
* :mod:`repro.solvers` — the numerical substrate (heat-equation grids,
  sparse matrices, CG/GMRES/Jacobi solvers) whose executions are analysed;
* :mod:`repro.distsim` — a simulated distributed-memory machine measuring
  vertical (cache-miss) and horizontal (ghost-cell) traffic;
* :mod:`repro.evaluation` — drivers that regenerate every table and
  analysis of the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

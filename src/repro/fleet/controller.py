"""The fleet controller: a persistent cell queue behind stdlib HTTP.

One :class:`FleetController` owns the authoritative schedule of a grid
sweep: which cells are pending, delayed (backing off after a failure),
leased to a worker, committed, or permanently failed.  The HTTP layer
(:func:`make_fleet_server`) is the same dependency-free
``ThreadingHTTPServer`` plumbing as the bound server — every endpoint
is a JSON-in/JSON-out call into the controller under one lock.

Design rules, in order:

* **The results root is the durable state.**  A cell is *done* when its
  run directory holds a committed ``summary.json`` whose config hash
  matches — the same commit protocol every other consumer of the
  harness uses.  The controller keeps no database: ``submit_grid``
  derives the queue from :func:`~repro.evaluation.harness.plan_resume`
  over the shared root, so a controller that is SIGKILLed mid-grid and
  restarted with the same grid re-queues exactly the unfinished cells
  and never recomputes a committed one.
* **Leases expire; work never disappears.**  A lease is valid for
  ``lease_ttl_s`` and renewed by worker heartbeats.  A worker that
  crashes, hangs, or partitions stops heartbeating; its lease expires
  and the cell is re-queued with exponential backoff
  (``backoff_s * 2**(attempt-1)``, capped at ``backoff_max_s``) up to
  ``max_retries`` re-queues, after which the cell is marked failed and
  the rest of the grid proceeds.
* **Completion is verified, not trusted.**  A worker's "done" report is
  accepted only if the committed summary is actually on disk with the
  right config hash; anything else is treated as a failure report.
* **Per-worker concurrency caps.**  Workers register with a slot count
  (their local process-pool width); the controller never leases a
  worker more cells than its slots, so one greedy poll loop cannot
  starve the fleet.

Duplicate execution is possible by design (a live worker past its TTL
races its replacement) and harmless by construction: cells are
deterministic, both workers write the same bytes, and the run-directory
commit protocol means the last committed summary wins.  ``/v1/report``
from a worker that lost its lease is acknowledged but changes nothing.

Two cross-cutting rules added with the observability layer:

* **Monotonic for intervals, wall for reported timestamps.**  Every
  piece of lease/backoff/staleness arithmetic runs on an injectable
  ``clock`` (default :func:`time.monotonic`): a wall-clock step — NTP
  correction, VM resume — can neither mass-expire every lease nor
  immortalize one.  Wall clock appears only in *reported* fields
  (event ``ts`` stamps).
* **Instrumented seams.**  The controller owns a
  :class:`~repro.obs.MetricsRegistry` (per-endpoint request counters +
  latency histograms, lease/requeue/failure counters) and a bounded
  :class:`~repro.obs.EventRing` (lease granted/expired, cell
  re-queued/committed/failed with the signal name when there is one).
  ``GET /metrics`` serves both plus the per-cell failure table that
  ``repro fleet status --failures`` renders (see
  ``docs/observability.md``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..evaluation.harness import (
    REGISTRY,
    RunSpec,
    plan_resume,
    scan_results_root,
)
from ..evaluation.manifest import (
    canonical_config,
    dumps_canonical,
    read_summary,
)
from ..obs import (
    OBS_SCHEMA,
    EventRing,
    MetricsRegistry,
    labeled,
    signal_from_error,
)

__all__ = [
    "DEFAULT_FLEET_PORT",
    "FLEET_SCHEMA",
    "FleetController",
    "make_fleet_server",
    "serve_fleet",
]

DEFAULT_FLEET_PORT = 8199
FLEET_SCHEMA = "repro-fleet/1"


def spec_to_wire(spec: RunSpec) -> Dict:
    """The JSON form of one grid cell (inverse: :func:`spec_from_wire`)."""
    return {
        "experiment": spec.experiment,
        "params": canonical_config(spec.params),
        "seed": spec.seed,
        "label": spec.label,
    }


def spec_from_wire(cell: Mapping) -> RunSpec:
    """Rebuild a :class:`RunSpec` from its wire form.  Params are
    re-canonicalized, so the config hash matches the submitting side's
    byte for byte."""
    return RunSpec(
        experiment=str(cell["experiment"]),
        params=canonical_config(cell.get("params") or {}),
        seed=int(cell.get("seed", 0)),
        label=str(cell["label"]),
    )


@dataclass
class _Lease:
    label: str
    worker: str
    attempt: int
    expires_s: float
    acquired_s: float


@dataclass
class _Worker:
    name: str
    slots: int
    registered_s: float
    last_seen_s: float
    leased: set = field(default_factory=set)


class FleetController:
    """Queue + lease logic, independent of HTTP plumbing (unit-testable).

    Parameters
    ----------
    root:
        The shared results root every worker writes into (an NFS mount,
        a shared volume, or just a local path for a localhost fleet).
    lease_ttl_s:
        Lease validity window; heartbeats renew it.  Workers are told
        the TTL at registration and heartbeat at a fraction of it.
    max_retries:
        How many times a cell may be re-queued (lease expiry or failure
        report) before it is marked permanently failed.
    backoff_s / backoff_max_s:
        Exponential re-queue backoff: re-queue ``k`` becomes eligible
        after ``min(backoff_s * 2**(k-1), backoff_max_s)`` seconds.
    registry:
        Experiment registry used only to validate submitted grids
        (workers own the run callables).
    clock:
        Interval clock for every lease/backoff/staleness computation —
        :func:`time.monotonic` by default, injectable so tests can step
        it deterministically.  Must never jump backwards; wall clock
        (:func:`time.time`) is used only for reported timestamps.
    """

    def __init__(
        self,
        root,
        lease_ttl_s: float = 30.0,
        max_retries: int = 3,
        backoff_s: float = 1.0,
        backoff_max_s: float = 60.0,
        poll_s: float = 0.5,
        registry: Mapping = REGISTRY,
        log: Callable[[str], None] = print,
        clock: Callable[[], float] = time.monotonic,
        events_capacity: int = 1024,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self.poll_s = float(poll_s)
        self.registry = registry
        self.log = log
        self.clock = clock
        self.started_s = time.time()  # reported only, never subtracted
        self._started_clock = self.clock()
        self.metrics = MetricsRegistry()
        self.events = EventRing(capacity=events_capacity)
        self._mu = threading.Lock()
        self._specs: Dict[str, RunSpec] = {}
        self._order: List[str] = []
        self._queue: deque = deque()
        #: (eligible_at_s, label) re-queues waiting out their backoff
        #: (``clock`` timebase, like every other interval field here)
        self._delayed: List[Tuple[float, str]] = []
        self._leases: Dict[str, _Lease] = {}
        self._attempts: Dict[str, int] = {}
        self._done: List[str] = []
        self._skipped: List[str] = []
        self._failed: Dict[str, str] = {}
        self._last_error: Dict[str, str] = {}
        self._workers: Dict[str, _Worker] = {}
        self.requests: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Grid lifecycle
    # ------------------------------------------------------------------
    def submit_grid(self, cells: Sequence[Mapping]) -> Dict:
        """Install a grid: plan resume over the results root, queue the
        unfinished cells, record the committed ones as skipped.

        Raises ``ValueError`` while a previous grid still has pending,
        delayed, or leased cells (finished grids — including ones with
        permanently failed cells — may be replaced freely).
        """
        specs = [spec_from_wire(cell) for cell in cells]
        if not specs:
            raise ValueError("grid must contain at least one cell")
        seen: set = set()
        for spec in specs:
            if spec.experiment not in self.registry:
                raise ValueError(
                    f"unknown experiment {spec.experiment!r}; "
                    f"known: {sorted(self.registry)}"
                )
            if not spec.label:
                raise ValueError("every cell needs a non-empty label")
            if spec.label in seen:
                raise ValueError(f"duplicate cell label {spec.label!r}")
            seen.add(spec.label)
        with self._mu:
            self._expire_leases_locked()
            if self._queue or self._delayed or self._leases:
                raise ValueError(
                    "a grid is already active (pending/leased cells "
                    "outstanding); wait for it to finish"
                )
            plan = plan_resume(specs, scan_results_root(self.root))
            self._specs = {spec.label: spec for spec in specs}
            self._order = [spec.label for spec in specs]
            self._queue = deque(
                label for label in self._order if label in set(plan.to_execute)
            )
            self._delayed = []
            self._leases = {}
            self._attempts = {label: 0 for label in self._order}
            self._done = []
            self._skipped = list(plan.skip)
            self._failed = {}
            self._last_error = {}
            self.log(
                f"grid submitted: {len(self._queue)} cell(s) queued, "
                f"{len(self._skipped)} already committed"
            )
            self.metrics.counter("fleet.grids_submitted").inc()
            self.events.emit(
                "grid.submitted",
                queued=len(self._queue), skipped=len(self._skipped),
                stale=len(plan.stale), partial=len(plan.partial),
            )
            return {
                "queued": len(self._queue),
                "skipped": len(self._skipped),
                "stale": len(plan.stale),
                "partial": len(plan.partial),
            }

    # ------------------------------------------------------------------
    # Worker-facing endpoints
    # ------------------------------------------------------------------
    def register(self, worker: str, slots: int = 1) -> Dict:
        if not worker:
            raise ValueError("worker registration needs a non-empty name")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        now = self.clock()
        with self._mu:
            rec = self._workers.get(worker)
            if rec is None:
                self._workers[worker] = _Worker(
                    name=worker, slots=int(slots),
                    registered_s=now, last_seen_s=now,
                )
                self.log(f"worker registered: {worker} (slots={slots})")
                self.metrics.counter("fleet.workers_registered").inc()
                self.events.emit("worker.registered", worker=worker,
                                 slots=int(slots))
            else:  # re-registration updates the cap, keeps the leases
                rec.slots = int(slots)
                rec.last_seen_s = now
        return {
            "ok": True,
            "lease_ttl_s": self.lease_ttl_s,
            "poll_s": self.poll_s,
            "root": str(self.root),
        }

    def lease(self, worker: str) -> Dict:
        """Hand one pending cell to ``worker``, or explain why not
        (``complete`` grid, empty-but-backing-off queue, or the worker's
        slot cap)."""
        if not worker:
            raise ValueError("lease request needs a worker name")
        now = self.clock()
        with self._mu:
            rec = self._touch_locked(worker, now)
            self._expire_leases_locked(now)
            self._promote_delayed_locked(now)
            if len(rec.leased) >= rec.slots:
                return {"cell": None, "complete": False,
                        "reason": "worker at slot capacity",
                        "retry_in_s": self.poll_s}
            if not self._queue:
                complete = self._complete_locked()
                retry = self.poll_s
                if self._delayed:
                    retry = max(
                        self.poll_s,
                        min(t for t, _ in self._delayed) - now,
                    )
                return {"cell": None, "complete": complete,
                        "reason": "no pending cells",
                        "retry_in_s": retry}
            label = self._queue.popleft()
            attempt = self._attempts[label]
            self._leases[label] = _Lease(
                label=label, worker=worker, attempt=attempt,
                expires_s=now + self.lease_ttl_s, acquired_s=now,
            )
            rec.leased.add(label)
            self.log(f"[lease]   {label} -> {worker} (attempt {attempt})")
            self.metrics.counter("fleet.leases_granted").inc()
            self.events.emit("lease.granted", label=label, worker=worker,
                             attempt=attempt)
            self.events.emit("cell.started", label=label, worker=worker,
                             attempt=attempt)
            return {
                "cell": spec_to_wire(self._specs[label]),
                "attempt": attempt,
                "lease_ttl_s": self.lease_ttl_s,
                "complete": False,
            }

    def heartbeat(self, worker: str, labels: Sequence[str]) -> Dict:
        """Renew ``worker``'s leases on ``labels``; returns the subset it
        no longer holds (expired and re-queued, or re-leased elsewhere)
        so the worker can abort those cell processes."""
        if not worker:
            raise ValueError("heartbeat needs a worker name")
        now = self.clock()
        lost: List[str] = []
        with self._mu:
            self._touch_locked(worker, now)
            self._expire_leases_locked(now)
            for label in labels:
                lease = self._leases.get(str(label))
                if lease is not None and lease.worker == worker:
                    lease.expires_s = now + self.lease_ttl_s
                else:
                    lost.append(str(label))
        return {"ok": True, "lost": lost}

    def report(self, worker: str, label: str, ok: bool,
               error: str = "") -> Dict:
        """Completion/failure report for one leased cell.

        A "done" report is verified against the results root (committed
        summary, matching config hash) before the cell is marked done;
        reports for leases the worker no longer holds are acknowledged
        without effect (its replacement owns the cell now).
        """
        if not worker or not label:
            raise ValueError("report needs a worker and a cell label")
        now = self.clock()
        with self._mu:
            self._touch_locked(worker, now)
            self._expire_leases_locked(now)
            lease = self._leases.get(label)
            if lease is None or lease.worker != worker:
                return {"accepted": False,
                        "reason": "lease not held by this worker"}
            self._drop_lease_locked(lease)
            if ok:
                spec = self._specs[label]
                summary = read_summary(self.root / label)
                if (
                    summary is not None
                    and summary.get("config_hash") == spec.hash()
                ):
                    self._done.append(label)
                    self.log(f"[done]    {label} ({worker})")
                    self.metrics.counter("fleet.cells_done").inc()
                    self.events.emit("cell.committed", label=label,
                                     worker=worker, attempt=lease.attempt)
                    return {"accepted": True}
                error = error or "reported done without a committed summary"
            self.events.emit(
                "cell.attempt_failed", label=label, worker=worker,
                attempt=lease.attempt, error=error,
                signal=signal_from_error(error),
            )
            self._requeue_locked(label, f"{error} (worker {worker})", now)
            return {"accepted": True}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        with self._mu:
            self._expire_leases_locked()
            return {
                "status": "ok",
                "schema": FLEET_SCHEMA,
                "uptime_s": self.clock() - self._started_clock,
                "root": str(self.root),
                "complete": self._complete_locked(),
                "cells": self._counts_locked(),
            }

    def status(self) -> Dict:
        now = self.clock()
        with self._mu:
            self._expire_leases_locked(now)
            self._promote_delayed_locked(now)
            return {
                "schema": FLEET_SCHEMA,
                "uptime_s": now - self._started_clock,
                "root": str(self.root),
                "complete": self._complete_locked(),
                "cells": self._counts_locked(),
                "pending": list(self._queue),
                "delayed": [
                    {"label": label, "eligible_in_s": max(0.0, t - now)}
                    for t, label in sorted(self._delayed)
                ],
                "leases": [
                    {
                        "label": lease.label,
                        "worker": lease.worker,
                        "attempt": lease.attempt,
                        "expires_in_s": lease.expires_s - now,
                    }
                    for lease in self._leases.values()
                ],
                "done": list(self._done),
                "skipped": list(self._skipped),
                "failed": dict(self._failed),
                "workers": [
                    {
                        "name": rec.name,
                        "slots": rec.slots,
                        "leased": sorted(rec.leased),
                        "last_seen_s_ago": now - rec.last_seen_s,
                    }
                    for rec in self._workers.values()
                ],
            }

    def failures(self) -> List[Dict]:
        """Per-cell failure rows for the dashboard: every cell that has
        been re-queued at least once or failed permanently, with its
        current state, attempt count, last error (and the signal name
        parsed out of it), and remaining backoff.  Rendered client-side
        by :func:`repro.obs.render_failure_table`
        (``repro fleet status --failures``)."""
        now = self.clock()
        with self._mu:
            self._expire_leases_locked(now)
            rows: List[Dict] = []
            delayed = {label: t for t, label in self._delayed}
            queued = set(self._queue)
            done = set(self._done)
            for label in self._order:
                attempts = self._attempts.get(label, 0)
                if attempts == 0 and label not in self._failed:
                    continue
                if label in self._failed:
                    state = "failed"
                elif label in self._leases:
                    state = "leased"
                elif label in delayed:
                    state = "delayed"
                elif label in queued:
                    state = "pending"
                elif label in done:
                    state = "done"
                else:
                    state = "unknown"
                lease = self._leases.get(label)
                error = self._last_error.get(label, "")
                rows.append({
                    "label": label,
                    "state": state,
                    "attempts": attempts,
                    "max_retries": self.max_retries,
                    "worker": lease.worker if lease is not None else "",
                    "backoff_in_s": (
                        max(0.0, delayed[label] - now)
                        if label in delayed else None
                    ),
                    "last_error": error,
                    "last_signal": signal_from_error(error),
                })
            return rows

    def metrics_view(self) -> Dict:
        """The ``GET /metrics`` payload: instrument snapshot (request
        counters, per-endpoint latency histograms, lease/requeue/failure
        counters), the recent event ring, and the per-cell failure rows.
        Canonical JSON on the wire, so two scrapes of the same state are
        byte-identical."""
        # failures() first: it sweeps expired leases, and the expiry
        # counters/events must land in this scrape, not the next one.
        failures = self.failures()
        return {
            "schema": FLEET_SCHEMA,
            "obs_schema": OBS_SCHEMA,
            "uptime_s": self.clock() - self._started_clock,
            "metrics": self.metrics.snapshot(),
            "events": self.events.snapshot(limit=256),
            "failures": failures,
        }

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _touch_locked(self, worker: str, now: float) -> _Worker:
        rec = self._workers.get(worker)
        if rec is None:  # self-registering agents: a poll implies a worker
            rec = _Worker(name=worker, slots=1,
                          registered_s=now, last_seen_s=now)
            self._workers[worker] = rec
            self.log(f"worker auto-registered: {worker}")
        rec.last_seen_s = now
        return rec

    def _drop_lease_locked(self, lease: _Lease) -> None:
        self._leases.pop(lease.label, None)
        rec = self._workers.get(lease.worker)
        if rec is not None:
            rec.leased.discard(lease.label)

    def _expire_leases_locked(self, now: Optional[float] = None) -> None:
        now = self.clock() if now is None else now
        for lease in [
            lease for lease in self._leases.values()
            if lease.expires_s <= now
        ]:
            self._drop_lease_locked(lease)
            self.log(f"[expire]  {lease.label} "
                     f"(lease of {lease.worker} timed out)")
            self.metrics.counter("fleet.leases_expired").inc()
            self.events.emit("lease.expired", label=lease.label,
                             worker=lease.worker, attempt=lease.attempt)
            self._requeue_locked(
                lease.label,
                f"lease expired (worker {lease.worker} stopped "
                "heartbeating)",
                now,
            )

    def _requeue_locked(self, label: str, reason: str, now: float) -> None:
        self._attempts[label] += 1
        attempt = self._attempts[label]
        self._last_error[label] = reason
        if attempt > self.max_retries:
            self._failed[label] = reason
            self.log(f"[failed]  {label} after {attempt} attempt(s): "
                     f"{reason}")
            self.metrics.counter("fleet.cells_failed").inc()
            self.events.emit("cell.failed", label=label, attempts=attempt,
                             error=reason, signal=signal_from_error(reason))
            return
        delay = min(
            self.backoff_s * (2 ** (attempt - 1)), self.backoff_max_s
        )
        self._delayed.append((now + delay, label))
        self.log(f"[requeue] {label} in {delay:g}s "
                 f"(attempt {attempt}: {reason})")
        self.metrics.counter("fleet.cells_requeued").inc()
        self.events.emit("cell.requeued", label=label, attempt=attempt,
                         delay_s=delay, error=reason,
                         signal=signal_from_error(reason))

    def _promote_delayed_locked(self, now: float) -> None:
        due = [(t, label) for t, label in self._delayed if t <= now]
        if not due:
            return
        self._delayed = [(t, label) for t, label in self._delayed if t > now]
        for _t, label in sorted(due):
            self._queue.append(label)

    def _complete_locked(self) -> bool:
        return bool(self._specs) and not (
            self._queue or self._delayed or self._leases
        )

    def _counts_locked(self) -> Dict[str, int]:
        return {
            "total": len(self._specs),
            "pending": len(self._queue),
            "delayed": len(self._delayed),
            "leased": len(self._leases),
            "done": len(self._done),
            "skipped": len(self._skipped),
            "failed": len(self._failed),
        }

    # ------------------------------------------------------------------
    # HTTP dispatch
    # ------------------------------------------------------------------
    def _count_request(self, endpoint: str) -> None:
        with self._mu:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def handle(self, method: str, path: str, body: Optional[Dict]):
        """``(status, response-mapping)`` for one request."""
        endpoint = f"{method} {path}"
        start = time.perf_counter()
        status, payload = self._dispatch(method, path, body)
        elapsed = time.perf_counter() - start
        self.metrics.counter(labeled("http.requests", endpoint)).inc()
        if status >= 400:
            self.metrics.counter(labeled("http.errors", endpoint)).inc()
        self.metrics.histogram(labeled("http.latency_s", endpoint)).observe(
            elapsed
        )
        return status, payload

    def _dispatch(self, method: str, path: str, body: Optional[Dict]):
        body = body or {}
        self._count_request(f"{method} {path}")
        try:
            if (method, path) == ("GET", "/health"):
                return 200, self.health()
            if (method, path) == ("GET", "/status"):
                return 200, self.status()
            if (method, path) == ("GET", "/metrics"):
                return 200, self.metrics_view()
            if (method, path) == ("POST", "/v1/grid"):
                cells = body.get("cells")
                if not isinstance(cells, list):
                    raise ValueError("'cells' must be a list of cell objects")
                return 200, self.submit_grid(cells)
            if (method, path) == ("POST", "/v1/register"):
                return 200, self.register(
                    str(body.get("worker", "")), int(body.get("slots", 1))
                )
            if (method, path) == ("POST", "/v1/lease"):
                return 200, self.lease(str(body.get("worker", "")))
            if (method, path) == ("POST", "/v1/heartbeat"):
                labels = body.get("labels") or []
                if not isinstance(labels, list):
                    raise ValueError("'labels' must be a list")
                return 200, self.heartbeat(
                    str(body.get("worker", "")), labels
                )
            if (method, path) == ("POST", "/v1/report"):
                return 200, self.report(
                    str(body.get("worker", "")),
                    str(body.get("label", "")),
                    bool(body.get("ok", False)),
                    str(body.get("error", "")),
                )
            self.metrics.counter("http.unmatched").inc()
            return 404, {"error": f"unknown endpoint {method} {path}"}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}


class _FleetHandler(BaseHTTPRequestHandler):
    server_version = "repro-fleet/1"

    def _respond(self, status: int, payload: Dict) -> None:
        raw = dumps_canonical(payload, indent=None).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _dispatch(self, method: str) -> None:
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError):
                self._respond(400, {"error": "request body is not valid JSON"})
                return
            if not isinstance(body, dict):
                self._respond(
                    400, {"error": "request body must be a JSON object"}
                )
                return
        status, payload = self.server.controller.handle(
            method, self.path, body
        )
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, fmt, *args) -> None:  # quiet by default
        pass


class _FleetServer(ThreadingHTTPServer):
    daemon_threads = True
    controller: FleetController


def make_fleet_server(
    root,
    host: str = "127.0.0.1",
    port: int = DEFAULT_FLEET_PORT,
    controller: Optional[FleetController] = None,
    **controller_opts,
) -> _FleetServer:
    """A ready-to-serve controller bound to ``host:port`` (``port=0``
    picks a free port — see ``server_port``).  The caller owns the
    loop: ``serve_forever()`` / ``shutdown()``."""
    if controller is None:
        controller = FleetController(root, **controller_opts)
    server = _FleetServer((host, port), _FleetHandler)
    server.controller = controller
    return server


def serve_fleet(
    root,
    host: str = "127.0.0.1",
    port: int = DEFAULT_FLEET_PORT,
    grid: Optional[Sequence[RunSpec]] = None,
    log=print,
    **controller_opts,
) -> None:  # pragma: no cover - blocking CLI loop
    """Blocking entry point of ``repro fleet serve``.  With ``grid``,
    the controller self-submits it at startup (resume semantics: cells
    already committed under ``root`` are skipped)."""
    server = make_fleet_server(root, host=host, port=port, log=log,
                               **controller_opts)
    if grid is not None:
        server.controller.submit_grid([spec_to_wire(s) for s in grid])
    log(
        f"repro fleet controller on http://{host}:{server.server_port} "
        f"(results root: {root})"
    )
    log("endpoints: GET /health /status /metrics; "
        "POST /v1/{grid,register,lease,heartbeat,report}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log("shutting down")
    finally:
        server.shutdown()

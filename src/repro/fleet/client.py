"""Fleet wire client: :class:`ServiceClient` plus the fleet endpoints.

The transport (stdlib ``urllib``, JSON bodies, :class:`ServiceError` on
HTTP error statuses) is inherited unchanged from the bound-service
client — including its bounded connection-level retry with exponential
backoff and jitter, which fleet callers turn **on** by default: a
worker's poll loop must survive the controller restarting (connection
refused for a few seconds) without dying, while HTTP-level errors
(``400 unknown experiment``) still fail fast.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..service.client import ServiceClient, ServiceError

__all__ = ["FleetClient", "ServiceError"]


class FleetClient(ServiceClient):
    """Talk to a running fleet controller.

    Same constructor as :class:`ServiceClient`, but ``retries`` defaults
    to 5 (with ``backoff_s=0.2`` that tolerates ~6 s of controller
    downtime per call before surfacing the ``URLError``).
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 5,
        backoff_s: float = 0.2,
    ) -> None:
        super().__init__(
            base_url, timeout_s=timeout_s, retries=retries,
            backoff_s=backoff_s,
        )

    # -- endpoint mirrors ----------------------------------------------
    def status(self) -> Dict:
        return self.get("/status")

    def submit_grid(self, cells: Sequence[Dict]) -> Dict:
        return self.post("/v1/grid", {"cells": list(cells)})

    def register(self, worker: str, slots: int = 1) -> Dict:
        return self.post("/v1/register", {"worker": worker, "slots": slots})

    def lease(self, worker: str) -> Dict:
        return self.post("/v1/lease", {"worker": worker})

    def heartbeat(self, worker: str, labels: Sequence[str]) -> Dict:
        return self.post(
            "/v1/heartbeat", {"worker": worker, "labels": list(labels)}
        )

    def report(
        self, worker: str, label: str, ok: bool, error: str = ""
    ) -> Dict:
        return self.post(
            "/v1/report",
            {"worker": worker, "label": label, "ok": ok, "error": error},
        )

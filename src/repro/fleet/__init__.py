"""Controller/worker fleet: distributed experiment sweeps.

The layer above ``sweep --jobs N`` (per-cell worker processes on one
machine): a small stdlib-HTTP **controller** owns a persistent cell
queue derived from :func:`repro.evaluation.harness.plan_resume` over a
shared results root, and polling **workers** — on the same machine or
any host that can reach the controller and the results root — lease
cells, execute them through the harness's crash-isolated cell-process
machinery, and report back.  Leases carry a TTL renewed by heartbeats;
an expired lease re-queues its cell with bounded retries and
exponential backoff, so worker crashes, hangs and partitions cost one
lease window, never the sweep.  Results are byte-identical to
``sweep --jobs 1`` and the committed store *is* the controller's
durable state: restarting the controller re-plans over the results
root and never recomputes a committed cell.

See ``docs/fleet.md`` for the wire protocol and operational notes.
"""

from .client import FleetClient
from .controller import (
    DEFAULT_FLEET_PORT,
    FleetController,
    make_fleet_server,
    serve_fleet,
)
from .worker import FleetWorker, fleet_sweep

__all__ = [
    "DEFAULT_FLEET_PORT",
    "FleetClient",
    "FleetController",
    "FleetWorker",
    "fleet_sweep",
    "make_fleet_server",
    "serve_fleet",
]

"""Fleet worker: poll, lease, execute, report.

A worker is a thin scheduling shell around the *same* per-cell
machinery ``sweep --jobs N`` uses: each leased cell runs in its own
process via :func:`~repro.evaluation.harness._cell_process_main`
(crash isolation, ``REPRO_HARNESS_KILL_AT`` fault injection, optional
artifact store), writing into the shared results root under the exact
run-directory commit protocol — which is what makes a fleet sweep
byte-identical to a local one.

The loop, once per tick:

1. **Reap** finished cell processes; report exit 0 as done (the
   controller re-verifies the committed summary) and anything else as
   a failure named by :func:`describe_worker_exit`.
2. **Heartbeat** at a third of the lease TTL, listing the cells still
   running; any label the controller says is *lost* (lease expired or
   re-assigned) gets its process terminated — two owners of one run
   directory would be wasteful, though never incorrect.
3. **Lease** more cells while local slots are free (``slots`` is the
   per-worker concurrency cap; the controller enforces it too).

Connection-level hiccups are absorbed by :class:`FleetClient`'s
bounded retry; if the controller stays down past that, the worker
terminates its cells and exits — the next controller re-queues the
unfinished cells from the results root.
"""

from __future__ import annotations

import os
import shutil
import socket
import time
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..evaluation.harness import (
    REGISTRY,
    RunSpec,
    _cell_process_main,
    _mp_context,
    describe_worker_exit,
)
from ..obs import EventRing, MetricsRegistry, signal_from_error
from .client import FleetClient
from .controller import spec_from_wire, spec_to_wire

__all__ = ["FleetWorker", "fleet_sweep"]


class FleetWorker:
    """One polling worker process (hosting up to ``slots`` cell
    subprocesses) attached to a fleet controller.

    Parameters
    ----------
    url:
        Controller base URL, e.g. ``"http://127.0.0.1:8199"``.
    root:
        The shared results root; must be the same filesystem tree the
        controller plans over.
    name:
        Stable worker identity for leases; defaults to
        ``"<hostname>-<pid>"``.
    slots:
        Local concurrency cap — at most this many cell processes at
        once (mirrors ``sweep --jobs``).
    store_path:
        Optional artifact-store path forwarded to every cell process.
    exit_when_done:
        Leave the poll loop once the controller reports the grid
        complete (the default); long-lived workers that should idle
        and wait for the next grid pass ``False``.
    cell_timeout:
        Optional per-cell wall-clock limit; a cell past it is
        terminated and reported failed (the controller's retry budget
        decides what happens next).
    """

    def __init__(
        self,
        url: str,
        root,
        name: Optional[str] = None,
        slots: int = 1,
        poll_s: Optional[float] = None,
        registry: Mapping = REGISTRY,
        store_path: Optional[str] = None,
        exit_when_done: bool = True,
        cell_timeout: Optional[float] = None,
        client: Optional[FleetClient] = None,
        log: Callable[[str], None] = print,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.root = Path(root)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.slots = int(slots)
        self.poll_s = poll_s
        self.registry = registry
        self.store_path = store_path
        self.exit_when_done = exit_when_done
        self.cell_timeout = cell_timeout
        self.client = client if client is not None else FleetClient(url)
        self.log = log
        #: label -> (process, deadline | None)
        self._running: Dict[str, Tuple] = {}
        self._ctx = _mp_context()
        self.executed = 0
        self.reported_failed = 0
        self.metrics = MetricsRegistry()
        self.events = EventRing()

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, int]:
        """Poll until the grid completes (or forever, with
        ``exit_when_done=False``); returns ``{"executed": n,
        "failed": m}`` counts for this worker."""
        info = self.client.register(self.name, self.slots)
        lease_ttl = float(info.get("lease_ttl_s", 30.0))
        poll_s = (
            self.poll_s if self.poll_s is not None
            else float(info.get("poll_s", 0.5))
        )
        heartbeat_every = max(lease_ttl / 3.0, 0.05)
        next_heartbeat = time.monotonic() + heartbeat_every
        self.log(
            f"fleet worker {self.name}: slots={self.slots}, "
            f"lease_ttl={lease_ttl:g}s, root={self.root}"
        )
        try:
            while True:
                self._reap()
                now = time.monotonic()
                if now >= next_heartbeat and self._running:
                    lost = self.client.heartbeat(
                        self.name, list(self._running)
                    ).get("lost", [])
                    for label in lost:
                        self._terminate(label, "lease lost")
                    next_heartbeat = now + heartbeat_every
                idle_s = poll_s
                while len(self._running) < self.slots:
                    resp = self.client.lease(self.name)
                    cell = resp.get("cell")
                    if cell is None:
                        if (
                            resp.get("complete")
                            and not self._running
                            and self.exit_when_done
                        ):
                            self.log(
                                f"fleet worker {self.name}: grid complete "
                                f"({self.executed} cell(s) executed)"
                            )
                            return {
                                "executed": self.executed,
                                "failed": self.reported_failed,
                            }
                        idle_s = min(
                            max(float(resp.get("retry_in_s", poll_s)),
                                0.01),
                            heartbeat_every,
                        )
                        break
                    self.metrics.counter("worker.leases_acquired").inc()
                    self._start_cell(spec_from_wire(cell))
                time.sleep(idle_s if not self._running else 0.01)
        finally:
            # Never orphan cell processes: on any exit path (controller
            # unreachable, KeyboardInterrupt) terminate and reap them.
            # Their leases expire and the cells are re-queued.
            for label in list(self._running):
                self._terminate(label, "worker shutting down")

    # ------------------------------------------------------------------
    def _start_cell(self, spec: RunSpec) -> None:
        run_dir = self.root / spec.label
        if run_dir.exists():
            shutil.rmtree(run_dir)
        run_dir.mkdir(parents=True)
        self.log(f"[run]     {spec.label}")
        proc = self._ctx.Process(
            target=_cell_process_main,
            args=(spec, str(run_dir), self.registry, self.store_path),
        )
        proc.start()
        deadline = (
            None if self.cell_timeout is None
            else time.monotonic() + self.cell_timeout
        )
        self._running[spec.label] = (proc, deadline)
        self.metrics.counter("worker.cells_started").inc()
        self.events.emit("cell.started", label=spec.label, worker=self.name)

    def _reap(self) -> None:
        for label, (proc, deadline) in list(self._running.items()):
            if proc.is_alive():
                if deadline is not None and time.monotonic() >= deadline:
                    self._kill_proc(proc)
                    del self._running[label]
                    self.reported_failed += 1
                    self.metrics.counter("worker.cells_timeout").inc()
                    self.events.emit("cell.timeout", label=label,
                                     worker=self.name,
                                     timeout_s=self.cell_timeout)
                    self.client.report(
                        self.name, label, ok=False,
                        error=f"timed out after {self.cell_timeout:g}s",
                    )
                    self.log(f"[timeout] {label}")
                continue
            proc.join()
            del self._running[label]
            if proc.exitcode == 0:
                self.executed += 1
                self.metrics.counter("worker.cells_done").inc()
                self.events.emit("cell.committed", label=label,
                                 worker=self.name)
                self.client.report(self.name, label, ok=True)
                self.log(f"[done]    {label}")
            else:
                reason = describe_worker_exit(proc.exitcode)
                self.reported_failed += 1
                self.metrics.counter("worker.cells_failed").inc()
                self.events.emit("cell.failed", label=label,
                                 worker=self.name, error=reason,
                                 signal=signal_from_error(reason))
                self.client.report(self.name, label, ok=False, error=reason)
                self.log(f"[failed]  {label} ({reason})")

    def _terminate(self, label: str, why: str) -> None:
        proc, _deadline = self._running.pop(label)
        if proc.is_alive():
            self._kill_proc(proc)
        self.metrics.counter("worker.cells_lost").inc()
        self.events.emit("cell.lost", label=label, worker=self.name,
                         reason=why)
        self.log(f"[drop]    {label} ({why})")

    @staticmethod
    def _kill_proc(proc) -> None:
        proc.terminate()
        proc.join(5.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.kill()
            proc.join()


def fleet_sweep(
    url: str,
    specs: Sequence[RunSpec],
    poll_s: float = 0.5,
    timeout_s: Optional[float] = None,
    client: Optional[FleetClient] = None,
    log: Callable[[str], None] = print,
) -> Dict:
    """Drive a grid through a running fleet (``sweep --fleet URL``):
    submit the cells, poll ``/status`` until the grid completes, and
    return the final status mapping (``done`` / ``skipped`` / ``failed``
    tell the story; workers do the executing).
    """
    client = client if client is not None else FleetClient(url)
    submitted = client.submit_grid([spec_to_wire(s) for s in specs])
    log(
        f"fleet grid submitted: {submitted['queued']} queued, "
        f"{submitted['skipped']} already committed"
    )
    deadline = (
        None if timeout_s is None else time.monotonic() + timeout_s
    )
    last_done = -1
    while True:
        status = client.status()
        counts = status["cells"]
        finished = counts["done"] + counts["skipped"] + counts["failed"]
        if finished != last_done:
            log(
                f"fleet progress: {counts['done']} done, "
                f"{counts['skipped']} skipped, {counts['failed']} failed, "
                f"{counts['pending'] + counts['delayed']} pending, "
                f"{counts['leased']} leased "
                f"({len(status['workers'])} worker(s))"
            )
            last_done = finished
        if status["complete"]:
            return status
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"fleet sweep did not complete within {timeout_s:g}s; "
                f"last status: {counts}"
            )
        time.sleep(poll_s)

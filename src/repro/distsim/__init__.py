"""Simulated distributed-memory machine: measured upper bounds on traffic.

* :mod:`repro.distsim.cache` — LRU/Belady cache simulation for vertical
  (DRAM<->cache) traffic;
* :mod:`repro.distsim.partitioning` — block partitioning and ghost-shell
  geometry for horizontal (inter-node) traffic;
* :mod:`repro.distsim.cluster` — workload-level simulation (stencil
  sweeps, CG iterations) over a cluster of cached nodes;
* :mod:`repro.distsim.executor` — CDAG-level owner-computes execution
  with per-node traffic accounting.
"""

from .cache import CacheSimulator, CacheStats, simulate_trace
from .cluster import ClusterTrafficReport, SimulatedCluster
from .executor import DistributedExecutionReport, DistributedExecutor
from .partitioning import BlockPartition, node_grid

__all__ = [
    "CacheSimulator",
    "CacheStats",
    "simulate_trace",
    "ClusterTrafficReport",
    "SimulatedCluster",
    "DistributedExecutionReport",
    "DistributedExecutor",
    "BlockPartition",
    "node_grid",
]

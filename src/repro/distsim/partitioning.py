"""Block partitioning of d-dimensional grids over cluster nodes.

The horizontal-cost upper bounds of Sections 5.2.2/5.3.2/5.4.2 assume the
input grid is block partitioned: each node owns a contiguous block of
grid points and fetches the ghost shell of its block from its neighbours
every sweep.  This module provides the partition geometry:

* :func:`node_grid` — factor the node count into a near-cubic d-dimensional
  arrangement;
* :class:`BlockPartition` — owner lookup, per-node blocks, ghost-shell
  enumeration and the ghost volume ``(B + 2)^d - B^d`` the paper uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["node_grid", "BlockPartition"]


def node_grid(num_nodes: int, dimensions: int) -> Tuple[int, ...]:
    """Factor ``num_nodes`` into a d-dimensional processor grid.

    Greedily splits the node count into factors as close to the d-th root
    as possible (largest factors first), so e.g. 8 nodes in 3-D become
    ``(2, 2, 2)`` and 12 nodes in 2-D become ``(4, 3)``.  The product of
    the returned extents always equals ``num_nodes``.
    """
    if num_nodes < 1 or dimensions < 1:
        raise ValueError("num_nodes and dimensions must be >= 1")
    remaining = num_nodes
    extents: List[int] = []
    for k in range(dimensions, 0, -1):
        target = round(remaining ** (1.0 / k)) or 1
        # find a divisor of `remaining` close to target
        best = 1
        for cand in range(1, remaining + 1):
            if remaining % cand == 0:
                if abs(cand - target) < abs(best - target):
                    best = cand
        extents.append(best)
        remaining //= best
    extents[-1] *= remaining  # absorb any leftover (remaining should be 1)
    extents.sort(reverse=True)
    return tuple(extents)


@dataclass(frozen=True)
class BlockPartition:
    """A block partitioning of a grid of ``shape`` over a ``nodes`` grid.

    Node ``(p_1, ..., p_d)`` owns the slice
    ``[lo_k(p_k), hi_k(p_k))`` along each axis ``k``, with the first
    ``shape_k % nodes_k`` slabs one point larger to absorb remainders.
    """

    shape: Tuple[int, ...]
    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.nodes):
            raise ValueError("shape and node grid must have equal rank")
        if any(n < 1 for n in self.shape) or any(p < 1 for p in self.nodes):
            raise ValueError("extents must be >= 1")
        if any(p > n for n, p in zip(self.shape, self.nodes)):
            raise ValueError("cannot have more node slabs than grid points")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_nodes(self) -> int:
        out = 1
        for p in self.nodes:
            out *= p
        return out

    def node_ids(self) -> Iterable[Tuple[int, ...]]:
        return itertools.product(*[range(p) for p in self.nodes])

    def node_index(self, node: Sequence[int]) -> int:
        """Flatten a node multi-index to a linear rank."""
        idx = 0
        for k, (p, extent) in enumerate(zip(node, self.nodes)):
            idx = idx * extent + p
        return idx

    def _bounds(self, axis: int, p: int) -> Tuple[int, int]:
        n, parts = self.shape[axis], self.nodes[axis]
        base, rem = divmod(n, parts)
        lo = p * base + min(p, rem)
        hi = lo + base + (1 if p < rem else 0)
        return lo, hi

    def block_bounds(self, node: Sequence[int]) -> List[Tuple[int, int]]:
        """Per-axis ``[lo, hi)`` bounds of the node's block."""
        return [self._bounds(axis, p) for axis, p in enumerate(node)]

    def block_points(self, node: Sequence[int]) -> Iterable[Tuple[int, ...]]:
        bounds = self.block_bounds(node)
        return itertools.product(*[range(lo, hi) for lo, hi in bounds])

    def block_size(self, node: Sequence[int]) -> int:
        out = 1
        for lo, hi in self.block_bounds(node):
            out *= hi - lo
        return out

    def owner(self, point: Sequence[int]) -> Tuple[int, ...]:
        """The node owning a grid point."""
        node: List[int] = []
        for axis, x in enumerate(point):
            n, parts = self.shape[axis], self.nodes[axis]
            base, rem = divmod(n, parts)
            # Points 0 .. rem*(base+1)-1 belong to the first `rem` slabs.
            cutoff = rem * (base + 1)
            if x < cutoff:
                node.append(x // (base + 1))
            else:
                node.append(rem + (x - cutoff) // base if base else rem)
        return tuple(node)

    def ghost_points(
        self, node: Sequence[int], radius: int = 1
    ) -> List[Tuple[int, ...]]:
        """Grid points within ``radius`` of the node's block but owned by
        other nodes (the ghost shell it must receive every sweep)."""
        bounds = self.block_bounds(node)
        lo = [max(0, b[0] - radius) for b in bounds]
        hi = [min(self.shape[k], bounds[k][1] + radius) for k in range(self.ndim)]
        inner = set(self.block_points(node))
        out: List[Tuple[int, ...]] = []
        for p in itertools.product(*[range(lo_k, hi_k) for lo_k, hi_k in zip(lo, hi)]):
            if p not in inner:
                out.append(p)
        return out

    def ghost_volume(self, node: Sequence[int], radius: int = 1) -> int:
        """Number of ghost points — the measured counterpart of the paper's
        ``(B + 2)^d - B^d`` (exact for interior nodes with radius 1)."""
        return len(self.ghost_points(node, radius))

    def max_ghost_volume(self, radius: int = 1) -> int:
        """The largest ghost shell over all nodes (the bound-relevant one)."""
        return max(self.ghost_volume(node, radius) for node in self.node_ids())

"""CDAG-level distributed execution with traffic accounting.

While :class:`~repro.distsim.cluster.SimulatedCluster` measures the
traffic of hand-written reference streams for specific workloads, this
module measures the traffic of executing an *arbitrary CDAG* over a set of
nodes: each vertex is assigned to a node (owner computes), operand values
owned by other nodes are fetched over the network (horizontal words), and
each node's local reference stream (operands + results of its vertices)
is replayed through a per-node cache (vertical words).

This is a lighter-weight companion of the formally rule-checked
:func:`repro.pebbling.strategies.parallel_spill_game`: it scales to CDAGs
with hundreds of thousands of vertices, which the pebble-game engine (with
its per-move validation) does not, and it is what experiment E8 uses to
compare measured traffic against the Theorem 5-7 bounds on mid-sized
problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.cdag import CDAG, Vertex
from ..core.ordering import topological_schedule, validate_schedule
from .cache import CacheSimulator

__all__ = ["DistributedExecutionReport", "DistributedExecutor"]


@dataclass
class DistributedExecutionReport:
    """Per-node traffic of one distributed CDAG execution (in words)."""

    horizontal_per_node: Dict[int, int] = field(default_factory=dict)
    vertical_per_node: Dict[int, int] = field(default_factory=dict)
    computes_per_node: Dict[int, int] = field(default_factory=dict)

    @property
    def max_horizontal(self) -> int:
        return max(self.horizontal_per_node.values(), default=0)

    @property
    def max_vertical(self) -> int:
        return max(self.vertical_per_node.values(), default=0)

    @property
    def total_computes(self) -> int:
        return sum(self.computes_per_node.values())

    @property
    def total_horizontal(self) -> int:
        return sum(self.horizontal_per_node.values())

    @property
    def total_vertical(self) -> int:
        return sum(self.vertical_per_node.values())


class DistributedExecutor:
    """Execute a CDAG over ``num_nodes`` nodes and count data movement.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    cache_words:
        Per-node cache capacity for the vertical measurement.
    policy:
        Cache replacement policy.
    """

    def __init__(
        self, num_nodes: int, cache_words: int, policy: str = "lru"
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cache_words = cache_words
        self.policy = policy

    def run(
        self,
        cdag: CDAG,
        assignment: Optional[Dict[Vertex, int]] = None,
        schedule: Optional[Sequence[Vertex]] = None,
        partitioner: Optional[Callable[[Vertex], int]] = None,
    ) -> DistributedExecutionReport:
        """Execute ``cdag`` with an owner-computes mapping and measure traffic.

        ``assignment`` maps every vertex to a node rank; alternatively a
        ``partitioner`` callable may be given (e.g. keyed on the grid
        coordinates embedded in the vertex names).  Missing both, vertices
        are assigned by contiguous blocks of the schedule.
        """
        schedule = (
            list(schedule) if schedule is not None else topological_schedule(cdag)
        )
        validate_schedule(cdag, schedule)
        # Everything below runs in the integer-id space of the compiled
        # CDAG: the replay loop touches every edge once per node, so dict
        # lookups on tuple-named vertices would dominate at the CDAG sizes
        # this executor exists for (10^5-10^6 vertices).
        c = cdag.compiled()
        n = c.n
        sched_ids = c.ids_of(schedule)
        pred_lists = c.pred_lists
        is_input = c.is_input_mask.tolist()

        assign: List[int]
        if assignment is None:
            if partitioner is not None:
                assign = [
                    int(partitioner(c.vertex(i))) % self.num_nodes
                    for i in range(n)
                ]
            else:
                ops = [i for i in sched_ids if not is_input[i]]
                per = max(1, (len(ops) + self.num_nodes - 1) // self.num_nodes)
                assign = [0] * n
                for k, i in enumerate(ops):
                    assign[i] = min(k // per, self.num_nodes - 1)
                succ_lists = c.succ_lists
                for i in range(n):
                    if is_input[i]:
                        succ = succ_lists[i]
                        assign[i] = assign[succ[0]] if succ else 0
        else:
            missing = [v for v in cdag.vertices if v not in assignment]
            if missing:
                raise ValueError(
                    f"assignment misses vertices, e.g. {missing[:3]}"
                )
            bad = [
                v for v, r in assignment.items()
                if not 0 <= r < self.num_nodes
            ]
            if bad:
                raise ValueError(
                    f"assignment maps to unknown nodes, e.g. {bad[:3]}"
                )
            assign = [assignment[c.vertex(i)] for i in range(n)]

        report = DistributedExecutionReport()
        caches = [
            CacheSimulator(self.cache_words, policy=self.policy)
            for _ in range(self.num_nodes)
        ]
        # Values already present in a node's memory (owned inputs or
        # previously received copies) need no new horizontal transfer.
        resident: List[set] = [set() for _ in range(self.num_nodes)]
        for i in range(n):
            if is_input[i]:
                resident[assign[i]].add(i)

        horizontal = [0] * self.num_nodes
        computes = [0] * self.num_nodes

        for i in sched_ids:
            if is_input[i]:
                continue
            node = assign[i]
            cache = caches[node]
            res = resident[node]
            access = cache.access
            for u in pred_lists[i]:
                if u not in res:
                    horizontal[node] += 1
                    res.add(u)
                access(u, write=False)
            access(i, write=True)
            res.add(i)
            computes[node] += 1

        for r, cache in enumerate(caches):
            cache.flush()
            report.vertical_per_node[r] = cache.stats.vertical_traffic
            report.horizontal_per_node[r] = horizontal[r]
            report.computes_per_node[r] = computes[r]
        return report

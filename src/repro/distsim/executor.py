"""CDAG-level distributed execution with traffic accounting.

While :class:`~repro.distsim.cluster.SimulatedCluster` measures the
traffic of hand-written reference streams for specific workloads, this
module measures the traffic of executing an *arbitrary CDAG* over a set of
nodes: each vertex is assigned to a node (owner computes), operand values
owned by other nodes are fetched over the network (horizontal words), and
each node's local reference stream (operands + results of its vertices)
is replayed through a per-node cache (vertical words).

This is a lighter-weight companion of the formally rule-checked
:func:`repro.pebbling.strategies.parallel_spill_game`: it scales to CDAGs
with hundreds of thousands of vertices, and it is what experiment E8 uses
to compare measured traffic against the Theorem 5-7 bounds on mid-sized
problems.

Two entry points share the id-space replay loop:

* :meth:`DistributedExecutor.run` executes a *schedule* (a vertex order);
* :meth:`DistributedExecutor.run_record` executes a recorded pebble game,
  reading the fired-operation order straight out of the columnar
  :class:`~repro.pebbling.state.MoveLog` (a vectorized filter of the
  opcode column — no ``Move`` objects, no vertex-name hashing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.cdag import CDAG, Vertex
from ..core.ordering import topological_schedule, validate_schedule
from .cache import CacheSimulator

__all__ = ["DistributedExecutionReport", "DistributedExecutor"]


@dataclass
class DistributedExecutionReport:
    """Per-node traffic of one distributed CDAG execution (in words)."""

    horizontal_per_node: Dict[int, int] = field(default_factory=dict)
    vertical_per_node: Dict[int, int] = field(default_factory=dict)
    computes_per_node: Dict[int, int] = field(default_factory=dict)

    @property
    def max_horizontal(self) -> int:
        return max(self.horizontal_per_node.values(), default=0)

    @property
    def max_vertical(self) -> int:
        return max(self.vertical_per_node.values(), default=0)

    @property
    def total_computes(self) -> int:
        return sum(self.computes_per_node.values())

    @property
    def total_horizontal(self) -> int:
        return sum(self.horizontal_per_node.values())

    @property
    def total_vertical(self) -> int:
        return sum(self.vertical_per_node.values())


class DistributedExecutor:
    """Execute a CDAG over ``num_nodes`` nodes and count data movement.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    cache_words:
        Per-node cache capacity for the vertical measurement.
    policy:
        Cache replacement policy.
    """

    def __init__(
        self, num_nodes: int, cache_words: int, policy: str = "lru"
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cache_words = cache_words
        self.policy = policy

    def run(
        self,
        cdag: CDAG,
        assignment: Optional[Dict[Vertex, int]] = None,
        schedule: Optional[Sequence[Vertex]] = None,
        partitioner: Optional[Callable[[Vertex], int]] = None,
    ) -> DistributedExecutionReport:
        """Execute ``cdag`` with an owner-computes mapping and measure traffic.

        ``assignment`` maps every vertex to a node rank; alternatively a
        ``partitioner`` callable may be given (e.g. keyed on the grid
        coordinates embedded in the vertex names).  Missing both, vertices
        are assigned by contiguous blocks of the schedule.
        """
        schedule = (
            list(schedule) if schedule is not None else topological_schedule(cdag)
        )
        validate_schedule(cdag, schedule)
        # Everything below runs in the integer-id space of the compiled
        # CDAG: the replay loop touches every edge once per node, so dict
        # lookups on tuple-named vertices would dominate at the CDAG sizes
        # this executor exists for (10^5-10^6 vertices).
        c = cdag.compiled()
        sched_ids = c.ids_of(schedule)
        is_input = c.is_input_mask.tolist()
        op_ids = [i for i in sched_ids if not is_input[i]]
        assign = self._build_assignment(
            cdag, c, op_ids, assignment, partitioner, is_input
        )
        return self._execute(c, op_ids, assign, is_input)

    def run_record(
        self,
        cdag: CDAG,
        record,
        assignment: Optional[Dict[Vertex, int]] = None,
        partitioner: Optional[Callable[[Vertex], int]] = None,
    ) -> DistributedExecutionReport:
        """Execute the operation order of a recorded pebble game.

        ``record`` is a :class:`~repro.pebbling.state.GameRecord` (or its
        :class:`~repro.pebbling.state.MoveLog`) produced against ``cdag``,
        e.g. by :func:`repro.pebbling.strategies.spill_game_rbw`.  The
        fired-operation schedule is extracted from the COMPUTE rows of the
        log's opcode column in one vectorized per-chunk filter and replayed
        through the per-node caches — no ``Move`` objects are materialized,
        and a disk-spilled log (``MoveLog(spill=...)``) is paged in one
        block at a time, so even 10^8-move records replay with flat
        resident memory.

        The game must fire every operation exactly once (RBW/P-RBW games
        always do; red-blue games only if the strategy never recomputes).
        """
        from ..pebbling.state import GameRecord, MoveKind, MoveLog

        log = record.log if isinstance(record, GameRecord) else record
        if not isinstance(log, MoveLog):
            raise TypeError(
                "run_record expects a GameRecord or MoveLog; got "
                f"{type(record).__name__} (use run(schedule=...) instead)"
            )
        c = cdag.compiled()
        if not log.is_bound_to(c):
            raise ValueError(
                "the move log was not recorded against this CDAG "
                "(or the CDAG was mutated since); re-run the game"
            )
        op_ids = log.ids_of_kind(MoveKind.COMPUTE).tolist()
        is_input = c.is_input_mask.tolist()
        num_ops = c.n - sum(is_input)
        # Together, the count + uniqueness + no-input checks force the
        # COMPUTE rows to cover exactly the operation vertices.
        if (
            len(op_ids) != num_ops
            or len(set(op_ids)) != len(op_ids)
            or any(is_input[i] for i in op_ids)
        ):
            raise ValueError(
                f"the game fired {len(op_ids)} computes over {num_ops} "
                "operations; run_record needs each operation (and no "
                "input) fired exactly once (no recomputation, complete game)"
            )
        self._validate_op_order(c, op_ids)
        assign = self._build_assignment(
            cdag, c, op_ids, assignment, partitioner, is_input
        )
        return self._execute(c, op_ids, assign, is_input)

    @staticmethod
    def _validate_op_order(c, op_ids: List[int]) -> None:
        """Reject a fired-operation order that violates the edge partial
        order (a hand-built log could be bound and fire-once yet still be
        anti-topological; replaying it would charge phantom traffic).
        Inputs carry no position — they are always available."""
        import numpy as np

        from ..core.ordering import find_dependence_violation

        pos = np.full(c.n, -1, dtype=np.int64)
        pos[op_ids] = np.arange(len(op_ids), dtype=np.int64)
        violation = find_dependence_violation(c, pos)
        if violation is not None:
            u, v = violation
            raise ValueError(
                "the recorded compute order violates dependence "
                f"{c.vertex(u)!r} -> {c.vertex(v)!r}"
            )

    # ------------------------------------------------------------------
    # Internals shared by run / run_record
    # ------------------------------------------------------------------
    def _build_assignment(
        self,
        cdag: CDAG,
        c,
        op_ids: List[int],
        assignment: Optional[Dict[Vertex, int]],
        partitioner: Optional[Callable[[Vertex], int]],
        is_input: List[bool],
    ) -> List[int]:
        """Owner-computes node of every vertex id (defaults: contiguous
        blocks of the operation order; inputs follow their first consumer)."""
        n = c.n
        if assignment is not None:
            missing = [v for v in cdag.vertices if v not in assignment]
            if missing:
                raise ValueError(
                    f"assignment misses vertices, e.g. {missing[:3]}"
                )
            bad = [
                v for v, r in assignment.items()
                if not 0 <= r < self.num_nodes
            ]
            if bad:
                raise ValueError(
                    f"assignment maps to unknown nodes, e.g. {bad[:3]}"
                )
            return [assignment[c.vertex(i)] for i in range(n)]
        if partitioner is not None:
            return [
                int(partitioner(c.vertex(i))) % self.num_nodes
                for i in range(n)
            ]
        per = max(1, (len(op_ids) + self.num_nodes - 1) // self.num_nodes)
        assign = [0] * n
        for k, i in enumerate(op_ids):
            assign[i] = min(k // per, self.num_nodes - 1)
        succ_lists = c.succ_lists
        for i in range(n):
            if is_input[i]:
                succ = succ_lists[i]
                assign[i] = assign[succ[0]] if succ else 0
        return assign

    def _execute(
        self, c, op_ids: List[int], assign: List[int], is_input: List[bool]
    ) -> DistributedExecutionReport:
        """The id-space replay loop (operands, caches, residency)."""
        pred_lists = c.pred_lists

        report = DistributedExecutionReport()
        caches = [
            CacheSimulator(self.cache_words, policy=self.policy)
            for _ in range(self.num_nodes)
        ]
        # Values already present in a node's memory (owned inputs or
        # previously received copies) need no new horizontal transfer.
        resident: List[set] = [set() for _ in range(self.num_nodes)]
        for i in range(c.n):
            if is_input[i]:
                resident[assign[i]].add(i)

        horizontal = [0] * self.num_nodes
        computes = [0] * self.num_nodes

        for i in op_ids:
            node = assign[i]
            cache = caches[node]
            res = resident[node]
            access = cache.access
            for u in pred_lists[i]:
                if u not in res:
                    horizontal[node] += 1
                    res.add(u)
                access(u, write=False)
            access(i, write=True)
            res.add(i)
            computes[node] += 1

        for r, cache in enumerate(caches):
            cache.flush()
            report.vertical_per_node[r] = cache.stats.vertical_traffic
            report.horizontal_per_node[r] = horizontal[r]
            report.computes_per_node[r] = computes[r]
        return report

"""Cache simulator for measuring vertical data movement.

The paper's vertical lower bounds (Theorems 5, 6, 8-10) constrain the
traffic between a node's main memory and its last-level cache.  To obtain
matching *measured upper bounds* without the authors' hardware, the
distributed-machine simulator replays each node's memory reference stream
through this cache model and counts misses and write-backs — exactly the
words that cross the DRAM<->cache link.

Two replacement policies are provided:

* ``lru`` — least recently used, the standard hardware-like policy;
* ``belady`` — the optimal offline policy (evict the line whose next use
  is farthest in the future); requires the full trace up front and is the
  fairest comparison against *lower* bounds because no replacement policy
  can beat it.

The simulator is word-granular (line size 1 word) by default, matching
the pebble-game model where each value is a word; a ``line_words``
parameter allows coarser lines for sensitivity studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

__all__ = ["CacheStats", "CacheSimulator", "simulate_trace"]

Address = Hashable


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`CacheSimulator`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def vertical_traffic(self) -> int:
        """Words moved across the DRAM<->cache link: fills + write-backs."""
        return self.misses + self.writebacks


class CacheSimulator:
    """A set-associative-free (fully associative) cache model.

    Parameters
    ----------
    capacity_words:
        Cache capacity in words.
    policy:
        ``"lru"`` or ``"belady"``.
    line_words:
        Words per cache line (addresses are grouped into lines by integer
        division when the address is an ``int``; non-integer addresses are
        treated as their own line).
    """

    def __init__(
        self,
        capacity_words: int,
        policy: str = "lru",
        line_words: int = 1,
    ) -> None:
        if capacity_words < 1:
            raise ValueError("capacity must be at least one word")
        if line_words < 1:
            raise ValueError("line size must be at least one word")
        if policy not in ("lru", "belady"):
            raise ValueError("policy must be 'lru' or 'belady'")
        self.capacity_lines = max(1, capacity_words // line_words)
        self.line_words = line_words
        self.policy = policy
        self.stats = CacheStats()
        # line -> dirty flag; OrderedDict gives LRU order (oldest first).
        self._lines: "OrderedDict[Address, bool]" = OrderedDict()
        # For Belady: future use positions per line (set via prepare_trace).
        self._future: Dict[Address, List[int]] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    def _line_of(self, address: Address) -> Address:
        if isinstance(address, int) and self.line_words > 1:
            return address // self.line_words
        return address

    def prepare_trace(self, addresses: Sequence[Address]) -> None:
        """Precompute next-use positions for the Belady policy."""
        self._future = {}
        for pos, addr in enumerate(addresses):
            line = self._line_of(addr)
            self._future.setdefault(line, []).append(pos)
        for uses in self._future.values():
            uses.reverse()  # pop() yields the earliest remaining use

    def _next_use(self, line: Address) -> float:
        uses = self._future.get(line)
        if not uses:
            return float("inf")
        while uses and uses[-1] < self._clock:
            uses.pop()
        return uses[-1] if uses else float("inf")

    def _evict_one(self) -> None:
        if self.policy == "lru":
            victim, dirty = self._lines.popitem(last=False)
        else:  # belady
            victim = max(self._lines, key=self._next_use)
            dirty = self._lines.pop(victim)
        self.stats.evictions += 1
        if dirty:
            self.stats.writebacks += self.line_words

    # ------------------------------------------------------------------
    def access(self, address: Address, write: bool = False) -> bool:
        """Reference one word; returns True on a hit.

        A miss fills the line (counted as ``line_words`` of traffic via
        ``stats.misses``, incremented by 1 per access for word-granular
        accounting when ``line_words == 1``); a write marks the line dirty
        so its eventual eviction is a write-back.
        """
        line = self._line_of(address)
        self.stats.accesses += 1
        hit = line in self._lines
        if hit:
            self.stats.hits += 1
            dirty = self._lines.pop(line)
            self._lines[line] = dirty or write
        else:
            self.stats.misses += 1
            while len(self._lines) >= self.capacity_lines:
                self._evict_one()
            self._lines[line] = write
        self._clock += 1
        return hit

    def flush(self) -> None:
        """Write back all dirty lines and empty the cache (end of phase)."""
        for line, dirty in self._lines.items():
            if dirty:
                self.stats.writebacks += self.line_words
        self._lines.clear()

    @property
    def resident_lines(self) -> int:
        return len(self._lines)


def simulate_trace(
    trace: Sequence,
    capacity_words: int,
    policy: str = "lru",
    line_words: int = 1,
) -> CacheStats:
    """Run a (address, is_write) reference trace through a fresh cache.

    ``trace`` items may be plain addresses (treated as reads) or
    ``(address, is_write)`` pairs.
    """
    pairs = [
        item if isinstance(item, tuple) else (item, False) for item in trace
    ]
    sim = CacheSimulator(capacity_words, policy=policy, line_words=line_words)
    if policy == "belady":
        sim.prepare_trace([a for a, _ in pairs])
    for addr, is_write in pairs:
        sim.access(addr, write=is_write)
    sim.flush()
    return sim.stats

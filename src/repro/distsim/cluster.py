"""Simulated distributed-memory execution of the paper's workloads.

:class:`SimulatedCluster` models a cluster of ``N`` nodes, each with a
last-level cache of ``S`` words in front of an unbounded node memory, and
executes block-partitioned iterative workloads (stencil sweeps, CG
iterations) while counting:

* **horizontal traffic** — ghost-shell words received per node per sweep
  (plus the allreduce contributions of the dot products for CG);
* **vertical traffic** — DRAM<->cache words per node, measured by running
  the node's memory reference stream through
  :class:`~repro.distsim.cache.CacheSimulator`.

These measurements are *upper bounds achieved by a concrete schedule* and
are compared against the paper's lower bounds in experiment E8.  The
reference streams deliberately mirror a straightforward (untiled)
implementation — one pass over the block per vector operation — because
that is the behaviour the paper's balance analysis assumes when it argues
CG is memory-bandwidth bound; the tiled stencil schedule of Theorem 10's
tightness argument is available separately via
:func:`repro.solvers.jacobi_solver.tiled_sweep_io_estimate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .cache import CacheSimulator
from .partitioning import BlockPartition, node_grid

__all__ = ["ClusterTrafficReport", "SimulatedCluster"]


@dataclass
class ClusterTrafficReport:
    """Traffic measured by a simulated run.

    All values are in words.  Per-node dictionaries are keyed by the
    node's linear rank.
    """

    horizontal_per_node: Dict[int, int] = field(default_factory=dict)
    vertical_per_node: Dict[int, int] = field(default_factory=dict)
    flops_per_node: Dict[int, int] = field(default_factory=dict)

    @property
    def max_horizontal(self) -> int:
        return max(self.horizontal_per_node.values(), default=0)

    @property
    def max_vertical(self) -> int:
        return max(self.vertical_per_node.values(), default=0)

    @property
    def total_flops(self) -> int:
        return sum(self.flops_per_node.values())

    def vertical_intensity(self) -> float:
        """``max_vertical * N_nodes / total_flops`` (words per operation),
        directly comparable with the left side of condition (9)."""
        if not self.flops_per_node or self.total_flops == 0:
            return 0.0
        return self.max_vertical * len(self.vertical_per_node) / self.total_flops

    def horizontal_intensity(self) -> float:
        """``max_horizontal * N_nodes / total_flops``."""
        if not self.flops_per_node or self.total_flops == 0:
            return 0.0
        return self.max_horizontal * len(self.horizontal_per_node) / self.total_flops


class SimulatedCluster:
    """A cluster of nodes with per-node caches executing grid workloads.

    Parameters
    ----------
    num_nodes:
        Number of nodes (each one cache + one unbounded memory).
    cache_words:
        Last-level cache capacity per node, in words.
    dimensions:
        Grid dimensionality of the workloads to be run.
    policy:
        Cache replacement policy (``"lru"`` or ``"belady"``).
    """

    def __init__(
        self,
        num_nodes: int,
        cache_words: int,
        dimensions: int,
        policy: str = "lru",
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cache_words = cache_words
        self.dimensions = dimensions
        self.policy = policy

    # ------------------------------------------------------------------
    def _partition(self, shape: Sequence[int]) -> BlockPartition:
        return BlockPartition(tuple(shape), node_grid(self.num_nodes, len(shape)))

    # ------------------------------------------------------------------
    def run_stencil(
        self, shape: Sequence[int], timesteps: int, arrays: int = 2
    ) -> ClusterTrafficReport:
        """Simulate ``timesteps`` Jacobi sweeps over a grid of ``shape``.

        Per sweep, each node receives its ghost shell (horizontal), then
        streams its block: for every owned point it reads the point's
        neighbourhood from the ``u`` array and writes the point in the
        ``u_next`` array (``arrays = 2`` double buffering).  The reference
        stream is replayed through the node's cache to obtain vertical
        traffic.
        """
        part = self._partition(shape)
        report = ClusterTrafficReport()
        flops_per_point = 2 * (2 * len(tuple(shape)) + 1)
        for node in part.node_ids():
            rank = part.node_index(node)
            ghost = part.ghost_volume(node)
            block = list(part.block_points(node))
            cache = CacheSimulator(self.cache_words, policy=self.policy)
            trace: List[Tuple[Tuple, bool]] = []
            for t in range(timesteps):
                for p in block:
                    # read the centre and its axis neighbours from array t%2
                    trace.append((("u", t % 2) + p, False))
                    for axis in range(part.ndim):
                        for sign in (-1, 1):
                            q = list(p)
                            q[axis] += sign
                            if 0 <= q[axis] < shape[axis]:
                                trace.append((("u", t % 2) + tuple(q), False))
                    trace.append((("u", (t + 1) % 2) + p, True))
            if self.policy == "belady":
                cache.prepare_trace([a for a, _ in trace])
            for addr, w in trace:
                cache.access(addr, write=w)
            cache.flush()
            report.horizontal_per_node[rank] = ghost * timesteps
            report.vertical_per_node[rank] = cache.stats.vertical_traffic
            report.flops_per_node[rank] = flops_per_point * len(block) * timesteps
        return report

    # ------------------------------------------------------------------
    def run_cg(
        self, shape: Sequence[int], iterations: int
    ) -> ClusterTrafficReport:
        """Simulate ``iterations`` CG iterations on the implicit heat system.

        Each node holds its block of the vectors ``x, r, p, v``; per
        iteration it

        1. receives the ghost shell of ``p`` (horizontal) and streams the
           SpMV ``v = A p`` over its block,
        2. streams the two dot products ``<p, v>`` and ``<r, r>`` (their
           scalar results travel over the network: ``2 * (N - 1)`` words
           counted to the reducing node, a negligible allreduce term),
        3. streams the three SAXPYs.

        The per-node reference stream is replayed through the node cache
        for the vertical count.  FLOPs are counted with the same
        convention as :func:`repro.solvers.cg_solver.cg_flops_per_iteration`.
        """
        part = self._partition(shape)
        report = ClusterTrafficReport()
        d = len(tuple(shape))
        flops_per_point = (4 * d + 14)
        for node in part.node_ids():
            rank = part.node_index(node)
            ghost = part.ghost_volume(node)
            block = list(part.block_points(node))
            cache = CacheSimulator(self.cache_words, policy=self.policy)
            trace: List[Tuple[Tuple, bool]] = []
            for t in range(iterations):
                # SpMV: v = A p (read p neighbourhood, write v)
                for p in block:
                    trace.append((("p",) + p, False))
                    for axis in range(d):
                        for sign in (-1, 1):
                            q = list(p)
                            q[axis] += sign
                            if 0 <= q[axis] < shape[axis]:
                                trace.append((("p",) + tuple(q), False))
                    trace.append((("v",) + p, True))
                # dot products <p, v> and <r, r>
                for p in block:
                    trace.append((("p",) + p, False))
                    trace.append((("v",) + p, False))
                for p in block:
                    trace.append((("r",) + p, False))
                    trace.append((("r",) + p, False))
                # x += a p ; r_new = r - a v ; p = r_new + g p
                for p in block:
                    trace.append((("x",) + p, False))
                    trace.append((("p",) + p, False))
                    trace.append((("x",) + p, True))
                for p in block:
                    trace.append((("r",) + p, False))
                    trace.append((("v",) + p, False))
                    trace.append((("r",) + p, True))
                for p in block:
                    trace.append((("r",) + p, False))
                    trace.append((("p",) + p, False))
                    trace.append((("p",) + p, True))
            if self.policy == "belady":
                cache.prepare_trace([a for a, _ in trace])
            for addr, w in trace:
                cache.access(addr, write=w)
            cache.flush()
            allreduce_words = 3 * max(0, self.num_nodes - 1)
            report.horizontal_per_node[rank] = (ghost + allreduce_words) * iterations
            report.vertical_per_node[rank] = cache.stats.vertical_traffic
            report.flops_per_node[rank] = flops_per_point * len(block) * iterations
        return report

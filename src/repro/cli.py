"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro.cli table1
    python -m repro.cli composite --sizes 4 8 16
    python -m repro.cli cg --n 1000
    python -m repro.cli gmres --m 5 10 50
    python -m repro.cli jacobi --dimensions 1 2 3 5
    python -m repro.cli matmul --sizes 4 6 --cache 8 16
    python -m repro.cli validate
    python -m repro.cli distsim --nodes 4 --cache 64
    python -m repro.cli balance
    python -m repro.cli all

Each subcommand runs the corresponding experiment driver from
:mod:`repro.evaluation.experiments` and prints the reproduced table; the
``all`` subcommand runs everything the benchmark harness covers (E1-E9)
with default parameters.  The usage block above lists every registered
subcommand — ``tests/evaluation/test_cli.py`` pins it against the parser.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .evaluation import (
    experiment_balance_conditions,
    experiment_bound_validation,
    experiment_cg_bounds,
    experiment_composite_example,
    experiment_distsim_parallel,
    experiment_gmres_bounds,
    experiment_jacobi_bounds,
    experiment_matmul_bounds,
    experiment_table1_machines,
    render_report,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of Elango et al., SPAA 2014 "
        "(data movement complexity of CDAGs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: machine balance parameters")

    p = sub.add_parser("composite", help="Section 3 composite example")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 8, 16])
    p.add_argument("--cache", type=int, default=64, help="fast memory words S")

    p = sub.add_parser("cg", help="Section 5.2: CG analysis")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--dimensions", type=int, default=3)

    p = sub.add_parser("gmres", help="Section 5.3: GMRES analysis")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--m", type=int, nargs="+", default=[5, 10, 20, 50, 100, 200])

    p = sub.add_parser("jacobi", help="Section 5.4: Jacobi analysis")
    p.add_argument("--dimensions", type=int, nargs="+",
                   default=[1, 2, 3, 4, 5, 6, 8, 11])

    p = sub.add_parser("matmul", help="matmul bound sandwich")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 6])
    p.add_argument("--cache", type=int, nargs="+", default=[8, 16, 32])

    sub.add_parser("validate", help="LB <= OPT <= UB sandwich on small CDAGs")

    p = sub.add_parser("distsim", help="simulated cluster vs parallel bounds")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--cache", type=int, default=64)
    p.add_argument("--side", type=int, default=24, help="grid side length")
    p.add_argument("--timesteps", type=int, default=6)

    sub.add_parser("balance", help="balance-condition summary (E9)")
    sub.add_parser("all", help="run every experiment with default parameters")
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    """Run a single experiment and return its rendered report."""
    if name == "table1":
        return render_report(
            "Table 1 — machine specifications", experiment_table1_machines()
        )
    if name == "composite":
        return render_report(
            "Section 3 — composite example",
            experiment_composite_example(sizes=tuple(args.sizes), s=args.cache),
        )
    if name == "cg":
        return render_report(
            "Section 5.2.3 — CG analysis",
            experiment_cg_bounds(n=args.n, dimensions=args.dimensions),
        )
    if name == "gmres":
        return render_report(
            "Section 5.3.3 — GMRES analysis",
            experiment_gmres_bounds(n=args.n, krylov_dimensions=tuple(args.m)),
        )
    if name == "jacobi":
        return render_report(
            "Section 5.4.3 — Jacobi analysis",
            experiment_jacobi_bounds(dimensions=tuple(args.dimensions)),
        )
    if name == "matmul":
        return render_report(
            "Matmul bound sandwich",
            experiment_matmul_bounds(sizes=tuple(args.sizes),
                                     cache_sizes=tuple(args.cache)),
        )
    if name == "validate":
        return render_report(
            "Bound-machinery validation", experiment_bound_validation()
        )
    if name == "distsim":
        return render_report(
            "Simulated cluster vs parallel bounds",
            experiment_distsim_parallel(
                shape=(args.side, args.side),
                timesteps=args.timesteps,
                num_nodes=args.nodes,
                cache_words=args.cache,
            ),
        )
    if name == "balance":
        return render_report(
            "Balance-condition summary", experiment_balance_conditions()
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        defaults = build_parser()
        for name in ("table1", "composite", "cg", "gmres", "jacobi",
                     "matmul", "validate", "distsim", "balance"):
            sub_args = defaults.parse_args([name])
            print(_run_one(name, sub_args))
            print()
    else:
        print(_run_one(args.command, args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: regenerate the paper's tables from a shell.

Usage::

    python -m repro.cli table1
    python -m repro.cli composite --sizes 4 8 16
    python -m repro.cli cg --n 1000
    python -m repro.cli gmres --m 5 10 50
    python -m repro.cli jacobi --dimensions 1 2 3 5
    python -m repro.cli matmul --sizes 4 6 --cache 8 16
    python -m repro.cli validate
    python -m repro.cli distsim --nodes 4 --cache 64
    python -m repro.cli balance
    python -m repro.cli spill --workload star --ops 2000 --workers 2
    python -m repro.cli sweep --out results --grid smoke --resume
    python -m repro.cli sweep --out results --jobs 4 --store repro-store.db
    python -m repro.cli sweep --grid smoke --fleet http://127.0.0.1:8199
    python -m repro.cli fleet serve --root results --port 8199
    python -m repro.cli fleet serve --root results --grid-file grid.json
    python -m repro.cli fleet worker http://127.0.0.1:8199 --root results
    python -m repro.cli fleet status http://127.0.0.1:8199
    python -m repro.cli fleet status http://127.0.0.1:8199 --failures
    python -m repro.cli reproduce results
    python -m repro.cli bench-view results --out BENCH_core.json
    python -m repro.cli serve --db repro-store.db --port 8177
    python -m repro.cli cache stats --db repro-store.db
    python -m repro.cli cache gc --db repro-store.db --max-bytes 100000000
    python -m repro.cli cache gc --db repro-store.db --watch --interval 60
    python -m repro.cli all

Each subcommand runs the corresponding experiment driver from
:mod:`repro.evaluation.experiments` and prints the reproduced table; the
``all`` subcommand runs everything the benchmark harness covers (E1-E9)
with default parameters.  ``spill`` plays a spill-strategy pebble game
on a synthetic workload through the unified
:func:`repro.pebbling.run_spill_game` entry point — ``--workers N``
shards independent subgames across a process pool and reports the
merged, move-for-move-canonical record, and ``--backend
{batched,dict,kernel}`` selects the strategy loop (all three play the
identical game).  With ``--backend kernel`` the ``REPRO_KERNEL``
environment variable picks the execution tier: ``numpy`` (default),
``numba`` (jitted planner where numba is installed; degrades to numpy
otherwise), or ``off`` (fall back to the batched loop).

``sweep`` executes a declarative experiment grid through the
manifest-driven harness (:mod:`repro.evaluation.harness`): one result
directory per cell with ``manifest.json`` / ``metrics.jsonl`` /
``summary.json``, where ``--resume`` skips committed cells whose config
hash matches and sweeps + re-runs stale or partial ones; ``--jobs N``
runs cells in parallel worker processes (``--cell-timeout`` bounds each
cell's wall clock; failures leave resumable partials) and ``--store``
activates the content-addressed artifact store so repeated cells adopt
cached compiled snapshots.  ``reproduce``
replays every manifest in a results store and verifies the regenerated
rows against the stored artifacts within per-metric tolerances (nonzero
exit naming each failing cell).  ``bench-view`` derives a
``BENCH_core.json``-style view over a results store.

``fleet`` runs distributed sweeps (:mod:`repro.fleet`): ``fleet
serve`` starts the controller that owns the cell queue over a shared
results root (``--grid`` submits a named grid at startup;
``--grid-file`` submits a JSON grid file through the same loader
``sweep --grid-file`` uses), ``fleet worker`` attaches a polling worker
(``--slots N`` caps its local cell processes), and ``fleet status``
prints the controller's full queue/lease/worker state as JSON —
``--failures`` instead renders the per-cell failure dashboard
(attempts, last signal, backoff) from the controller's ``GET
/metrics`` event data.  ``sweep --fleet URL`` submits the grid to a
running controller instead of executing locally and polls until the
fleet finishes — always with resume semantics, writing into the
*controller's* results root, byte-identical to a local ``sweep --jobs
1``.  See ``docs/fleet.md`` and ``docs/observability.md``.

``serve`` starts the long-running memoized bound server
(:mod:`repro.service`) over a content-addressed artifact store
(:mod:`repro.store`), and ``cache`` inspects or maintains such a store
(``stats`` / ``gc`` / ``clear``) — see ``docs/service.md`` for the
service contract, cache-key discipline, and operational notes.  ``cache
gc --watch`` turns the one-shot collector into an interval-driven
eviction daemon (``--interval`` seconds between passes, ``--passes N``
to stop after N — handy for tests and cron-like supervision); every
pass reports through the store's gc counters like any other.  Both
HTTP servers expose ``GET /metrics`` (:mod:`repro.obs`) — see
``docs/observability.md``.  The usage block above lists every
registered subcommand — ``tests/evaluation/test_cli.py`` pins it
against the parser.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .evaluation import (
    experiment_balance_conditions,
    experiment_bound_validation,
    experiment_cg_bounds,
    experiment_composite_example,
    experiment_distsim_parallel,
    experiment_gmres_bounds,
    experiment_jacobi_bounds,
    experiment_matmul_bounds,
    experiment_table1_machines,
    render_report,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of Elango et al., SPAA 2014 "
        "(data movement complexity of CDAGs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: machine balance parameters")

    p = sub.add_parser("composite", help="Section 3 composite example")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 8, 16])
    p.add_argument("--cache", type=int, default=64, help="fast memory words S")

    p = sub.add_parser("cg", help="Section 5.2: CG analysis")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--dimensions", type=int, default=3)

    p = sub.add_parser("gmres", help="Section 5.3: GMRES analysis")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--m", type=int, nargs="+", default=[5, 10, 20, 50, 100, 200])

    p = sub.add_parser("jacobi", help="Section 5.4: Jacobi analysis")
    p.add_argument("--dimensions", type=int, nargs="+",
                   default=[1, 2, 3, 4, 5, 6, 8, 11])

    p = sub.add_parser("matmul", help="matmul bound sandwich")
    p.add_argument("--sizes", type=int, nargs="+", default=[4, 6])
    p.add_argument("--cache", type=int, nargs="+", default=[8, 16, 32])

    sub.add_parser("validate", help="LB <= OPT <= UB sandwich on small CDAGs")

    p = sub.add_parser("distsim", help="simulated cluster vs parallel bounds")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--cache", type=int, default=64)
    p.add_argument("--side", type=int, default=24, help="grid side length")
    p.add_argument("--timesteps", type=int, default=6)

    sub.add_parser("balance", help="balance-condition summary (E9)")

    p = sub.add_parser(
        "spill",
        help="spill-strategy pebble game on a synthetic workload "
        "(sharded across processes with --workers N)",
    )
    p.add_argument("--workload", choices=["star", "chains"], default="star")
    p.add_argument("--ops", type=int, default=2000,
                   help="operations in the star workload")
    p.add_argument("--degree", type=int, default=8,
                   help="operands per star operation")
    p.add_argument("--chains", type=int, default=64,
                   help="chains in the chains workload")
    p.add_argument("--length", type=int, default=32, help="chain length")
    p.add_argument("--red", type=int, default=4,
                   help="red pebbles for the chains workload")
    p.add_argument("--policy", choices=["lru", "belady"], default="lru")
    p.add_argument("--backend", choices=["batched", "dict", "kernel"],
                   default="batched",
                   help="strategy loop (same game either way); 'kernel' "
                   "honors the REPRO_KERNEL env var: numpy (default), "
                   "numba (jitted planner, falls back to numpy when "
                   "numba is absent), or off (use the batched loop)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool shards (1 = sequential)")
    p.add_argument("--spill-log", action="store_true",
                   help="record into a disk-spilled move log")

    p = sub.add_parser(
        "sweep",
        help="run a declarative experiment grid into a results store "
        "(manifest.json + metrics.jsonl + summary.json per cell)",
    )
    p.add_argument("--out", default="results",
                   help="results root directory (default: results)")
    p.add_argument("--grid", choices=["default", "smoke"], default="default",
                   help="named grid: 'default' = all nine experiments plus "
                   "the spill axes, 'smoke' = the tiny 4-cell CI grid")
    p.add_argument("--grid-file", default=None,
                   help="JSON grid file (list of cell objects); overrides "
                   "--grid")
    p.add_argument("--experiments", nargs="+", default=None,
                   help="keep only cells of these experiment keys "
                   "(e1..e9, spill)")
    p.add_argument("--seed", type=int, default=0,
                   help="grid seed, recorded in every manifest")
    p.add_argument("--resume", action="store_true",
                   help="skip committed cells whose config hash matches; "
                   "sweep and re-run stale or partial cells")
    p.add_argument("--jobs", type=int, default=1,
                   help="run up to N cells in parallel worker processes "
                   "(1 = sequential, in grid order)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   help="wall-clock limit per cell in seconds (jobs > 1); "
                   "a timed-out cell is terminated, leaving a resumable "
                   "partial directory")
    p.add_argument("--store", default=None, metavar="DB",
                   help="activate the content-addressed artifact store at "
                   "this SQLite path (cells adopt cached compiled "
                   "snapshots; results are byte-identical)")
    p.add_argument("--fleet", default=None, metavar="URL",
                   help="submit the grid to a running fleet controller "
                   "instead of executing locally, and poll until done "
                   "(always resume semantics; cells land in the "
                   "controller's results root, so --out/--jobs/--store "
                   "are ignored)")

    p = sub.add_parser(
        "fleet",
        help="distributed sweeps: controller + polling workers over a "
        "shared results root (serve | worker | status)",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    fp = fleet_sub.add_parser(
        "serve",
        help="run the fleet controller (cell queue, leases, retries)",
    )
    fp.add_argument("--root", default="results",
                    help="shared results root the fleet writes into")
    fp.add_argument("--host", default="127.0.0.1")
    fp.add_argument("--port", type=int, default=8199,
                    help="listen port (0 picks a free one)")
    fp.add_argument("--grid", choices=["default", "smoke"], default=None,
                    help="submit this named grid at startup (resume "
                    "semantics); omit to wait for 'sweep --fleet'")
    fp.add_argument("--grid-file", default=None,
                    help="submit this JSON grid file (list of cell "
                    "objects, same format as 'sweep --grid-file') at "
                    "startup; overrides --grid")
    fp.add_argument("--seed", type=int, default=0,
                    help="grid seed for --grid / --grid-file")
    fp.add_argument("--lease-ttl", type=float, default=30.0,
                    help="lease validity window in seconds; a worker "
                    "that stops heartbeating loses its cells after this")
    fp.add_argument("--max-retries", type=int, default=3,
                    help="re-queues per cell (failure or lease expiry) "
                    "before it is marked permanently failed")
    fp.add_argument("--backoff", type=float, default=1.0,
                    help="base re-queue backoff in seconds (doubles per "
                    "attempt, capped at 60s)")
    fp = fleet_sub.add_parser(
        "worker",
        help="attach a polling worker to a running controller",
    )
    fp.add_argument("url", help="controller base URL")
    fp.add_argument("--root", default="results",
                    help="shared results root (same tree as the "
                    "controller's)")
    fp.add_argument("--name", default=None,
                    help="worker identity (default: <hostname>-<pid>)")
    fp.add_argument("--slots", type=int, default=1,
                    help="local concurrency cap: at most N cell "
                    "processes at once")
    fp.add_argument("--store", default=None, metavar="DB",
                    help="artifact-store SQLite path forwarded to every "
                    "cell process")
    fp.add_argument("--cell-timeout", type=float, default=None,
                    help="wall-clock limit per cell in seconds")
    fp.add_argument("--keep-alive", action="store_true",
                    help="idle and wait for the next grid instead of "
                    "exiting when the current one completes")
    fp = fleet_sub.add_parser(
        "status", help="print a controller's full state as JSON"
    )
    fp.add_argument("url", help="controller base URL")
    fp.add_argument("--failures", action="store_true",
                    help="render the per-cell failure dashboard "
                    "(attempts, last signal, backoff) instead of the "
                    "raw status JSON")

    p = sub.add_parser(
        "reproduce",
        help="replay every manifest in a results store and verify the "
        "regenerated rows within per-metric tolerances",
    )
    p.add_argument("results_dir", nargs="?", default="results",
                   help="results root written by 'sweep'")

    p = sub.add_parser(
        "bench-view",
        help="derive a BENCH_core.json-style view over a results store",
    )
    p.add_argument("results_dir", nargs="?", default="results")
    p.add_argument("--out", default=None,
                   help="merge the derived harness/* entries into this "
                   "JSON file (default: print to stdout)")

    p = sub.add_parser(
        "serve",
        help="run the memoized bound server over an artifact store "
        "(GET /health /stats /metrics; "
        "POST /v1/{compiled,schedule,bound,pebble})",
    )
    p.add_argument("--db", default="repro-store.db",
                   help="artifact-store SQLite path (created if absent)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8177,
                   help="listen port (0 picks a free one)")

    p = sub.add_parser(
        "cache",
        help="inspect or maintain an artifact store "
        "(stats | gc | clear)",
    )
    p.add_argument("action", nargs="?", default="stats",
                   choices=["stats", "gc", "clear"],
                   help="stats: entry counts / hit rates / sizes; "
                   "gc: evict stale + LRU entries; clear: drop everything")
    p.add_argument("--db", default="repro-store.db",
                   help="artifact-store SQLite path")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="gc: evict least-recently-used entries until the "
                   "payload total fits")
    p.add_argument("--max-age-s", type=float, default=None,
                   help="gc: evict entries unused for this many seconds")
    p.add_argument("--keep-stale-code", action="store_true",
                   help="gc: keep entries stamped with old code versions "
                   "(dropped by default)")
    p.add_argument("--vacuum", action="store_true",
                   help="gc: VACUUM the database file afterwards")
    p.add_argument("--watch", action="store_true",
                   help="gc: keep running, one eviction pass per "
                   "--interval (an eviction daemon)")
    p.add_argument("--interval", type=float, default=60.0,
                   help="gc --watch: seconds between passes "
                   "(default: 60)")
    p.add_argument("--passes", type=int, default=None,
                   help="gc --watch: stop after N passes "
                   "(default: run until interrupted)")

    sub.add_parser("all", help="run every experiment with default parameters")
    return parser


def _run_spill(args: argparse.Namespace) -> str:
    """The ``spill`` subcommand: play a (possibly sharded) strategy game
    on a synthetic workload and report the canonical record."""
    from time import perf_counter

    from .core.ordering import dfs_schedule
    from .pebbling import run_spill_game
    from .pebbling.workloads import chains_spill_setup, star_spill_setup

    if args.workload == "star":
        cdag, memory = star_spill_setup(args.ops, args.degree)
        schedule = None
    else:
        # The chain-major (DFS) schedule keeps each chain contiguous,
        # which is what lets the runner shard the shared fast memory.
        cdag, memory = chains_spill_setup(args.chains, args.length, args.red)
        schedule = dfs_schedule(cdag)
    start = perf_counter()
    record = run_spill_game(
        cdag,
        memory,
        schedule=schedule,
        policy=args.policy,
        backend=args.backend,
        workers=args.workers,
        spill=args.spill_log,
    )
    elapsed = perf_counter() - start
    summary = record.summary()
    lines = [
        f"workload      : {args.workload} "
        f"({cdag.num_vertices()} vertices, {cdag.num_edges()} edges)",
        f"backend       : {args.backend}",
        f"workers       : {args.workers}",
        f"moves         : {summary['moves']}",
        f"io (R1+R2)    : {summary['io']}",
        f"vertical_io   : {summary['vertical_io']}",
        f"horizontal_io : {summary['horizontal_io']}",
        f"elapsed       : {elapsed:.2f} s "
        f"({summary['moves'] / max(elapsed, 1e-9) / 1e6:.2f} Mmoves/s)",
    ]
    if record.log.is_spilled:
        lines.append(f"spilled_bytes : {record.log.spilled_bytes}")
        record.log.close()
    return "Spill-strategy game\n" + "\n".join(
        "  " + line for line in lines
    )


def _resolve_grid(grid: Optional[str], grid_file: Optional[str], seed: int):
    """Resolve a ``--grid`` / ``--grid-file`` pair into a list of
    :class:`RunSpec` (``--grid-file`` wins; ``None`` when neither was
    given).  Shared by ``sweep`` and ``fleet serve`` so both accept the
    identical grid vocabulary."""
    from .evaluation.harness import GRIDS, load_grid_file

    if grid_file:
        return load_grid_file(grid_file, seed=seed)
    if grid:
        return GRIDS[grid](seed)
    return None


def _run_sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: execute a grid through the harness."""
    from .evaluation.harness import run_grid

    specs = _resolve_grid(args.grid, args.grid_file, args.seed)
    if args.experiments:
        keep = set(args.experiments)
        specs = [s for s in specs if s.experiment in keep]
        if not specs:
            print(f"no grid cells match experiments {sorted(keep)}")
            return 2
    if args.fleet:
        from .fleet import fleet_sweep

        status = fleet_sweep(args.fleet, specs)
        if status["failed"]:
            names = ", ".join(
                f"{label} ({reason})"
                for label, reason in sorted(status["failed"].items())
            )
            print(f"fleet sweep FAILED for cell(s): {names}")
            return 1
        return 0
    result = run_grid(
        specs,
        args.out,
        resume=args.resume,
        store_path=args.store,
        jobs=args.jobs,
        cell_timeout=args.cell_timeout,
    )
    if result.failed:
        names = ", ".join(f"{label} ({reason})"
                          for label, reason in result.failed)
        print(f"sweep FAILED for cell(s): {names}")
        return 1
    return 0


def _run_reproduce(args: argparse.Namespace) -> int:
    """The ``reproduce`` subcommand: nonzero exit names failing cells."""
    from .evaluation.harness import reproduce

    failures = reproduce(args.results_dir)
    if failures:
        names = ", ".join(f.label for f in failures)
        print(f"reproduce FAILED for cell(s): {names}")
        return 1
    return 0


def _run_bench_view(args: argparse.Namespace) -> int:
    """The ``bench-view`` subcommand: derived BENCH-style view."""
    from .evaluation.manifest import dumps_canonical
    from .evaluation.harness import bench_view, write_bench_view

    if args.out:
        payload = write_bench_view(args.results_dir, args.out)
        print(
            f"merged {len(payload['results'])} entries into {args.out} "
            f"(derived from {args.results_dir})"
        )
    else:
        print(dumps_canonical(bench_view(args.results_dir)), end="")
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    """The ``fleet`` subcommand family: serve | worker | status."""
    from .fleet import FleetClient, FleetWorker, serve_fleet

    if args.fleet_command == "serve":
        grid = _resolve_grid(args.grid, args.grid_file, args.seed)
        serve_fleet(
            args.root,
            host=args.host,
            port=args.port,
            grid=grid,
            lease_ttl_s=args.lease_ttl,
            max_retries=args.max_retries,
            backoff_s=args.backoff,
        )
        return 0
    if args.fleet_command == "worker":
        FleetWorker(
            args.url,
            args.root,
            name=args.name,
            slots=args.slots,
            store_path=args.store,
            cell_timeout=args.cell_timeout,
            exit_when_done=not args.keep_alive,
        ).run()
        return 0
    client = FleetClient(args.url, retries=1)
    if args.failures:
        from .obs import render_failure_table

        print(render_failure_table(client.metrics().get("failures", [])))
        return 0
    from .evaluation.manifest import dumps_canonical

    print(dumps_canonical(client.status()))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: blocking memoized bound server."""
    from .service.server import serve

    serve(args.db, host=args.host, port=args.port)
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand: stats / gc / clear on a store file."""
    from .evaluation.manifest import dumps_canonical
    from .store.db import ArtifactStore

    if args.action != "stats" and not os.path.exists(args.db):
        print(f"no artifact store at {args.db}")
        return 2
    with ArtifactStore(args.db) as store:
        if args.action == "stats":
            print(dumps_canonical(store.stats()), end="")
        elif args.action == "gc":
            import time as _time

            done_passes = 0
            while True:
                report = store.gc(
                    max_bytes=args.max_bytes,
                    max_age_s=args.max_age_s,
                    drop_stale_code=not args.keep_stale_code,
                    vacuum=args.vacuum,
                )
                done_passes += 1
                prefix = (
                    f"gc pass {done_passes}" if args.watch else "gc"
                )
                print(
                    f"{prefix}: removed {report['removed']} entrie(s), "
                    f"{report['removed_bytes']} payload byte(s)"
                )
                if not args.watch:
                    break
                if args.passes is not None and done_passes >= args.passes:
                    break
                try:
                    _time.sleep(args.interval)
                except KeyboardInterrupt:  # pragma: no cover - manual stop
                    break
        else:  # clear
            removed = store.clear()
            print(f"clear: removed {removed} entrie(s)")
    return 0


def _run_one(name: str, args: argparse.Namespace) -> str:
    """Run a single experiment and return its rendered report."""
    if name == "table1":
        return render_report(
            "Table 1 — machine specifications", experiment_table1_machines()
        )
    if name == "composite":
        return render_report(
            "Section 3 — composite example",
            experiment_composite_example(sizes=tuple(args.sizes), s=args.cache),
        )
    if name == "cg":
        return render_report(
            "Section 5.2.3 — CG analysis",
            experiment_cg_bounds(n=args.n, dimensions=args.dimensions),
        )
    if name == "gmres":
        return render_report(
            "Section 5.3.3 — GMRES analysis",
            experiment_gmres_bounds(n=args.n, krylov_dimensions=tuple(args.m)),
        )
    if name == "jacobi":
        return render_report(
            "Section 5.4.3 — Jacobi analysis",
            experiment_jacobi_bounds(dimensions=tuple(args.dimensions)),
        )
    if name == "matmul":
        return render_report(
            "Matmul bound sandwich",
            experiment_matmul_bounds(sizes=tuple(args.sizes),
                                     cache_sizes=tuple(args.cache)),
        )
    if name == "validate":
        return render_report(
            "Bound-machinery validation", experiment_bound_validation()
        )
    if name == "distsim":
        return render_report(
            "Simulated cluster vs parallel bounds",
            experiment_distsim_parallel(
                shape=(args.side, args.side),
                timesteps=args.timesteps,
                num_nodes=args.nodes,
                cache_words=args.cache,
            ),
        )
    if name == "balance":
        return render_report(
            "Balance-condition summary", experiment_balance_conditions()
        )
    if name == "spill":
        return _run_spill(args)
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "reproduce":
        return _run_reproduce(args)
    if args.command == "bench-view":
        return _run_bench_view(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "all":
        defaults = build_parser()
        for name in ("table1", "composite", "cg", "gmres", "jacobi",
                     "matmul", "validate", "distsim", "balance"):
            sub_args = defaults.parse_args([name])
            print(_run_one(name, sub_args))
            print()
    else:
        print(_run_one(args.command, args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Bandwidth-bound analysis: conditions (7)-(10) of Section 5.

The paper turns lower and upper bounds on data movement into statements
about whether an algorithm can possibly avoid being bandwidth bound on a
given machine:

* condition (7)/(9) — **necessary** condition to *not* be vertically
  bandwidth bound: the algorithm's vertical data movement lower bound per
  FLOP (``LB_vert * N_nodes / |V|`` for the DRAM<->cache level) must not
  exceed the machine's vertical balance ``B_vert / (N_cores * F)``.
  If the condition fails, the algorithm is memory-bandwidth bound at that
  level *no matter how it is implemented*.
* condition (8)/(10) — **necessary** condition for the algorithm to be
  communication (horizontally) bound: the *upper* bound on required
  horizontal data movement per FLOP must be at least the horizontal
  balance.  If it fails, there exists an execution that is not limited by
  the network.

:func:`vertical_condition` and :func:`horizontal_condition` evaluate the
two sides and the verdict; :class:`BalanceVerdict` carries the numbers so
reports can print them exactly as the paper's running text does (e.g.
CG's 0.3 words/FLOP vs 0.052 for BG/Q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .spec import MachineSpec

__all__ = [
    "BalanceVerdict",
    "algorithm_vertical_intensity",
    "algorithm_horizontal_intensity",
    "vertical_condition",
    "horizontal_condition",
]


@dataclass(frozen=True)
class BalanceVerdict:
    """Outcome of comparing an algorithm's data movement against a machine.

    Attributes
    ----------
    algorithm_side:
        The algorithm's required words/FLOP (left-hand side of the
        condition).
    machine_side:
        The machine balance in words/FLOP (right-hand side).
    bound:
        For vertical verdicts: True means the algorithm is *provably
        bandwidth bound* at this level (condition (7) violated).  For
        horizontal verdicts: True means the algorithm *may* be network
        bound (condition (8) satisfied); False means it definitely has a
        non-network-bound execution.
    kind:
        ``"vertical"`` or ``"horizontal"``.
    machine:
        Name of the machine used.
    """

    algorithm_side: float
    machine_side: float
    bound: bool
    kind: str
    machine: str

    @property
    def ratio(self) -> float:
        """algorithm_side / machine_side — how far from balance (>1 means
        the requirement exceeds what the machine provides)."""
        if not self.machine_side:
            return float("inf")
        return self.algorithm_side / self.machine_side


def algorithm_vertical_intensity(
    lb_vertical_per_node: float, num_nodes: int, total_flops: float
) -> float:
    """Left-hand side of condition (9): ``LB_vert * N_nodes / |V|``.

    ``lb_vertical_per_node`` is the lower bound on words moved between the
    node's main memory and its cache for the sub-CDAG executed by one
    (maximally loaded) node; ``total_flops`` is ``|V|``, the total
    operation count of the CDAG.
    """
    if num_nodes < 1 or total_flops <= 0 or lb_vertical_per_node < 0:
        raise ValueError("invalid intensity parameters")
    return lb_vertical_per_node * num_nodes / total_flops


def algorithm_horizontal_intensity(
    ub_horizontal_per_node: float, num_nodes: int, total_flops: float
) -> float:
    """Left-hand side of condition (10): ``UB_horiz * N_nodes / |V|``."""
    if num_nodes < 1 or total_flops <= 0 or ub_horizontal_per_node < 0:
        raise ValueError("invalid intensity parameters")
    return ub_horizontal_per_node * num_nodes / total_flops


def vertical_condition(
    machine: MachineSpec,
    lb_vertical_per_node: float,
    total_flops: float,
    num_nodes: Optional[int] = None,
) -> BalanceVerdict:
    """Evaluate condition (9) for a machine.

    Returns a verdict whose ``bound`` is True when the algorithm's
    required vertical traffic per FLOP exceeds the machine's vertical
    balance — i.e. the algorithm is unavoidably memory-bandwidth bound at
    the DRAM<->cache level on this machine.
    """
    nodes = machine.num_nodes if num_nodes is None else num_nodes
    lhs = algorithm_vertical_intensity(lb_vertical_per_node, nodes, total_flops)
    rhs = machine.effective_vertical_balance()
    return BalanceVerdict(
        algorithm_side=lhs,
        machine_side=rhs,
        bound=lhs > rhs,
        kind="vertical",
        machine=machine.name,
    )


def horizontal_condition(
    machine: MachineSpec,
    ub_horizontal_per_node: float,
    total_flops: float,
    num_nodes: Optional[int] = None,
) -> BalanceVerdict:
    """Evaluate condition (10) for a machine.

    ``bound`` is True when the horizontal requirement (per FLOP) is at
    least the machine's horizontal balance, i.e. the algorithm *could* be
    network bound; False certifies the existence of an execution order not
    constrained by the interconnect bandwidth.
    """
    nodes = machine.num_nodes if num_nodes is None else num_nodes
    lhs = algorithm_horizontal_intensity(ub_horizontal_per_node, nodes, total_flops)
    rhs = machine.effective_horizontal_balance()
    return BalanceVerdict(
        algorithm_side=lhs,
        machine_side=rhs,
        bound=lhs >= rhs,
        kind="horizontal",
        machine=machine.name,
    )

"""Machine models, Table 1 catalog and balance analysis (Section 5)."""

from .balance import (
    BalanceVerdict,
    algorithm_horizontal_intensity,
    algorithm_vertical_intensity,
    horizontal_condition,
    vertical_condition,
)
from .catalog import (
    ALL_MACHINES,
    COMMODITY_CLUSTER,
    CRAY_XT5,
    FAT_NODE,
    IBM_BGQ,
    PAPER_MACHINES,
    get_machine,
)
from .spec import WORD_BYTES, MachineSpec

__all__ = [
    "BalanceVerdict",
    "algorithm_horizontal_intensity",
    "algorithm_vertical_intensity",
    "horizontal_condition",
    "vertical_condition",
    "ALL_MACHINES",
    "COMMODITY_CLUSTER",
    "CRAY_XT5",
    "FAT_NODE",
    "IBM_BGQ",
    "PAPER_MACHINES",
    "get_machine",
    "WORD_BYTES",
    "MachineSpec",
]

"""Machine specifications and balance parameters (Section 5, Table 1).

A processor's *machine balance* is the ratio of peak memory bandwidth to
peak floating-point performance, expressed in words per FLOP.  The paper
distinguishes:

* the **vertical balance** at a level ``l``: the bandwidth between a
  level-``l`` storage instance and its children, divided by the aggregate
  peak FLOP rate of the processors sharing it
  (``B^i_l / (|P^i_l| * F)`` — the right-hand side of condition (7));
* the **horizontal balance**: the per-node interconnect bandwidth divided
  by the node's aggregate FLOP rate.

:class:`MachineSpec` stores the published machine parameters and computes
the balance values; the two systems of Table 1 are provided in
:mod:`repro.machine.catalog` with the paper's published balance numbers
attached so the reproduction can compare against exactly the constants
the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["MachineSpec", "WORD_BYTES"]

#: The paper works in 8-byte words (double precision).
WORD_BYTES = 8


@dataclass(frozen=True)
class MachineSpec:
    """A multi-node, multi-core machine for balance analysis.

    Attributes
    ----------
    name:
        Human-readable machine name.
    num_nodes:
        ``N_nodes`` — number of nodes in the system.
    cores_per_node:
        ``N_cores`` — cores per node (all sharing the node's L2/L3 cache
        and main memory, the simplifying assumption of Section 5).
    memory_per_node_bytes:
        Main-memory capacity per node.
    cache_per_node_bytes:
        Last-level (L2/L3) cache capacity per node.
    peak_flops_per_core:
        Peak double-precision FLOP/s per core.
    dram_bandwidth_bytes:
        Aggregate DRAM <-> cache bandwidth per node (bytes/s) — the
        *vertical* bandwidth ``B_vert``.
    network_bandwidth_bytes:
        Injection bandwidth per node into the interconnect (bytes/s) —
        the *horizontal* bandwidth ``B_horiz``.
    l1_bandwidth_bytes:
        Optional cache <-> L1/register bandwidth per node, used for the
        L2<->L1 threshold analysis of Section 5.4.3.
    published_vertical_balance / published_horizontal_balance:
        The words/FLOP values printed in Table 1, kept verbatim so the
        reproduction can report both "derived from raw specs" and
        "as published" numbers.
    """

    name: str
    num_nodes: int
    cores_per_node: int
    memory_per_node_bytes: float
    cache_per_node_bytes: float
    peak_flops_per_core: float
    dram_bandwidth_bytes: float
    network_bandwidth_bytes: float
    l1_bandwidth_bytes: Optional[float] = None
    published_vertical_balance: Optional[float] = None
    published_horizontal_balance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.cores_per_node < 1:
            raise ValueError("node and core counts must be >= 1")
        for attr in (
            "memory_per_node_bytes",
            "cache_per_node_bytes",
            "peak_flops_per_core",
            "dram_bandwidth_bytes",
            "network_bandwidth_bytes",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- capacities in words ------------------------------------------------
    @property
    def total_cores(self) -> int:
        """``P`` — total processor (core) count."""
        return self.num_nodes * self.cores_per_node

    @property
    def cache_words(self) -> float:
        """Last-level cache capacity per node, in words (``S_2`` in 5.4.3)."""
        return self.cache_per_node_bytes / WORD_BYTES

    @property
    def memory_words(self) -> float:
        """Main-memory capacity per node, in words."""
        return self.memory_per_node_bytes / WORD_BYTES

    # -- peak rates -----------------------------------------------------------
    @property
    def peak_flops_per_node(self) -> float:
        """``N_cores * F``: aggregate peak FLOP/s of one node."""
        return self.cores_per_node * self.peak_flops_per_core

    @property
    def peak_flops_total(self) -> float:
        return self.num_nodes * self.peak_flops_per_node

    # -- balances (words / FLOP) ------------------------------------------------
    @property
    def vertical_balance(self) -> float:
        """``B_vert / (N_cores * F)`` in words/FLOP (right side of Eq. 9)."""
        return (self.dram_bandwidth_bytes / WORD_BYTES) / self.peak_flops_per_node

    @property
    def horizontal_balance(self) -> float:
        """``B_horiz / (N_cores * F)`` in words/FLOP (right side of Eq. 10)."""
        return (self.network_bandwidth_bytes / WORD_BYTES) / self.peak_flops_per_node

    @property
    def l1_balance(self) -> Optional[float]:
        """Cache<->L1 balance in words/FLOP, when the bandwidth is known."""
        if self.l1_bandwidth_bytes is None:
            return None
        return (self.l1_bandwidth_bytes / WORD_BYTES) / self.peak_flops_per_node

    def effective_vertical_balance(self) -> float:
        """The vertical balance to compare bounds against: the published
        Table 1 value when available, otherwise the derived one."""
        if self.published_vertical_balance is not None:
            return self.published_vertical_balance
        return self.vertical_balance

    def effective_horizontal_balance(self) -> float:
        """The horizontal balance to compare bounds against (published value
        preferred, derived otherwise)."""
        if self.published_horizontal_balance is not None:
            return self.published_horizontal_balance
        return self.horizontal_balance

    # -- reporting ----------------------------------------------------------------
    def as_table_row(self) -> Dict[str, object]:
        """The Table 1 row for this machine."""
        return {
            "machine": self.name,
            "nodes": self.num_nodes,
            "memory_GB": self.memory_per_node_bytes / 2 ** 30,
            "cache_MB": self.cache_per_node_bytes / 2 ** 20,
            "vertical_balance": round(self.effective_vertical_balance(), 4),
            "horizontal_balance": round(self.effective_horizontal_balance(), 4),
        }

"""Catalog of machine specifications (Table 1 and extras).

The paper's Table 1 lists two production systems with their per-node
memory, last-level cache and the vertical/horizontal balance parameters
(in words per FLOP) used throughout the Section 5 analyses:

=============  =======  =========  ============  =================  ==================
Machine        N_nodes  Mem (GB)   L2/L3 (MB)    Vertical balance   Horizontal balance
=============  =======  =========  ============  =================  ==================
IBM BG/Q       2048     16         32            0.052              0.049
Cray XT5       9408     16         6             0.0256             0.058
=============  =======  =========  ============  =================  ==================

The raw hardware parameters (core counts, peak FLOP rates, bandwidths)
are taken from the systems' public specifications and chosen to be
consistent with the published balance values; the published balances are
stored verbatim and used as the authoritative comparison constants
(``published_*_balance``), so any residual discrepancy in the raw specs
cannot perturb the reproduced analyses.

Two present-day-style configurations are added (a fat multi-core node and
a GPU-less commodity cluster) to exercise the framework beyond the
paper's table; they are clearly marked as extras and are not used by the
reproduction benches except in the extended sweeps.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import MachineSpec

__all__ = [
    "IBM_BGQ",
    "CRAY_XT5",
    "COMMODITY_CLUSTER",
    "FAT_NODE",
    "PAPER_MACHINES",
    "ALL_MACHINES",
    "get_machine",
]

GB = 2 ** 30
MB = 2 ** 20
GFLOPS = 1e9
GBPS = 1e9

#: IBM Blue Gene/Q (Sequoia-class partition of 2048 nodes, as in Table 1).
#: Each node: 16 user cores (PowerPC A2 @ 1.6 GHz, 4-wide FMA ->
#: 12.8 GFLOP/s per core, 204.8 GFLOP/s per node), 16 GB DDR3, 32 MB
#: shared L2 (eDRAM).  Raw bandwidths chosen consistent with the published
#: balances: vertical 0.052 w/F -> ~85 GB/s effective L2<->DRAM stream,
#: horizontal 0.049 w/F -> ~80 GB/s injection (10 links x 2 GB/s x 4).
IBM_BGQ = MachineSpec(
    name="IBM BG/Q",
    num_nodes=2048,
    cores_per_node=16,
    memory_per_node_bytes=16 * GB,
    cache_per_node_bytes=32 * MB,
    peak_flops_per_core=12.8 * GFLOPS,
    dram_bandwidth_bytes=0.052 * 204.8 * GFLOPS * 8,
    network_bandwidth_bytes=0.049 * 204.8 * GFLOPS * 8,
    l1_bandwidth_bytes=16 * 51.2 * GBPS,  # per-core L1 streams, aggregated
    published_vertical_balance=0.052,
    published_horizontal_balance=0.049,
)

#: Cray XT5 (Jaguar-class partition of 9408 nodes, as in Table 1).
#: Each node: 2 x AMD Istanbul 6-core @ 2.6 GHz (4 FLOP/cycle/core ->
#: 10.4 GFLOP/s per core, 124.8 GFLOP/s per node), 16 GB DDR2, 2 x 6 MB L3.
IBM_BGQ_CORES = 16
CRAY_XT5 = MachineSpec(
    name="Cray XT5",
    num_nodes=9408,
    cores_per_node=12,
    memory_per_node_bytes=16 * GB,
    cache_per_node_bytes=6 * MB,
    peak_flops_per_core=10.4 * GFLOPS,
    dram_bandwidth_bytes=0.0256 * 124.8 * GFLOPS * 8,
    network_bandwidth_bytes=0.058 * 124.8 * GFLOPS * 8,
    l1_bandwidth_bytes=12 * 41.6 * GBPS,
    published_vertical_balance=0.0256,
    published_horizontal_balance=0.058,
)

#: Extra (not in the paper): a commodity InfiniBand cluster node.
COMMODITY_CLUSTER = MachineSpec(
    name="Commodity cluster (extra)",
    num_nodes=512,
    cores_per_node=32,
    memory_per_node_bytes=256 * GB,
    cache_per_node_bytes=64 * MB,
    peak_flops_per_core=48 * GFLOPS,
    dram_bandwidth_bytes=200 * GBPS,
    network_bandwidth_bytes=25 * GBPS,
    l1_bandwidth_bytes=32 * 200 * GBPS,
)

#: Extra (not in the paper): a single fat shared-memory node.
FAT_NODE = MachineSpec(
    name="Fat node (extra)",
    num_nodes=1,
    cores_per_node=128,
    memory_per_node_bytes=1024 * GB,
    cache_per_node_bytes=256 * MB,
    peak_flops_per_core=40 * GFLOPS,
    dram_bandwidth_bytes=400 * GBPS,
    network_bandwidth_bytes=50 * GBPS,
)

#: The machines of Table 1 (used by the reproduction benches).
PAPER_MACHINES: List[MachineSpec] = [IBM_BGQ, CRAY_XT5]

#: Everything in the catalog.
ALL_MACHINES: List[MachineSpec] = [IBM_BGQ, CRAY_XT5, COMMODITY_CLUSTER, FAT_NODE]

_BY_NAME: Dict[str, MachineSpec] = {m.name.lower(): m for m in ALL_MACHINES}
_BY_NAME.update({"bgq": IBM_BGQ, "bg/q": IBM_BGQ, "xt5": CRAY_XT5})


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by (case-insensitive) name or alias."""
    key = name.lower()
    if key not in _BY_NAME:
        raise KeyError(
            f"unknown machine {name!r}; available: "
            + ", ".join(sorted(m.name for m in ALL_MACHINES))
        )
    return _BY_NAME[key]

"""Observability: metrics registry, event ring, failure dashboard.

The dependency-free instrumentation layer shared by the artifact store
(:mod:`repro.store.db`), the memoized bound server
(:mod:`repro.service.server`), the fleet controller and workers
(:mod:`repro.fleet`), and the sweep harness
(:mod:`repro.evaluation.harness`).  Three pieces:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms with a canonical-JSON (byte-stable) snapshot; served by
  ``GET /metrics`` on both HTTP servers.
* :class:`EventRing` — a bounded ring of structured events (lease
  granted/expired/re-queued, cell started/committed/failed, cache
  corruption recoveries, gc passes).
* :func:`render_failure_table` — the per-cell failure dashboard
  ``repro fleet status --failures`` prints.

See ``docs/observability.md`` for metric names, the event schema, and
dashboard usage.
"""

from .dashboard import render_failure_table, signal_from_error
from .events import EventRing
from .metrics import (
    DEFAULT_LATENCY_EDGES_S,
    OBS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dumps_snapshot,
    labeled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES_S",
    "EventRing",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_SCHEMA",
    "dumps_snapshot",
    "labeled",
    "render_failure_table",
    "signal_from_error",
]

"""Failure-dashboard rendering: the per-cell failure table.

The fleet controller derives one row per troubled cell (any attempt
beyond the first, or a permanent failure) from its event ring and lease
state — see :meth:`repro.fleet.controller.FleetController.failures` —
and serves the rows inside ``GET /metrics``.  This module turns those
rows into the fixed-width text table ``repro fleet status --failures``
prints, and extracts signal names (``SIGKILL``, ``SIGSEGV``, …) from
failure reasons so a fault-injection run reads at a glance.

Doctest::

    >>> from repro.obs.dashboard import render_failure_table, signal_from_error
    >>> signal_from_error("worker killed by SIGKILL (worker w1)")
    'SIGKILL'
    >>> print(render_failure_table([{
    ...     "label": "cell0", "state": "failed", "attempts": 3,
    ...     "max_retries": 2, "worker": "", "backoff_in_s": 0.0,
    ...     "last_error": "worker killed by SIGKILL (worker w1)",
    ...     "last_signal": "SIGKILL"}]))
    CELL   STATE   ATTEMPTS  SIGNAL   BACKOFF  WORKER  LAST ERROR
    cell0  failed  3/3       SIGKILL  -        -       worker killed by SIGKILL (worker w1)
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["render_failure_table", "signal_from_error"]

_SIGNAL_RE = re.compile(r"\bSIG[A-Z0-9]+\b")

#: column order: (header, row key, formatter)
_COLUMNS = (
    ("CELL", "label"),
    ("STATE", "state"),
    ("ATTEMPTS", "attempts"),
    ("SIGNAL", "last_signal"),
    ("BACKOFF", "backoff_in_s"),
    ("WORKER", "worker"),
    ("LAST ERROR", "last_error"),
)


def signal_from_error(error: Optional[str]) -> str:
    """The first signal name mentioned in a failure reason, or ``""``
    (``describe_worker_exit`` writes ``worker killed by SIGKILL``)."""
    if not error:
        return ""
    match = _SIGNAL_RE.search(error)
    return match.group(0) if match else ""


def _cell_text(row: Mapping, key: str) -> str:
    value = row.get(key)
    if key == "attempts":
        # attempts so far out of the retry budget (1 first run +
        # max_retries re-queues)
        budget = row.get("max_retries")
        total = "?" if budget is None else str(int(budget) + 1)
        return f"{value}/{total}"
    if key == "backoff_in_s":
        return f"{value:.2f}s" if value else "-"
    text = "" if value is None else str(value)
    return text if text else "-"


def render_failure_table(rows: Sequence[Mapping]) -> str:
    """A fixed-width text table of per-cell failure rows (the shape
    :meth:`FleetController.failures` returns), sorted by label.
    Returns a one-line all-clear message when ``rows`` is empty."""
    if not rows:
        return "no failures: every attempted cell committed first try"
    rows = sorted(rows, key=lambda r: str(r.get("label", "")))
    table: List[List[str]] = [[header for header, _key in _COLUMNS]]
    for row in rows:
        table.append([_cell_text(row, key) for _header, key in _COLUMNS])
    widths: Dict[int, int] = {}
    for line in table:
        for i, cell in enumerate(line):
            widths[i] = max(widths.get(i, 0), len(cell))
    out = []
    for line in table:
        cells = [cell.ljust(widths[i]) for i, cell in enumerate(line)]
        out.append("  ".join(cells).rstrip())
    return "\n".join(out)

"""A bounded structured event ring.

Where metrics answer "how many / how fast", the event ring answers
"what happened last": every interesting transition on the distributed
seams — a lease granted or expired, a cell started / committed /
failed-with-signal-name, a cache corruption recovery, a gc pass — is
emitted as one small JSON-safe record into a fixed-capacity ring.  Old
events fall off the far end (counted, never silently); the ring is the
data source of the controller-side failure dashboard
(``repro fleet status --failures``) and the ``events`` section of
``GET /metrics``.

Events carry a process-unique increasing ``seq`` (so consumers can
dedupe or resume across scrapes) and a wall-clock ``ts`` — wall clock
is correct *here* because event timestamps are reported, never used for
interval arithmetic (the clock-correctness rule established in the
fleet layer: monotonic for intervals, wall for reported timestamps).

Doctest::

    >>> from repro.obs import EventRing
    >>> ring = EventRing(capacity=2)
    >>> _ = ring.emit("lease.granted", label="cell0", worker="w1")
    >>> _ = ring.emit("cell.committed", label="cell0")
    >>> _ = ring.emit("lease.expired", label="cell1")
    >>> [e["kind"] for e in ring.snapshot()]
    ['cell.committed', 'lease.expired']
    >>> ring.dropped
    1
    >>> ring.last("lease.expired")["label"]
    'cell1'
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["EventRing"]


class EventRing:
    """Fixed-capacity, thread-safe ring of structured events.

    Parameters
    ----------
    capacity:
        Maximum retained events; older ones are dropped (and counted in
        :attr:`dropped`).
    clock:
        Wall-clock source stamped into each event's ``ts`` field —
        injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 1024,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        self._mu = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq = 0
        self._dropped = 0

    def emit(self, kind: str, **fields) -> Dict:
        """Record one event; returns the stored record (``seq`` + ``ts``
        + ``kind`` + the keyword fields)."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        event = {"kind": str(kind), "ts": float(self._clock()), **fields}
        with self._mu:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)
        return event

    def snapshot(
        self,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
        since_seq: int = 0,
    ) -> List[Dict]:
        """Retained events in emission order, optionally filtered by
        ``kind`` (exact match), ``since_seq`` (strictly greater), and
        trimmed to the newest ``limit``."""
        with self._mu:
            events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if since_seq:
            events = [e for e in events if e["seq"] > since_seq]
        if limit is not None and limit >= 0:
            events = events[len(events) - min(limit, len(events)):]
        return [dict(e) for e in events]

    def last(self, kind: Optional[str] = None) -> Optional[Dict]:
        """The newest retained event (of ``kind``, if given)."""
        events = self.snapshot(kind=kind)
        return events[-1] if events else None

    @property
    def dropped(self) -> int:
        """Events lost to capacity so far."""
        with self._mu:
            return self._dropped

    def __len__(self) -> int:
        with self._mu:
            return len(self._ring)

"""A dependency-free metrics registry: counters, gauges, histograms.

The observability layer the distributed seams (artifact store, bound
server, fleet controller/worker) report through.  Three instrument
kinds, one registry, zero dependencies beyond the stdlib:

* :class:`Counter` — monotonically non-decreasing totals (requests,
  cache hits, lease expiries).  ``inc`` rejects negative deltas, so a
  scrape can always be diffed against an earlier scrape.
* :class:`Gauge` — point-in-time values that move both ways (queue
  depth, leased cells).
* :class:`Histogram` — observations bucketed against **fixed** upper
  edges chosen at creation (request latencies).  Fixed edges make two
  snapshots of the same registry state byte-identical and let scrapes
  from different processes be merged bucket-by-bucket.

Instruments are addressed by name; the convention used across the repo
is ``<subsystem>.<what>`` with an optional ``{label}`` suffix for one
dimension, e.g. ``store.hits`` or ``http.requests{GET /health}`` (see
:func:`labeled`).  :meth:`MetricsRegistry.snapshot` returns a plain
JSON-safe mapping and :meth:`MetricsRegistry.snapshot_json` its
canonical encoding (sorted keys, compact separators, non-finite floats
rejected) — the byte-stable view ``GET /metrics`` serves.

Doctest::

    >>> from repro.obs import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("store.hits").inc()
    >>> reg.counter("store.hits").inc(2)
    >>> reg.gauge("queue.depth").set(7)
    >>> h = reg.histogram("lat_s", edges=(0.1, 1.0))
    >>> h.observe(0.05); h.observe(5.0)
    >>> snap = reg.snapshot()
    >>> snap["counters"]["store.hits"], snap["gauges"]["queue.depth"]
    (3, 7)
    >>> snap["histograms"]["lat_s"]["buckets"]
    [1, 0, 1]
    >>> reg.snapshot_json() == reg.snapshot_json()   # byte-stable
    True
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_SCHEMA",
    "dumps_snapshot",
    "labeled",
]

OBS_SCHEMA = "repro-obs/1"

#: Default latency bucket edges (seconds): 100 µs .. 10 s, roughly
#: logarithmic.  Chosen once so every server's latency histograms are
#: mergeable and comparable across processes and PRs.
DEFAULT_LATENCY_EDGES_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

Number = Union[int, float]


def labeled(name: str, label: str) -> str:
    """The repo's one-dimension label convention:
    ``labeled("http.requests", "GET /health")`` ->
    ``"http.requests{GET /health}"``."""
    return f"{name}{{{label}}}"


def dumps_snapshot(payload) -> str:
    """Canonical JSON for snapshot payloads: sorted keys, compact
    separators, non-finite floats rejected — same state, same bytes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "_mu", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._mu = lock
        self._value: Number = 0

    def inc(self, delta: Number = 1) -> None:
        if delta < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (delta {delta})"
            )
        with self._mu:
            self._value += delta

    @property
    def value(self) -> Number:
        with self._mu:
            return self._value


class Gauge:
    """A point-in-time value; moves both ways."""

    __slots__ = ("name", "_mu", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._mu = lock
        self._value: Number = 0

    def set(self, value: Number) -> None:
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name!r} must stay finite")
        with self._mu:
            self._value = value

    def inc(self, delta: Number = 1) -> None:
        with self._mu:
            self._value += delta

    def dec(self, delta: Number = 1) -> None:
        self.inc(-delta)

    @property
    def value(self) -> Number:
        with self._mu:
            return self._value


class Histogram:
    """Observations bucketed against fixed, strictly increasing upper
    edges; ``buckets`` has ``len(edges) + 1`` slots (the last one is the
    overflow bucket)."""

    __slots__ = ("name", "edges", "_mu", "_buckets", "_count", "_sum",
                 "_min", "_max")

    def __init__(
        self,
        name: str,
        edges: Sequence[float],
        lock: threading.Lock,
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if any(not math.isfinite(e) for e in edges):
            raise ValueError(f"histogram {name!r} edges must be finite")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing"
            )
        self.name = name
        self.edges = edges
        self._mu = lock
        self._buckets = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name!r} must stay finite")
        idx = len(self.edges)  # overflow slot
        for i, edge in enumerate(self.edges):
            if value <= edge:
                idx = i
                break
        with self._mu:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._mu:
            return self._count

    def view(self) -> Dict:
        with self._mu:
            return {
                "edges": list(self.edges),
                "buckets": list(self._buckets),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """Get-or-create instrument registry, thread-safe throughout.

    One registry per server (the bound server and the fleet controller
    each own one); subsystems they host — the artifact store, the event
    ring consumers — are handed the same registry so one ``/metrics``
    scrape shows the whole process.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._mu:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, threading.Lock())
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._mu:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, threading.Lock())
            return inst

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_LATENCY_EDGES_S,
    ) -> Histogram:
        with self._mu:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(
                    name, edges, threading.Lock()
                )
            elif inst.edges != tuple(float(e) for e in edges):
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{inst.edges}"
                )
            return inst

    def snapshot(self) -> Dict:
        """A JSON-safe view of every instrument (plain ints/floats,
        names sorted by :func:`dumps_snapshot` at encode time)."""
        with self._mu:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema": OBS_SCHEMA,
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.view() for n, h in histograms.items()},
        }

    def snapshot_json(self) -> str:
        """The canonical (byte-stable) encoding of :meth:`snapshot`."""
        return dumps_snapshot(self.snapshot())

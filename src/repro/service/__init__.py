"""Analysis-as-a-service: the long-running memoized bound server.

``repro serve`` runs an HTTP server (stdlib ``http.server``, threaded)
that answers bound/schedule/pebbling/compile queries for many
concurrent clients out of the content-addressed artifact store
(:mod:`repro.store`), with single-flight deduplication of identical
in-flight computations and ``/health`` + ``/stats`` introspection.
See ``docs/service.md`` for the service contract and
``benchmarks/bench_service.py`` for the many-tenant load benchmark.
"""

from .client import ServiceClient, ServiceError
from .server import DEFAULT_PORT, BoundService, make_server, serve

__all__ = [
    "BoundService",
    "ServiceClient",
    "ServiceError",
    "DEFAULT_PORT",
    "make_server",
    "serve",
]

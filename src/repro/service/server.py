"""The memoized bound server: analysis-as-a-service over the store.

A long-running, multi-threaded HTTP server (stdlib
:class:`http.server.ThreadingHTTPServer` — no framework dependency)
fronting one :class:`~repro.store.db.ArtifactStore`.  Every query is a
pure function of its JSON body, so the request handler is just: content
address -> store lookup -> (on miss) compute under the single-flight
lock -> publish -> respond.  N concurrent identical requests compute
once; everyone else waits for the leader and reads the published bytes.

Endpoints (full request/response examples in ``docs/service.md``):

=======================  ====================================================
``GET /health``          liveness: status, uptime, store path
``GET /stats``           store stats (hit rates, entries, DB size) +
                         per-endpoint request counters
``GET /metrics``         observability snapshot (:mod:`repro.obs`):
                         request counters + latency histograms + mirrored
                         store counters, plus the recent event ring —
                         canonical JSON, byte-stable per state
``POST /v1/compiled``    compile-snapshot query: ``{builder, params, seed}``
``POST /v1/schedule``    schedule query: ``+ {kind: dfs|minlive,
                         include_ids}``
``POST /v1/bound``       lower-bound query: ``+ {s, method, max_candidates,
                         u_upper}``
``POST /v1/pebble``      spill-strategy pebble game: the harness's spill
                         cell parameter set
=======================  ====================================================

Errors are JSON too: ``400`` for malformed bodies or unknown
builders/params (the ``ValueError`` text is the message), ``404`` for
unknown routes, ``500`` for unexpected failures.  Responses carry the
artifact ``key`` and a ``cached`` flag so clients (and the load
benchmark) can audit cold-vs-warm behavior per request.

Doctest::

    >>> import tempfile, os
    >>> from repro.service import make_server, ServiceClient
    >>> from threading import Thread
    >>> srv = make_server(os.path.join(tempfile.mkdtemp(), "s.db"), port=0)
    >>> Thread(target=srv.serve_forever, daemon=True).start()
    >>> client = ServiceClient(f"http://127.0.0.1:{srv.server_port}")
    >>> client.health()["status"]
    'ok'
    >>> r = client.bound(builder="chain", params={"length": 8}, s=2)
    >>> r["cached"], r["value"] >= 0
    (False, True)
    >>> client.bound(builder="chain", params={"length": 8}, s=2)["cached"]
    True
    >>> srv.shutdown(); srv.service.close()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..evaluation.manifest import dumps_canonical
from ..obs import OBS_SCHEMA, EventRing, MetricsRegistry, labeled
from ..store.analysis import (
    cached_bound,
    cached_compiled_payload,
    cached_schedule,
    cached_spill,
    compiled_spec,
)
from ..store.codec import unpack_arrays
from ..store.db import ArtifactStore
from ..store.keys import artifact_key

__all__ = ["BoundService", "make_server", "serve", "DEFAULT_PORT"]

DEFAULT_PORT = 8177
SERVICE_SCHEMA = "repro-service/1"


class BoundService:
    """Endpoint logic, independent of HTTP plumbing (unit-testable).

    Wraps one :class:`ArtifactStore` plus request accounting; every
    ``handle_*`` method takes the parsed JSON body and returns a
    JSON-safe response mapping.  Raises ``ValueError`` for client
    errors (mapped to 400 by the HTTP layer).
    """

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store
        self.started_s = time.time()
        self._started_mono = time.monotonic()
        self._mu = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.metrics = MetricsRegistry()
        self.events = EventRing()
        if store.metrics is None:
            # One scrape covers HTTP + store traffic; a store that came
            # in with its own registry keeps it.
            store.bind_obs(self.metrics, self.events)

    def _count(self, endpoint: str) -> None:
        with self._mu:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def close(self) -> None:
        self.store.close()

    # -- introspection -------------------------------------------------
    def health(self) -> Dict:
        self._count("/health")
        return {
            "status": "ok",
            "schema": SERVICE_SCHEMA,
            "uptime_s": time.time() - self.started_s,
            "store": str(self.store.path),
        }

    def stats(self) -> Dict:
        self._count("/stats")
        with self._mu:
            requests = dict(self.requests)
        return {
            "schema": SERVICE_SCHEMA,
            "uptime_s": time.time() - self.started_s,
            "requests": requests,
            "store": self.store.stats(),
        }

    # -- queries -------------------------------------------------------
    @staticmethod
    def _query_triple(body: Dict) -> Tuple[str, Optional[Dict], int]:
        builder = body.get("builder")
        if not isinstance(builder, str):
            raise ValueError("request must name a 'builder' (string)")
        params = body.get("params")
        if params is not None and not isinstance(params, dict):
            raise ValueError("'params' must be a mapping when present")
        return builder, params, int(body.get("seed", 0))

    def compiled(self, body: Dict) -> Dict:
        self._count("/v1/compiled")
        builder, params, seed = self._query_triple(body)
        payload, hit = cached_compiled_payload(
            self.store, builder, params, seed
        )
        _arrays, meta = unpack_arrays(payload)
        return {
            "key": artifact_key(
                "compiled", compiled_spec(builder, params, seed)
            ),
            "cached": hit,
            "n": meta["n"],
            "m": meta["m"],
            "nbytes": len(payload),
        }

    def schedule(self, body: Dict) -> Dict:
        self._count("/v1/schedule")
        builder, params, seed = self._query_triple(body)
        kind = body.get("kind", "dfs")
        ids, hit = cached_schedule(self.store, builder, params, seed, kind)
        spec = compiled_spec(builder, params, seed)
        spec["schedule"] = kind
        out = {
            "key": artifact_key("schedule", spec),
            "cached": hit,
            "kind": kind,
            "length": int(ids.size),
        }
        if body.get("include_ids"):
            out["ids"] = [int(i) for i in ids.tolist()]
        return out

    def bound(self, body: Dict) -> Dict:
        self._count("/v1/bound")
        builder, params, seed = self._query_triple(body)
        s = int(body.get("s", 16))
        method = body.get("method", "wavefront")
        max_candidates = int(body.get("max_candidates", 32))
        u_upper = body.get("u_upper")
        result, hit = cached_bound(
            self.store,
            builder,
            params,
            seed,
            s=s,
            method=method,
            max_candidates=max_candidates,
            u_upper=None if u_upper is None else float(u_upper),
        )
        spec = compiled_spec(builder, params, seed)
        spec["s"] = s
        spec["method"] = method
        if method == "wavefront":
            spec["max_candidates"] = max_candidates
        if method == "hong_kung":
            spec["u_upper"] = float(u_upper)
        return {"key": artifact_key("bound", spec), "cached": hit, **result}

    def pebble(self, body: Dict) -> Dict:
        self._count("/v1/pebble")
        params = body.get("params")
        if params is not None and not isinstance(params, dict):
            raise ValueError("'params' must be a mapping when present")
        seed = int(body.get("seed", 0))
        row, hit = cached_spill(self.store, params, seed)
        return {"cached": hit, **row}

    # -- observability -------------------------------------------------
    def metrics_view(self) -> Dict:
        """The ``GET /metrics`` payload: instrument snapshot (request
        counters, per-endpoint latency histograms, mirrored ``store.*``
        counters) plus the recent event ring.  Canonical JSON on the
        wire, so two scrapes of the same state are byte-identical."""
        self._count("/metrics")
        return {
            "schema": SERVICE_SCHEMA,
            "obs_schema": OBS_SCHEMA,
            "uptime_s": time.monotonic() - self._started_mono,
            "metrics": self.metrics.snapshot(),
            "events": self.events.snapshot(limit=256),
        }

    # -- dispatch ------------------------------------------------------
    ROUTES = {
        ("GET", "/health"): "health",
        ("GET", "/stats"): "stats",
        ("GET", "/metrics"): "metrics_view",
        ("POST", "/v1/compiled"): "compiled",
        ("POST", "/v1/schedule"): "schedule",
        ("POST", "/v1/bound"): "bound",
        ("POST", "/v1/pebble"): "pebble",
    }

    def handle(self, method: str, path: str, body: Optional[Dict]):
        """``(status, response-mapping)`` for one request."""
        name = self.ROUTES.get((method, path))
        if name is None:
            self.metrics.counter("http.unmatched").inc()
            return 404, {"error": f"unknown endpoint {method} {path}"}
        endpoint = f"{method} {path}"
        start = time.perf_counter()
        try:
            if method == "GET":
                status, payload = 200, getattr(self, name)()
            else:
                status, payload = 200, getattr(self, name)(body or {})
        except ValueError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - start
        self.metrics.counter(labeled("http.requests", endpoint)).inc()
        if status >= 400:
            self.metrics.counter(labeled("http.errors", endpoint)).inc()
        self.metrics.histogram(labeled("http.latency_s", endpoint)).observe(
            elapsed
        )
        return status, payload


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"

    def _respond(self, status: int, payload: Dict) -> None:
        raw = dumps_canonical(payload, indent=None).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _dispatch(self, method: str) -> None:
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError):
                self._respond(400, {"error": "request body is not valid JSON"})
                return
            if not isinstance(body, dict):
                self._respond(
                    400, {"error": "request body must be a JSON object"}
                )
                return
        status, payload = self.server.service.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, fmt, *args) -> None:  # quiet by default
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    service: BoundService


def make_server(
    db_path,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    store: Optional[ArtifactStore] = None,
) -> _Server:
    """A ready-to-serve threading HTTP server bound to ``host:port``
    (``port=0`` picks a free port — see ``server_port``).  The caller
    owns the loop: ``serve_forever()`` / ``shutdown()``; close the
    store via ``server.service.close()``."""
    service = BoundService(store if store is not None
                           else ArtifactStore(db_path))
    server = _Server((host, port), _Handler)
    server.service = service
    return server


def serve(
    db_path,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    log=print,
) -> None:  # pragma: no cover - blocking CLI loop
    """Blocking entry point of ``repro serve``."""
    server = make_server(db_path, host=host, port=port)
    log(
        f"repro service listening on http://{host}:{server.server_port} "
        f"(store: {db_path})"
    )
    log("endpoints: GET /health /stats /metrics; "
        "POST /v1/compiled /v1/schedule /v1/bound /v1/pebble")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log("shutting down")
    finally:
        server.shutdown()
        server.service.close()

"""A minimal stdlib client for the bound service.

``urllib``-based, dependency-free; used by the test suite, the
many-tenant load benchmark (``benchmarks/bench_service.py``), and as
executable documentation of the wire format.  Each convenience method
mirrors one endpoint of :mod:`repro.service.server` and returns the
decoded JSON mapping; HTTP error statuses raise :class:`ServiceError`
carrying the server's ``error`` message.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response from the service (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running bound server.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8177"`` (no trailing slash needed).
    timeout_s:
        Per-request socket timeout.
    retries:
        How many times to retry a request that failed at the
        *connection* level (``URLError``: refused, reset, DNS, socket
        timeout) before giving up.  Every endpoint is pure and
        idempotent, so retrying is always safe; retries are opt-in
        (default 0) and bounded, with exponential backoff plus jitter
        between attempts.  HTTP error responses (the server answered)
        are never retried — they raise :class:`ServiceError` at once.
    backoff_s:
        Base delay of the exponential backoff: attempt ``k`` sleeps
        ``backoff_s * 2**k`` scaled by a uniform jitter in [0.5, 1.0]
        (decorrelating a fleet of workers hammering one endpoint).
        Jitter comes from a **private** ``random.Random`` instance, not
        the module-global generator: seeded tests and seeded workers
        (``random.seed(...)`` anywhere in the process) must not
        correlate every client's backoff into a retry storm, and a
        client's retries must not perturb the caller's seeded stream.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._rng = random.Random()  # OS-entropy seeded, per client

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            req = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    req, timeout=self.timeout_s
                ) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                try:
                    message = json.loads(exc.read().decode("utf-8")).get(
                        "error", exc.reason
                    )
                except ValueError:
                    message = str(exc.reason)
                raise ServiceError(exc.code, message) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError):
                if attempt >= self.retries:
                    raise
                time.sleep(
                    self.backoff_s
                    * (2 ** attempt)
                    * (0.5 + 0.5 * self._rng.random())
                )

    def get(self, path: str) -> Dict:
        return self._request("GET", path)

    def post(self, path: str, body: Dict) -> Dict:
        return self._request("POST", path, body)

    # -- endpoint mirrors ----------------------------------------------
    def health(self) -> Dict:
        return self.get("/health")

    def stats(self) -> Dict:
        return self.get("/stats")

    def metrics(self) -> Dict:
        return self.get("/metrics")

    def compiled(
        self, builder: str, params: Optional[Dict] = None, seed: int = 0
    ) -> Dict:
        return self.post(
            "/v1/compiled",
            {"builder": builder, "params": params, "seed": seed},
        )

    def schedule(
        self,
        builder: str,
        params: Optional[Dict] = None,
        seed: int = 0,
        kind: str = "dfs",
        include_ids: bool = False,
    ) -> Dict:
        return self.post(
            "/v1/schedule",
            {
                "builder": builder,
                "params": params,
                "seed": seed,
                "kind": kind,
                "include_ids": include_ids,
            },
        )

    def bound(
        self,
        builder: str,
        params: Optional[Dict] = None,
        seed: int = 0,
        s: int = 16,
        method: str = "wavefront",
        **extra,
    ) -> Dict:
        body = {
            "builder": builder,
            "params": params,
            "seed": seed,
            "s": s,
            "method": method,
        }
        body.update(extra)
        return self.post("/v1/bound", body)

    def pebble(self, params: Optional[Dict] = None, seed: int = 0) -> Dict:
        return self.post("/v1/pebble", {"params": params, "seed": seed})

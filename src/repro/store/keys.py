"""Content-addressing: artifact keys and code-version stamping.

Every cached artifact is identified by a SHA-256 **artifact key** over
the canonical JSON encoding of::

    {"kind", "spec", "code_version"}

where ``kind`` names the artifact family (``"compiled"``, ``"schedule"``,
``"bound"``, ``"spill"``), ``spec`` is the full parameterization of the
computation (builder name, builder params, seed, analysis options —
everything the result is a pure function of), and ``code_version``
stamps the implementation that produced it.

The canonicalization discipline is exactly the one
:mod:`repro.evaluation.manifest` established for harness config hashes:
dict key order and tuple-vs-list spelling never change a key (both
properties are hypothesis-tested in
``tests/store/test_store_properties.py``), numpy scalars unbox, and
non-finite floats are rejected.  Changing *any* spec value, the kind, or
the code version produces a different key — that is the whole
invalidation story: stale entries are never overwritten, they simply
stop being addressed (``ArtifactStore.gc`` reclaims them).

``code_version`` defaults to a SHA-256 over the source text of every
``repro`` module (cached per process), so editing any analysis code
automatically invalidates every cached artifact.  Set
``REPRO_CODE_VERSION`` to pin an explicit version string instead (e.g.
a release tag, or a fixed value in hermetic tests).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Mapping, Optional

from ..evaluation.manifest import canonical_config, dumps_canonical

__all__ = ["CODE_VERSION_ENV", "code_version", "artifact_key"]

#: environment override for the code-version stamp
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

_CODE_VERSION_CACHE: Optional[str] = None


def _source_hash() -> str:
    """SHA-256 over (relative path, bytes) of every ``repro/**/*.py``."""
    pkg_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        digest.update(str(path.relative_to(pkg_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def code_version() -> str:
    """The code-version stamp baked into every artifact key.

    ``REPRO_CODE_VERSION`` wins when set; otherwise a 16-hex-digit hash
    of the package's own source files, computed once per process.  Two
    processes running identical source agree; any source edit changes
    the stamp and therefore every key.
    """
    env = os.environ.get(CODE_VERSION_ENV)
    if env:
        return env
    global _CODE_VERSION_CACHE
    if _CODE_VERSION_CACHE is None:
        _CODE_VERSION_CACHE = "src-" + _source_hash()
    return _CODE_VERSION_CACHE


def artifact_key(
    kind: str, spec: Mapping, code_ver: Optional[str] = None
) -> str:
    """The content address of one artifact.

    ``spec`` must be a JSON-canonicalizable mapping (the
    :func:`repro.evaluation.manifest.canonical_config` rules); the key
    is stable under key reordering and tuple/list spelling and changes
    whenever ``kind``, any spec value, or the code version changes.

    >>> a = artifact_key("bound", {"builder": "chain", "s": 4}, "v1")
    >>> b = artifact_key("bound", {"s": 4, "builder": "chain"}, "v1")
    >>> a == b and len(a) == 64
    True
    >>> artifact_key("bound", {"builder": "chain", "s": 5}, "v1") == a
    False
    """
    payload = {
        "kind": str(kind),
        "spec": canonical_config(spec),
        "code_version": str(code_ver if code_ver is not None
                            else code_version()),
    }
    text = dumps_canonical(payload, indent=None)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

"""Deterministic (de)serialization of cached artifacts.

Payload bytes are the unit of the store's correctness story: the
differential suite pins ``stored payload == serialize(freshly computed
value)`` byte for byte, so every encoder here must be a pure function of
its input — no timestamps, no dict-order dependence, no compression
nondeterminism.  ``numpy.savez`` is ruled out (zip containers carry
archive metadata); instead arrays travel in a tiny explicit container:

``RPROART1`` magic, an 8-byte little-endian header length, a canonical
JSON header (array names/dtypes/shapes/offsets plus a free-form ``meta``
mapping), then the raw C-contiguous array bytes in header order.

Three artifact families build on it:

* **compiled** — the CSR arrays + id table of a
  :class:`~repro.core.compiled.CompiledCDAG` snapshot
  (:func:`serialize_compiled` / :func:`compiled_from_payload`, the
  latter via :meth:`CompiledCDAG.from_arrays`);
* **schedule** — an int32 id array plus its kind;
* **json** — canonical-JSON values (bound results, spill-game rows).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..core.compiled import CompiledCDAG
from ..evaluation.manifest import canonical_config, dumps_canonical

__all__ = [
    "MAGIC",
    "pack_arrays",
    "unpack_arrays",
    "serialize_compiled",
    "compiled_from_payload",
    "serialize_schedule",
    "schedule_from_payload",
    "serialize_json",
    "json_from_payload",
]

MAGIC = b"RPROART1"


# ----------------------------------------------------------------------
# The array container
# ----------------------------------------------------------------------
def pack_arrays(
    arrays: Mapping[str, np.ndarray], meta: Mapping
) -> bytes:
    """Encode named arrays + a JSON-safe ``meta`` mapping, bytewise
    deterministically (arrays in the given mapping order)."""
    header_arrays = []
    chunks: List[bytes] = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        raw = arr.tobytes()
        header_arrays.append(
            {
                "name": str(name),
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    header = dumps_canonical(
        {"arrays": header_arrays, "meta": canonical_config(meta)},
        indent=None,
    ).encode("utf-8")
    return b"".join(
        [MAGIC, len(header).to_bytes(8, "little"), header, *chunks]
    )


def unpack_arrays(payload: bytes) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Decode a :func:`pack_arrays` payload into ``(arrays, meta)``.

    Arrays are zero-copy read-only views over the payload; raises
    ``ValueError`` on a bad magic, truncated header, or truncated body
    (the store treats that as corruption and recomputes).
    """
    if payload[: len(MAGIC)] != MAGIC:
        raise ValueError("bad artifact magic")
    pos = len(MAGIC)
    header_len = int.from_bytes(payload[pos : pos + 8], "little")
    pos += 8
    header_raw = payload[pos : pos + header_len]
    if len(header_raw) != header_len:
        raise ValueError("truncated artifact header")
    header = json.loads(header_raw.decode("utf-8"))
    body = memoryview(payload)[pos + header_len :]
    arrays: Dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        start, nbytes = spec["offset"], spec["nbytes"]
        raw = body[start : start + nbytes]
        if len(raw) != nbytes:
            raise ValueError(f"truncated artifact array {spec['name']!r}")
        arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
        arrays[spec["name"]] = arr.reshape(spec["shape"])
    return arrays, header["meta"]


# ----------------------------------------------------------------------
# Compiled CDAG snapshots
# ----------------------------------------------------------------------
def _vertex_to_json(v):
    if isinstance(v, tuple):
        return [_vertex_to_json(x) for x in v]
    return v


def _vertex_from_json(v):
    if isinstance(v, list):
        return tuple(_vertex_from_json(x) for x in v)
    return v


def serialize_compiled(c: CompiledCDAG) -> bytes:
    """A compiled snapshot as one deterministic payload.

    The CSR arrays, degree vectors and input/output masks travel as raw
    arrays; the id -> vertex-name table travels in the JSON header
    (tuples spelled as lists, reversibly).  Derived caches (topological
    order, adjacency matrices, the wavefront solver) are *not* stored —
    they rebuild lazily on the consumer side.
    """
    return pack_arrays(
        {
            "succ_indptr": c.succ_indptr,
            "succ_indices": c.succ_indices,
            "pred_indptr": c.pred_indptr,
            "pred_indices": c.pred_indices,
            "in_degree": c.in_degree,
            "out_degree": c.out_degree,
            "is_input_mask": c.is_input_mask,
            "is_output_mask": c.is_output_mask,
        },
        {
            "artifact": "compiled",
            "name": c.name,
            "n": c.n,
            "m": c.m,
            "verts": [_vertex_to_json(v) for v in c._verts],
        },
    )


def compiled_from_payload(payload: bytes) -> CompiledCDAG:
    """Rehydrate a :func:`serialize_compiled` payload into a snapshot."""
    arrays, meta = unpack_arrays(payload)
    if meta.get("artifact") != "compiled":
        raise ValueError(
            f"payload is not a compiled snapshot: {meta.get('artifact')!r}"
        )
    verts = [_vertex_from_json(v) for v in meta["verts"]]
    return CompiledCDAG.from_arrays(
        name=meta["name"],
        verts=verts,
        succ_indptr=arrays["succ_indptr"],
        succ_indices=arrays["succ_indices"],
        pred_indptr=arrays["pred_indptr"],
        pred_indices=arrays["pred_indices"],
        in_degree=arrays["in_degree"],
        out_degree=arrays["out_degree"],
        is_input_mask=arrays["is_input_mask"],
        is_output_mask=arrays["is_output_mask"],
    )


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def serialize_schedule(ids: np.ndarray, kind: str) -> bytes:
    """A schedule (vertex-id order) as one deterministic payload."""
    ids = np.asarray(ids, dtype=np.int32)
    return pack_arrays(
        {"ids": ids},
        {"artifact": "schedule", "kind": str(kind), "length": int(ids.size)},
    )


def schedule_from_payload(payload: bytes) -> Tuple[np.ndarray, Dict]:
    """Rehydrate a schedule payload into ``(ids, meta)``."""
    arrays, meta = unpack_arrays(payload)
    if meta.get("artifact") != "schedule":
        raise ValueError(
            f"payload is not a schedule: {meta.get('artifact')!r}"
        )
    return arrays["ids"], meta


# ----------------------------------------------------------------------
# JSON artifacts (bounds, spill-game rows)
# ----------------------------------------------------------------------
def serialize_json(value: Mapping) -> bytes:
    """A canonical-JSON artifact (bound results, spill manifests)."""
    return dumps_canonical(canonical_config(value), indent=None).encode(
        "utf-8"
    )


def json_from_payload(payload: bytes) -> Dict:
    return json.loads(payload.decode("utf-8"))

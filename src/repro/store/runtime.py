"""Process-wide active store: the harness/CLI integration seam.

Deep call sites (the spill experiment driver, long-lived engines) do not
thread an :class:`~repro.store.db.ArtifactStore` handle through every
signature.  Instead one store can be *activated* for the process
(:func:`activated` context manager, used by ``run_grid(...,
store_path=...)`` and the server), and construction-adjacent code asks
:func:`attach_compiled` to swap a freshly built CDAG's compile step for
a store lookup:

* store active + snapshot cached  -> the stored CSR arrays are adopted
  via :meth:`~repro.core.cdag.CDAG.adopt_compiled` (validated against
  the CDAG; a mismatching artifact is ignored and recompiled);
* store active + miss             -> the CDAG compiles locally and the
  snapshot is published for the next cell/process;
* no store active                 -> no-op (zero overhead; this is the
  default for every existing call path).

Everything downstream (``cdag.compiled()`` consumers) is unchanged, and
any mutation of the CDAG after adoption drops the snapshot exactly like
a locally compiled one — the cache can never outlive the graph it
describes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Mapping, Optional

from .codec import compiled_from_payload, serialize_compiled
from .db import ArtifactStore
from .keys import artifact_key, code_version

__all__ = [
    "get_active",
    "set_active",
    "activated",
    "attach_compiled",
]

_mu = threading.Lock()
_ACTIVE: Optional[ArtifactStore] = None


def get_active() -> Optional[ArtifactStore]:
    """The process's active store, or ``None``."""
    return _ACTIVE


def set_active(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Install ``store`` as the process-wide active store; returns the
    previous one (callers restoring state should prefer
    :func:`activated`)."""
    global _ACTIVE
    with _mu:
        previous, _ACTIVE = _ACTIVE, store
    return previous


@contextmanager
def activated(store: Optional[ArtifactStore]):
    """``with activated(store): ...`` — scoped activation (re-entrant;
    ``None`` deactivates within the scope)."""
    previous = set_active(store)
    try:
        yield store
    finally:
        set_active(previous)


def attach_compiled(
    cdag,
    builder: str,
    params: Mapping,
    seed: int = 0,
) -> bool:
    """Adopt (or publish) the compiled snapshot for ``cdag`` through the
    active store; returns ``True`` on a cache hit that was adopted.

    ``(builder, params, seed)`` must fully determine the CDAG — the
    caller names the construction, exactly like a harness cell.  With no
    active store this is a no-op returning ``False``.
    """
    store = get_active()
    if store is None:
        return False
    from ..evaluation.manifest import canonical_config, dumps_canonical

    spec = {
        "builder": str(builder),
        "params": canonical_config(params),
        "seed": int(seed),
    }
    key = artifact_key("compiled", spec)
    payload = store.get(key)
    if payload is not None:
        try:
            snapshot = compiled_from_payload(payload)
        except (ValueError, KeyError):
            snapshot = None  # undecodable artifact: treat as corrupt
        if snapshot is not None and cdag.adopt_compiled(snapshot):
            return True
        # Stored snapshot does not describe this CDAG (or failed to
        # decode): drop it and fall through to republish a correct one.
        store.delete(key)
    store.put(
        key,
        serialize_compiled(cdag.compiled()),
        kind="compiled",
        builder=str(builder),
        seed=int(seed),
        spec_json=dumps_canonical(spec, indent=None),
        code_ver=code_version(),
    )
    return False

"""The content-addressed artifact store (SQLite engine).

One SQLite file holds every cached artifact, keyed by the
:func:`repro.store.keys.artifact_key` content address.  The engine is
tuned for the service workload — many concurrent readers, occasional
writers, sub-millisecond warm hits:

* **WAL journal** — readers never block the writer and vice versa;
  safe for many processes sharing one store file (the ``sweep --jobs``
  and multi-client server paths);
* **``WITHOUT ROWID`` clustered primary key** — rows are stored in the
  key's B-tree directly, so a point lookup is a single tree descent
  with the payload inline;
* **mmap reads + tuned pragmas** — ``mmap_size`` (default 256 MB) lets
  warm lookups come out of the page cache without read syscalls;
  ``synchronous=NORMAL`` is the standard WAL durability/latency trade.

Every row carries the SHA-256 of its payload; reads re-hash and treat
any mismatch (bit rot, torn write, manual tampering) as a **miss** —
the corrupt row is deleted and the caller recomputes.  A stored
artifact can therefore be wrong only if SHA-256 collides.

:meth:`ArtifactStore.get_or_compute` is the one call sites use: point
lookup, then **single-flight** recomputation on miss (per-key in-process
lock, so N concurrent identical requests compute once and N-1 wait),
then an ``INSERT OR REPLACE`` publish.  Cross-process races are benign:
both processes compute the same bytes (content addressing) and the last
write wins with an identical row.

Doctest::

    >>> import tempfile, os
    >>> from repro.store.db import ArtifactStore
    >>> path = os.path.join(tempfile.mkdtemp(), "store.db")
    >>> store = ArtifactStore(path)
    >>> key = "ab" * 32
    >>> store.get(key) is None     # cold miss
    True
    >>> store.put(key, b"payload-bytes", kind="bound")
    >>> store.get(key)             # warm hit
    b'payload-bytes'
    >>> store.counters["hits"], store.counters["misses"]
    (1, 1)
    >>> store.close()
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

__all__ = ["ArtifactStore", "STORE_SCHEMA_VERSION", "DEFAULT_MMAP_BYTES"]

STORE_SCHEMA_VERSION = "repro-store/1"
DEFAULT_MMAP_BYTES = 256 * 1024 * 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    key          TEXT NOT NULL PRIMARY KEY,
    kind         TEXT NOT NULL,
    builder      TEXT NOT NULL DEFAULT '',
    seed         INTEGER NOT NULL DEFAULT 0,
    spec_json    TEXT NOT NULL DEFAULT '',
    code_version TEXT NOT NULL DEFAULT '',
    sha256       TEXT NOT NULL,
    nbytes       INTEGER NOT NULL,
    payload      BLOB NOT NULL,
    created_s    REAL NOT NULL,
    last_used_s  REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_artifacts_kind ON artifacts(kind);
CREATE INDEX IF NOT EXISTS idx_artifacts_lru ON artifacts(last_used_s);
CREATE TABLE IF NOT EXISTS store_meta (
    k TEXT NOT NULL PRIMARY KEY,
    v TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS claims (
    key        TEXT NOT NULL PRIMARY KEY,
    owner      TEXT NOT NULL,
    acquired_s REAL NOT NULL
) WITHOUT ROWID;
"""


class _SingleFlight:
    """Per-key in-process locks: concurrent identical computations are
    collapsed to one leader; followers block, then re-read the store."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._locks: Dict[str, Tuple[threading.Lock, int]] = {}

    def acquire(self, key: str) -> threading.Lock:
        with self._mu:
            lock, refs = self._locks.get(key, (None, 0))
            if lock is None:
                lock = threading.Lock()
            self._locks[key] = (lock, refs + 1)
        lock.acquire()
        return lock

    def release(self, key: str, lock: threading.Lock) -> None:
        lock.release()
        with self._mu:
            held, refs = self._locks[key]
            if refs <= 1:
                del self._locks[key]
            else:
                self._locks[key] = (held, refs - 1)


class ArtifactStore:
    """A content-addressed artifact cache in one SQLite file.

    Parameters
    ----------
    path:
        The database file (created, along with parent directories, if
        absent).
    mmap_bytes:
        ``PRAGMA mmap_size`` for every connection (0 disables mmap).
    busy_timeout_s:
        How long a connection waits on a locked database before
        erroring — the concurrent-writers knob (WAL makes real
        contention rare and short).

    Connections are per-thread (SQLite objects must not cross threads);
    the instance itself is thread-safe and is shared by all server
    worker threads.  ``counters`` tracks process-lifetime traffic:
    ``hits`` / ``misses`` / ``puts`` / ``corrupt`` / ``flights`` (calls
    that waited behind an identical in-flight computation).

    ``metrics`` / ``events`` optionally bind the store to an
    observability registry and event ring (:mod:`repro.obs`): every
    ``counters`` tick is mirrored as a ``store.<name>`` counter, gc
    passes are counted (``store.gc_passes`` /
    ``store.gc_removed_bytes``) and emitted as ``gc.pass`` events, and
    corruption recoveries / claim takeovers become events too.  A host
    server can also attach after construction via :meth:`bind_obs`.
    """

    def __init__(
        self,
        path,
        mmap_bytes: int = DEFAULT_MMAP_BYTES,
        busy_timeout_s: float = 30.0,
        claim_ttl_s: float = 60.0,
        claim_poll_s: float = 0.05,
        metrics=None,
        events=None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.mmap_bytes = int(mmap_bytes)
        self.busy_timeout_s = float(busy_timeout_s)
        if claim_ttl_s <= 0 or claim_poll_s <= 0:
            raise ValueError("claim_ttl_s and claim_poll_s must be positive")
        self.claim_ttl_s = float(claim_ttl_s)
        self.claim_poll_s = float(claim_poll_s)
        #: unique per store instance; in-process single-flight already
        #: serializes same-key callers behind one handle
        self._owner = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self._local = threading.local()
        self._all_conns = []
        self._conns_mu = threading.Lock()
        self._counter_mu = threading.Lock()
        self._flight = _SingleFlight()
        self.metrics = metrics
        self.events = events
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "corrupt": 0,
            "flights": 0,
            "cross_flights": 0,
            "claim_takeovers": 0,
            "claim_skew_takeovers": 0,
        }
        self._conn()  # create the schema eagerly so failures surface here

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        conn = sqlite3.connect(
            str(self.path), timeout=self.busy_timeout_s
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA mmap_size={self.mmap_bytes}")
        conn.execute("PRAGMA cache_size=-8192")  # 8 MB page cache
        conn.execute("PRAGMA temp_store=MEMORY")
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR IGNORE INTO store_meta (k, v) VALUES (?, ?)",
            ("schema", STORE_SCHEMA_VERSION),
        )
        conn.commit()
        self._local.conn = conn
        with self._conns_mu:
            self._all_conns.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this store opened (all threads)."""
        with self._conns_mu:
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass
        self._local = threading.local()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _count(self, name: str, delta: int = 1) -> None:
        with self._counter_mu:
            self.counters[name] += delta
        if self.metrics is not None:
            self.metrics.counter(f"store.{name}").inc(delta)

    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def bind_obs(self, metrics, events=None) -> None:
        """Attach an observability registry (and optionally an event
        ring) after construction — the bound server does this so one
        ``GET /metrics`` scrape covers HTTP and store traffic.  The
        counters accumulated so far are carried into the registry, so
        the mirrored ``store.*`` counters stay monotonic and complete.
        """
        with self._counter_mu:
            current = dict(self.counters)
        for name, value in current.items():
            if value:
                metrics.counter(f"store.{name}").inc(value)
        self.metrics = metrics
        if events is not None:
            self.events = events

    # ------------------------------------------------------------------
    # Point reads and writes
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The payload stored under ``key``, or ``None`` on miss.

        Integrity-checked: the payload is re-hashed and compared against
        the stored SHA-256; a corrupted or truncated row is deleted and
        reported as a miss so the caller recomputes instead of consuming
        bad bytes.
        """
        conn = self._conn()
        row = conn.execute(
            "SELECT payload, sha256, nbytes FROM artifacts WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            self._count("misses")
            return None
        payload, sha, nbytes = row
        payload = bytes(payload)
        if (
            len(payload) != nbytes
            or hashlib.sha256(payload).hexdigest() != sha
        ):
            self._count("corrupt")
            self._count("misses")
            conn.execute("DELETE FROM artifacts WHERE key = ?", (key,))
            conn.commit()
            self._emit("store.corrupt_recovered", key=key,
                       nbytes=int(nbytes))
            return None
        conn.execute(
            "UPDATE artifacts SET last_used_s = ?, hits = hits + 1 "
            "WHERE key = ?",
            (time.time(), key),
        )
        conn.commit()
        self._count("hits")
        return payload

    def put(
        self,
        key: str,
        payload: bytes,
        kind: str,
        builder: str = "",
        seed: int = 0,
        spec_json: str = "",
        code_ver: str = "",
    ) -> None:
        """Publish ``payload`` under ``key`` (last identical write wins)."""
        now = time.time()
        conn = self._conn()
        conn.execute(
            "INSERT OR REPLACE INTO artifacts "
            "(key, kind, builder, seed, spec_json, code_version, sha256, "
            " nbytes, payload, created_s, last_used_s, hits) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0)",
            (
                key,
                kind,
                builder,
                int(seed),
                spec_json,
                code_ver,
                hashlib.sha256(payload).hexdigest(),
                len(payload),
                sqlite3.Binary(payload),
                now,
                now,
            ),
        )
        conn.commit()
        self._count("puts")

    def delete(self, key: str) -> bool:
        conn = self._conn()
        cur = conn.execute("DELETE FROM artifacts WHERE key = ?", (key,))
        conn.commit()
        return cur.rowcount > 0

    # ------------------------------------------------------------------
    # Cross-process claim leases
    # ------------------------------------------------------------------
    def _claim_state(self, acquired: float, now: float) -> str:
        """Classify a claim row's age: ``"live"`` within the TTL,
        ``"stale"`` past it, ``"skewed"`` when ``acquired_s`` lies in
        the *future* by more than the TTL.

        Claim timestamps are wall clock (they must compare across
        processes and hosts), so a backwards wall-clock step — NTP
        correction, VM resume — makes live claims look future-dated.
        Small skew (within the TTL) is tolerated as live; a claim
        further in the future than the TTL can only be a clock step
        larger than the lease itself and is treated as abandoned, so it
        cannot immortalize the key.  Without the skew branch such a row
        would block every follower forever (``now - acquired`` stays
        negative, "fresher than fresh").
        """
        age = now - float(acquired)
        if age >= self.claim_ttl_s:
            return "stale"
        if -age > self.claim_ttl_s:
            return "skewed"
        return "live"

    def _try_claim(self, key: str) -> bool:
        """Attempt to become the cross-process leader for ``key``.

        One atomic ``INSERT OR IGNORE`` elects the leader; on conflict a
        compare-and-swap takes over claims older than ``claim_ttl_s``
        (their owner died mid-compute — SIGKILL, OOM — and can never
        publish or release) or future-dated beyond the TTL (a wall-clock
        step; see :meth:`_claim_state`).
        """
        conn = self._conn()
        now = time.time()
        cur = conn.execute(
            "INSERT OR IGNORE INTO claims (key, owner, acquired_s) "
            "VALUES (?, ?, ?)",
            (key, self._owner, now),
        )
        if cur.rowcount == 1:
            conn.commit()
            return True
        row = conn.execute(
            "SELECT owner, acquired_s FROM claims WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            # Released between the insert and the read; the next loop
            # iteration re-reads the store (the leader just published).
            conn.commit()
            return False
        owner, acquired = row
        state = self._claim_state(acquired, now)
        if state != "live":
            cur = conn.execute(
                "UPDATE claims SET owner = ?, acquired_s = ? "
                "WHERE key = ? AND owner = ? AND acquired_s = ?",
                (self._owner, now, key, owner, acquired),
            )
            conn.commit()
            if cur.rowcount == 1:
                self._count("claim_takeovers")
                if state == "skewed":
                    self._count("claim_skew_takeovers")
                self._emit("store.claim_takeover", key=key,
                           previous_owner=str(owner), state=state)
                return True
            return False
        conn.commit()
        return False

    def _release_claim(self, key: str) -> None:
        conn = self._conn()
        conn.execute(
            "DELETE FROM claims WHERE key = ? AND owner = ?",
            (key, self._owner),
        )
        conn.commit()

    def _claim_blocks(self, key: str) -> bool:
        """True while a live (non-stale, non-skewed) foreign claim
        covers ``key``."""
        row = self._conn().execute(
            "SELECT acquired_s FROM claims WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return False
        return self._claim_state(row[0], time.time()) == "live"

    def _artifact_exists(self, key: str) -> bool:
        """Counter-free existence probe (the follower poll loop must not
        inflate the hit/miss traffic counters)."""
        return self._conn().execute(
            "SELECT 1 FROM artifacts WHERE key = ?", (key,)
        ).fetchone() is not None

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], bytes],
        kind: str,
        builder: str = "",
        seed: int = 0,
        spec_json: str = "",
        code_ver: str = "",
    ) -> Tuple[bytes, bool]:
        """``(payload, was_hit)`` — the memoization entry point.

        Fast path: a point read.  On miss, the per-key single-flight
        lock elects one in-process leader to proceed; late in-process
        arrivals block on the lock, then re-read the store and (almost
        always) hit — counted under ``counters["flights"]``.

        The surviving caller then races for the **cross-process** claim
        row: one process per key wins and computes, every other process
        waits-and-polls for the leader's publish instead of recomputing
        (``counters["cross_flights"]``).  A claim older than
        ``claim_ttl_s`` is treated as abandoned — its owner died
        mid-compute — and is taken over via compare-and-swap
        (``counters["claim_takeovers"]``); a compute outliving the TTL
        can therefore be duplicated across processes, which is benign
        (content addressing: identical bytes, last write wins).
        """
        payload = self.get(key)
        if payload is not None:
            return payload, True
        lock = self._flight.acquire(key)
        try:
            payload = self.get(key)
            if payload is not None:
                self._count("flights")
                return payload, True
            waited = False
            while not self._try_claim(key):
                # A live foreign leader holds the claim: poll until it
                # publishes (usual case) or the claim vanishes/goes
                # stale (crash) and the loop re-races for leadership.
                waited = True
                if self._artifact_exists(key):
                    break
                time.sleep(self.claim_poll_s)
            else:
                waited_payload = self.get(key) if waited else None
                if waited_payload is not None:
                    # Claimed after the leader published and released.
                    self._release_claim(key)
                    self._count("cross_flights")
                    return waited_payload, True
                try:
                    payload = compute()
                    self.put(
                        key,
                        payload,
                        kind=kind,
                        builder=builder,
                        seed=seed,
                        spec_json=spec_json,
                        code_ver=code_ver,
                    )
                finally:
                    self._release_claim(key)
                return payload, False
            # Broke out of the poll loop: the foreign leader published.
            payload = self.get(key)
            if payload is not None:
                self._count("cross_flights")
                return payload, True
            # Published row vanished again (gc/corruption race) —
            # recompute without coordination; correctness is unaffected.
            payload = compute()
            self.put(
                key, payload, kind=kind, builder=builder, seed=seed,
                spec_json=spec_json, code_ver=code_ver,
            )
            return payload, False
        finally:
            self._flight.release(key, lock)

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Entry counts and bytes (total and per kind), database file
        sizes, traffic counters, and the journal mode."""
        conn = self._conn()
        per_kind = {
            kind: {"entries": int(count), "nbytes": int(nbytes or 0)}
            for kind, count, nbytes in conn.execute(
                "SELECT kind, COUNT(*), SUM(nbytes) FROM artifacts "
                "GROUP BY kind ORDER BY kind"
            )
        }
        total, total_bytes = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM artifacts"
        ).fetchone()
        journal_mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        db_bytes = self.path.stat().st_size if self.path.exists() else 0
        wal = self.path.with_name(self.path.name + "-wal")
        wal_bytes = wal.stat().st_size if wal.exists() else 0
        with self._counter_mu:
            counters = dict(self.counters)
        lookups = counters["hits"] + counters["misses"]
        return {
            "schema": STORE_SCHEMA_VERSION,
            "path": str(self.path),
            "journal_mode": journal_mode,
            "entries": int(total),
            "payload_bytes": int(total_bytes),
            "db_bytes": int(db_bytes),
            "wal_bytes": int(wal_bytes),
            "kinds": per_kind,
            "counters": counters,
            "hit_rate": (counters["hits"] / lookups) if lookups else None,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        drop_stale_code: bool = False,
        current_code_version: Optional[str] = None,
        vacuum: bool = False,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Reclaim space; returns ``{"removed": n, "removed_bytes": b}``.

        Three independent policies compose: ``max_age_s`` drops entries
        not used within the window; ``drop_stale_code`` drops entries
        whose code-version stamp differs from the current one (they can
        never be addressed again); ``max_bytes`` then evicts
        least-recently-used entries until the stored payload bytes fit.
        ``vacuum`` additionally compacts the file and truncates the WAL.
        """
        conn = self._conn()
        now = time.time() if now is None else now
        removed = removed_bytes = 0

        def _apply(cur) -> None:
            nonlocal removed, removed_bytes
            removed += cur.rowcount if cur.rowcount > 0 else 0

        if max_age_s is not None:
            cutoff = now - float(max_age_s)
            removed_bytes += int(
                conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts "
                    "WHERE last_used_s < ?",
                    (cutoff,),
                ).fetchone()[0]
            )
            _apply(conn.execute(
                "DELETE FROM artifacts WHERE last_used_s < ?", (cutoff,)
            ))
        if drop_stale_code:
            if current_code_version is None:
                from .keys import code_version

                current_code_version = code_version()
            removed_bytes += int(
                conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts "
                    "WHERE code_version != ''"
                    " AND code_version != ?",
                    (current_code_version,),
                ).fetchone()[0]
            )
            _apply(conn.execute(
                "DELETE FROM artifacts WHERE code_version != ''"
                " AND code_version != ?",
                (current_code_version,),
            ))
        if max_bytes is not None:
            while True:
                total = int(
                    conn.execute(
                        "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts"
                    ).fetchone()[0]
                )
                if total <= max_bytes:
                    break
                victim = conn.execute(
                    "SELECT key, nbytes FROM artifacts "
                    "ORDER BY last_used_s ASC, key ASC LIMIT 1"
                ).fetchone()
                if victim is None:  # pragma: no cover - empty table
                    break
                conn.execute(
                    "DELETE FROM artifacts WHERE key = ?", (victim[0],)
                )
                removed += 1
                removed_bytes += int(victim[1])
        conn.commit()
        if vacuum:
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            conn.execute("VACUUM")
            conn.commit()
        report = {"removed": int(removed), "removed_bytes": int(removed_bytes)}
        if self.metrics is not None:
            self.metrics.counter("store.gc_passes").inc()
            self.metrics.counter("store.gc_removed").inc(report["removed"])
            self.metrics.counter("store.gc_removed_bytes").inc(
                report["removed_bytes"]
            )
        self._emit("gc.pass", **report)
        return report

    def clear(self) -> int:
        """Drop every artifact; returns how many were removed."""
        conn = self._conn()
        (count,) = conn.execute("SELECT COUNT(*) FROM artifacts").fetchone()
        conn.execute("DELETE FROM artifacts")
        conn.commit()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")
        conn.commit()
        return int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(path={str(self.path)!r})"

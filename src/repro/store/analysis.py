"""Memoized analyses: the pure functions the store caches.

Everything the service serves is a pure function of ``(builder, params,
seed, code version)``:

* **compiled** — the CSR snapshot of the builder's CDAG
  (:func:`cached_compiled`);
* **schedule** — a DFS or min-live-set schedule in id space
  (:func:`cached_schedule`);
* **bound** — a lower bound on the CDAG's I/O: the automated
  wavefront/min-cut bound (Lemma 2), the Hong-Kung 2S-partition bound
  (Corollary 1, given a ``U(2S)`` upper bound), or a closed-form
  analytical bound where one exists for the builder family
  (:func:`cached_bound`);
* **spill** — a complete spill-strategy game's move/I/O manifest
  (:func:`cached_spill`, delegating to the harness's
  ``experiment_spill_strategies`` driver).

Each ``cached_*`` function has a ``fresh_*`` counterpart that computes
without touching any store — the randomized differential suite pins
``stored payload == serialize(fresh value)`` byte for byte, and the
store path is exactly ``fresh`` + codec + :class:`ArtifactStore`, so a
cache hit can never drift from a recomputation.

The builder registry (:data:`BUILDERS`) spans the repo's CDAG zoo:
chains, reduction/broadcast trees, diamonds, d-dimensional stencil
grids, FFT butterflies, pyramids, outer products, dense layers, the
spill star, and the seeded random component forest (the only
seed-sensitive family).

Doctest::

    >>> import tempfile, os
    >>> from repro.store import ArtifactStore, cached_bound
    >>> store = ArtifactStore(os.path.join(tempfile.mkdtemp(), "s.db"))
    >>> bound, hit = cached_bound(store, "chain", {"length": 16}, s=2)
    >>> hit, bound["method"], bound["value"] >= 0
    (False, 'wavefront', True)
    >>> bound2, hit2 = cached_bound(store, "chain", {"length": 16}, s=2)
    >>> hit2 and bound2 == bound
    True
    >>> store.close()
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..bounds.analytical import fft_io_lower_bound, outer_product_io
from ..bounds.hong_kung import lower_bound_from_largest_subset
from ..bounds.mincut import automated_wavefront_bound
from ..core import builders as _b
from ..core.cdag import CDAG
from ..core.compiled import CompiledCDAG
from ..core.ordering import dfs_schedule_ids, min_liveset_schedule_ids
from ..evaluation.manifest import canonical_config, dumps_canonical
from ..pebbling.workloads import component_forest_cdag, star_spill_cdag
from .codec import (
    compiled_from_payload,
    json_from_payload,
    schedule_from_payload,
    serialize_compiled,
    serialize_json,
    serialize_schedule,
)
from .db import ArtifactStore
from .keys import artifact_key, code_version

__all__ = [
    "BUILDERS",
    "BuilderDef",
    "build_cdag",
    "compiled_spec",
    "fresh_compiled",
    "fresh_compiled_payload",
    "cached_compiled",
    "cached_compiled_payload",
    "fresh_schedule",
    "cached_schedule",
    "fresh_bound",
    "cached_bound",
    "fresh_spill",
    "cached_spill",
    "SCHEDULE_KINDS",
    "BOUND_METHODS",
]


class BuilderDef:
    """One registered CDAG family: a construction function over
    canonical params (+ seed for the randomized families) and the
    defaults merged under caller overrides."""

    __slots__ = ("name", "build", "defaults", "seeded")

    def __init__(
        self,
        name: str,
        build: Callable[[Mapping, int], CDAG],
        defaults: Mapping,
        seeded: bool = False,
    ):
        self.name = name
        self.build = build
        self.defaults = dict(defaults)
        self.seeded = seeded


BUILDERS: Dict[str, BuilderDef] = {
    "chain": BuilderDef(
        "chain",
        lambda p, seed: _b.chain_cdag(int(p["length"])),
        {"length": 64},
    ),
    "chains": BuilderDef(
        "chains",
        lambda p, seed: _b.independent_chains_cdag(
            int(p["num_chains"]), int(p["length"])
        ),
        {"num_chains": 8, "length": 32},
    ),
    "tree": BuilderDef(
        "tree",
        lambda p, seed: _b.reduction_tree_cdag(
            int(p["num_leaves"]), int(p["arity"])
        ),
        {"num_leaves": 64, "arity": 2},
    ),
    "bcast": BuilderDef(
        "bcast",
        lambda p, seed: _b.broadcast_tree_cdag(
            int(p["num_leaves"]), int(p["arity"])
        ),
        {"num_leaves": 64, "arity": 2},
    ),
    "diamond": BuilderDef(
        "diamond",
        lambda p, seed: _b.diamond_cdag(int(p["width"]), int(p["depth"])),
        {"width": 16, "depth": 16},
    ),
    "grid": BuilderDef(
        "grid",
        lambda p, seed: _b.grid_stencil_cdag(
            tuple(int(x) for x in p["shape"]), int(p["timesteps"])
        ),
        {"shape": [16, 16], "timesteps": 4},
    ),
    "butterfly": BuilderDef(
        "butterfly",
        lambda p, seed: _b.butterfly_cdag(int(p["log_n"])),
        {"log_n": 5},
    ),
    "pyramid": BuilderDef(
        "pyramid",
        lambda p, seed: _b.pyramid_cdag(int(p["base"])),
        {"base": 16},
    ),
    "outer": BuilderDef(
        "outer",
        lambda p, seed: _b.outer_product_cdag(int(p["n"])),
        {"n": 8},
    ),
    "dense": BuilderDef(
        "dense",
        lambda p, seed: _b.dense_layer_cdag(
            int(p["num_inputs"]), int(p["num_outputs"])
        ),
        {"num_inputs": 8, "num_outputs": 8},
    ),
    "star_spill": BuilderDef(
        "star_spill",
        lambda p, seed: star_spill_cdag(int(p["ops"]), int(p["degree"])),
        {"ops": 64, "degree": 8},
    ),
    "forest": BuilderDef(
        "forest",
        lambda p, seed: component_forest_cdag(
            int(p["components"]), int(p["component_size"]), seed=seed
        ),
        {"components": 4, "component_size": 12},
        seeded=True,
    ),
}

SCHEDULE_KINDS = ("dfs", "minlive")
BOUND_METHODS = ("wavefront", "hong_kung", "analytical")


def _resolve(builder: str, params: Optional[Mapping]) -> Tuple[BuilderDef, Dict]:
    if builder not in BUILDERS:
        raise ValueError(
            f"unknown builder {builder!r}; known: {sorted(BUILDERS)}"
        )
    bdef = BUILDERS[builder]
    merged = dict(bdef.defaults)
    for key, value in (params or {}).items():
        if key not in merged:
            raise ValueError(
                f"unknown param {key!r} for builder {builder!r}; "
                f"known: {sorted(merged)}"
            )
        merged[key] = value
    return bdef, canonical_config(merged)


def build_cdag(
    builder: str, params: Optional[Mapping] = None, seed: int = 0
) -> CDAG:
    """Construct the named CDAG family fresh (defaults + overrides)."""
    bdef, merged = _resolve(builder, params)
    return bdef.build(merged, int(seed))


def compiled_spec(
    builder: str, params: Optional[Mapping] = None, seed: int = 0
) -> Dict:
    """The canonical spec mapping content-addressing a builder's CDAG."""
    _, merged = _resolve(builder, params)
    return {"builder": builder, "params": merged, "seed": int(seed)}


def _store_meta(kind: str, spec: Mapping) -> Dict:
    return {
        "kind": kind,
        "builder": str(spec.get("builder", "")),
        "seed": int(spec.get("seed", 0)),
        "spec_json": dumps_canonical(canonical_config(spec), indent=None),
        "code_ver": code_version(),
    }


def _get_or_compute(
    store: ArtifactStore, kind: str, spec: Mapping, compute: Callable[[], bytes]
) -> Tuple[bytes, bool]:
    key = artifact_key(kind, spec)
    return store.get_or_compute(key, compute, **_store_meta(kind, spec))


# ----------------------------------------------------------------------
# Compiled snapshots
# ----------------------------------------------------------------------
def fresh_compiled(
    builder: str, params: Optional[Mapping] = None, seed: int = 0
) -> CompiledCDAG:
    """Build + compile the CDAG without touching any store."""
    return build_cdag(builder, params, seed).compiled()


def fresh_compiled_payload(
    builder: str, params: Optional[Mapping] = None, seed: int = 0
) -> bytes:
    return serialize_compiled(fresh_compiled(builder, params, seed))


def cached_compiled_payload(
    store: ArtifactStore,
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
) -> Tuple[bytes, bool]:
    """``(payload bytes, was_hit)`` for the compiled-snapshot artifact."""
    spec = compiled_spec(builder, params, seed)
    return _get_or_compute(
        store,
        "compiled",
        spec,
        lambda: fresh_compiled_payload(builder, params, seed),
    )


def cached_compiled(
    store: ArtifactStore,
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
) -> Tuple[CompiledCDAG, bool]:
    """``(snapshot, was_hit)`` — a hit rehydrates the stored CSR arrays
    without rebuilding or recompiling the CDAG."""
    payload, hit = cached_compiled_payload(store, builder, params, seed)
    return compiled_from_payload(payload), hit


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def fresh_schedule(
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
    kind: str = "dfs",
    compiled: Optional[CompiledCDAG] = None,
) -> np.ndarray:
    """A schedule id array computed fresh (``kind`` in
    :data:`SCHEDULE_KINDS`)."""
    if kind not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule kind {kind!r}; known: {SCHEDULE_KINDS}"
        )
    c = compiled if compiled is not None \
        else fresh_compiled(builder, params, seed)
    ids = dfs_schedule_ids(c) if kind == "dfs" \
        else min_liveset_schedule_ids(c)
    return np.asarray(ids, dtype=np.int32)


def cached_schedule(
    store: ArtifactStore,
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
    kind: str = "dfs",
) -> Tuple[np.ndarray, bool]:
    """``(schedule ids, was_hit)``; the underlying compiled snapshot is
    itself fetched through the store, so a schedule miss on a warm store
    still skips the CDAG rebuild."""
    if kind not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule kind {kind!r}; known: {SCHEDULE_KINDS}"
        )
    spec = compiled_spec(builder, params, seed)
    spec["schedule"] = kind

    def compute() -> bytes:
        c, _ = cached_compiled(store, builder, params, seed)
        return serialize_schedule(
            fresh_schedule(builder, params, seed, kind, compiled=c), kind
        )

    payload, hit = _get_or_compute(store, "schedule", spec, compute)
    ids, _meta = schedule_from_payload(payload)
    return ids, hit


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------
def _bound_vertex_json(vertex):
    if vertex is None:
        return None
    if isinstance(vertex, tuple):
        return [_bound_vertex_json(x) for x in vertex]
    return vertex


def fresh_bound(
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
    s: int = 16,
    method: str = "wavefront",
    max_candidates: int = 32,
    u_upper: Optional[float] = None,
    compiled: Optional[CompiledCDAG] = None,
) -> Dict:
    """One lower-bound result as a canonical JSON-safe mapping.

    ``method`` selects the machinery (:data:`BOUND_METHODS`):
    ``"wavefront"`` runs the automated Lemma 2 candidate heuristic with
    exact per-candidate min-cuts; ``"hong_kung"`` applies Corollary 1
    and **requires** ``u_upper`` (a valid upper bound on ``U(2S)`` —
    soundness is the caller's obligation, exactly as in
    :mod:`repro.bounds.hong_kung`); ``"analytical"`` uses the
    closed-form family bound and is available for the ``butterfly`` and
    ``outer`` builders only.
    """
    if method not in BOUND_METHODS:
        raise ValueError(
            f"unknown bound method {method!r}; known: {BOUND_METHODS}"
        )
    _, merged = _resolve(builder, params)
    base = {
        "builder": builder,
        "method": method,
        "s": int(s),
        "seed": int(seed),
    }
    if method == "wavefront":
        cdag = build_cdag(builder, params, seed)
        if compiled is not None:
            cdag.adopt_compiled(compiled)
        bound = automated_wavefront_bound(
            cdag, int(s), max_candidates=int(max_candidates)
        )
        return {
            **base,
            "value": float(bound.value),
            "wavefront": int(bound.wavefront),
            "vertex": _bound_vertex_json(bound.vertex),
            "max_candidates": int(max_candidates),
        }
    if method == "hong_kung":
        if u_upper is None:
            raise ValueError("method 'hong_kung' requires u_upper (a valid "
                             "upper bound on U(2S))")
        c = compiled if compiled is not None \
            else fresh_compiled(builder, params, seed)
        num_ops = c.n - int(c.is_input_mask.sum())
        bound = lower_bound_from_largest_subset(
            int(s), num_ops, float(u_upper)
        )
        return {
            **base,
            "value": float(bound.value),
            "num_operations": int(num_ops),
            "u_upper": float(u_upper),
        }
    # analytical
    if builder == "butterfly":
        n = 2 ** int(merged["log_n"])
        return {**base, "value": float(fft_io_lower_bound(n, int(s))),
                "n": n}
    if builder == "outer":
        n = int(merged["n"])
        return {**base, "value": float(outer_product_io(n)), "n": n}
    raise ValueError(
        f"no analytical bound registered for builder {builder!r} "
        "(available: butterfly, outer)"
    )


def cached_bound(
    store: ArtifactStore,
    builder: str,
    params: Optional[Mapping] = None,
    seed: int = 0,
    s: int = 16,
    method: str = "wavefront",
    max_candidates: int = 32,
    u_upper: Optional[float] = None,
) -> Tuple[Dict, bool]:
    """``(bound mapping, was_hit)`` — the service's core query."""
    if method not in BOUND_METHODS:
        raise ValueError(
            f"unknown bound method {method!r}; known: {BOUND_METHODS}"
        )
    spec = compiled_spec(builder, params, seed)
    spec["s"] = int(s)
    spec["method"] = method
    if method == "wavefront":
        spec["max_candidates"] = int(max_candidates)
    if method == "hong_kung":
        if u_upper is None:
            raise ValueError("method 'hong_kung' requires u_upper (a valid "
                             "upper bound on U(2S))")
        spec["u_upper"] = float(u_upper)

    def compute() -> bytes:
        c, _ = cached_compiled(store, builder, params, seed)
        return serialize_json(
            fresh_bound(
                builder,
                params,
                seed,
                s=s,
                method=method,
                max_candidates=max_candidates,
                u_upper=u_upper,
                compiled=c,
            )
        )

    payload, hit = _get_or_compute(store, "bound", spec, compute)
    return json_from_payload(payload), hit


# ----------------------------------------------------------------------
# Spill-game manifests
# ----------------------------------------------------------------------
def fresh_spill(params: Optional[Mapping] = None, seed: int = 0) -> Dict:
    """One complete spill-strategy game's move/I/O row, computed fresh
    through the harness driver (accepts its parameter set)."""
    from ..evaluation.harness import REGISTRY, make_spec

    spec = make_spec("spill", params, seed=seed)
    rows = REGISTRY["spill"].run(spec.params, spec.seed)
    return rows[0]


def cached_spill(
    store: ArtifactStore,
    params: Optional[Mapping] = None,
    seed: int = 0,
) -> Tuple[Dict, bool]:
    """``(spill-game row, was_hit)`` — the pebbling-query endpoint."""
    from ..evaluation.harness import make_spec

    cell = make_spec("spill", params, seed=seed)
    spec = {
        "builder": str(cell.params["workload"]),
        "params": dict(cell.params),
        "seed": int(seed),
    }
    payload, hit = _get_or_compute(
        store, "spill", spec, lambda: serialize_json(fresh_spill(params, seed))
    )
    return json_from_payload(payload), hit

"""Content-addressed artifact store: persistent memoization of the
analysis pipeline.

Every expensive artifact the repo computes — compiled CSR snapshots,
schedules, bound results, spill-game manifests — is a pure function of
``(builder, params, seed, code version)``.  This package caches them in
one SQLite file (WAL mode, ``WITHOUT ROWID`` clustered keys, mmap
reads) under SHA-256 content addresses, so repeated CLI invocations,
``sweep --resume`` grids, and the long-running bound server
(:mod:`repro.service`) answer warm queries without rebuilding anything.

Layers (see ``docs/service.md`` for the full contract):

* :mod:`repro.store.keys` — content addressing + code-version stamping;
* :mod:`repro.store.codec` — deterministic payload (de)serialization;
* :mod:`repro.store.db` — the SQLite engine (integrity-checked reads,
  single-flight recomputation, gc/stats);
* :mod:`repro.store.analysis` — the memoized analyses and the builder
  registry;
* :mod:`repro.store.runtime` — process-wide activation, the
  harness/CLI seam.
"""

from .analysis import (
    BOUND_METHODS,
    BUILDERS,
    SCHEDULE_KINDS,
    build_cdag,
    cached_bound,
    cached_compiled,
    cached_compiled_payload,
    cached_schedule,
    cached_spill,
    compiled_spec,
    fresh_bound,
    fresh_compiled,
    fresh_compiled_payload,
    fresh_schedule,
    fresh_spill,
)
from .codec import (
    compiled_from_payload,
    json_from_payload,
    pack_arrays,
    schedule_from_payload,
    serialize_compiled,
    serialize_json,
    serialize_schedule,
    unpack_arrays,
)
from .db import ArtifactStore, STORE_SCHEMA_VERSION
from .keys import CODE_VERSION_ENV, artifact_key, code_version
from .runtime import activated, attach_compiled, get_active, set_active

__all__ = [
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "CODE_VERSION_ENV",
    "artifact_key",
    "code_version",
    "pack_arrays",
    "unpack_arrays",
    "serialize_compiled",
    "compiled_from_payload",
    "serialize_schedule",
    "schedule_from_payload",
    "serialize_json",
    "json_from_payload",
    "BUILDERS",
    "BOUND_METHODS",
    "SCHEDULE_KINDS",
    "build_cdag",
    "compiled_spec",
    "fresh_compiled",
    "fresh_compiled_payload",
    "cached_compiled",
    "cached_compiled_payload",
    "fresh_schedule",
    "cached_schedule",
    "fresh_bound",
    "cached_bound",
    "fresh_spill",
    "cached_spill",
    "activated",
    "attach_compiled",
    "get_active",
    "set_active",
]

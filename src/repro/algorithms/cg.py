"""Conjugate Gradient: CDAG construction and data-movement analysis.

Reproduces Section 5.2 of the paper:

* **Theorem 8** (vertical lower bound): the scalar ``a = <r,r>/<p,v>`` has
  ``2 n^d`` predecessors (the elements of ``p`` and ``v``) all of which
  reach its descendants through disjoint paths (the two SAXPYs at lines 8
  and 9), giving a wavefront of ``2 n^d``; the scalar ``g`` similarly
  gives ``n^d``.  Applying the non-disjoint decomposition over the ``T``
  outer iterations and Lemma 2 per iteration yields
  ``Q >= T * 2 (3 n^d - 2S) -> 6 n^d T`` and, with Theorem 5,
  ``>= 6 n^d T / P`` in parallel.
* **Section 5.2.2** (horizontal upper bound): with a block-partitioned
  grid, each node exchanges the ghost shell ``(B + 2)^d - B^d`` per
  iteration, ``O(2 d B^{d-1} T)`` in total.
* **Section 5.2.3** (balance analysis): with ``|V| = 20 n^3 T`` FLOPs the
  vertical requirement per FLOP is ``6/20 = 0.3`` words/FLOP — above the
  balance of every machine in Table 1, so CG is unavoidably
  memory-bandwidth bound; the horizontal requirement
  ``6 N_nodes^{1/3} / (20 n)`` is far below the network balance.

Two CDAG constructions are provided: a *structural* one (exact vertex
classes of one CG iteration, scalable to a few thousand vertices) and a
*traced* one that runs the real CG solver of
:mod:`repro.solvers.cg_solver` scalar-by-scalar on a small grid and
records the data flow, for validation that the structural CDAG has the
same shape (vertex/edge counts, wavefronts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bounds.analytical import (
    cg_vertical_lower_bound,
    stencil_horizontal_upper_bound,
)
from ..core.cdag import CDAG, Vertex
from ..core.trace import TraceContext, TracedArray
from ..machine.balance import BalanceVerdict, horizontal_condition, vertical_condition
from ..machine.spec import MachineSpec
from ..solvers.cg_solver import cg_total_flops
from ..solvers.grid import Grid

__all__ = [
    "cg_iteration_cdag",
    "traced_cg_cdag",
    "CGAnalysis",
    "analyze_cg",
]


# ----------------------------------------------------------------------
# CDAG constructions
# ----------------------------------------------------------------------
def _stencil_neighbors(
    shape: Tuple[int, ...], idx: Tuple[int, ...]
) -> List[Tuple[int, ...]]:
    out = []
    for axis in range(len(shape)):
        for sign in (-1, 1):
            j = list(idx)
            j[axis] += sign
            if 0 <= j[axis] < shape[axis]:
                out.append(tuple(j))
    return out


def cg_iteration_cdag(
    shape: Tuple[int, ...], iterations: int = 1, name: str = "cg"
) -> CDAG:
    """Structural CDAG of ``iterations`` CG iterations on a grid of ``shape``.

    Vertex classes per iteration ``t`` (all indexed by grid point ``g``):

    * ``("v", t, g)`` — the SpMV result ``v = A p`` (reads ``p`` at ``g``
      and its axis neighbours);
    * ``("pv", t, g)`` / ``("pv+", t, k)`` — products and reduction tree of
      ``<p, v>``;
    * ``("rr", t, g)`` / ``("rr+", t, k)`` — products and reduction of
      ``<r, r>`` (for ``t = 0`` these read the input residual);
    * ``("a", t)`` — the step scalar;
    * ``("x", t, g)``, ``("r", t, g)`` — the SAXPY updates;
    * ``("rnew2", t, g)`` / ``("rnew2+", t, k)`` and ``("g", t)`` — the
      ``<r_new, r_new>`` reduction and the CG beta;
    * ``("p", t, g)`` — the new search direction.

    Inputs are the initial ``x``, ``r`` and ``p`` vectors (the matrix is
    matrix-free, its coefficients are compile-time constants); outputs are
    the final ``x`` and ``p``/``r`` vectors.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    points = list(np.ndindex(*shape))
    cdag = CDAG(name=name, validate=False)

    def linear_reduction(items: List[Vertex], prefix: Tuple) -> Vertex:
        """Accumulate items with a chain of binary adds; returns the root."""
        acc = items[0]
        for k, item in enumerate(items[1:], start=1):
            node: Vertex = prefix + (k,)
            cdag.add_vertex(node)
            cdag.add_edge(acc, node)
            cdag.add_edge(item, node)
            acc = node
        return acc

    # Iteration-0 inputs.
    for g in points:
        for vec in ("x0", "r0", "p0"):
            v: Vertex = (vec, g)
            cdag.add_vertex(v)
            cdag.tag_input(v)

    prev_x = {g: ("x0", g) for g in points}
    prev_r = {g: ("r0", g) for g in points}
    prev_p = {g: ("p0", g) for g in points}
    prev_rr: Optional[Vertex] = None

    for t in range(iterations):
        # v = A p (stencil SpMV)
        v_vec: Dict[Tuple, Vertex] = {}
        for g in points:
            node = ("v", t, g)
            cdag.add_vertex(node)
            cdag.add_edge(prev_p[g], node)
            for nb in _stencil_neighbors(shape, g):
                cdag.add_edge(prev_p[nb], node)
            v_vec[g] = node
        # <p, v> reduction
        pv_terms = []
        for g in points:
            node = ("pv", t, g)
            cdag.add_vertex(node)
            cdag.add_edge(prev_p[g], node)
            cdag.add_edge(v_vec[g], node)
            pv_terms.append(node)
        pv_root = linear_reduction(pv_terms, ("pv+", t))
        # <r, r> reduction (only recomputed at t = 0; later reused from g's
        # denominator just like the real algorithm reuses rr_new)
        if prev_rr is None:
            rr_terms = []
            for g in points:
                node = ("rr", t, g)
                cdag.add_vertex(node)
                cdag.add_edge(prev_r[g], node)
                rr_terms.append(node)
            prev_rr = linear_reduction(rr_terms, ("rr+", t))
        # a = <r,r> / <p,v>
        a_node: Vertex = ("a", t)
        cdag.add_vertex(a_node)
        cdag.add_edge(prev_rr, a_node)
        cdag.add_edge(pv_root, a_node)
        # x = x + a p ; r_new = r - a v
        new_x: Dict[Tuple, Vertex] = {}
        new_r: Dict[Tuple, Vertex] = {}
        for g in points:
            xn = ("x", t, g)
            cdag.add_vertex(xn)
            cdag.add_edge(prev_x[g], xn)
            cdag.add_edge(prev_p[g], xn)
            cdag.add_edge(a_node, xn)
            new_x[g] = xn
            rn = ("r", t, g)
            cdag.add_vertex(rn)
            cdag.add_edge(prev_r[g], rn)
            cdag.add_edge(v_vec[g], rn)
            cdag.add_edge(a_node, rn)
            new_r[g] = rn
        # <r_new, r_new> and g
        rn2_terms = []
        for g in points:
            node = ("rnew2", t, g)
            cdag.add_vertex(node)
            cdag.add_edge(new_r[g], node)
            rn2_terms.append(node)
        rn2_root = linear_reduction(rn2_terms, ("rnew2+", t))
        g_node: Vertex = ("g", t)
        cdag.add_vertex(g_node)
        cdag.add_edge(rn2_root, g_node)
        cdag.add_edge(prev_rr, g_node)
        # p = r_new + g p
        new_p: Dict[Tuple, Vertex] = {}
        for g in points:
            pn = ("p", t, g)
            cdag.add_vertex(pn)
            cdag.add_edge(new_r[g], pn)
            cdag.add_edge(prev_p[g], pn)
            cdag.add_edge(g_node, pn)
            new_p[g] = pn
        prev_x, prev_r, prev_p = new_x, new_r, new_p
        prev_rr = rn2_root

    for g in points:
        cdag.tag_output(prev_x[g])
        cdag.tag_output(prev_r[g])
        cdag.tag_output(prev_p[g])
    cdag.validate()
    return cdag


def traced_cg_cdag(grid: Grid, iterations: int = 1) -> Tuple[np.ndarray, CDAG]:
    """Trace ``iterations`` CG steps on the implicit heat system of ``grid``.

    Runs the textbook CG recurrence scalar-by-scalar with the tracer,
    starting from ``x = 0`` and a sine right-hand side; returns the final
    iterate (as floats, validated by the tests against the vectorised
    solver) and the recorded CDAG.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    ctx = TraceContext("traced-cg")
    diag, off = grid.implicit_matrix_diagonals()
    # A ramp right-hand side: the sine mode is an eigenvector of the
    # stencil operator, for which CG would converge in a single step and
    # later iterations would divide by a vanishing residual norm.
    ramp = 1.0 + np.arange(grid.num_points, dtype=float) / grid.num_points
    b_values = grid.implicit_rhs(ramp)
    b = ctx.input_array(b_values.reshape(grid.shape), prefix="b")

    shape = grid.shape
    points = list(np.ndindex(*shape))

    def stencil_matvec(vec: TracedArray) -> TracedArray:
        out = vec.copy()
        for g in points:
            acc = vec[g] * diag
            for nb in _stencil_neighbors(shape, g):
                acc = acc + vec[nb] * off
            out[g] = acc
        return out

    # x = 0 so r = b, p = r.
    r = b.copy()
    p = b.copy()
    x = None  # represented lazily: x = sum of updates
    rr = r.dot(r)
    for _ in range(iterations):
        v = stencil_matvec(p)
        a = rr / p.dot(v)
        if x is None:
            x = p.scale(a)
        else:
            x = x + p.scale(a)
        r_new = r - v.scale(a)
        rr_new = r_new.dot(r_new)
        g_scalar = rr_new / rr
        p = r_new + p.scale(g_scalar)
        r, rr = r_new, rr_new
    ctx.mark_output(x)
    ctx.mark_output(r)
    return x.values().reshape(-1), ctx.build()


# ----------------------------------------------------------------------
# Analysis (Theorem 8 + Section 5.2.3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CGAnalysis:
    """All the Section 5.2 quantities for one (n, d, T, machine) setting."""

    n: int
    dimensions: int
    iterations: int
    machine: MachineSpec
    #: |V|, the total FLOP count (paper constant 20 n^d T)
    total_flops: float
    #: Theorem 8 lower bound on vertical traffic per node
    vertical_lb_per_node: float
    #: Section 5.2.2 upper bound on horizontal traffic per node
    horizontal_ub_per_node: float
    #: condition (9) verdict
    vertical_verdict: BalanceVerdict
    #: condition (10) verdict
    horizontal_verdict: BalanceVerdict

    @property
    def vertical_intensity(self) -> float:
        """``LB_vert * N_nodes / |V|`` — 0.3 for CG in the paper."""
        return self.vertical_verdict.algorithm_side

    @property
    def horizontal_intensity(self) -> float:
        """``UB_horiz * N_nodes / |V|`` — ``6 N^{1/3} / (20 n)`` in the paper."""
        return self.horizontal_verdict.algorithm_side


def analyze_cg(
    machine: MachineSpec,
    n: int = 1000,
    dimensions: int = 3,
    iterations: int = 1,
) -> CGAnalysis:
    """Reproduce the Section 5.2.3 analysis of CG on ``machine``.

    The per-node vertical lower bound is ``6 n^d T / P * N_cores =
    6 n^d T / N_nodes`` (Theorem 8 divided over processors, then
    re-aggregated per node as in the paper's analysis); the horizontal
    upper bound is the ghost-cell volume of the node's block.
    """
    total_flops = cg_total_flops(n, iterations, dimensions, paper_constant=True)
    # 6 n^d T / P per processor; a node holds N_cores processors.
    lb_per_node = cg_vertical_lower_bound(
        n, iterations, dimensions, processors=machine.total_cores
    ) * machine.cores_per_node
    ub_horiz = stencil_horizontal_upper_bound(
        n, machine.num_nodes, dimensions, iterations
    )
    vert = vertical_condition(machine, lb_per_node, total_flops)
    horiz = horizontal_condition(machine, ub_horiz, total_flops)
    return CGAnalysis(
        n=n,
        dimensions=dimensions,
        iterations=iterations,
        machine=machine,
        total_flops=total_flops,
        vertical_lb_per_node=lb_per_node,
        horizontal_ub_per_node=ub_horiz,
        vertical_verdict=vert,
        horizontal_verdict=horiz,
    )

"""GMRES: CDAG construction and data-movement analysis (Section 5.3).

* **Theorem 9** (vertical lower bound): at outer iteration ``i`` the
  result of the last inner product ``h_{i,i} = <w, v_i>`` has ``2 n^d``
  predecessors (the elements of ``w`` and ``v_i``) with disjoint paths to
  its descendants (the SAXPY at line 10), and the norm ``h_{i+1,i}``
  similarly gives ``n^d``; non-disjoint decomposition over the ``m``
  outer iterations yields ``Q >= 6 n^d m`` and ``6 n^d m / P`` in
  parallel.
* **Section 5.3.2**: the ghost-cell horizontal upper bound is the same
  ``O(2 d B^{d-1} m)`` as for CG.
* **Section 5.3.3**: with ``|V| = 20 n^3 m + n^3 m^2`` FLOPs, the vertical
  requirement per FLOP is ``6 / (m + 20)`` — above machine balance for
  small Krylov dimensions ``m`` but decreasing as ``m`` grows (the
  orthogonalisation work grows quadratically while the wavefront bound
  grows linearly), so no decisive verdict without knowing ``m``; the
  horizontal requirement is ``6 N_nodes^{1/3} / (n m)``, orders of
  magnitude below network balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..bounds.analytical import (
    gmres_vertical_lower_bound,
    stencil_horizontal_upper_bound,
)
from ..core.cdag import CDAG, Vertex
from ..core.trace import TraceContext, TracedArray
from ..machine.balance import BalanceVerdict, horizontal_condition, vertical_condition
from ..machine.spec import MachineSpec
from ..solvers.gmres_solver import gmres_flops
from ..solvers.grid import Grid

__all__ = [
    "gmres_iteration_cdag",
    "traced_gmres_cdag",
    "GMRESAnalysis",
    "analyze_gmres",
]


def _stencil_neighbors(
    shape: Tuple[int, ...], idx: Tuple[int, ...]
) -> List[Tuple[int, ...]]:
    out = []
    for axis in range(len(shape)):
        for sign in (-1, 1):
            j = list(idx)
            j[axis] += sign
            if 0 <= j[axis] < shape[axis]:
                out.append(tuple(j))
    return out


def gmres_iteration_cdag(
    shape: Tuple[int, ...], krylov_iterations: int = 2, name: str = "gmres"
) -> CDAG:
    """Structural CDAG of ``m`` GMRES (Arnoldi) iterations on a grid.

    Vertex classes at outer iteration ``i``:

    * ``("w", i, g)`` — the SpMV ``w = A v_i``;
    * ``("h", i, j, g)`` / ``("h+", i, j, k)`` — products and reduction of
      ``h_{j,i} = <w, v_j>`` for ``j <= i``;
    * ``("v'", i, g)`` — the orthogonalised vector
      ``w - sum_j h_{j,i} v_j`` (one vertex per point, reading ``w``, the
      ``h`` scalars and all previous basis vectors at that point);
    * ``("nrm", i, g)`` / ``("nrm+", i, k)`` and ``("h_last", i)`` — the
      norm ``h_{i+1,i}``;
    * ``("v", i+1, g)`` — the normalised next basis vector.

    Inputs are the initial basis vector ``v_0``; outputs are the final
    basis vector and all Hessenberg scalars (they feed the least-squares
    solve).
    """
    if krylov_iterations < 1:
        raise ValueError("krylov_iterations must be >= 1")
    points = list(np.ndindex(*shape))
    cdag = CDAG(name=name, validate=False)

    def linear_reduction(items: List[Vertex], prefix: Tuple) -> Vertex:
        acc = items[0]
        for k, item in enumerate(items[1:], start=1):
            node: Vertex = prefix + (k,)
            cdag.add_vertex(node)
            cdag.add_edge(acc, node)
            cdag.add_edge(item, node)
            acc = node
        return acc

    for g in points:
        v0: Vertex = ("v", 0, g)
        cdag.add_vertex(v0)
        cdag.tag_input(v0)

    basis: List[Dict[Tuple, Vertex]] = [{g: ("v", 0, g) for g in points}]
    hessenberg_scalars: List[Vertex] = []

    for i in range(krylov_iterations):
        v_i = basis[i]
        # w = A v_i
        w: Dict[Tuple, Vertex] = {}
        for g in points:
            node = ("w", i, g)
            cdag.add_vertex(node)
            cdag.add_edge(v_i[g], node)
            for nb in _stencil_neighbors(shape, g):
                cdag.add_edge(v_i[nb], node)
            w[g] = node
        # h_{j,i} = <w, v_j> for j = 0..i
        h_scalars: List[Vertex] = []
        for j in range(i + 1):
            terms = []
            for g in points:
                node = ("h", i, j, g)
                cdag.add_vertex(node)
                cdag.add_edge(w[g], node)
                cdag.add_edge(basis[j][g], node)
                terms.append(node)
            root = linear_reduction(terms, ("h+", i, j))
            h_scalars.append(root)
            hessenberg_scalars.append(root)
        # v' = w - sum_j h_{j,i} v_j
        vprime: Dict[Tuple, Vertex] = {}
        for g in points:
            node = ("v'", i, g)
            cdag.add_vertex(node)
            cdag.add_edge(w[g], node)
            for j, h in enumerate(h_scalars):
                cdag.add_edge(h, node)
                cdag.add_edge(basis[j][g], node)
            vprime[g] = node
        # h_{i+1,i} = ||v'||
        nrm_terms = []
        for g in points:
            node = ("nrm", i, g)
            cdag.add_vertex(node)
            cdag.add_edge(vprime[g], node)
            nrm_terms.append(node)
        nrm_root = linear_reduction(nrm_terms, ("nrm+", i))
        h_last: Vertex = ("h_last", i)
        cdag.add_vertex(h_last)
        cdag.add_edge(nrm_root, h_last)
        hessenberg_scalars.append(h_last)
        # v_{i+1} = v' / h_{i+1,i}
        nxt: Dict[Tuple, Vertex] = {}
        for g in points:
            node = ("v", i + 1, g)
            cdag.add_vertex(node)
            cdag.add_edge(vprime[g], node)
            cdag.add_edge(h_last, node)
            nxt[g] = node
        basis.append(nxt)

    for g in points:
        cdag.tag_output(basis[-1][g])
    for h in hessenberg_scalars:
        cdag.tag_output(h)
    cdag.validate()
    return cdag


def traced_gmres_cdag(
    grid: Grid, krylov_iterations: int = 2
) -> Tuple[np.ndarray, CDAG]:
    """Trace ``m`` Arnoldi/GMRES iterations scalar-by-scalar on ``grid``.

    Returns the final Krylov basis vector (numerically validated by tests
    against the vectorised solver's Arnoldi process) and the CDAG.
    """
    if krylov_iterations < 1:
        raise ValueError("krylov_iterations must be >= 1")
    ctx = TraceContext("traced-gmres")
    diag, off = grid.implicit_matrix_diagonals()
    # A ramp start vector: the sine initial condition is an eigenvector of
    # the stencil operator, which would make the Arnoldi process break
    # down after one step and leave a degenerate CDAG.
    ramp = 1.0 + np.arange(grid.num_points, dtype=float) / grid.num_points
    r0 = grid.implicit_rhs(ramp)
    beta = float(np.linalg.norm(r0))
    v0_vals = (r0 / beta).reshape(grid.shape)
    v = ctx.input_array(v0_vals, prefix="v0")
    shape = grid.shape
    points = list(np.ndindex(*shape))

    def stencil_matvec(vec: TracedArray) -> TracedArray:
        out = vec.copy()
        for g in points:
            acc = vec[g] * diag
            for nb in _stencil_neighbors(shape, g):
                acc = acc + vec[nb] * off
            out[g] = acc
        return out

    basis = [v]
    for i in range(krylov_iterations):
        w = stencil_matvec(basis[i])
        for j in range(i + 1):
            h_ji = w.dot(basis[j])
            w = w - basis[j].scale(h_ji)
        h_next = w.norm2()
        v_next = w.scale(1.0 / h_next if h_next.value != 0 else 0.0) \
            if h_next.value != 0 else w
        basis.append(v_next)
    ctx.mark_output(basis[-1])
    return basis[-1].values().reshape(-1), ctx.build()


@dataclass(frozen=True)
class GMRESAnalysis:
    """The Section 5.3 quantities for one (n, d, m, machine) setting."""

    n: int
    dimensions: int
    krylov_iterations: int
    machine: MachineSpec
    total_flops: float
    vertical_lb_per_node: float
    horizontal_ub_per_node: float
    vertical_verdict: BalanceVerdict
    horizontal_verdict: BalanceVerdict

    @property
    def vertical_intensity(self) -> float:
        """``6 / (m + 20)`` in the paper's constants."""
        return self.vertical_verdict.algorithm_side

    @property
    def horizontal_intensity(self) -> float:
        """``6 N_nodes^{1/3} / (n m)`` in the paper's constants."""
        return self.horizontal_verdict.algorithm_side


def analyze_gmres(
    machine: MachineSpec,
    n: int = 1000,
    dimensions: int = 3,
    krylov_iterations: int = 10,
) -> GMRESAnalysis:
    """Reproduce the Section 5.3.3 analysis of GMRES on ``machine``."""
    m = krylov_iterations
    total_flops = gmres_flops(n, m, dimensions, paper_constant=True)
    lb_per_node = gmres_vertical_lower_bound(
        n, m, dimensions, processors=machine.total_cores
    ) * machine.cores_per_node
    ub_horiz = stencil_horizontal_upper_bound(
        n, machine.num_nodes, dimensions, m
    )
    vert = vertical_condition(machine, lb_per_node, total_flops)
    horiz = horizontal_condition(machine, ub_horiz, total_flops)
    return GMRESAnalysis(
        n=n,
        dimensions=dimensions,
        krylov_iterations=m,
        machine=machine,
        total_flops=total_flops,
        vertical_lb_per_node=lb_per_node,
        horizontal_ub_per_node=ub_horiz,
        vertical_verdict=vert,
        horizontal_verdict=horiz,
    )

"""FFT (butterfly) CDAGs and bounds — related-work cross-check.

The FFT is not one of the paper's evaluation workloads, but it is the
classic second example of the Hong-Kung framework (``Q = Θ(n log n /
log S)``) and is referenced repeatedly in the related-work section
(Savage; Ranjan, Savage & Zubair).  Including it gives the test-suite a
CDAG family with a qualitatively different I/O profile (poly-log reuse
rather than the polynomial reuse of matmul or the streaming behaviour of
stencils), which is valuable for exercising the partition and wavefront
machinery.

This module also provides an actual radix-2 decimation-in-time FFT whose
traced execution produces the same butterfly CDAG, so the structural
builder is validated against real code.
"""

from __future__ import annotations

import math

import numpy as np

from ..bounds.analytical import fft_io_lower_bound
from ..core.builders import butterfly_cdag

__all__ = ["butterfly_cdag", "fft_io_lower_bound", "radix2_fft", "fft_flops"]


def radix2_fft(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT (power-of-two length).

    A from-scratch implementation (no ``numpy.fft``) used by the tests to
    check the butterfly CDAG's stage structure against real code and by
    the examples as a self-contained workload.
    """
    x = np.asarray(x, dtype=complex).copy()
    n = len(x)
    if n == 0 or (n & (n - 1)) != 0:
        raise ValueError("radix-2 FFT needs a power-of-two length")
    # Bit-reversal permutation.
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            x[i], x[j] = x[j], x[i]
    # Butterfly stages.
    length = 2
    while length <= n:
        ang = -2.0 * math.pi / length
        wlen = complex(math.cos(ang), math.sin(ang))
        for start in range(0, n, length):
            w = 1.0 + 0.0j
            half = length // 2
            for k in range(half):
                u = x[start + k]
                v = x[start + k + half] * w
                x[start + k] = u + v
                x[start + k + half] = u - v
                w *= wlen
        length <<= 1
    return x


def fft_flops(n: int) -> float:
    """Approximate FLOPs of a radix-2 FFT: ``5 n log2 n`` (real ops)."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError("n must be a power of two >= 2")
    return 5.0 * n * math.log2(n)

"""Jacobi / stencil computations: CDAG and data-movement analysis (Section 5.4).

* **Theorem 10**: for the 9-point 2-D Jacobi over ``T - 1`` time steps,
  ``Q >= n^2 T / (4 P sqrt(2S))``, generalising to
  ``n^d T / (4 P (2S)^{1/d})`` in ``d`` dimensions.  The proof uses the
  Hong & Kung "lines" argument: all inputs reach all outputs through
  vertex-disjoint paths (the grid columns through time), and any
  2S-partition can cover at most ``F(2S) = O(S (2S)^{1/d})`` vertices per
  line segment.  The bound is tight: the space-time tiled schedule
  achieves it (up to constants).
* **Section 5.4.2**: the ghost-cell horizontal cost is ``~ 4 B T`` in 2-D
  (``2 d B^{d-1} T`` in general).
* **Section 5.4.3**: combining Theorem 6's form of the vertical bound with
  ``U(C, 2S) = 4 S (2S)^{1/d}`` gives the per-operation vertical
  requirement ``1 / (4 (2S)^{1/d})``; comparing against a machine's
  vertical balance yields a *dimension threshold*: the stencil is
  vertically bandwidth bound only for dimensions above the threshold
  (the paper reports d <= 4.83 for the DRAM<->L2 level of BG/Q and
  d <= 96 for L2<->L1, concluding the algorithm is bandwidth bound only
  for impractically high-dimensional stencils).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..bounds.analytical import (
    jacobi_io_lower_bound,
    stencil_horizontal_upper_bound,
)
from ..core.builders import grid_stencil_cdag
from ..core.cdag import CDAG
from ..machine.balance import BalanceVerdict, horizontal_condition, vertical_condition
from ..machine.spec import MachineSpec
from ..solvers.jacobi_solver import stencil_flops

__all__ = [
    "jacobi_cdag",
    "JacobiAnalysis",
    "analyze_jacobi",
    "bandwidth_bound_dimension_threshold",
]


def jacobi_cdag(
    shape: Sequence[int], timesteps: int, neighborhood: str = "box"
) -> CDAG:
    """The iterated-stencil CDAG of Theorem 10 (``box`` = 9-point in 2-D)."""
    return grid_stencil_cdag(shape, timesteps, neighborhood=neighborhood,
                             name=f"jacobi{len(tuple(shape))}d")


def bandwidth_bound_dimension_threshold(
    balance: float, cache_words: float
) -> float:
    """Largest dimension ``d`` for which the stencil is *not* provably
    vertically bandwidth bound.

    From Section 5.4.3: the necessary condition to avoid being bandwidth
    bound is ``1 / (4 (2S)^{1/d}) <= balance``, i.e.

    ``d <= log(2S) / log(1 / (4 * balance))``

    (valid when ``4 * balance < 1``; otherwise the condition holds for
    every ``d`` and ``inf`` is returned).  The paper quotes the same
    threshold in the linearised form ``d <= 0.21 log(2 S_2)`` (= 4.83 for
    the 32 MB L2 of BG/Q); the exact form used here gives a higher
    threshold for the same inputs — the discrepancy is documented in
    EXPERIMENTS.md — but the qualitative conclusion (only impractically
    high-dimensional stencils are bound) is identical.
    """
    if balance <= 0 or cache_words <= 0:
        raise ValueError("balance and cache size must be positive")
    if 4.0 * balance >= 1.0:
        return float("inf")
    return math.log(2.0 * cache_words) / math.log(1.0 / (4.0 * balance))


@dataclass(frozen=True)
class JacobiAnalysis:
    """The Section 5.4 quantities for one (n, d, T, machine) setting."""

    n: int
    dimensions: int
    timesteps: int
    machine: MachineSpec
    total_flops: float
    vertical_lb_per_node: float
    horizontal_ub_per_node: float
    vertical_verdict: BalanceVerdict
    horizontal_verdict: BalanceVerdict
    #: per-operation vertical requirement 1 / (4 (2S)^{1/d})
    per_op_vertical_requirement: float
    #: dimension threshold for the DRAM<->cache level of this machine
    dimension_threshold: float

    @property
    def vertical_intensity(self) -> float:
        return self.vertical_verdict.algorithm_side

    @property
    def horizontal_intensity(self) -> float:
        return self.horizontal_verdict.algorithm_side


def analyze_jacobi(
    machine: MachineSpec,
    n: int = 1000,
    dimensions: int = 2,
    timesteps: int = 1000,
    count_flops: bool = False,
) -> JacobiAnalysis:
    """Reproduce the Section 5.4.3 analysis of the d-dimensional Jacobi.

    Parameters
    ----------
    count_flops:
        When False (default), ``|V|`` counts one operation per grid-point
        update — the CDAG vertex count Theorems 6/10 actually bound, and
        the convention under which the ``1/(4 (2S)^{1/d})`` per-operation
        requirement of Section 5.4.3 is stated.  When True, ``|V|`` counts
        floating-point operations (``~2 * 3^d`` per update), which lowers
        the apparent intensity accordingly.
    """
    s_cache = machine.cache_words
    nd = n ** dimensions
    if count_flops:
        total_ops = stencil_flops(n, timesteps, dimensions, neighborhood="box")
    else:
        total_ops = float(nd) * timesteps
    # Theorem 10 bound per processor, re-aggregated per node.
    lb_per_node = jacobi_io_lower_bound(
        n, timesteps, int(s_cache), dimensions, processors=machine.total_cores
    ) * machine.cores_per_node
    ub_horiz = stencil_horizontal_upper_bound(
        n, machine.num_nodes, dimensions, timesteps
    )
    vert = vertical_condition(machine, lb_per_node, total_ops)
    horiz = horizontal_condition(machine, ub_horiz, total_ops)
    per_op = 1.0 / (4.0 * (2.0 * s_cache) ** (1.0 / dimensions))
    threshold = bandwidth_bound_dimension_threshold(
        machine.effective_vertical_balance(), s_cache
    )
    return JacobiAnalysis(
        n=n,
        dimensions=dimensions,
        timesteps=timesteps,
        machine=machine,
        total_flops=total_ops,
        vertical_lb_per_node=lb_per_node,
        horizontal_ub_per_node=ub_horiz,
        vertical_verdict=vert,
        horizontal_verdict=horiz,
        per_op_vertical_requirement=per_op,
        dimension_threshold=threshold,
    )

"""The composite multi-step example of Section 3.

The computation::

    Inputs : p, q, r, s  (vectors of size N)
    Output : sum         (scalar)
    A = p * q^T
    B = r * s^T
    C = A B
    sum = sum_ij C_ij

is the paper's motivating example for why per-step I/O bounds cannot
simply be added under the Hong-Kung game: with about ``4N + 4`` words of
fast memory the whole computation needs only ``4N + 1`` I/O operations
(load the four vectors, regenerate elements of A and B on the fly,
accumulate into ``sum``), *less* than the matmul step's own lower bound.

This module provides:

* :func:`composite_cdag` — the full CDAG of the composite computation
  (structural, with explicit multiply/accumulate vertices);
* :func:`traced_composite` — a traced scalar execution validated against
  NumPy;
* :func:`recompute_friendly_schedule_io` — the clever evaluation order
  achieving ``4N + 1`` I/O under the (recomputation-allowing) red-blue
  game, reproduced as an explicit move generator so the claim is
  machine-checked rather than asserted;
* :func:`naive_step_sum` — the (invalid as a composite bound) sum of the
  per-step bounds, for the comparison table of experiment E2.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..bounds.analytical import (
    composite_example_io_upper_bound,
    composite_example_naive_sum,
)
from ..core.cdag import CDAG, Vertex
from ..core.trace import TraceContext
from ..pebbling.redblue import RedBluePebbleGame
from ..pebbling.state import GameRecord

__all__ = [
    "composite_cdag",
    "traced_composite",
    "recompute_friendly_game",
    "naive_step_sum",
    "composite_example_io_upper_bound",
]


def composite_cdag(n: int, name: str = "composite") -> CDAG:
    """Full CDAG of the Section 3 composite computation for vectors of size ``n``.

    Vertex classes:

    * inputs ``("p", i)``, ``("q", j)``, ``("r", i)``, ``("s", j)``;
    * ``("A", i, j)`` = ``p_i * q_j`` and ``("B", i, j)`` = ``r_i * s_j``;
    * ``("mulC", i, j, k)`` = ``A[i,k] * B[k,j]`` and accumulations
      ``("accC", i, j, k)`` forming ``C[i,j]``;
    * accumulations ``("sum", t)`` over all ``C[i,j]``; the final one is
      the single output.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    for name_vec in ("p", "q", "r", "s"):
        for i in range(n):
            vertices.append((name_vec, i))
            inputs.append((name_vec, i))
    for i in range(n):
        for j in range(n):
            a: Vertex = ("A", i, j)
            vertices.append(a)
            edges.append(((("p", i)), a))
            edges.append(((("q", j)), a))
            b: Vertex = ("B", i, j)
            vertices.append(b)
            edges.append(((("r", i)), b))
            edges.append(((("s", j)), b))
    # C = A B and the global sum.
    sum_prev: Vertex = None  # type: ignore[assignment]
    sum_count = 0
    for i in range(n):
        for j in range(n):
            prev: Vertex = None  # type: ignore[assignment]
            for k in range(n):
                mul: Vertex = ("mulC", i, j, k)
                vertices.append(mul)
                edges.append((("A", i, k), mul))
                edges.append((("B", k, j), mul))
                if prev is None:
                    prev = mul
                else:
                    acc: Vertex = ("accC", i, j, k)
                    vertices.append(acc)
                    edges.append((prev, acc))
                    edges.append((mul, acc))
                    prev = acc
            # accumulate C[i,j] into the running global sum
            if sum_prev is None:
                sum_prev = prev
            else:
                s: Vertex = ("sum", sum_count)
                sum_count += 1
                vertices.append(s)
                edges.append((sum_prev, s))
                edges.append((prev, s))
                sum_prev = s
    return CDAG.from_edge_list(vertices, edges, inputs, [sum_prev], name=name)


def traced_composite(
    p: np.ndarray, q: np.ndarray, r: np.ndarray, s: np.ndarray
) -> Tuple[float, CDAG]:
    """Traced execution of the composite computation; returns (sum, CDAG).

    The numerical result equals ``sum((p q^T)(r s^T)) = (q . r) * sum_i p_i
    * sum_j s_j``, which the tests verify against a NumPy evaluation.
    """
    arrays = [np.asarray(v, dtype=float) for v in (p, q, r, s)]
    n = len(arrays[0])
    if any(a.shape != (n,) for a in arrays):
        raise ValueError("all four vectors must have the same length")
    ctx = TraceContext("traced-composite")
    tp = ctx.input_array(arrays[0], prefix="p")
    tq = ctx.input_array(arrays[1], prefix="q")
    tr = ctx.input_array(arrays[2], prefix="r")
    ts = ctx.input_array(arrays[3], prefix="s")
    total = None
    for i in range(n):
        for j in range(n):
            acc = None
            for k in range(n):
                a_ik = tp[i] * tq[k]
                b_kj = tr[k] * ts[j]
                prod = a_ik * b_kj
                acc = prod if acc is None else acc + prod
            total = acc if total is None else total + acc
    ctx.mark_output(total)
    return total.value, ctx.build()


def recompute_friendly_game(n: int) -> GameRecord:
    """Play the ``4N + 1`` I/O red-blue game on the composite CDAG.

    The strategy of Section 3: load the four input vectors (``4N`` loads)
    and keep them resident; walk the ``(i, j)`` result space, recomputing
    ``A[i, k]`` and ``B[k, j]`` on demand (recomputation is legal in the
    Hong-Kung game and costs no I/O), accumulating each ``C[i, j]`` into
    the running sum held in a red pebble; finally store the sum (1 store).
    Total I/O: ``4N + 1`` with ``4N + O(1)`` red pebbles (the paper quotes
    ``4N + 4``; the explicit move sequence below momentarily holds two
    extra scratch values — the running partial of ``C[i,j]`` and the fresh
    product — so it is given ``4N + 6``; the I/O count, which is the point
    of the example, is exactly ``4N + 1`` either way).

    The returned record is produced by replaying explicit moves through
    :class:`RedBluePebbleGame`, so rule violations would raise — the
    ``4N + 1`` claim is verified, not assumed.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    cdag = composite_cdag(n)
    game = RedBluePebbleGame(cdag, num_red=4 * n + 6, strict=True)
    # Load all inputs.
    for vec in ("p", "q", "r", "s"):
        for i in range(n):
            game.load((vec, i))
    sum_prev = None
    sum_count = 0
    for i in range(n):
        for j in range(n):
            prev = None
            for k in range(n):
                # (Re)compute A[i,k] and B[k,j]; they may have been
                # computed before for another (i, j) — the red pebble was
                # deleted, and the red-blue game lets us just recompute.
                if ("A", i, k) not in game.red:
                    game.compute(("A", i, k))
                if ("B", k, j) not in game.red:
                    game.compute(("B", k, j))
                game.compute(("mulC", i, j, k))
                game.delete(("A", i, k))
                game.delete(("B", k, j))
                if prev is None:
                    prev = ("mulC", i, j, k)
                else:
                    game.compute(("accC", i, j, k))
                    game.delete(prev)
                    game.delete(("mulC", i, j, k))
                    prev = ("accC", i, j, k)
            if sum_prev is None:
                sum_prev = prev
            else:
                game.compute(("sum", sum_count))
                game.delete(sum_prev)
                game.delete(prev)
                sum_prev = ("sum", sum_count)
                sum_count += 1
    game.store(sum_prev)
    game.assert_complete()
    return game.record


def naive_step_sum(n: int, s: int) -> float:
    """Sum of the per-step bounds (outer products + matmul + reduction).

    This is *not* a valid bound for the composite CDAG — that is the whole
    point of Section 3 — and is reported alongside the true ``4N + 1``
    cost in experiment E2 to reproduce the paper's argument numerically.
    """
    return composite_example_naive_sum(n, s)

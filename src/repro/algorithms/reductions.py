"""Reductions and vector kernels as CDAG families.

The inner kernels of the Krylov solvers — dot products, SAXPY updates,
norms — are the building blocks whose wavefronts drive Theorems 8 and 9.
This module provides them as standalone CDAG constructors with exact I/O
characterisations, used by the unit tests to validate the wavefront and
partition machinery on cases where the answer is known in closed form:

* a dot product of two length-n vectors: the reduction root has a
  wavefront of at most ``2`` in isolation (the chain accumulator plus the
  next product), but when its result feeds a later vector operation that
  also reads the original vectors, the wavefront grows to ``Θ(n)`` —
  exactly the structural situation exploited by Theorem 8; the
  :func:`dot_then_axpy_cdag` builder reproduces it in miniature;
* SAXPY: ``2n`` loads + ``n`` stores, no reuse;
* vector norm: same shape as a dot product.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.cdag import CDAG, Vertex

__all__ = [
    "dot_product_cdag",
    "saxpy_cdag",
    "dot_then_axpy_cdag",
]


def dot_product_cdag(n: int, name: str = "dot") -> CDAG:
    """CDAG of ``s = <x, y>``: n products feeding a linear reduction chain."""
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    for i in range(n):
        vertices.append(("x", i))
        vertices.append(("y", i))
        inputs.extend([("x", i), ("y", i)])
    prev: Vertex = None  # type: ignore[assignment]
    for i in range(n):
        m: Vertex = ("prod", i)
        vertices.append(m)
        edges.append((("x", i), m))
        edges.append((("y", i), m))
        if prev is None:
            prev = m
        else:
            a: Vertex = ("acc", i)
            vertices.append(a)
            edges.append((prev, a))
            edges.append((m, a))
            prev = a
    return CDAG.from_edge_list(vertices, edges, inputs, [prev], name=name)


def saxpy_cdag(n: int, name: str = "saxpy") -> CDAG:
    """CDAG of ``y <- y + a * x`` (the scalar ``a`` is an input too)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = [("a",)]
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = [("a",)]
    outputs: List[Vertex] = []
    for i in range(n):
        vertices.extend([("x", i), ("y", i)])
        inputs.extend([("x", i), ("y", i)])
        out: Vertex = ("out", i)
        vertices.append(out)
        edges.append((("a",), out))
        edges.append((("x", i), out))
        edges.append((("y", i), out))
        outputs.append(out)
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def dot_then_axpy_cdag(n: int, name: str = "dot-axpy") -> CDAG:
    """The CG-like pattern: ``a = <x, y>`` then ``z_i = x_i + a * y_i``.

    Every element of ``x`` and ``y`` is a predecessor of the reduction
    result ``a`` *and* is read again by the subsequent AXPY, so all ``2n``
    of them have disjoint paths to the descendants of ``a``; the
    minimum-cardinality wavefront at ``a`` is therefore ``2n + 1`` (the 2n
    vector elements still live plus ``a`` itself) — the miniature version
    of the Theorem 8 wavefront, verified exactly by the unit tests via
    max-flow.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    outputs: List[Vertex] = []
    for i in range(n):
        vertices.extend([("x", i), ("y", i)])
        inputs.extend([("x", i), ("y", i)])
    prev: Vertex = None  # type: ignore[assignment]
    for i in range(n):
        m: Vertex = ("prod", i)
        vertices.append(m)
        edges.append((("x", i), m))
        edges.append((("y", i), m))
        if prev is None:
            prev = m
        else:
            a: Vertex = ("acc", i)
            vertices.append(a)
            edges.append((prev, a))
            edges.append((m, a))
            prev = a
    a_scalar = prev
    for i in range(n):
        z: Vertex = ("z", i)
        vertices.append(z)
        edges.append((a_scalar, z))
        edges.append((("x", i), z))
        edges.append((("y", i), z))
        outputs.append(z)
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)

"""Dense linear-algebra CDAGs and bounds (matmul, outer product).

Matrix multiplication is the canonical example of the 2S-partitioning
technique (its ``N^3 / (2 sqrt(2S))`` bound is quoted in Section 3) and
also the canonical example of why naive input/output *deletion* fails:
removing the input and output vertices of the matmul CDAG leaves only the
``N^2`` independent accumulation chains, each pebblable with two red
pebbles.  Theorem 3 (retagging) is the repair.  This module provides:

* :func:`matmul_cdag` — the classical-algorithm CDAG with explicit
  multiply and accumulate vertices;
* :func:`matmul_io_lower_bound` re-exported from
  :mod:`repro.bounds.analytical` for convenience;
* :func:`matmul_accumulation_chains` — the CDAG left after deleting the
  input/output vertices, used by tests to demonstrate the degenerate
  behaviour the paper describes;
* :func:`traced_matmul` — a traced execution producing both the numeric
  product (validated against NumPy) and the CDAG;
* outer-product builders mirroring Section 3's first two steps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..bounds.analytical import matmul_io_lower_bound, outer_product_io
from ..core.cdag import CDAG, Vertex
from ..core.builders import independent_chains_cdag, outer_product_cdag
from ..core.trace import TraceContext

__all__ = [
    "matmul_cdag",
    "matmul_accumulation_chains",
    "traced_matmul",
    "traced_outer_product",
    "matmul_io_lower_bound",
    "outer_product_io",
    "outer_product_cdag",
]


def matmul_cdag(n: int, name: str = "matmul") -> CDAG:
    """CDAG of the classical ``N x N`` matrix multiplication ``C = A B``.

    Vertices:

    * inputs ``("A", i, k)`` and ``("B", k, j)``;
    * multiplies ``("mul", i, j, k)`` reading ``A[i,k]`` and ``B[k,j]``;
    * accumulations ``("acc", i, j, k)`` for ``k >= 1`` reading the
      previous partial sum and the ``k``-th product; the last accumulation
      of each ``(i, j)`` is an output (``C[i,j]``).

    For ``n = 1`` the single multiply is the output.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    vertices: List[Vertex] = []
    edges: List[Tuple[Vertex, Vertex]] = []
    inputs: List[Vertex] = []
    outputs: List[Vertex] = []
    for i in range(n):
        for k in range(n):
            vertices.append(("A", i, k))
            inputs.append(("A", i, k))
    for k in range(n):
        for j in range(n):
            vertices.append(("B", k, j))
            inputs.append(("B", k, j))
    for i in range(n):
        for j in range(n):
            prev: Optional[Vertex] = None
            for k in range(n):
                mul: Vertex = ("mul", i, j, k)
                vertices.append(mul)
                edges.append((("A", i, k), mul))
                edges.append((("B", k, j), mul))
                if prev is None:
                    prev = mul
                else:
                    acc: Vertex = ("acc", i, j, k)
                    vertices.append(acc)
                    edges.append((prev, acc))
                    edges.append((mul, acc))
                    prev = acc
            outputs.append(prev)  # type: ignore[arg-type]
    return CDAG.from_edge_list(vertices, edges, inputs, outputs, name=name)


def matmul_accumulation_chains(n: int) -> CDAG:
    """The matmul CDAG with its input and output vertices deleted.

    What remains is ``N^2`` independent accumulation chains (each of
    length ``~2N``): every chain can be evaluated with 2 red pebbles and
    no I/O at all, which is why Corollary 2 alone gives only the trivial
    ``|dI| + |dO| = 2N^2 + N^2`` bound and the stronger matmul bound needs
    Theorem 3 retagging.  Returned as a freshly-built chains CDAG with the
    same shape for clarity (the tests also derive it directly from
    :func:`matmul_cdag` via ``without_io_vertices`` and check the two are
    isomorphic in the relevant statistics).
    """
    if n < 2:
        raise ValueError("n must be >= 2 for non-trivial chains")
    # Each (i, j) chain: n multiplies and n-1 accumulates; after removing
    # the inputs, the multiplies become sources feeding the accumulate
    # chain.  Equivalent stats: n^2 chains of length ~2n-1.
    return independent_chains_cdag(n * n, 2 * n - 2, name=f"matmul{n}-chains")


def traced_matmul(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, CDAG]:
    """Execute ``C = A @ B`` scalar-by-scalar under the tracer.

    Returns the numeric product (checked by the caller / tests against
    ``numpy.matmul``) and the recorded CDAG.  Intended for small matrices;
    the CDAG has ``2 n m + n m (2k - 1)`` vertices for an
    ``(n x k) @ (k x m)`` product.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("incompatible matrix shapes")
    ctx = TraceContext("traced-matmul")
    ta = ctx.input_array(a, prefix="A")
    tb = ctx.input_array(b, prefix="B")
    n, k = a.shape
    m = b.shape[1]
    out = np.zeros((n, m))
    for i in range(n):
        for j in range(m):
            acc = ta[i, 0] * tb[0, j]
            for kk in range(1, k):
                acc = acc + ta[i, kk] * tb[kk, j]
            ctx.mark_output(acc)
            out[i, j] = acc.value
    return out, ctx.build()


def traced_outer_product(p: np.ndarray, q: np.ndarray) -> Tuple[np.ndarray, CDAG]:
    """Traced outer product ``A = p q^T`` (Section 3, first step)."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.ndim != 1 or q.ndim != 1:
        raise ValueError("outer product expects two vectors")
    ctx = TraceContext("traced-outer")
    tp = ctx.input_array(p, prefix="p")
    tq = ctx.input_array(q, prefix="q")
    out = np.zeros((len(p), len(q)))
    for i in range(len(p)):
        for j in range(len(q)):
            prod = tp[i] * tq[j]
            ctx.mark_output(prod)
            out[i, j] = prod.value
    return out, ctx.build()

"""Algorithm-specific CDAG constructors, closed-form bounds and analyses.

Each module pairs a workload of the paper's evaluation (Section 5) — or a
supporting example (Section 3) — with (a) CDAG constructors (structural
and traced), (b) the paper's closed-form bounds and (c) an ``analyze_*``
driver that evaluates the machine-balance conditions on a
:class:`~repro.machine.spec.MachineSpec`.
"""

from .cg import CGAnalysis, analyze_cg, cg_iteration_cdag, traced_cg_cdag
from .composite import (
    composite_cdag,
    naive_step_sum,
    recompute_friendly_game,
    traced_composite,
)
from .fft import fft_flops, radix2_fft
from .gmres import GMRESAnalysis, analyze_gmres, gmres_iteration_cdag, traced_gmres_cdag
from .jacobi import (
    JacobiAnalysis,
    analyze_jacobi,
    bandwidth_bound_dimension_threshold,
    jacobi_cdag,
)
from .linalg import (
    matmul_accumulation_chains,
    matmul_cdag,
    traced_matmul,
    traced_outer_product,
)
from .reductions import dot_product_cdag, dot_then_axpy_cdag, saxpy_cdag

__all__ = [
    "CGAnalysis",
    "analyze_cg",
    "cg_iteration_cdag",
    "traced_cg_cdag",
    "composite_cdag",
    "naive_step_sum",
    "recompute_friendly_game",
    "traced_composite",
    "fft_flops",
    "radix2_fft",
    "GMRESAnalysis",
    "analyze_gmres",
    "gmres_iteration_cdag",
    "traced_gmres_cdag",
    "JacobiAnalysis",
    "analyze_jacobi",
    "bandwidth_bound_dimension_threshold",
    "jacobi_cdag",
    "matmul_accumulation_chains",
    "matmul_cdag",
    "traced_matmul",
    "traced_outer_product",
    "dot_product_cdag",
    "dot_then_axpy_cdag",
    "saxpy_cdag",
]

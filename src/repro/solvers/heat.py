"""Heat-equation timestepping driver (the full Section 5.1 workload).

Combines the pieces of the substrate into the end-to-end computation the
paper's evaluation reasons about: at every timestep the implicit scheme's
linear system is solved with a chosen solver (CG, GMRES, Jacobi or the
direct Thomas algorithm in 1-D), producing the temperature field at the
next time.  The driver records per-timestep iteration counts so the
evaluation harness can convert them into the operation counts and data
movement figures of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .cg_solver import conjugate_gradient
from .gmres_solver import gmres
from .grid import Grid
from .jacobi_solver import jacobi_solve
from .sparse import StencilOperator
from .tridiagonal import heat_tridiagonal, thomas_solve

__all__ = ["HeatRunResult", "run_heat_equation"]


@dataclass
class HeatRunResult:
    """Outcome of a heat-equation run.

    Attributes
    ----------
    solution:
        The temperature field after the final timestep (flattened).
    timesteps:
        Number of timesteps performed.
    solver_iterations:
        Inner-solver iteration count per timestep.
    residual_history:
        Final inner residual per timestep.
    """

    solution: np.ndarray
    timesteps: int
    solver_iterations: List[int] = field(default_factory=list)
    residual_history: List[float] = field(default_factory=list)

    @property
    def total_inner_iterations(self) -> int:
        return int(sum(self.solver_iterations))


def run_heat_equation(
    grid: Grid,
    timesteps: int,
    solver: str = "cg",
    u0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_inner_iterations: Optional[int] = None,
) -> HeatRunResult:
    """Advance the heat equation ``timesteps`` steps with the implicit scheme.

    Parameters
    ----------
    grid:
        The spatial discretization.
    timesteps:
        Number of implicit time steps.
    solver:
        ``"cg"``, ``"gmres"``, ``"jacobi"`` or ``"thomas"`` (1-D only).
    u0:
        Initial temperature field (defaults to the sine mode of
        :meth:`Grid.initial_condition`).
    tol:
        Inner-solver tolerance.
    max_inner_iterations:
        Optional cap on inner iterations per timestep.
    """
    solver = solver.lower()
    if solver not in ("cg", "gmres", "jacobi", "thomas"):
        raise ValueError("solver must be one of cg, gmres, jacobi, thomas")
    if solver == "thomas" and grid.ndim != 1:
        raise ValueError("the Thomas solver only applies to 1-D grids")
    if timesteps < 0:
        raise ValueError("timesteps cannot be negative")

    if u0 is None:
        u = grid.initial_condition()
    else:
        u = np.array(u0, dtype=float).reshape(-1)
    if u.shape[0] != grid.num_points:
        raise ValueError("initial condition has the wrong size")

    operator = StencilOperator(grid)
    iterations: List[int] = []
    residuals: List[float] = []

    for _ in range(timesteps):
        b = grid.implicit_rhs(u)
        if solver == "cg":
            res = conjugate_gradient(
                operator, b, x0=u, tol=tol,
                max_iterations=max_inner_iterations,
            )
            u = res.x
            iterations.append(res.iterations)
            residuals.append(res.residual_norms[-1])
        elif solver == "gmres":
            res = gmres(
                operator, b, x0=u, tol=tol,
                max_iterations=max_inner_iterations,
            )
            u = res.x
            iterations.append(res.iterations)
            residuals.append(res.residual_norms[-1])
        elif solver == "jacobi":
            res = jacobi_solve(
                operator, b, x0=u, tol=tol,
                max_iterations=max_inner_iterations or 10_000,
            )
            u = res.x
            iterations.append(res.iterations)
            residuals.append(res.residual_norms[-1] if res.residual_norms else 0.0)
        else:  # thomas
            lo, di, up = heat_tridiagonal(grid.num_points, grid.mesh_ratio)
            u = thomas_solve(lo, di, up, b)
            iterations.append(1)
            residuals.append(0.0)

    return HeatRunResult(
        solution=u,
        timesteps=timesteps,
        solver_iterations=iterations,
        residual_history=residuals,
    )

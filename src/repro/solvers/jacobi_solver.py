"""Jacobi iteration / stencil sweeps (Section 5.4).

Two closely-related computations are provided:

* :func:`jacobi_solve` — the Jacobi *linear solver*: iteratively replaces
  each unknown by the weighted average of its neighbours implied by the
  system ``A x = b`` (``x_i <- (b_i - sum_{j != i} a_ij x_j) / a_ii``),
  used as the classic slowly-converging baseline the paper describes
  ("information propagates one grid point per iteration").
* :func:`stencil_sweeps` — plain weighted-average stencil time-stepping
  (the explicit heat update), which is the computation whose CDAG
  (:func:`repro.core.builders.grid_stencil_cdag`) Theorem 10 analyses:
  ``T`` sweeps of a (2d+1)- or 3^d-point stencil over an ``n^d`` grid.

Also provided are the operation-count helpers used by the Section 5.4.3
balance analysis and a tiled (blocked-in-space-and-time) sweep schedule
whose I/O matches the Theorem 10 lower bound — the paper's evidence that
the bound is tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .grid import Grid

__all__ = [
    "JacobiResult",
    "jacobi_solve",
    "stencil_sweeps",
    "stencil_flops",
    "tiled_sweep_io_estimate",
]


@dataclass
class JacobiResult:
    """Outcome of a Jacobi linear solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)


def jacobi_solve(
    operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
    damping: float = 1.0,
) -> JacobiResult:
    """Solve ``A x = b`` with (damped) Jacobi iteration.

    ``x_{k+1} = x_k + damping * D^{-1} (b - A x_k)`` where ``D`` is the
    diagonal of ``A``.  Converges for diagonally dominant systems such as
    the implicit heat matrix.
    """
    b = np.asarray(b, dtype=float)
    matvec = operator.matvec if hasattr(operator, "matvec") else (
        lambda v: np.asarray(operator) @ v
    )
    diag = (
        operator.diagonal()
        if hasattr(operator, "diagonal")
        else np.diag(np.asarray(operator))
    )
    if np.any(diag == 0):
        raise ValueError("Jacobi iteration requires a non-zero diagonal")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=float)
    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals: List[float] = []
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        r = b - matvec(x)
        res = float(np.linalg.norm(r))
        residuals.append(res)
        if res <= tol * b_norm:
            converged = True
            break
        x = x + damping * (r / diag)
    return JacobiResult(x=x, iterations=it, converged=converged,
                        residual_norms=residuals)


def stencil_sweeps(
    grid: Grid,
    u0: np.ndarray,
    timesteps: int,
    neighborhood: str = "star",
) -> np.ndarray:
    """Run ``timesteps`` explicit stencil sweeps over the grid.

    Each sweep replaces every interior value by a weighted average of its
    neighbourhood (``star``: the 2d+1-point axis stencil of the explicit
    heat update with ratio ``a``; ``box``: the 3^d-point average used by
    the "9-points Jacobi" of Theorem 10 in 2-D).  Dirichlet (zero)
    boundaries are assumed, matching :class:`Grid`.
    """
    u = np.asarray(u0, dtype=float).reshape(grid.shape).copy()
    if timesteps < 0:
        raise ValueError("timesteps cannot be negative")
    a = grid.mesh_ratio
    d = grid.ndim
    for _ in range(timesteps):
        if neighborhood == "star":
            acc = (1.0 - 2.0 * d * a) * u
            weight = a
            shifts = []
            for axis in range(d):
                shifts.append((axis, 1))
                shifts.append((axis, -1))
            for axis, sign in shifts:
                shifted = np.zeros_like(u)
                src = [slice(None)] * d
                dst = [slice(None)] * d
                if sign > 0:
                    src[axis] = slice(1, None)
                    dst[axis] = slice(None, -1)
                else:
                    src[axis] = slice(None, -1)
                    dst[axis] = slice(1, None)
                shifted[tuple(dst)] = u[tuple(src)]
                acc = acc + weight * shifted
            u = acc
        elif neighborhood == "box":
            # Uniform 3^d-point average (centre weight chosen so the
            # weights sum to 1), the structure analysed by Theorem 10.
            import itertools

            acc = np.zeros_like(u)
            count = 3 ** d
            for off in itertools.product((-1, 0, 1), repeat=d):
                shifted = np.zeros_like(u)
                src = [slice(None)] * d
                dst = [slice(None)] * d
                for axis, o in enumerate(off):
                    if o == 1:
                        src[axis] = slice(1, None)
                        dst[axis] = slice(None, -1)
                    elif o == -1:
                        src[axis] = slice(None, -1)
                        dst[axis] = slice(1, None)
                shifted[tuple(dst)] = u[tuple(src)]
                acc = acc + shifted
            u = acc / count
        else:
            raise ValueError("neighborhood must be 'star' or 'box'")
    return u.reshape(-1)


def stencil_flops(n: int, timesteps: int, dimensions: int,
                  neighborhood: str = "star") -> float:
    """Operation count of ``T`` stencil sweeps on an ``n^d`` grid.

    ``star``: ``2(2d+1) n^d`` FLOPs per sweep (one multiply-add per
    neighbour plus the centre); ``box``: ``2 * 3^d n^d``.
    """
    nd = n ** dimensions
    if neighborhood == "star":
        per_point = 2 * (2 * dimensions + 1)
    else:
        per_point = 2 * 3**dimensions
    return float(per_point) * nd * timesteps


def tiled_sweep_io_estimate(
    n: int, timesteps: int, dimensions: int, cache_words: int
) -> float:
    """I/O of the classic space-time tiled stencil schedule.

    Tiling space into blocks of side ``b`` with ``b^d ~ S`` (so a block
    fits in cache) and time into chunks of ``t ~ b`` sweeps, each tile of
    work loads ``O(b^d)`` words and performs ``O(b^d * t)`` updates; over
    the whole iteration space the traffic is

    ``~ n^d T / (2S)^{1/d}``

    matching the Theorem 10 lower bound ``n^d T / (4 (2S)^{1/d})`` up to
    the constant — this is the upper bound showing the bound is tight.
    """
    if min(n, timesteps, dimensions, cache_words) < 1:
        raise ValueError("invalid parameters")
    return n ** dimensions * timesteps / (2.0 * cache_words) ** (1.0 / dimensions)

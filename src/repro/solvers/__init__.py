"""Numerical substrate: the discretized heat problem and its solvers.

This package contains runnable, validated implementations of the
computations the paper analyses (Section 5): the finite-difference
discretization of the heat equation (:mod:`grid`), sparse / matrix-free
operators (:mod:`sparse`), the Conjugate Gradient (:mod:`cg_solver`),
GMRES (:mod:`gmres_solver`) and Jacobi (:mod:`jacobi_solver`) iterative
solvers, a direct tridiagonal solver for 1-D validation
(:mod:`tridiagonal`) and the end-to-end heat time-stepping driver
(:mod:`heat`).
"""

from .cg_solver import (
    CGResult,
    cg_flops_per_iteration,
    cg_total_flops,
    conjugate_gradient,
)
from .gmres_solver import GMRESResult, gmres, gmres_flops
from .grid import Grid
from .heat import HeatRunResult, run_heat_equation
from .jacobi_solver import (
    JacobiResult,
    jacobi_solve,
    stencil_flops,
    stencil_sweeps,
    tiled_sweep_io_estimate,
)
from .sparse import CSRMatrix, StencilOperator, laplacian_csr
from .tridiagonal import build_tridiagonal, heat_tridiagonal, thomas_solve

__all__ = [
    "CGResult",
    "cg_flops_per_iteration",
    "cg_total_flops",
    "conjugate_gradient",
    "GMRESResult",
    "gmres",
    "gmres_flops",
    "Grid",
    "HeatRunResult",
    "run_heat_equation",
    "JacobiResult",
    "jacobi_solve",
    "stencil_flops",
    "stencil_sweeps",
    "tiled_sweep_io_estimate",
    "CSRMatrix",
    "StencilOperator",
    "laplacian_csr",
    "build_tridiagonal",
    "heat_tridiagonal",
    "thomas_solve",
]

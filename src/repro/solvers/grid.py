"""Finite-difference discretization of the heat equation (Section 5.1).

The paper's evaluation analyses iterative solvers for the linear systems
that arise from discretizing the heat equation

``du/dt = alpha * d^2u/dx^2``

on a d-dimensional unit domain with an implicit (backward-in-time,
centred-in-space) scheme.  For the 1-D bar, the system at every timestep
is the tridiagonal system (11) of the paper:

``(-a/2) U(i-1, m+1) + (1+a) U(i, m+1) + (-a/2) U(i+1, m+1) = b(i, m)``

with ``a = k / h^2`` and the right-hand side built from the previous
timestep.  In ``d`` dimensions the coefficient matrix is the
``n^d x n^d`` (2d+1)-diagonal matrix of the implicit scheme; in practice
(as the paper notes) the matrix entries are never stored — they are
constants embedded in the operator — which is why the solvers below work
matrix-free through :class:`repro.solvers.sparse.StencilOperator`.

:class:`Grid` carries the geometry (extents, spacing, timestep) and
provides index <-> coordinate maps, boundary handling, the per-timestep
right-hand side, and an exact reference solution for validation
(a decaying sine mode, for which the continuous heat equation has a
closed-form solution).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Grid"]


@dataclass(frozen=True)
class Grid:
    """A regular d-dimensional grid for the heat problem.

    Parameters
    ----------
    shape:
        Number of *interior* points along each dimension
        (``n_1, ..., n_d``); the boundary points carry the (zero)
        Dirichlet boundary condition and are not unknowns.
    spacing:
        Grid spacing ``h`` (the same along every dimension, matching the
        paper's uniform bar).
    timestep:
        Time step ``k``.
    diffusivity:
        Thermal diffusivity ``alpha`` (the paper takes ``alpha = 1``).
    """

    shape: Tuple[int, ...]
    spacing: float = None  # type: ignore[assignment]
    timestep: float = None  # type: ignore[assignment]
    diffusivity: float = 1.0

    def __post_init__(self) -> None:
        shape = tuple(int(n) for n in self.shape)
        object.__setattr__(self, "shape", shape)
        if not shape or any(n < 1 for n in shape):
            raise ValueError("grid needs at least one interior point per dim")
        h = self.spacing if self.spacing is not None else 1.0 / (max(shape) + 1)
        k = self.timestep if self.timestep is not None else 0.5 * h * h
        object.__setattr__(self, "spacing", float(h))
        object.__setattr__(self, "timestep", float(k))
        if self.spacing <= 0 or self.timestep <= 0 or self.diffusivity <= 0:
            raise ValueError("spacing, timestep and diffusivity must be positive")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Dimensionality ``d`` of the grid."""
        return len(self.shape)

    @property
    def num_points(self) -> int:
        """Number of unknowns ``n_1 * ... * n_d`` (``n^d`` for cubes)."""
        out = 1
        for n in self.shape:
            out *= n
        return out

    @property
    def mesh_ratio(self) -> float:
        """``a = alpha * k / h^2``, the coefficient of system (11)."""
        return self.diffusivity * self.timestep / (self.spacing ** 2)

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def points(self) -> Iterable[Tuple[int, ...]]:
        """Iterate over all interior multi-indices."""
        return itertools.product(*[range(n) for n in self.shape])

    def ravel(self, idx: Sequence[int]) -> int:
        """Flatten a multi-index into a linear unknown index."""
        return int(np.ravel_multi_index(tuple(idx), self.shape))

    def unravel(self, k: int) -> Tuple[int, ...]:
        """Inverse of :meth:`ravel`."""
        return tuple(int(x) for x in np.unravel_index(k, self.shape))

    def neighbors(self, idx: Sequence[int]) -> List[Tuple[int, ...]]:
        """Interior axis neighbours (±1 along each dimension) of a point."""
        idx = tuple(idx)
        out: List[Tuple[int, ...]] = []
        for axis in range(self.ndim):
            for sign in (-1, 1):
                j = list(idx)
                j[axis] += sign
                if 0 <= j[axis] < self.shape[axis]:
                    out.append(tuple(j))
        return out

    def coordinates(self, idx: Sequence[int]) -> Tuple[float, ...]:
        """Physical coordinates of an interior point (boundary at 0 and 1)."""
        return tuple((i + 1) * self.spacing for i in idx)

    # ------------------------------------------------------------------
    # Heat-equation specifics
    # ------------------------------------------------------------------
    def initial_condition(self, mode: int = 1) -> np.ndarray:
        """A sine initial condition ``u(x, 0) = prod_d sin(pi m x_d)``.

        Sine modes are eigenfunctions of the Laplacian with Dirichlet
        boundaries, so the exact continuous solution stays a (decaying)
        sine mode — ideal for validating the solvers.
        """
        u = np.ones(self.shape, dtype=float)
        for axis, n in enumerate(self.shape):
            x = (np.arange(n) + 1) * self.spacing
            profile = np.sin(math.pi * mode * x)
            shape = [1] * self.ndim
            shape[axis] = n
            u = u * profile.reshape(shape)
        return u.reshape(-1)

    def exact_solution(self, t: float, mode: int = 1) -> np.ndarray:
        """Exact solution of the continuous heat equation at time ``t`` for
        the sine initial condition."""
        decay = math.exp(
            -self.diffusivity * self.ndim * (math.pi * mode) ** 2 * t
        )
        return decay * self.initial_condition(mode)

    def implicit_rhs(self, u_prev: np.ndarray) -> np.ndarray:
        """Right-hand side ``b(., m)`` of the Crank-Nicolson-style system (11).

        ``b = (a/2) * sum_neighbours u_prev + (1 - d*a) * u_prev`` in
        ``d`` dimensions (the 1-D case reduces exactly to the paper's
        ``a/2 U(i-1,m) + (1-a) U(i,m) + a/2 U(i+1,m)``).
        """
        u = np.asarray(u_prev, dtype=float).reshape(self.shape)
        a = self.mesh_ratio
        acc = (1.0 - self.ndim * a) * u
        for axis in range(self.ndim):
            lower = np.zeros_like(u)
            upper = np.zeros_like(u)
            sl_lo = [slice(None)] * self.ndim
            sl_hi = [slice(None)] * self.ndim
            sl_lo[axis] = slice(1, None)
            sl_hi[axis] = slice(None, -1)
            lower[tuple(sl_lo)] = u[tuple(sl_hi)]
            upper[tuple(sl_hi)] = u[tuple(sl_lo)]
            acc = acc + 0.5 * a * (lower + upper)
        return acc.reshape(-1)

    def implicit_matrix_diagonals(self) -> Tuple[float, float]:
        """(diagonal, off-diagonal) coefficients of the implicit system.

        Diagonal ``1 + d*a``, off-diagonal ``-a/2`` along each axis —
        the d-dimensional generalisation of the tridiagonal matrix (11).
        """
        a = self.mesh_ratio
        return (1.0 + self.ndim * a, -0.5 * a)

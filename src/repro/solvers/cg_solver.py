"""Conjugate Gradient solver (Figure 3 of the paper).

The implementation follows the paper's pseudocode line by line so that the
traced CDAG (:mod:`repro.algorithms.cg`) and the operation counts used in
Section 5.2.3 correspond to exactly this algorithm:

.. code-block:: none

    r <- b - A x ; p <- r
    repeat
        v <- A p                      # SpMV
        a <- <r, r> / <p, v>          # two dot products
        x <- x + a p                  # saxpy
        r_new <- r - a v              # saxpy
        g <- <r_new, r_new> / <r, r>  # one new dot product (reuse <r,r>)
        p <- r_new + g p              # saxpy
        r <- r_new
    until <r_new, r_new> small enough

Per iteration on an ``n^d``-point grid this costs one SpMV
(~``(2(2d+1)) n^d`` FLOPs for the (2d+1)-point operator), three dot
products (``2 n^d`` each) and three SAXPYs (``2 n^d`` each); for d = 3
that is the ``~20 n^3`` FLOPs per iteration the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

__all__ = ["CGResult", "conjugate_gradient", "cg_flops_per_iteration", "cg_total_flops"]


@dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        The final iterate.
    iterations:
        Number of outer iterations performed.
    converged:
        Whether the residual tolerance was reached.
    residual_norms:
        Euclidean norm of the residual after each iteration (index 0 is
        the initial residual).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)


def conjugate_gradient(
    operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: Optional[int] = None,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> CGResult:
    """Solve ``A x = b`` for a symmetric positive-definite operator.

    Parameters
    ----------
    operator:
        Anything with a ``matvec(x)`` method (or ``__matmul__``) — a
        :class:`~repro.solvers.sparse.CSRMatrix`,
        :class:`~repro.solvers.sparse.StencilOperator` or a dense ndarray.
    b:
        Right-hand side.
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual tolerance ``||r|| <= tol * ||b||``.
    max_iterations:
        Cap on outer iterations (default: the system size).
    callback:
        Optional ``callback(iteration, x)`` invoked after each update.
    """
    b = np.asarray(b, dtype=float)
    n = b.shape[0]
    matvec = operator.matvec if hasattr(operator, "matvec") else (
        lambda v: np.asarray(operator) @ v
    )
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    if x.shape != b.shape:
        raise ValueError("x0 and b must have the same shape")
    max_iterations = n if max_iterations is None else int(max_iterations)

    r = b - matvec(x)
    p = r.copy()
    rr = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals = [float(np.sqrt(rr))]
    if residuals[0] <= tol * b_norm:
        return CGResult(x=x, iterations=0, converged=True, residual_norms=residuals)

    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        v = matvec(p)                        # SpMV
        pv = float(p @ v)
        if pv == 0.0:
            break
        a = rr / pv                          # dot products
        x = x + a * p                        # saxpy
        r_new = r - a * v                    # saxpy
        rr_new = float(r_new @ r_new)
        g = rr_new / rr                      # dot product (reused)
        p = r_new + g * p                    # saxpy
        r, rr = r_new, rr_new
        residuals.append(float(np.sqrt(rr)))
        if callback is not None:
            callback(it, x)
        if residuals[-1] <= tol * b_norm:
            converged = True
            break
    return CGResult(x=x, iterations=it, converged=converged, residual_norms=residuals)


def cg_flops_per_iteration(n: int, dimensions: int = 3) -> int:
    """Approximate FLOPs of one CG iteration on an ``n^d`` grid.

    One (2d+1)-point SpMV (``2(2d+1) n^d``), three dot products
    (``2 n^d`` each) and three SAXPYs (``2 n^d`` each): ``(4d + 14) n^d``,
    which for ``d = 3`` is ``26 n^3``; the paper rounds the per-iteration
    work to ``20 n^3`` (counting the SpMV at ``~7-8 n^3`` for the 7-point
    stencil and dropping lower-order terms).  We expose both: this exact
    count and :func:`cg_total_flops` with ``paper_constant=True`` for the
    published ``20 n^3 T`` figure.
    """
    nd = n ** dimensions
    return (4 * dimensions + 14) * nd


def cg_total_flops(
    n: int, iterations: int, dimensions: int = 3, paper_constant: bool = False
) -> float:
    """Total operation count of ``iterations`` CG steps.

    With ``paper_constant=True`` returns the paper's ``20 n^d T`` figure
    (used in the Section 5.2.3 analysis); otherwise the exact per-iteration
    count of :func:`cg_flops_per_iteration`.
    """
    nd = n ** dimensions
    if paper_constant:
        return 20.0 * nd * iterations
    return float(cg_flops_per_iteration(n, dimensions)) * iterations

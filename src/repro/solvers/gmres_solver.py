"""GMRES solver with modified Gram-Schmidt and Givens rotations (Figure 4).

The paper's pseudocode (basic GMRES, no restarting) is implemented
faithfully:

.. code-block:: none

    r0 <- b - A x0 ; v0 <- r0 / ||r0||
    for i = 0, 1, ..., m-1:
        w <- A v_i                                   # SpMV
        for j = 0..i:  h[j,i] <- <w, v_j>            # dot products
        v'_{i+1} <- w - sum_j h[j,i] v_j             # saxpys
        h[i+1,i] <- ||v'_{i+1}||                     # dot product + sqrt
        v_{i+1} <- v'_{i+1} / h[i+1,i]
        apply Givens rotations to h[:,i]             # O(i) work
    until convergence
    y <- argmin || H y - ||r0|| e1 ||  ;  x <- x0 + V y

The least-squares problem is solved incrementally with Givens rotations,
so the residual norm is available at every iteration without forming the
solution, exactly as production GMRES implementations do.

Per outer iteration ``i`` on an ``n^d`` grid: one SpMV, ``i + 1`` dot
products and ``i`` AXPYs — the operation-count structure behind the
paper's total of ``20 n^3 m + n^3 m^2`` FLOPs for ``m`` iterations in 3-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

__all__ = [
    "GMRESResult",
    "gmres",
    "gmres_flops",
]


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of Krylov vectors generated (the ``m`` of the paper).
    converged:
        Whether the residual tolerance was reached.
    residual_norms:
        Estimated residual norm after each iteration.
    hessenberg:
        The (m+1) x m upper-Hessenberg matrix ``H`` built by the Arnoldi
        process (before Givens rotations), kept for tests and for the
        CDAG construction.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)
    hessenberg: Optional[np.ndarray] = None


def gmres(
    operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: Optional[int] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> GMRESResult:
    """Solve ``A x = b`` with (unrestarted) GMRES.

    Parameters mirror :func:`repro.solvers.cg_solver.conjugate_gradient`;
    ``operator`` need not be symmetric.
    """
    b = np.asarray(b, dtype=float)
    n = b.shape[0]
    matvec = operator.matvec if hasattr(operator, "matvec") else (
        lambda v: np.asarray(operator) @ v
    )
    x0 = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    if x0.shape != b.shape:
        raise ValueError("x0 and b must have the same shape")
    m_max = n if max_iterations is None else min(int(max_iterations), n)

    r0 = b - matvec(x0)
    beta = float(np.linalg.norm(r0))
    b_norm = float(np.linalg.norm(b)) or 1.0
    residuals = [beta]
    if beta <= tol * b_norm or m_max == 0:
        return GMRESResult(
            x=x0, iterations=0, converged=beta <= tol * b_norm,
            residual_norms=residuals, hessenberg=np.zeros((1, 0)),
        )

    V = np.zeros((m_max + 1, n))
    H = np.zeros((m_max + 1, m_max))
    V[0] = r0 / beta

    # Givens rotation state for the incremental least-squares solve.
    cs = np.zeros(m_max)
    sn = np.zeros(m_max)
    g = np.zeros(m_max + 1)
    g[0] = beta

    converged = False
    i = -1
    for i in range(m_max):
        w = matvec(V[i])                                   # SpMV
        # Modified Gram-Schmidt orthogonalisation.
        for j in range(i + 1):
            H[j, i] = float(w @ V[j])                      # dot product
            w = w - H[j, i] * V[j]                         # saxpy
        H[i + 1, i] = float(np.linalg.norm(w))             # norm
        if H[i + 1, i] > 0:
            V[i + 1] = w / H[i + 1, i]
        # Apply the accumulated Givens rotations to the new column.
        for j in range(i):
            temp = cs[j] * H[j, i] + sn[j] * H[j + 1, i]
            H[j + 1, i] = -sn[j] * H[j, i] + cs[j] * H[j + 1, i]
            H[j, i] = temp
        # New rotation annihilating H[i+1, i].
        denom = float(np.hypot(H[i, i], H[i + 1, i]))
        if denom == 0.0:
            cs[i], sn[i] = 1.0, 0.0
        else:
            cs[i], sn[i] = H[i, i] / denom, H[i + 1, i] / denom
        H[i, i] = cs[i] * H[i, i] + sn[i] * H[i + 1, i]
        H[i + 1, i] = 0.0
        g[i + 1] = -sn[i] * g[i]
        g[i] = cs[i] * g[i]
        residual = abs(float(g[i + 1]))
        residuals.append(residual)
        if callback is not None:
            callback(i + 1, residual)
        if residual <= tol * b_norm:
            converged = True
            break

    m = i + 1
    # Solve the m x m triangular system R y = g by back substitution.
    y = np.zeros(m)
    for row in range(m - 1, -1, -1):
        s = g[row] - H[row, row + 1 : m] @ y[row + 1 : m]
        y[row] = s / H[row, row] if H[row, row] != 0 else 0.0
    x = x0 + V[:m].T @ y
    return GMRESResult(
        x=x,
        iterations=m,
        converged=converged,
        residual_norms=residuals,
        hessenberg=H[: m + 1, :m].copy(),
    )


def gmres_flops(
    n: int, krylov_iterations: int, dimensions: int = 3,
    paper_constant: bool = False,
) -> float:
    """Total operation count of ``m`` GMRES iterations on an ``n^d`` grid.

    The paper (Section 5.3.3) uses ``20 n^3 m + n^3 m^2``: ~``20 n^3`` per
    iteration for the SpMV-dominated fixed work plus ``n^3 m^2`` for the
    growing orthogonalisation against all previous basis vectors.  With
    ``paper_constant=False`` a slightly more precise sum
    ``sum_i [2(2d+1) n^d + (i+1) 2 n^d + i 2 n^d + 2 n^d]`` is returned.
    """
    nd = n ** dimensions
    m = krylov_iterations
    if paper_constant:
        return 20.0 * nd * m + nd * float(m) ** 2
    total = 0.0
    for i in range(m):
        spmv = 2 * (2 * dimensions + 1) * nd
        dots = (i + 1) * 2 * nd
        axpys = i * 2 * nd + 2 * nd
        norm_and_scale = 3 * nd
        total += spmv + dots + axpys + norm_and_scale
    return total

"""Direct tridiagonal solver (Thomas algorithm) for the 1-D heat system.

The 1-D discretized heat equation (system (11) of the paper) is a
tridiagonal system; while the paper's focus is on iterative solvers for
the large d-dimensional cases, the direct solver is the natural reference
for validating the 1-D path of the substrate (the iterative solvers must
agree with it) and it provides the per-timestep baseline used by the heat
timestepping driver.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["thomas_solve", "build_tridiagonal", "heat_tridiagonal"]


def thomas_solve(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a tridiagonal system with the Thomas algorithm.

    Parameters
    ----------
    lower:
        Sub-diagonal, length ``n`` with ``lower[0]`` unused.
    diag:
        Main diagonal, length ``n``.
    upper:
        Super-diagonal, length ``n`` with ``upper[-1]`` unused.
    rhs:
        Right-hand side, length ``n``.

    Notes
    -----
    O(n) work, numerically stable for diagonally dominant systems such as
    the heat matrix (``|1 + a| > 2 * |a/2|``).
    """
    lower = np.asarray(lower, dtype=float)
    diag = np.asarray(diag, dtype=float).copy()
    upper = np.asarray(upper, dtype=float)
    rhs = np.asarray(rhs, dtype=float).copy()
    n = len(diag)
    if not (len(lower) == len(upper) == len(rhs) == n):
        raise ValueError("all bands and the rhs must have the same length")
    if n == 0:
        return np.zeros(0)
    # Forward elimination.
    for i in range(1, n):
        if diag[i - 1] == 0.0:
            raise ZeroDivisionError("zero pivot in Thomas algorithm")
        w = lower[i] / diag[i - 1]
        diag[i] -= w * upper[i - 1]
        rhs[i] -= w * rhs[i - 1]
    # Back substitution.
    x = np.zeros(n)
    if diag[-1] == 0.0:
        raise ZeroDivisionError("zero pivot in Thomas algorithm")
    x[-1] = rhs[-1] / diag[-1]
    for i in range(n - 2, -1, -1):
        x[i] = (rhs[i] - upper[i] * x[i + 1]) / diag[i]
    return x


def build_tridiagonal(n: int, lower: float, diag: float, upper: float
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Constant-band tridiagonal system bands of size ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    lo = np.full(n, lower)
    lo[0] = 0.0
    di = np.full(n, diag)
    up = np.full(n, upper)
    up[-1] = 0.0
    return lo, di, up


def heat_tridiagonal(n: int, mesh_ratio: float
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The bands of the paper's system (11): ``(-a/2, 1+a, -a/2)``."""
    if mesh_ratio <= 0:
        raise ValueError("mesh ratio a must be positive")
    return build_tridiagonal(n, -mesh_ratio / 2.0, 1.0 + mesh_ratio, -mesh_ratio / 2.0)

"""Sparse linear operators for the discretized heat problem.

Two operator representations are provided:

* :class:`CSRMatrix` — a from-scratch compressed-sparse-row matrix with
  the handful of kernels the Krylov solvers need (SpMV, transpose,
  diagonal extraction).  It exists so the library has no hard dependency
  on ``scipy.sparse`` for its core path and so that the SpMV kernel is
  plain, inspectable Python/NumPy (the thing whose CDAG the paper
  analyses).
* :class:`StencilOperator` — the matrix-free (2d+1)-point operator of the
  implicit heat system: diagonal ``1 + d*a``, off-diagonal ``-a/2``
  toward each axis neighbour.  This mirrors the paper's remark that "the
  elements of the matrix are not explicitly stored; their values are
  directly embedded in the program as constants".

Both expose the same tiny interface (``shape``, ``matvec``, ``diagonal``)
so the solvers are agnostic to the representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .grid import Grid

__all__ = ["CSRMatrix", "StencilOperator", "laplacian_csr"]


class CSRMatrix:
    """A minimal compressed-sparse-row matrix.

    Parameters
    ----------
    data, indices, indptr:
        The usual CSR arrays: ``data[indptr[i]:indptr[i+1]]`` are the
        non-zero values of row ``i`` located at columns
        ``indices[indptr[i]:indptr[i+1]]``.
    shape:
        ``(rows, cols)``.
    """

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError("indptr length must be rows + 1")
        if len(self.data) != len(self.indices):
            raise ValueError("data and indices must have equal length")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[float],
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        """Build from coordinate triplets (duplicates are summed)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows, cols and values must have equal length")
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        # merge duplicates
        if len(rows):
            keep = np.ones(len(rows), dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(keep) - 1
            merged = np.zeros(group[-1] + 1, dtype=float)
            np.add.at(merged, group, values)
            rows, cols, values = rows[keep], cols[keep], merged
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(values, cols, indptr, shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=float)
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.data)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"dimension mismatch: matrix is {self.shape}, vector is {x.shape}"
            )
        # Vectorised CSR SpMV: gather + segment-sum via reduceat.
        gathered = self.data * x[self.indices]
        out = np.zeros(self.shape[0], dtype=float)
        nonempty = np.diff(self.indptr) > 0
        if gathered.size:
            sums = np.add.reduceat(gathered, self.indptr[:-1][nonempty])
            out[nonempty] = sums
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal (zeros where no entry is stored)."""
        diag = np.zeros(min(self.shape), dtype=float)
        for i in range(min(self.shape)):
            start, end = self.indptr[i], self.indptr[i + 1]
            cols = self.indices[start:end]
            hit = np.nonzero(cols == i)[0]
            if hit.size:
                diag[i] = self.data[start + hit[0]]
        return diag

    def transpose(self) -> "CSRMatrix":
        """The transpose, as a new CSR matrix."""
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix.from_coo(
            self.indices, rows, self.data, (self.shape[1], self.shape[0])
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=float)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(columns, values) of row ``i``."""
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end], self.data[start:end]

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


@dataclass(frozen=True)
class StencilOperator:
    """Matrix-free (2d+1)-point operator of the implicit heat system.

    ``(A u)_i = diag * u_i + off * sum_{j ~ i} u_j`` where ``~`` ranges
    over the axis neighbours of grid point ``i`` and the coefficients come
    from :meth:`repro.solvers.grid.Grid.implicit_matrix_diagonals`.
    The operator is symmetric positive definite for the heat-system
    coefficients, which is what CG requires.
    """

    grid: Grid

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.grid.num_points
        return (n, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.grid.num_points,):
            raise ValueError("dimension mismatch in stencil matvec")
        diag, off = self.grid.implicit_matrix_diagonals()
        u = x.reshape(self.grid.shape)
        acc = diag * u
        for axis in range(self.grid.ndim):
            lower = np.zeros_like(u)
            upper = np.zeros_like(u)
            sl_lo = [slice(None)] * self.grid.ndim
            sl_hi = [slice(None)] * self.grid.ndim
            sl_lo[axis] = slice(1, None)
            sl_hi[axis] = slice(None, -1)
            lower[tuple(sl_lo)] = u[tuple(sl_hi)]
            upper[tuple(sl_hi)] = u[tuple(sl_lo)]
            acc = acc + off * (lower + upper)
        return acc.reshape(-1)

    def diagonal(self) -> np.ndarray:
        diag, _ = self.grid.implicit_matrix_diagonals()
        return np.full(self.grid.num_points, diag)

    def to_csr(self) -> CSRMatrix:
        """Materialise the operator as an explicit CSR matrix (small grids
        only; used by tests to check the matrix-free kernel)."""
        return laplacian_csr(self.grid)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


def laplacian_csr(grid: Grid) -> CSRMatrix:
    """Explicit CSR form of the implicit heat-system matrix on ``grid``."""
    diag, off = grid.implicit_matrix_diagonals()
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for idx in grid.points():
        i = grid.ravel(idx)
        rows.append(i)
        cols.append(i)
        vals.append(diag)
        for jdx in grid.neighbors(idx):
            rows.append(i)
            cols.append(grid.ravel(jdx))
            vals.append(off)
    n = grid.num_points
    return CSRMatrix.from_coo(rows, cols, vals, (n, n))

"""Evaluation harness: drivers reproducing the paper's tables and analyses."""

from .experiments import (
    experiment_balance_conditions,
    experiment_bound_validation,
    experiment_cg_bounds,
    experiment_composite_example,
    experiment_distsim_parallel,
    experiment_gmres_bounds,
    experiment_jacobi_bounds,
    experiment_matmul_bounds,
    experiment_table1_machines,
)
from .report import format_table, format_value, render_report

__all__ = [
    "experiment_balance_conditions",
    "experiment_bound_validation",
    "experiment_cg_bounds",
    "experiment_composite_example",
    "experiment_distsim_parallel",
    "experiment_gmres_bounds",
    "experiment_jacobi_bounds",
    "experiment_matmul_bounds",
    "experiment_table1_machines",
    "format_table",
    "format_value",
    "render_report",
]

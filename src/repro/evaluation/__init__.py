"""Evaluation harness: drivers reproducing the paper's tables and analyses.

Two layers:

* :mod:`repro.evaluation.experiments` — the nine ad-hoc drivers
  (E1-E9) plus the spill-strategy game driver, directly callable;
* :mod:`repro.evaluation.harness` / :mod:`repro.evaluation.manifest` —
  the manifest-driven sweep runner (declarative grids, per-run result
  directories, ``--resume``, ``reproduce``) layered on top.
"""

from .experiments import (
    experiment_balance_conditions,
    experiment_bound_validation,
    experiment_cg_bounds,
    experiment_composite_example,
    experiment_distsim_parallel,
    experiment_gmres_bounds,
    experiment_jacobi_bounds,
    experiment_matmul_bounds,
    experiment_spill_strategies,
    experiment_table1_machines,
)
from .harness import (
    GRIDS,
    REGISTRY,
    RunSpec,
    bench_view,
    default_grid,
    load_grid_file,
    make_spec,
    plan_resume,
    reproduce,
    run_grid,
    scan_results_root,
    smoke_grid,
    write_bench_view,
)
from .report import format_table, format_value, render_report

__all__ = [
    "experiment_balance_conditions",
    "experiment_bound_validation",
    "experiment_cg_bounds",
    "experiment_composite_example",
    "experiment_distsim_parallel",
    "experiment_gmres_bounds",
    "experiment_jacobi_bounds",
    "experiment_matmul_bounds",
    "experiment_spill_strategies",
    "experiment_table1_machines",
    "format_table",
    "format_value",
    "render_report",
    "GRIDS",
    "REGISTRY",
    "RunSpec",
    "bench_view",
    "default_grid",
    "load_grid_file",
    "make_spec",
    "plan_resume",
    "reproduce",
    "run_grid",
    "scan_results_root",
    "smoke_grid",
    "write_bench_view",
]

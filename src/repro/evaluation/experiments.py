"""Experiment drivers reproducing every table and analysis of the paper.

Each ``experiment_*`` function regenerates one artifact of the paper's
evaluation (see DESIGN.md, "Per-experiment index") and returns a list of
row dictionaries plus, via :func:`repro.evaluation.report.render_report`,
a printable table.  The benchmark files under ``benchmarks/`` call these
drivers so that ``pytest benchmarks/ --benchmark-only`` both times them
and prints the reproduced rows; EXPERIMENTS.md records the paper-reported
values next to the measured ones.

Experiments
-----------
* E1 — Table 1: machine specifications and balance parameters.
* E2 — Section 3 composite example: per-step bound sum vs true composite I/O.
* E3 — Theorem 8 / Section 5.2.3: CG vertical and horizontal analysis.
* E4 — Theorem 9 / Section 5.3.3: GMRES analysis over the Krylov dimension m.
* E5 — Theorem 10 / Section 5.4.3: Jacobi dimension thresholds.
* E6 — Matmul / outer-product bounds (Section 3 constants).
* E7 — Bound-machinery validation: LB <= OPT <= UB sandwiches on small CDAGs.
* E8 — Simulated-cluster measurements vs the parallel bounds.
* E9 — Balance-condition sweep across algorithms x machines x levels.
* Spill — strategy pebble games on synthetic workloads (the
  ``workload x policy x backend x workers`` axes of the harness grid).

Seeds
-----
E1-E9 are deterministic given their parameters (fixed CDAG builders,
exhaustive/closed-form bounds, simulated cluster).  The only randomized
construction reachable from a driver is the ``forest`` workload of
:func:`experiment_spill_strategies`, which builds
:func:`~repro.pebbling.workloads.component_forest_cdag` from an
**explicit** ``seed`` argument and records it in its rows — the
manifest-driven harness (:mod:`repro.evaluation.harness`) additionally
records the seed of every cell, and
``tests/evaluation/test_harness_seeds.py`` pins that two same-seed runs
produce byte-identical ``metrics.jsonl``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.cg import analyze_cg, cg_iteration_cdag
from ..algorithms.composite import naive_step_sum, recompute_friendly_game
from ..algorithms.gmres import analyze_gmres
from ..algorithms.jacobi import analyze_jacobi, bandwidth_bound_dimension_threshold
from ..algorithms.linalg import matmul_cdag
from ..algorithms.reductions import dot_then_axpy_cdag
from ..bounds.analytical import (
    cg_vertical_lower_bound,
    composite_example_io_upper_bound,
    jacobi_io_lower_bound,
    matmul_io_lower_bound,
    outer_product_io,
    stencil_horizontal_upper_bound,
)
from ..bounds.hong_kung import lower_bound_from_largest_subset
from ..bounds.mincut import automated_wavefront_bound
from ..core.builders import (
    butterfly_cdag,
    diamond_cdag,
    grid_stencil_cdag,
    outer_product_cdag,
    reduction_tree_cdag,
)
from ..core.cdag import CDAG
from ..distsim.cluster import SimulatedCluster
from ..machine.catalog import IBM_BGQ, PAPER_MACHINES
from ..machine.spec import MachineSpec
from ..pebbling.optimal import optimal_rbw_io
from ..pebbling.strategies import spill_game_rbw

__all__ = [
    "experiment_table1_machines",
    "experiment_composite_example",
    "experiment_cg_bounds",
    "experiment_gmres_bounds",
    "experiment_jacobi_bounds",
    "experiment_matmul_bounds",
    "experiment_bound_validation",
    "experiment_distsim_parallel",
    "experiment_balance_conditions",
    "experiment_spill_strategies",
]


# ----------------------------------------------------------------------
# E1 — Table 1
# ----------------------------------------------------------------------
def experiment_table1_machines(
    machines: Optional[Sequence[MachineSpec]] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 1: specifications of the computing systems."""
    machines = list(machines) if machines is not None else list(PAPER_MACHINES)
    return [m.as_table_row() for m in machines]


# ----------------------------------------------------------------------
# E2 — Section 3 composite example
# ----------------------------------------------------------------------
def experiment_composite_example(
    sizes: Sequence[int] = (4, 8, 16), s: int = 64
) -> List[Dict[str, object]]:
    """Per-step bound sum vs the true composite I/O (the Section 3 point).

    For each vector size ``N`` the row shows the invalid naive sum of the
    per-step bounds, the paper's ``4N + 1`` upper bound, and the I/O of
    the explicit recomputation-friendly red-blue game (verified move by
    move), demonstrating that the composite I/O is far below the matmul
    step's own lower bound.
    """
    rows: List[Dict[str, object]] = []
    for n in sizes:
        game = recompute_friendly_game(n)
        rows.append(
            {
                "N": n,
                "naive_step_sum": naive_step_sum(n, s),
                "matmul_step_LB": matmul_io_lower_bound(n, s),
                "composite_upper_bound_4N+1": composite_example_io_upper_bound(n),
                "verified_game_io": game.io_count,
                "composite_below_matmul_LB": game.io_count
                < matmul_io_lower_bound(n, s) + 2 * outer_product_io(n) + n * n + 1,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E3 — CG (Theorem 8 + Section 5.2.3)
# ----------------------------------------------------------------------
def experiment_cg_bounds(
    n: int = 1000,
    dimensions: int = 3,
    iterations: int = 1,
    machines: Optional[Sequence[MachineSpec]] = None,
    small_shape: Tuple[int, ...] = (2, 2),
) -> List[Dict[str, object]]:
    """CG analysis rows: one per machine plus one empirical cross-check row.

    Machine rows reproduce the 0.3 words/FLOP vertical intensity and the
    ``6 N_nodes^{1/3} / (20 n)`` horizontal intensity of Section 5.2.3.
    The final row checks Theorem 8's wavefront reasoning on a small grid:
    the automated min-cut bound on the structural CG CDAG must be at least
    ``2 (2 n^d - S)``.
    """
    machines = list(machines) if machines is not None else list(PAPER_MACHINES)
    rows: List[Dict[str, object]] = []
    for m in machines:
        a = analyze_cg(m, n=n, dimensions=dimensions, iterations=iterations)
        rows.append(
            {
                "machine": m.name,
                "n": n,
                "d": dimensions,
                "LB_vert_per_node": a.vertical_lb_per_node,
                "vertical_intensity": a.vertical_intensity,
                "vertical_balance": m.effective_vertical_balance(),
                "vertically_bound": a.vertical_verdict.bound,
                "UB_horiz_per_node": a.horizontal_ub_per_node,
                "horizontal_intensity": a.horizontal_intensity,
                "horizontal_balance": m.effective_horizontal_balance(),
                "possibly_network_bound": a.horizontal_verdict.bound,
            }
        )
    # Small-instance empirical check of the Theorem 8 wavefront argument.
    small = cg_iteration_cdag(small_shape, 1)
    nd = int(np.prod(small_shape))
    s_small = 2
    wf = automated_wavefront_bound(small, s=s_small)
    rows.append(
        {
            "machine": f"(wavefront check on {small_shape} grid)",
            "n": nd,
            "d": len(small_shape),
            "LB_vert_per_node": wf.value,
            "vertical_intensity": wf.wavefront,
            "vertical_balance": 2 * (2 * nd - s_small),
            "vertically_bound": wf.wavefront >= 2 * nd,
            "UB_horiz_per_node": 0,
            "horizontal_intensity": 0,
            "horizontal_balance": 0,
            "possibly_network_bound": False,
        }
    )
    return rows


# ----------------------------------------------------------------------
# E4 — GMRES (Theorem 9 + Section 5.3.3)
# ----------------------------------------------------------------------
def experiment_gmres_bounds(
    n: int = 1000,
    dimensions: int = 3,
    krylov_dimensions: Sequence[int] = (5, 10, 20, 50, 100, 200),
    machine: Optional[MachineSpec] = None,
) -> List[Dict[str, object]]:
    """GMRES vertical intensity ``6/(m+20)`` as a function of ``m``.

    Shows the crossover the paper describes: for small ``m`` the intensity
    exceeds the machine balance (memory bound), for large ``m`` the
    quadratic orthogonalisation work dominates and the intensity falls
    below the balance (no decisive verdict without knowing ``m``).
    """
    machine = machine if machine is not None else IBM_BGQ
    rows: List[Dict[str, object]] = []
    for m in krylov_dimensions:
        a = analyze_gmres(machine, n=n, dimensions=dimensions, krylov_iterations=m)
        rows.append(
            {
                "machine": machine.name,
                "m": m,
                "paper_formula_6/(m+20)": 6.0 / (m + 20),
                "vertical_intensity": a.vertical_intensity,
                "vertical_balance": machine.effective_vertical_balance(),
                "vertically_bound": a.vertical_verdict.bound,
                "horizontal_intensity": a.horizontal_intensity,
                "horizontal_balance": machine.effective_horizontal_balance(),
                "possibly_network_bound": a.horizontal_verdict.bound,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E5 — Jacobi (Theorem 10 + Section 5.4.3)
# ----------------------------------------------------------------------
def experiment_jacobi_bounds(
    dimensions: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 11),
    machine: Optional[MachineSpec] = None,
    n: int = 100,
    timesteps: int = 100,
) -> List[Dict[str, object]]:
    """Per-dimension Jacobi vertical requirement vs the machine balance.

    Reproduces the Section 5.4.3 conclusion: the stencil is vertically
    bandwidth bound only above a dimension threshold (the paper quotes
    d <= 4.83 for DRAM<->L2 on BG/Q using a linearised form; the exact
    condition evaluated here yields a threshold of ~10 for the same
    inputs — either way, practical stencils of d <= 3-4 are not bound).
    """
    machine = machine if machine is not None else IBM_BGQ
    s_cache = machine.cache_words
    balance = machine.effective_vertical_balance()
    threshold = bandwidth_bound_dimension_threshold(balance, s_cache)
    rows: List[Dict[str, object]] = []
    for d in dimensions:
        per_op = 1.0 / (4.0 * (2.0 * s_cache) ** (1.0 / d))
        a = analyze_jacobi(machine, n=n, dimensions=d, timesteps=timesteps)
        rows.append(
            {
                "machine": machine.name,
                "d": d,
                "per_op_requirement": per_op,
                "vertical_balance": balance,
                "vertically_bound": per_op > balance,
                "exact_threshold_d": threshold,
                "paper_threshold_d": 0.21 * np.log2(2 * s_cache),
                "theorem10_LB_per_node": a.vertical_lb_per_node,
                "horizontal_intensity": a.horizontal_intensity,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E6 — Matmul / outer-product constants
# ----------------------------------------------------------------------
def experiment_matmul_bounds(
    sizes: Sequence[int] = (4, 6, 8),
    cache_sizes: Sequence[int] = (8, 16, 32),
) -> List[Dict[str, object]]:
    """Hong-Kung matmul bound vs measured upper bounds from spill games.

    For each (N, S) the row shows the ``N^3 / (2 sqrt(2S))`` lower bound,
    the Corollary 1 bound computed from the matmul CDAG with the closed
    form ``U(2S) <= 2 S sqrt(2 S)``, and the I/O of an actual RBW spill
    game (an upper bound); the sandwich LB <= UB must hold and the ratio
    indicates tightness.
    """
    rows: List[Dict[str, object]] = []
    for n in sizes:
        cdag = matmul_cdag(n)
        ops = len(cdag.operations)
        for s in cache_sizes:
            lb = matmul_io_lower_bound(n, s)
            u_upper = 2.0 * s * np.sqrt(2.0 * s)
            hk = lower_bound_from_largest_subset(s, ops, u_upper)
            ub = spill_game_rbw(cdag, s).io_count
            rows.append(
                {
                    "N": n,
                    "S": s,
                    "analytical_LB": lb,
                    "corollary1_LB": hk.value,
                    "spill_game_UB": ub,
                    "outer_product_io": outer_product_io(n),
                    "sandwich_ok": hk.value <= ub + 1e-9 and ub >= 0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# E7 — Bound-machinery validation (LB <= OPT <= UB)
# ----------------------------------------------------------------------
def experiment_bound_validation(s: int = 3) -> List[Dict[str, object]]:
    """Sandwich validation on small CDAGs where the optimum is computable.

    For each small CDAG: the Corollary 1 / wavefront lower bounds, the
    exact optimum from exhaustive search, and the heuristic spill-game
    upper bound.  Soundness requires LB <= OPT <= UB on every row.
    """
    cases: List[Tuple[str, CDAG]] = [
        ("reduction tree (8 leaves)", reduction_tree_cdag(8)),
        ("diamond 4x3", diamond_cdag(4, 3)),
        ("outer product 2x2", outer_product_cdag(2)),
        ("dot-then-axpy n=2", dot_then_axpy_cdag(2)),
        ("butterfly n=4", butterfly_cdag(2)),
        ("stencil 3x(T=2)", grid_stencil_cdag((3,), 2)),
    ]
    rows: List[Dict[str, object]] = []
    for name, cdag in cases:
        ops = len(cdag.operations)
        # Every engine needs enough red pebbles to hold a vertex's operands
        # plus its result; bump S per CDAG when its fan-in demands it.
        max_indeg = max(
            (cdag.in_degree(v) for v in cdag.vertices if not cdag.is_input(v)),
            default=0,
        )
        s_case = max(s, max_indeg + 1)
        wf = automated_wavefront_bound(cdag, s=s_case)
        lb = wf.value
        # The exhaustive optimum is exponential; skip gracefully if the
        # state budget is hit (the LB <= UB part of the sandwich is still
        # reported) so the experiment remains robust on slow machines.
        try:
            opt: Optional[int] = optimal_rbw_io(cdag, s_case, max_states=400_000).io
        except Exception:
            opt = None
        ub = spill_game_rbw(cdag, s_case, policy="belady").io_count
        sound = (lb <= ub) if opt is None else (lb <= opt <= ub)
        rows.append(
            {
                "cdag": name,
                "operations": ops,
                "S": s_case,
                "wavefront_LB": wf.value,
                "optimal_io": opt if opt is not None else "(skipped)",
                "spill_game_UB": ub,
                "sound": sound,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E8 — Simulated cluster vs parallel bounds
# ----------------------------------------------------------------------
def experiment_distsim_parallel(
    shape: Tuple[int, ...] = (24, 24),
    timesteps: int = 8,
    num_nodes: int = 4,
    cache_words: int = 64,
    policies: Sequence[str] = ("lru", "belady"),
) -> List[Dict[str, object]]:
    """Measured cluster traffic vs the analytical bounds (stencil + CG).

    For each replacement policy the row reports the measured maximum
    per-node vertical and horizontal traffic and the corresponding lower
    bounds (Theorem 10 for the stencil; Theorem 8 for CG; ghost-cell
    formula for the horizontal side).  Measured values must dominate the
    bounds.
    """
    d = len(shape)
    n = shape[0]
    rows: List[Dict[str, object]] = []
    for policy in policies:
        cluster = SimulatedCluster(num_nodes, cache_words, d, policy=policy)
        st = cluster.run_stencil(shape, timesteps)
        stencil_lb = jacobi_io_lower_bound(
            n, timesteps, cache_words, d, processors=num_nodes
        )
        ghost_ub = stencil_horizontal_upper_bound(n, num_nodes, d, timesteps)
        cg = cluster.run_cg(shape, timesteps)
        cg_lb = cg_vertical_lower_bound(n, timesteps, d, processors=num_nodes)
        rows.append(
            {
                "policy": policy,
                "workload": "jacobi stencil",
                "measured_vertical_max": st.max_vertical,
                "vertical_LB_per_node": stencil_lb,
                "vertical_ok": st.max_vertical >= stencil_lb * 0.999,
                "measured_horizontal_max": st.max_horizontal,
                "horizontal_UB_formula": ghost_ub,
            }
        )
        rows.append(
            {
                "policy": policy,
                "workload": "conjugate gradient",
                "measured_vertical_max": cg.max_vertical,
                "vertical_LB_per_node": cg_lb,
                "vertical_ok": cg.max_vertical >= cg_lb * 0.999,
                "measured_horizontal_max": cg.max_horizontal,
                "horizontal_UB_formula": ghost_ub,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E9 — Balance-condition sweep
# ----------------------------------------------------------------------
def experiment_balance_conditions(
    n: int = 1000,
    dimensions: int = 3,
    gmres_m: int = 10,
    jacobi_timesteps: int = 1000,
    machines: Optional[Sequence[MachineSpec]] = None,
) -> List[Dict[str, object]]:
    """Which (algorithm, machine) pairs are bandwidth bound at which level.

    The summary table of the paper's evaluation narrative: CG is
    vertically bound everywhere, GMRES depends on the Krylov dimension,
    Jacobi (d <= 3) is not bound, and none of them are network bound.
    """
    machines = list(machines) if machines is not None else list(PAPER_MACHINES)
    rows: List[Dict[str, object]] = []
    for m in machines:
        cg = analyze_cg(m, n=n, dimensions=dimensions, iterations=1)
        gm = analyze_gmres(m, n=n, dimensions=dimensions, krylov_iterations=gmres_m)
        jc = analyze_jacobi(
            m,
            n=n,
            dimensions=min(dimensions, 3),
            timesteps=jacobi_timesteps,
            count_flops=True,
        )
        for label, a in (("CG", cg), (f"GMRES(m={gmres_m})", gm), ("Jacobi", jc)):
            rows.append(
                {
                    "machine": m.name,
                    "algorithm": label,
                    "vertical_intensity": a.vertical_intensity,
                    "vertical_balance": m.effective_vertical_balance(),
                    "vertically_bound": a.vertical_verdict.bound,
                    "horizontal_intensity": a.horizontal_intensity,
                    "horizontal_balance": m.effective_horizontal_balance(),
                    "possibly_network_bound": a.horizontal_verdict.bound,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Spill-strategy games (harness grid axes: workload x policy x backend
# x workers)
# ----------------------------------------------------------------------
def experiment_spill_strategies(
    workload: str = "star",
    ops: int = 64,
    degree: int = 8,
    chains: int = 8,
    length: int = 16,
    num_red: int = 4,
    components: int = 4,
    component_size: int = 12,
    policy: str = "lru",
    backend: str = "batched",
    workers: int = 1,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Play one complete spill-strategy game and report its move/I/O row.

    This is the driver behind the harness's spill cells: every strategy
    axis (``policy``, ``backend`` incl. ``kernel``, ``workers`` incl.
    the sharded multiprocess runner) is a first-class parameter, so one
    grid sweeps the whole strategy engine.  Workloads:

    * ``"star"`` — owner-computes P-RBW hierarchy walk
      (:func:`~repro.pebbling.workloads.star_spill_setup`);
    * ``"chains"`` — LRU-thrashing interleaved chains under ``num_red``
      red pebbles (:func:`~repro.pebbling.workloads.chains_spill_setup`);
    * ``"forest"`` — seeded random component forest
      (:func:`~repro.pebbling.workloads.component_forest_cdag`); the
      **only randomized workload**, constructed from the explicit
      ``seed`` (recorded in the row) so identical seeds replay the
      identical game.
    """
    from ..core.ordering import dfs_schedule
    from ..pebbling.sharded import run_spill_game
    from ..pebbling.workloads import (
        chains_spill_setup,
        component_forest_cdag,
        star_spill_setup,
    )

    if workload == "star":
        cdag, memory = star_spill_setup(ops, degree)
        schedule = None
        snapshot_params = {"ops": ops, "degree": degree}
        snapshot_seed = 0
    elif workload == "chains":
        cdag, memory = chains_spill_setup(chains, length, num_red)
        # Chain-major (DFS) order keeps each chain contiguous, which is
        # what lets the sharded runner split the shared fast memory.
        schedule = dfs_schedule(cdag)
        snapshot_params = {"chains": chains, "length": length}
        snapshot_seed = 0
    elif workload == "forest":
        cdag = component_forest_cdag(components, component_size, seed=seed)
        # Random components can exceed num_red's operand capacity; the
        # engine needs room for a vertex's operands plus its result.
        max_indeg = max(
            (cdag.in_degree(v) for v in cdag.vertices if not cdag.is_input(v)),
            default=0,
        )
        memory = max(num_red, max_indeg + 1)
        schedule = dfs_schedule(cdag)
        snapshot_params = {
            "components": components, "component_size": component_size,
        }
        snapshot_seed = seed
    else:
        raise ValueError(
            f"workload must be 'star', 'chains' or 'forest', got {workload!r}"
        )
    # With an artifact store active (run_grid(..., store_path=...)) the
    # compiled CSR snapshot is adopted from cache instead of rebuilt —
    # keyed by exactly the params that determine the graph (num_red and
    # the strategy axes do not).  No-op otherwise.  Deferred import:
    # repro.store imports this package at module scope.
    from ..store.runtime import attach_compiled

    attach_compiled(
        cdag, builder=f"spill:{workload}", params=snapshot_params,
        seed=snapshot_seed,
    )
    record = run_spill_game(
        cdag,
        memory,
        schedule=schedule,
        policy=policy,
        backend=backend,
        workers=workers,
    )
    summary = record.summary()
    return [
        {
            "workload": workload,
            "policy": policy,
            "backend": backend,
            "workers": workers,
            "seed": seed,
            "num_vertices": cdag.num_vertices(),
            "num_edges": cdag.num_edges(),
            "moves": summary["moves"],
            "io": summary["io"],
            "vertical_io": summary["vertical_io"],
            "horizontal_io": summary["horizontal_io"],
        }
    ]

"""Plain-text table formatting for evaluation reports.

The benchmark harness prints its reproduced tables in the same row/column
shape as the paper; this module provides the small formatting helpers
(fixed-width text tables, scientific rounding) used for that output so the
benches and examples stay free of formatting noise.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["format_table", "format_value", "render_report"]


def format_value(value, precision: int = 4) -> str:
    """Render a cell: floats rounded, large/small floats in scientific form."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Format a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        {c: format_value(r.get(c, ""), precision) for c in cols} for r in rows
    ]
    widths = {
        c: max(len(c), max(len(r[c]) for r in rendered)) for c in cols
    }
    header = " | ".join(c.ljust(widths[c]) for c in cols)
    sep = "-+-".join("-" * widths[c] for c in cols)
    body = [" | ".join(r[c].ljust(widths[c]) for c in cols) for r in rendered]
    return "\n".join([header, sep] + body)


def render_report(title: str, rows: Sequence[Mapping[str, object]],
                  columns: Optional[Sequence[str]] = None,
                  notes: Optional[Iterable[str]] = None) -> str:
    """A titled table plus optional footnotes, ready to print."""
    parts = [f"== {title} ==", format_table(rows, columns)]
    for note in notes or ():
        parts.append(f"  note: {note}")
    return "\n".join(parts)

"""Run-directory protocol: manifests, metrics, summaries, tolerances.

Every harness cell (one (experiment, params, seed) point of a sweep
grid) executes into its own result directory under the results root::

    results/
      e2_composite/            <- cell label (unique within a grid)
        manifest.json          <- config snapshot + seed + provenance
        metrics.jsonl          <- one canonical-JSON row per metric row,
                                  appended while the cell runs
        timing.json            <- wall-clock info (non-deterministic,
                                  never compared)
        summary.json           <- per-metric aggregates; written last,
                                  atomically — the commit marker

The protocol is crash-safe by construction: ``summary.json`` is written
with a same-directory temp file + ``os.replace`` only after every
metrics row has been appended, so a directory without it is *partial*
(killed mid-cell) and is swept and re-run on ``--resume``.  Everything
that lands in ``metrics.jsonl`` and ``summary.json`` is canonicalized
(sorted keys, tuples as lists, numpy scalars unboxed, no timestamps),
so two runs of the same cell on the same machine produce byte-identical
files — the invariant the crash/resume differential suite pins.

``config_hash`` is the cell identity: the SHA-256 of the canonical JSON
encoding of ``{"experiment", "params", "seed"}``.  It is stable under
dict key reordering and tuple/list spelling (both properties are
hypothesis-tested) and deliberately excludes provenance (git SHA,
package versions, creation time), so re-running an identical config on
a newer checkout still *resumes* rather than re-executing.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_REL_TOL",
    "DEFAULT_ABS_TOL",
    "canonical_config",
    "canonical_row",
    "dumps_canonical",
    "config_hash",
    "build_manifest",
    "collect_provenance",
    "write_manifest",
    "read_manifest",
    "append_metrics_row",
    "read_metrics",
    "summarize_rows",
    "write_summary",
    "read_summary",
    "within_tolerance",
    "compare_summaries",
    "compare_rows",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "SUMMARY_NAME",
    "TIMING_NAME",
]

#: schema tag stamped into every manifest and summary
SCHEMA_VERSION = "repro-run/1"

#: default per-metric tolerances for ``reproduce`` (experiments may
#: override per metric; see ``docs/experiments.md``)
DEFAULT_REL_TOL = 1e-9
DEFAULT_ABS_TOL = 1e-12

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
SUMMARY_NAME = "summary.json"
TIMING_NAME = "timing.json"


# ----------------------------------------------------------------------
# Canonicalization + hashing
# ----------------------------------------------------------------------
def _canon_value(value, path: str):
    """One JSON-safe canonical value; raises TypeError on anything that
    would not survive a JSON round trip exactly."""
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        value = value.item()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise TypeError(f"non-finite float at {path!r}: {value!r}")
        return value
    if isinstance(value, (list, tuple)):
        return [_canon_value(v, f"{path}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, Mapping):
        out = {}
        for k in value:
            if not isinstance(k, str):
                raise TypeError(f"non-string key at {path!r}: {k!r}")
            out[k] = _canon_value(value[k], f"{path}.{k}")
        return out
    raise TypeError(f"unsupported config value at {path!r}: {value!r}")


def canonical_config(config: Mapping) -> Dict:
    """The canonical (JSON-round-trippable) form of a config mapping.

    Tuples become lists, numpy scalars become python scalars, keys must
    be strings; ``canonical_config`` is idempotent and invariant under
    dict key reordering (the serialized form sorts keys).
    """
    if not isinstance(config, Mapping):
        raise TypeError(f"config must be a mapping, got {type(config).__name__}")
    return _canon_value(config, "$")


def canonical_row(row: Mapping) -> Dict:
    """Canonical form of one metrics row (same rules as configs)."""
    return canonical_config(row)


def dumps_canonical(obj, indent: Optional[int] = 2) -> str:
    """Deterministic JSON text: sorted keys, fixed separators, trailing
    newline.  Identical inputs produce identical bytes on every run."""
    if indent is None:
        return json.dumps(obj, sort_keys=True, separators=(", ", ": "))
    return json.dumps(obj, sort_keys=True, indent=indent) + "\n"


def config_hash(experiment: str, params: Mapping, seed: int) -> str:
    """SHA-256 cell identity over the canonical (experiment, params,
    seed) triple; stable under key reordering and tuple/list spelling."""
    payload = {
        "experiment": str(experiment),
        "params": canonical_config(params),
        "seed": int(seed),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def _git_sha() -> str:
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:  # pragma: no cover - git missing entirely
        pass
    return "unknown"


def collect_provenance() -> Dict[str, str]:
    """Environment snapshot recorded in manifests (excluded from the
    config hash, so it never forces a re-run)."""
    import time

    versions = {"python": sys.version.split()[0], "numpy": np.__version__}
    try:  # scipy is a hard dep of the bounds stack, but stay defensive
        import scipy

        versions["scipy"] = scipy.__version__
    except ImportError:  # pragma: no cover
        pass
    return {
        "git_sha": _git_sha(),
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **versions,
    }


def build_manifest(
    experiment: str,
    params: Mapping,
    seed: int,
    label: str,
    provenance: Optional[Mapping[str, str]] = None,
) -> Dict:
    """The full config snapshot written to ``manifest.json`` before a
    cell runs.  ``params`` and ``seed`` round-trip exactly (property
    tested); ``provenance`` is informational only."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment": str(experiment),
        "label": str(label),
        "params": canonical_config(params),
        "seed": int(seed),
        "config_hash": config_hash(experiment, params, seed),
        "provenance": dict(provenance)
        if provenance is not None
        else collect_provenance(),
    }


def write_manifest(run_dir: Path, manifest: Mapping) -> Path:
    path = Path(run_dir) / MANIFEST_NAME
    path.write_text(dumps_canonical(manifest))
    return path


def read_manifest(run_dir: Path) -> Dict:
    return json.loads((Path(run_dir) / MANIFEST_NAME).read_text())


# ----------------------------------------------------------------------
# Metrics rows
# ----------------------------------------------------------------------
def append_metrics_row(run_dir: Path, row: Mapping) -> None:
    """Append one canonical row to ``metrics.jsonl`` (one line per row,
    flushed immediately so a crash loses at most the torn last line —
    which the resume sweep discards along with the whole partial dir)."""
    line = dumps_canonical(canonical_row(row), indent=None)
    with open(Path(run_dir) / METRICS_NAME, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()


def read_metrics(run_dir: Path) -> List[Dict]:
    path = Path(run_dir) / METRICS_NAME
    if not path.exists():
        return []
    rows = []
    for line in path.read_text().splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def _is_numeric(values: Sequence) -> bool:
    return all(isinstance(v, (bool, int, float)) for v in values)


def summarize_rows(rows: Sequence[Mapping]) -> Dict:
    """Deterministic per-metric aggregates over a cell's rows.

    Numeric metrics (bool counts as 0/1) get ``count``/``mean``/``min``
    /``max``; anything else gets the sorted distinct rendered values.
    ``reproduce`` compares these against a regeneration within
    per-metric tolerances.
    """
    metrics: Dict[str, Dict] = {}
    keys = sorted({k for row in rows for k in row})
    for key in keys:
        values = [
            canonical_row({"v": row[key]})["v"] for row in rows if key in row
        ]
        if values and _is_numeric(values):
            nums = [float(v) for v in values]
            metrics[key] = {
                "kind": "numeric",
                "count": len(nums),
                "mean": math.fsum(nums) / len(nums),
                "min": min(nums),
                "max": max(nums),
            }
        else:
            metrics[key] = {
                "kind": "values",
                "count": len(values),
                "values": sorted({dumps_canonical(v, indent=None) for v in values}),
            }
    return {"num_rows": len(rows), "metrics": metrics}


def write_summary(run_dir: Path, summary: Mapping) -> Path:
    """Atomically commit ``summary.json`` (temp file + ``os.replace`` in
    the same directory) — the marker that the cell completed."""
    run_dir = Path(run_dir)
    path = run_dir / SUMMARY_NAME
    tmp = run_dir / (SUMMARY_NAME + ".tmp")
    tmp.write_text(dumps_canonical(summary))
    os.replace(tmp, path)
    return path


def read_summary(run_dir: Path) -> Optional[Dict]:
    """The committed summary, or ``None`` when the cell is partial
    (missing or unparseable ``summary.json``)."""
    path = Path(run_dir) / SUMMARY_NAME
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Tolerances
# ----------------------------------------------------------------------
def within_tolerance(a: float, b: float, rel: float, abs_: float) -> bool:
    """Symmetric closeness test: ``|a-b| <= abs_ + rel * max(|a|,|b|)``."""
    return abs(a - b) <= abs_ + rel * max(abs(a), abs(b))


def _metric_tol(tolerances: Optional[Mapping], key: str):
    spec = {}
    if tolerances:
        spec = tolerances.get(key, tolerances.get("*", {}))
    return (
        float(spec.get("rel", DEFAULT_REL_TOL)),
        float(spec.get("abs", DEFAULT_ABS_TOL)),
    )


def compare_summaries(
    stored: Mapping,
    fresh: Mapping,
    tolerances: Optional[Mapping] = None,
) -> List[str]:
    """Mismatches between a stored summary and a regenerated one.

    Numeric aggregates compare within the per-metric tolerance
    (``tolerances[key]`` or ``tolerances["*"]``, each a ``{"rel":
    ..., "abs": ...}`` mapping); counts, kinds and non-numeric value
    sets compare exactly.  Returns human-readable mismatch strings
    (empty list = within tolerance).
    """
    problems: List[str] = []
    if stored.get("num_rows") != fresh.get("num_rows"):
        problems.append(
            f"num_rows: stored {stored.get('num_rows')} != "
            f"regenerated {fresh.get('num_rows')}"
        )
    s_metrics = stored.get("metrics", {})
    f_metrics = fresh.get("metrics", {})
    for key in sorted(set(s_metrics) | set(f_metrics)):
        if key not in s_metrics or key not in f_metrics:
            problems.append(f"metric {key!r}: present in only one summary")
            continue
        s, f = s_metrics[key], f_metrics[key]
        if s.get("kind") != f.get("kind") or s.get("count") != f.get("count"):
            problems.append(
                f"metric {key!r}: kind/count changed "
                f"({s.get('kind')}/{s.get('count')} vs "
                f"{f.get('kind')}/{f.get('count')})"
            )
            continue
        if s.get("kind") == "numeric":
            rel, abs_ = _metric_tol(tolerances, key)
            for agg in ("mean", "min", "max"):
                if not within_tolerance(s[agg], f[agg], rel, abs_):
                    problems.append(
                        f"metric {key!r}: {agg} {s[agg]!r} vs {f[agg]!r} "
                        f"outside tolerance (rel={rel}, abs={abs_})"
                    )
        elif s.get("values") != f.get("values"):
            problems.append(
                f"metric {key!r}: value set changed "
                f"({s.get('values')} vs {f.get('values')})"
            )
    return problems


def compare_rows(
    stored_rows: Sequence[Mapping],
    fresh_rows: Sequence[Mapping],
    tolerances: Optional[Mapping] = None,
) -> List[str]:
    """Row-by-row comparison of stored vs regenerated metrics (numeric
    fields within tolerance, everything else exact)."""
    problems: List[str] = []
    if len(stored_rows) != len(fresh_rows):
        return [f"row count {len(stored_rows)} != {len(fresh_rows)}"]
    for i, (s_row, f_row) in enumerate(zip(stored_rows, fresh_rows)):
        s_row = canonical_row(s_row)
        f_row = canonical_row(f_row)
        if set(s_row) != set(f_row):
            problems.append(f"row {i}: key sets differ")
            continue
        for key in sorted(s_row):
            s, f = s_row[key], f_row[key]
            numeric = _is_numeric([s]) and _is_numeric([f])
            if numeric:
                rel, abs_ = _metric_tol(tolerances, key)
                if not within_tolerance(float(s), float(f), rel, abs_):
                    problems.append(
                        f"row {i} metric {key!r}: {s!r} vs {f!r} "
                        f"outside tolerance (rel={rel}, abs={abs_})"
                    )
            elif s != f:
                problems.append(f"row {i} metric {key!r}: {s!r} != {f!r}")
    return problems
